"""Serving under fire: throughput, tail latency and answer loss amid churn.

The supervision plane (PR 9) claims that worker death is an operational
event, not a correctness event.  This benchmark prices that claim on
the process backend with deterministic fault plans
(:mod:`repro.service.faults`):

* **baseline** — the supervised service with no faults injected: the
  supervision machinery on the hot path must cost ~nothing when
  nothing fails;
* **churn** — one worker per shard (``replicas=2``) SIGKILLs itself
  every few frames, in every generation, while the workload runs.
  Acceptance: *zero* unanswered admitted queries and answers
  bit-identical to the undisturbed run, with the restart/failover
  counts to prove workers actually died;
* **breaker drill** — ``replicas=1`` and a shard that stays dark
  through restarts: queries homed there must come back as
  ``method="estimate"`` degraded answers (never errors, never hangs),
  while the healthy shard keeps answering exactly.

Runnable as a script for CI::

    PYTHONPATH=src python benchmarks/bench_chaos.py --smoke

which writes ``benchmarks/_artifacts/BENCH_chaos.json`` — qps and
p50/p99 per phase plus ``unanswered_rate``, ``degraded_rate`` and the
supervisor's restart/retry/failover counters — and exits non-zero on
any correctness failure.
"""

import json
import multiprocessing
import time

import numpy as np

from repro.core.config import OracleConfig
from repro.core.oracle import VicinityOracle
from repro.datasets.social import generate
from repro.experiments.reporting import render_table
from repro.service import (
    ProcessShardedService,
    SupervisorConfig,
    in_batches,
    zipf_pairs,
)

try:
    from benchmarks.conftest import write_artifact
except ImportError:  # script mode from the benchmarks directory
    from conftest import write_artifact


def _percentiles_ms(per_batch_seconds, batch_size) -> dict:
    per_query = np.asarray(per_batch_seconds) / batch_size
    p50, p99 = np.percentile(per_query, [50, 99])
    return {"p50_ms": p50 * 1e3, "p99_ms": p99 * 1e3}


def _drive(service, batches):
    """Run every batch, tolerating per-batch errors; returns results+timing."""
    results = []
    per_batch = []
    errors = 0
    started = time.perf_counter()
    for batch in batches:
        t0 = time.perf_counter()
        try:
            results.extend(service.query_batch(batch))
        except Exception:
            errors += 1
            results.extend([None] * len(batch))
        per_batch.append(time.perf_counter() - t0)
    return results, time.perf_counter() - started, per_batch, errors


def _phase_metrics(results, seconds, per_batch, batch_size):
    queries = len(results)
    unanswered = sum(1 for r in results if r is None)
    degraded = sum(
        1 for r in results if r is not None and r.method == "estimate"
    )
    return {
        "queries": queries,
        "seconds": seconds,
        "qps": queries / seconds if seconds > 0 else float("inf"),
        "unanswered_rate": unanswered / queries if queries else 0.0,
        "degraded_rate": degraded / queries if queries else 0.0,
        **_percentiles_ms(per_batch, batch_size),
    }


def _sup_block(service) -> dict:
    snap = service.transport_stats()["supervisor"]
    return {
        key: snap[key]
        for key in (
            "restarts", "retries", "failovers", "timeouts",
            "worker_deaths", "degraded_pairs", "breaker_opens",
        )
    }


def run_chaos(
    shards: int = 2,
    queries: int = 2000,
    scale: float = 0.0008,
    batch_size: int = 128,
    kill_every: int = 3,
) -> int:
    """Drive the three phases and write ``BENCH_chaos.json``."""
    start_method = (
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else "spawn"
    )
    graph = generate("livejournal", scale=scale, seed=7)
    config = OracleConfig(alpha=4.0, seed=7, fallback="none", vicinity_floor=0.75)
    index = VicinityOracle.build(graph, config=config).index
    pairs = zipf_pairs(graph.n, queries, exponent=1.0, seed=11)
    batches = list(in_batches(pairs, batch_size))
    failures: list[str] = []
    report: dict = {
        "workload": {
            "graph": "livejournal-chung-lu",
            "nodes": graph.n,
            "queries": queries,
            "batch_size": batch_size,
            "shards": shards,
            "zipf_exponent": 1.0,
            "seed": 11,
            "start_method": start_method,
            "kill_every_frames": kill_every,
        },
    }
    common = dict(
        start_method=start_method,
        sub_batch=max(16, batch_size // (2 * shards)),
    )

    # --- phase 0: undisturbed supervised baseline ----------------------
    with ProcessShardedService(
        index, shards, replicas=2, supervise=True, **common
    ) as service:
        service.query_batch(batches[0])  # warm outside the timers
        results, seconds, per_batch, errors = _drive(service, batches)
        report["baseline"] = {
            **_phase_metrics(results, seconds, per_batch, batch_size),
            "supervisor": _sup_block(service),
        }
    expected = results
    if errors or any(r is None for r in expected):
        failures.append("baseline run lost queries — cannot judge churn")

    # --- phase 1: sustained churn, one dying worker per shard ----------
    # Replica 0 of every shard re-kills itself after ``kill_every``
    # frames in every generation; replica 1 survives.  The supervisor
    # must hide all of it.
    churn_faults = {
        shard * 2: {"kill_after_frames": kill_every, "every_generation": True}
        for shard in range(shards)
    }
    with ProcessShardedService(
        index, shards, replicas=2,
        supervise=SupervisorConfig(max_restarts=10_000, backoff_base_s=0.001),
        faults=churn_faults, **common,
    ) as service:
        service.query_batch(batches[0])
        results, seconds, per_batch, errors = _drive(service, batches)
        sup = _sup_block(service)
        report["churn"] = {
            **_phase_metrics(results, seconds, per_batch, batch_size),
            "batch_errors": errors,
            "supervisor": sup,
        }
    if errors:
        failures.append(f"churn: {errors} batches errored")
    if report["churn"]["unanswered_rate"] > 0:
        failures.append(
            f"churn: unanswered_rate {report['churn']['unanswered_rate']:.4f} > 0"
        )
    if results != expected:
        diverged = sum(1 for got, want in zip(results, expected) if got != want)
        failures.append(
            f"churn: {diverged} answers diverge from the undisturbed run"
        )
    if sup["worker_deaths"] < shards:
        failures.append(
            f"churn: only {sup['worker_deaths']} worker deaths observed — "
            "the drill did not actually bite"
        )
    if sup["restarts"] < 1:
        failures.append("churn: supervisor restarted nothing")

    # --- phase 2: breaker drill — a shard dark through restarts --------
    with ProcessShardedService(
        index, shards, replicas=1,
        supervise=SupervisorConfig(
            retries=2, max_restarts=1, breaker_failures=1
        ),
        faults={0: {"kill_after_frames": 1, "every_generation": True}},
        **common,
    ) as service:
        results, seconds, per_batch, errors = _drive(service, batches)
        snap = service.transport_stats()["supervisor"]
        report["breaker"] = {
            **_phase_metrics(results, seconds, per_batch, batch_size),
            "batch_errors": errors,
            "supervisor": _sup_block(service),
            "breaker_states": [b["state"] for b in snap["breakers"]],
        }
    if errors:
        failures.append(f"breaker drill: {errors} batches errored")
    if report["breaker"]["unanswered_rate"] > 0:
        failures.append("breaker drill: admitted queries went unanswered")
    if report["breaker"]["degraded_rate"] <= 0:
        failures.append("breaker drill: no degraded answers — breaker never bit")
    if "open" not in report["breaker"]["breaker_states"]:
        failures.append("breaker drill: no breaker opened")
    exact = [
        (got, want)
        for got, want in zip(results, expected)
        if got is not None and got.method != "estimate"
    ]
    if any(got != want for got, want in exact):
        failures.append("breaker drill: healthy-shard answers diverged")

    report["ok"] = not failures
    report["failures"] = failures
    path = write_artifact("BENCH_chaos.json", json.dumps(report, indent=2))

    rows = []
    for phase in ("baseline", "churn", "breaker"):
        block = report[phase]
        sup = block["supervisor"]
        rows.append((
            phase,
            int(block["qps"]),
            f"{block['p50_ms']:.3f}",
            f"{block['p99_ms']:.3f}",
            f"{block['unanswered_rate']:.4f}",
            f"{block['degraded_rate']:.4f}",
            f"{sup['restarts']}/{sup['failovers']}",
        ))
    print(
        render_table(
            ["phase", "queries/s", "p50 ms", "p99 ms",
             "unanswered", "degraded", "restarts/failovers"],
            rows,
            title=(
                f"chaos: {graph.n:,} nodes, {queries:,} Zipf queries, "
                f"{shards} shards, kill every {kill_every} frames"
            ),
        )
    )
    print(f"wrote {path}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        "ok: churn answers bit-identical with zero loss "
        f"({report['churn']['supervisor']['restarts']} restarts, "
        f"{report['churn']['supervisor']['failovers']} failovers); "
        "dark shard degraded to estimates "
        f"({report['breaker']['degraded_rate']:.1%} of queries)"
    )
    return 0


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the small CI drill (same phases, tiny workload)",
    )
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--batch-size", type=int, default=128)
    parser.add_argument("--kill-every", type=int, default=3)
    args = parser.parse_args(argv)
    queries = args.queries or (2000 if args.smoke else 8000)
    scale = args.scale or (0.0008 if args.smoke else 0.002)
    return run_chaos(
        shards=args.shards,
        queries=queries,
        scale=scale,
        batch_size=args.batch_size,
        kill_every=args.kill_every,
    )


if __name__ == "__main__":
    import sys

    sys.exit(main())
