"""Offline-phase cost: calibration, vicinity construction, tables, dynamics.

Not a paper table, but the deployment-relevant flip side of Table 3's
online numbers: what one query-latency profile costs to precompute, and
what an edge insertion costs to absorb incrementally versus rebuilding.
"""

import numpy as np
import pytest

from repro.core.config import OracleConfig
from repro.core.dynamic import DynamicVicinityOracle
from repro.core.index import VicinityIndex
from repro.core.landmarks import calibrate_scale, sample_landmarks
from repro.graph.traversal.bounded import truncated_bfs_ball
from repro.graph.traversal.vectorized import bfs_tree_vectorized


def test_calibration_cost(benchmark, graphs):
    """Sampling-scale calibration on the livejournal stand-in."""
    graph = graphs["livejournal"]
    scale = benchmark(lambda: calibrate_scale(graph, 4.0, rng=7))
    assert scale > 0
    benchmark.extra_info["scale"] = round(scale, 4)


def test_single_vicinity_construction(benchmark, graphs):
    """One truncated-BFS ball (the per-node unit of offline work)."""
    graph = graphs["livejournal"]
    landmarks = sample_landmarks(
        graph, 4.0, rng=7, scale=calibrate_scale(graph, 4.0, rng=7)
    )
    flags = landmarks.is_landmark
    sources = [u for u in range(graph.n) if not flags[u]][:64]
    state = {"i": 0}

    def one_ball():
        u = sources[state["i"] % len(sources)]
        state["i"] += 1
        return truncated_bfs_ball(graph, u, flags)

    result = benchmark(one_ball)
    assert result.gamma


def test_landmark_table_construction(benchmark, graphs):
    """One vectorised full BFS (the per-landmark unit of offline work)."""
    graph = graphs["livejournal"]
    hub = int(np.argmax(graph.degrees()))
    dist, parent = benchmark(lambda: bfs_tree_vectorized(graph, hub))
    assert (dist >= 0).sum() > graph.n // 2


def test_full_build(benchmark, graphs):
    """The complete offline phase on the smallest dataset."""
    graph = graphs["dblp"]
    config = OracleConfig(alpha=4.0, seed=7, fallback="none")
    index = benchmark.pedantic(
        lambda: VicinityIndex.build(graph, config), rounds=1, iterations=1
    )
    benchmark.extra_info["landmarks"] = index.landmarks.size
    benchmark.extra_info["n"] = graph.n


def test_dynamic_insertion(benchmark, graphs):
    """Incremental edge absorption on a built dynamic oracle."""
    graph = graphs["dblp"]
    dynamic = DynamicVicinityOracle.build(graph, alpha=4.0, seed=7)
    rng = np.random.default_rng(37)
    fresh = []
    while len(fresh) < 64:
        u, v = (int(x) for x in rng.integers(0, graph.n, 2))
        if u != v and not graph.has_edge(u, v) and (u, v) not in fresh:
            fresh.append((u, v))
    state = {"i": 0}

    def insert_one():
        u, v = fresh[state["i"] % len(fresh)]
        state["i"] += 1
        dynamic.add_edge(u, v)

    benchmark.pedantic(insert_one, rounds=10, iterations=1)
    benchmark.extra_info["edges_added"] = dynamic.edges_added
