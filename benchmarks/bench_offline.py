"""Offline-phase cost: calibration, vicinity construction, tables, dynamics.

Not a paper table, but the deployment-relevant flip side of Table 3's
online numbers: what one query-latency profile costs to precompute, and
what an edge insertion costs to absorb incrementally versus rebuilding.

Since PR 4 the headline claim lives here too: the flat-native build
pipeline (batched truncated BFS + vectorised boundary extraction +
direct packing, :func:`repro.core.parallel.build_flat_store`) must
produce a byte-identical index at >= 3x the throughput of the dict
builder (records + flatten), single-process.

Also runnable as a script for CI::

    PYTHONPATH=src python benchmarks/bench_offline.py --smoke

which races the dict and flat-native builders on one frozen landmark
set, verifies field-identical arrays (including a multi-worker build),
races the calibrated ``join_max_scan`` crossover against the retired
PR 3 constant on a Zipf query workload, and writes the machine-readable
``benchmarks/_artifacts/BENCH_offline.json`` (build throughput,
per-stage timings, worker scaling) that CI uploads alongside
``BENCH_service.json``.
"""

import json
import os
import time

import numpy as np

from repro.core.config import OracleConfig
from repro.core.dynamic import DynamicVicinityOracle
from repro.core.flat import JOIN_MAX_SCAN, FlatIndex, flatten_index
from repro.core.index import VicinityIndex
from repro.core.landmarks import calibrate_scale, sample_landmarks
from repro.core.parallel import build_flat_store
from repro.graph.traversal.bounded import truncated_bfs_ball
from repro.graph.traversal.vectorized import bfs_tree_vectorized
from repro.io.oracle_store import FLAT_STORE_ARRAYS
from repro.utils.rng import ensure_rng

try:
    from benchmarks.conftest import write_artifact
except ImportError:  # run as a script: benchmarks/ itself is sys.path[0]
    from conftest import write_artifact

#: Worker count exercised by the smoke's scaling measurement.
SMOKE_WORKERS = 4


def _frozen_landmarks(graph, config):
    """One calibrated landmark set shared by every builder under test."""
    rng = ensure_rng(config.seed)
    scale = config.probability_scale
    if scale == "auto":
        scale = calibrate_scale(graph, config.alpha, rng=rng)
    return sample_landmarks(
        graph,
        config.alpha,
        rng=rng,
        scale=float(scale),
        per_component=config.landmark_per_component,
        max_landmarks=config.max_landmarks,
    )


def test_calibration_cost(benchmark, graphs):
    """Sampling-scale calibration on the livejournal stand-in."""
    graph = graphs["livejournal"]
    scale = benchmark(lambda: calibrate_scale(graph, 4.0, rng=7))
    assert scale > 0
    benchmark.extra_info["scale"] = round(scale, 4)


def test_single_vicinity_construction(benchmark, graphs):
    """One truncated-BFS ball (the per-node unit of dict offline work)."""
    graph = graphs["livejournal"]
    landmarks = sample_landmarks(
        graph, 4.0, rng=7, scale=calibrate_scale(graph, 4.0, rng=7)
    )
    flags = landmarks.is_landmark
    sources = [u for u in range(graph.n) if not flags[u]][:64]
    state = {"i": 0}

    def one_ball():
        u = sources[state["i"] % len(sources)]
        state["i"] += 1
        return truncated_bfs_ball(graph, u, flags)

    result = benchmark(one_ball)
    assert result.gamma


def test_landmark_table_construction(benchmark, graphs):
    """One vectorised full BFS (the per-landmark unit of offline work)."""
    graph = graphs["livejournal"]
    hub = int(np.argmax(graph.degrees()))
    dist, parent = benchmark(lambda: bfs_tree_vectorized(graph, hub))
    assert (dist >= 0).sum() > graph.n // 2


def test_full_build(benchmark, graphs):
    """The complete dict offline phase on the smallest dataset."""
    graph = graphs["dblp"]
    config = OracleConfig(alpha=4.0, seed=7, fallback="none")
    index = benchmark.pedantic(
        lambda: VicinityIndex.build(graph, config), rounds=1, iterations=1
    )
    benchmark.extra_info["landmarks"] = index.landmarks.size
    benchmark.extra_info["n"] = graph.n


def test_flat_native_build_speedup(benchmark, graphs):
    """The flat-native pipeline: >= 3x the dict path, identical arrays."""
    graph = graphs["livejournal"]
    config = OracleConfig(alpha=4.0, seed=7, fallback="none")
    landmarks = _frozen_landmarks(graph, config)

    started = time.perf_counter()
    want = flatten_index(VicinityIndex.from_landmarks(graph, config, landmarks))
    dict_s = time.perf_counter() - started

    def flat_build():
        return build_flat_store(graph, config, landmarks)

    got = benchmark.pedantic(flat_build, rounds=1, iterations=1)
    flat_s = benchmark.stats["mean"]
    for name in FLAT_STORE_ARRAYS:
        assert np.array_equal(want[name], got[name], equal_nan=True), name
    speedup = dict_s / flat_s
    benchmark.extra_info.update(
        {
            "dict_seconds": round(dict_s, 3),
            "flat_seconds": round(flat_s, 3),
            "speedup": round(speedup, 2),
            "nodes_per_second": int(graph.n / flat_s),
        }
    )
    assert speedup >= 3.0, f"flat-native build speedup {speedup:.2f}x < 3x"


def test_dynamic_insertion(benchmark, graphs):
    """Incremental edge absorption on a built dynamic oracle."""
    graph = graphs["dblp"]
    dynamic = DynamicVicinityOracle.build(graph, alpha=4.0, seed=7)
    rng = np.random.default_rng(37)
    fresh = []
    while len(fresh) < 64:
        u, v = (int(x) for x in rng.integers(0, graph.n, 2))
        if u != v and not graph.has_edge(u, v) and (u, v) not in fresh:
            fresh.append((u, v))
    state = {"i": 0}

    def insert_one():
        u, v = fresh[state["i"] % len(fresh)]
        state["i"] += 1
        dynamic.add_edge(u, v)

    benchmark.pedantic(insert_one, rounds=10, iterations=1)
    benchmark.extra_info["edges_added"] = dynamic.edges_added


# ----------------------------------------------------------------------
# script mode: the CI smoke run
# ----------------------------------------------------------------------
def _time_join_crossover(store, meta, pairs, batch_size) -> dict:
    """Race the calibrated join/slice-local crossover vs the constant.

    Same index, same Zipf batches; only ``join_max_scan`` differs.
    Best of two passes per setting, like the service smoke.
    """
    from repro.core.engine import FlatQueryEngine
    from repro.service import in_batches

    flat = FlatIndex.from_store_arrays(
        store, n=meta["n"], weighted=False, store_paths=True
    )
    engine = FlatQueryEngine(flat, kernel="boundary-smaller")
    batches = list(in_batches(pairs, batch_size))
    calibrated = flat.join_max_scan
    if abs(calibrated - JOIN_MAX_SCAN) * 4 <= JOIN_MAX_SCAN:
        # Within 25% of the constant the two settings route every lane
        # identically on this workload (lane mean scan sizes almost
        # never fall between the thresholds) — timing "both" would
        # measure the same code twice and flake on jitter.  This is
        # also the expected outcome: the calibration model is anchored
        # at the constant, so smoke-scale geometries reproduce it; the
        # race has teeth only if a future formula change pushes the
        # threshold far from the anchor.
        return {
            "calibrated": int(calibrated),
            "constant": int(JOIN_MAX_SCAN),
            "ratio": 1.0,
            "raced": False,
            "reason": "calibrated within 25% of the constant: identical lane routing",
        }

    def drive() -> float:
        best = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            for batch in batches:
                engine.query_batch(batch)
            best = min(best, time.perf_counter() - started)
        return best

    engine.query_batch(pairs[:64])  # warm outside the timers
    calibrated_s = drive()
    flat.join_max_scan = JOIN_MAX_SCAN
    constant_s = drive()
    flat.join_max_scan = calibrated
    return {
        "calibrated": int(calibrated),
        "constant": int(JOIN_MAX_SCAN),
        "calibrated_seconds": calibrated_s,
        "constant_seconds": constant_s,
        "ratio": calibrated_s / constant_s if constant_s > 0 else 1.0,
        "raced": True,
    }


def run_smoke(
    scale: float = 0.002,
    workers: int = SMOKE_WORKERS,
    queries: int = 4000,
    batch_size: int = 256,
) -> int:
    """Race the offline builders on a tiny graph; exercised by CI.

    * dict builder (records + flatten) vs flat-native single-process —
      field-identical arrays and a >= 3x throughput bar (the PR 4
      acceptance criterion);
    * flat-native at ``workers`` workers — identical arrays (spawned
      pipeline determinism) and the scaling ratio recorded (spawn
      overhead dominates at smoke scale, so the ratio is informational
      on small boxes; parity is the hard check);
    * calibrated ``join_max_scan`` vs the retired constant on a Zipf
      query workload — the calibrated crossover must never be slower.

    Writes ``benchmarks/_artifacts/BENCH_offline.json`` and returns a
    process exit code.
    """
    from repro.datasets.social import generate
    from repro.experiments.reporting import render_table

    graph = generate("livejournal", scale=scale, seed=7)
    config = OracleConfig(alpha=4.0, seed=7, fallback="none")
    landmarks = _frozen_landmarks(graph, config)
    failures: list[str] = []
    report: dict = {
        "workload": {
            "graph": "livejournal-chung-lu",
            "nodes": graph.n,
            "edges": graph.num_edges,
            "landmarks": landmarks.size,
            "alpha": config.alpha,
            "seed": config.seed,
            "workers": workers,
            "cores": os.cpu_count() or 1,
        },
        "stages": {},
    }

    def write_report():
        report["ok"] = not failures
        report["failures"] = failures
        return write_artifact("BENCH_offline.json", json.dumps(report, indent=2))

    try:
        _smoke_phases(
            graph, config, landmarks, workers, queries, batch_size,
            report, failures,
        )
    except Exception as exc:
        failures.append(f"smoke crashed: {type(exc).__name__}: {exc}")
        write_report()
        raise

    path = write_report()
    stages = report["stages"]
    rows = [
        (
            name,
            f"{entry['seconds']:.2f}",
            int(entry["nodes_per_second"]),
            entry.get("detail", ""),
        )
        for name, entry in stages.items()
    ]
    print(
        render_table(
            ["builder", "seconds", "nodes/s", "stage detail"],
            rows,
            title=(
                f"offline smoke: {graph.n:,} nodes, {landmarks.size} landmarks, "
                f"flat-vs-dict speedup {report['speedup_flat_vs_dict']:.2f}x, "
                f"{workers}-worker scaling {report['worker_scaling']:.2f}x"
            ),
        )
    )
    print(f"wrote {path}")
    pool_stats = report.get("pool_reuse")
    if pool_stats:
        print(
            f"pool reuse: first build {pool_stats['first_seconds']:.2f}s vs "
            f"reused {pool_stats['reused_seconds']:.2f}s "
            f"({pool_stats['reuse_speedup']:.2f}x; fresh spawn pool "
            f"{pool_stats['fresh_pool_seconds']:.2f}s for context)"
        )
    sizes = report.get("store_bytes")
    if sizes:
        print(
            f"store output: compact {sizes['compact'] / 1e6:.1f} MB vs "
            f"int64 {sizes['int64'] / 1e6:.1f} MB ({sizes['ratio']:.2f}x smaller)"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        "ok: field-identical arrays across builders, worker counts and pools, "
        f"flat-native build {report['speedup_flat_vs_dict']:.2f}x over the dict path, "
        f"calibrated join crossover {report['join_max_scan']['ratio']:.2f}x "
        "of the constant's time"
    )
    return 0


def _smoke_phases(
    graph, config, landmarks, workers, queries, batch_size, report, failures
) -> None:
    from repro.service import zipf_pairs

    stages = report["stages"]

    # --- dict builder (records + flatten) -----------------------------
    started = time.perf_counter()
    dict_index = VicinityIndex.from_landmarks(graph, config, landmarks)
    build_s = time.perf_counter() - started
    started = time.perf_counter()
    want = flatten_index(dict_index)
    flatten_s = time.perf_counter() - started
    dict_s = build_s + flatten_s
    stages["dict"] = {
        "seconds": dict_s,
        "nodes_per_second": graph.n / dict_s,
        "detail": f"records {build_s:.2f}s + flatten {flatten_s:.2f}s",
    }

    # --- flat-native, single process ----------------------------------
    def flat_once():
        timings: dict = {}
        started = time.perf_counter()
        store = build_flat_store(graph, config, landmarks, timings=timings)
        return store, time.perf_counter() - started, timings

    got, flat_s, timings = flat_once()
    speedup = dict_s / flat_s
    if speedup < 3.0:
        # The flat build is cheap; absorb one noisy-neighbour outlier
        # before declaring a regression.
        got, retry_s, timings = flat_once()
        flat_s = min(flat_s, retry_s)
        speedup = dict_s / flat_s
    stages["flat"] = {
        "seconds": flat_s,
        "nodes_per_second": graph.n / flat_s,
        "detail": ", ".join(f"{k} {v:.2f}s" for k, v in timings.items()),
    }
    report["speedup_flat_vs_dict"] = speedup
    mismatched = [
        name
        for name in FLAT_STORE_ARRAYS
        if not np.array_equal(want[name], got[name], equal_nan=True)
    ]
    if mismatched:
        failures.append(f"flat-native arrays differ from dict: {mismatched}")
    if speedup < 3.0:
        failures.append(f"flat-native build speedup {speedup:.2f}x < 3x")

    # --- flat-native, multi-process -----------------------------------
    started = time.perf_counter()
    multi = build_flat_store(graph, config, landmarks, workers=workers)
    multi_s = time.perf_counter() - started
    stages[f"flat-{workers}w"] = {
        "seconds": multi_s,
        "nodes_per_second": graph.n / multi_s,
        "detail": "spawn pool + shared-memory CSR",
    }
    report["worker_scaling"] = flat_s / multi_s
    mismatched = [
        name
        for name in FLAT_STORE_ARRAYS
        if not np.array_equal(got[name], multi[name], equal_nan=True)
    ]
    if mismatched:
        failures.append(f"{workers}-worker arrays differ: {mismatched}")

    # --- persistent build pool: rebuilds skip spawn cost --------------
    from repro.core.parallel import create_build_pool

    pool = create_build_pool(workers)
    try:
        started = time.perf_counter()
        pooled = build_flat_store(graph, config, landmarks, pool=pool)
        pool_first_s = time.perf_counter() - started
        started = time.perf_counter()
        reused = build_flat_store(graph, config, landmarks, pool=pool)
        pool_reuse_s = time.perf_counter() - started
    finally:
        pool.shutdown()
    stages[f"flat-pool-{workers}w"] = {
        "seconds": pool_reuse_s,
        "nodes_per_second": graph.n / pool_reuse_s,
        "detail": f"reused pool (first build {pool_first_s:.2f}s)",
    }
    report["pool_reuse"] = {
        "workers": workers,
        # Context only: the fresh pool uses spawn while create_build_pool
        # prefers fork, so a cross-pool ratio would conflate start-method
        # gains with reuse.  The tracked figure compares the same pool's
        # first build (pays worker startup + attach) against its second.
        "fresh_pool_seconds": multi_s,
        "first_seconds": pool_first_s,
        "reused_seconds": pool_reuse_s,
        "reuse_speedup": pool_first_s / pool_reuse_s if pool_reuse_s else 0.0,
    }
    for build_name, build_store in (("pooled", pooled), ("pool-reused", reused)):
        mismatched = [
            name
            for name in FLAT_STORE_ARRAYS
            if not np.array_equal(got[name], build_store[name], equal_nan=True)
        ]
        if mismatched:
            failures.append(f"{build_name} arrays differ: {mismatched}")

    # --- compact vs int64 output sizes --------------------------------
    from repro.core.flat import store_nbytes, widen_store

    compact_bytes = store_nbytes(got)
    int64_bytes = store_nbytes(widen_store(got))
    report["store_bytes"] = {
        "compact": compact_bytes,
        "int64": int64_bytes,
        "ratio": int64_bytes / compact_bytes if compact_bytes else 0.0,
    }

    # --- calibrated join crossover vs the PR 3 constant ---------------
    pairs = zipf_pairs(graph.n, queries, exponent=1.0, seed=11)
    meta = {"n": graph.n}
    join = _time_join_crossover(got, meta, pairs, batch_size)
    report["join_max_scan"] = join
    # "Never slower" modulo timer noise: the raced settings differ by a
    # few percent of runtime at most, and identical settings have
    # measured up to ~1.1x apart on busy CI boxes.
    if join["ratio"] > 1.20:
        failures.append(
            "calibrated join_max_scan "
            f"{join['ratio']:.2f}x slower than the constant "
            f"({join['calibrated']} vs {join['constant']})"
        )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the builder race + parity check and exit",
    )
    parser.add_argument("--scale", type=float, default=0.002)
    parser.add_argument("--workers", type=int, default=SMOKE_WORKERS)
    parser.add_argument("--queries", type=int, default=4000)
    parser.add_argument("--batch-size", type=int, default=256)
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("this script only supports --smoke; run benchmarks via pytest")
    return run_smoke(
        scale=args.scale,
        workers=args.workers,
        queries=args.queries,
        batch_size=args.batch_size,
    )


if __name__ == "__main__":
    import sys

    sys.exit(main())
