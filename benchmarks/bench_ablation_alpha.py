"""Ablations A3 + A4: the latency/memory/accuracy trade-off.

* A3 — sweep alpha at Definition-1 settings: accuracy and memory climb
  together, latency climbs with vicinity size;
* A4 — the ``vicinity_floor`` extension at alpha = 4: answered fraction
  approaches 1 at a measured memory premium.
"""

import pytest

from repro.experiments.tradeoff import render_tradeoff, run_tradeoff

from benchmarks.conftest import write_artifact


def test_alpha_sweep(benchmark, graphs):
    """A3: alpha in {1/4, 1, 4, 16} on the livejournal stand-in."""
    graph = graphs["livejournal"]
    rows = benchmark.pedantic(
        lambda: run_tradeoff(
            graph, alphas=(0.25, 1.0, 4.0, 16.0), floors=(0.0,), seed=7,
            sample_nodes=24,
        ),
        rounds=1,
        iterations=1,
    )
    by_alpha = {r.alpha: r for r in rows}
    benchmark.extra_info.update(
        {f"answered_a{a:g}": round(r.answered_fraction, 3) for a, r in by_alpha.items()}
    )
    # Accuracy and memory both rise with alpha.
    assert by_alpha[16.0].answered_fraction >= by_alpha[0.25].answered_fraction
    assert by_alpha[16.0].entries_per_node > by_alpha[0.25].entries_per_node
    write_artifact("ablation_alpha.txt", render_tradeoff(rows, dataset="livejournal"))


def test_floor_sweep(benchmark, graphs):
    """A4: vicinity_floor in {0, 0.5, 1.0} at alpha = 4."""
    graph = graphs["flickr"]
    rows = benchmark.pedantic(
        lambda: run_tradeoff(
            graph, alphas=(4.0,), floors=(0.0, 0.5, 1.0), seed=7, sample_nodes=24
        ),
        rounds=1,
        iterations=1,
    )
    by_floor = {r.vicinity_floor: r for r in rows}
    benchmark.extra_info.update(
        {f"answered_f{f:g}": round(r.answered_fraction, 3) for f, r in by_floor.items()}
    )
    benchmark.extra_info.update(
        {f"entries_f{f:g}": round(r.entries_per_node, 1) for f, r in by_floor.items()}
    )
    # The floor buys accuracy with memory.
    assert by_floor[1.0].answered_fraction >= by_floor[0.0].answered_fraction
    assert by_floor[1.0].entries_per_node >= by_floor[0.0].entries_per_node
    assert by_floor[1.0].answered_fraction > 0.9
    write_artifact("ablation_floor.txt", render_tradeoff(rows, dataset="flickr"))
