"""Diff fresh ``BENCH_*.json`` artifacts against committed baselines.

The smoke runs write machine-readable perf reports
(``benchmarks/_artifacts/BENCH_service.json``,
``BENCH_offline.json``); this script compares them against the
baselines committed under ``benchmarks/baselines/`` and warns on any
throughput/latency metric that regressed by more than the threshold
(default 20%) — the first piece of the ROADMAP regression dashboard.

CI boxes are noisy and heterogeneous, so regressions **warn** by
default (exit 0); pass ``--strict`` to turn warnings into a non-zero
exit for environments stable enough to gate on.  Improvements and
in-band metrics are summarised, never fatal.

``--trend`` walks the *git history* of the committed baselines instead:
every commit that touched ``benchmarks/baselines/BENCH_*.json`` becomes
a row, so a metric sliding 10% per PR — invisible to the
baseline-vs-fresh diff — shows up as a column drifting across the
table.  Needs history (a shallow ``fetch-depth: 1`` clone degrades to
the single current row).

Usage::

    python benchmarks/compare_bench.py            # default dirs
    python benchmarks/compare_bench.py --strict --threshold 0.3
    python benchmarks/compare_bench.py --trend    # history table
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

#: Metric leaf names worth tracking, with their good direction.
#: Anything not listed is context (workload shape, byte counts, flags).
HIGHER_IS_BETTER = {
    "qps",
    "goodput_qps",
    "nodes_per_second",
    "speedup",
    "speedup_flat_vs_dict",
    "speedup_flat_vs_dict_batch",
    "reuse_speedup",
    "hit_rate",
    "size_ratio",
}
LOWER_IS_BETTER = {
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "exact_p50_ms",
    "exact_p99_ms",
    "unanswered_rate",
}


def collect_metrics(node, prefix: str = "") -> dict[str, float]:
    """Flatten a report to ``dotted.path -> value`` for tracked leaves."""
    metrics: dict[str, float] = {}
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, (dict, list)):
                metrics.update(collect_metrics(value, path))
            elif (
                isinstance(value, (int, float))
                and not isinstance(value, bool)
                and key in (HIGHER_IS_BETTER | LOWER_IS_BETTER)
            ):
                metrics[path] = float(value)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            metrics.update(collect_metrics(value, f"{prefix}[{i}]"))
    return metrics


def compare_report(baseline: dict, fresh: dict, threshold: float):
    """Returns ``(regressions, improvements, stable_count)`` line lists."""
    base_metrics = collect_metrics(baseline)
    fresh_metrics = collect_metrics(fresh)
    regressions: list[str] = []
    improvements: list[str] = []
    stable = 0
    for path, base in sorted(base_metrics.items()):
        got = fresh_metrics.get(path)
        if got is None or base == 0:
            continue
        leaf = path.rsplit(".", 1)[-1]
        change = got / base - 1.0
        worse = -change if leaf in HIGHER_IS_BETTER else change
        line = f"{path}: {base:.4g} -> {got:.4g} ({change:+.1%})"
        if worse > threshold:
            regressions.append(line)
        elif worse < -threshold:
            improvements.append(line)
        else:
            stable += 1
    return regressions, improvements, stable


def _git(args: list[str], cwd: Path):
    """Run one git command; ``None`` on any failure (no git, no repo)."""
    try:
        proc = subprocess.run(
            ["git", *args], cwd=cwd, capture_output=True, text=True, timeout=30
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return proc.stdout if proc.returncode == 0 else None


def baseline_history(baseline: Path) -> list[tuple[str, str, dict]]:
    """Every committed version of one baseline, oldest first.

    Returns ``(short_sha, date, report)`` tuples.  Degrades gracefully
    to an empty list when git or the history is unavailable (shallow
    CI clones) — the caller then falls back to the worktree copy.
    """
    top = _git(["rev-parse", "--show-toplevel"], baseline.resolve().parent)
    if top is None:
        return []
    root = Path(top.strip())
    rel = baseline.resolve().relative_to(root).as_posix()
    log = _git(["log", "--format=%h %ad", "--date=short", "--", rel], root) or ""
    history = []
    for line in reversed(log.strip().splitlines()):
        sha, _, date = line.partition(" ")
        blob = _git(["show", f"{sha}:{rel}"], root)
        if blob is None:
            continue
        try:
            report = json.loads(blob)
        except json.JSONDecodeError:
            continue
        history.append((sha, date, report))
    return history


def _short(path: str) -> str:
    # Three trailing components keep sibling metrics distinguishable
    # (capacities.16.2q.hit_rate vs capacities.64.2q.hit_rate).
    parts = path.split(".")
    return ".".join(parts[-3:]) if len(parts) > 1 else path


def render_trend(
    name: str,
    history: list[tuple[str, str, dict]],
    *,
    select: str = "",
    max_cols: int = 6,
) -> str:
    """One table: baseline commits as rows, tracked metrics as columns."""
    lines = [f"{name}: {len(history)} committed snapshot(s)"]
    rows = [(sha, date, collect_metrics(report)) for sha, date, report in history]
    latest = rows[-1][2]
    paths = [p for p in sorted(latest) if select in p][:max_cols]
    if not paths:
        lines.append("  no tracked metrics match the selection")
        return "\n".join(lines)
    headers = ["commit", "date"] + [_short(p) for p in paths]
    table = [
        [sha, date] + [f"{m[p]:.4g}" if p in m else "-" for p in paths]
        for sha, date, m in rows
    ]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in table))
        for i in range(len(headers))
    ]
    lines.append(
        "  " + "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    )
    for row in table:
        lines.append(
            "  "
            + "  ".join(
                cell.ljust(widths[i]) if i < 2 else cell.rjust(widths[i])
                for i, cell in enumerate(row)
            )
        )
    return "\n".join(lines)


def run_trend(baselines_dir: Path, *, select: str = "", max_cols: int = 6) -> int:
    """Print trend tables over every committed ``BENCH_*.json`` baseline."""
    baselines = sorted(baselines_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"no baselines under {baselines_dir}; nothing to trend")
        return 0
    for path in baselines:
        history = baseline_history(path)
        if not history:
            # Shallow clone / no git: show at least the current snapshot.
            history = [("worktree", "-", json.loads(path.read_text()))]
        print(render_trend(path.name, history, select=select, max_cols=max_cols))
        print()
    return 0


def main(argv=None) -> int:
    here = Path(__file__).parent
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--artifacts", type=Path, default=here / "_artifacts",
        help="directory holding fresh BENCH_*.json reports",
    )
    parser.add_argument(
        "--baselines", type=Path, default=here / "baselines",
        help="directory holding committed baseline reports",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.20,
        help="relative change treated as a regression (default 0.20)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero when any metric regressed past the threshold",
    )
    parser.add_argument(
        "--trend", action="store_true",
        help="print each baseline's metric history across the commits "
        "that touched it, instead of diffing fresh artifacts",
    )
    parser.add_argument(
        "--select", default="",
        help="trend mode: only metric paths containing this substring",
    )
    parser.add_argument(
        "--max-cols", type=int, default=6,
        help="trend mode: max metric columns per table (default 6)",
    )
    args = parser.parse_args(argv)

    if args.trend:
        return run_trend(args.baselines, select=args.select, max_cols=args.max_cols)

    baselines = sorted(args.baselines.glob("BENCH_*.json"))
    if not baselines:
        print(f"no baselines under {args.baselines}; nothing to compare")
        return 0
    total_regressions = 0
    for base_path in baselines:
        fresh_path = args.artifacts / base_path.name
        if not fresh_path.exists():
            print(f"{base_path.name}: no fresh artifact at {fresh_path}, skipped")
            continue
        baseline = json.loads(base_path.read_text())
        fresh = json.loads(fresh_path.read_text())
        regressions, improvements, stable = compare_report(
            baseline, fresh, args.threshold
        )
        total_regressions += len(regressions)
        print(
            f"{base_path.name}: {stable} stable, "
            f"{len(improvements)} improved, {len(regressions)} regressed "
            f"(threshold {args.threshold:.0%})"
        )
        for line in improvements:
            print(f"  better: {line}")
        for line in regressions:
            print(f"  WARNING regressed: {line}")
    if total_regressions and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
