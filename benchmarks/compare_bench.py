"""Diff fresh ``BENCH_*.json`` artifacts against committed baselines.

The smoke runs write machine-readable perf reports
(``benchmarks/_artifacts/BENCH_service.json``,
``BENCH_offline.json``); this script compares them against the
baselines committed under ``benchmarks/baselines/`` and warns on any
throughput/latency metric that regressed by more than the threshold
(default 20%) — the first piece of the ROADMAP regression dashboard.

CI boxes are noisy and heterogeneous, so regressions **warn** by
default (exit 0); pass ``--strict`` to turn warnings into a non-zero
exit for environments stable enough to gate on.  Improvements and
in-band metrics are summarised, never fatal.

Usage::

    python benchmarks/compare_bench.py            # default dirs
    python benchmarks/compare_bench.py --strict --threshold 0.3
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Metric leaf names worth tracking, with their good direction.
#: Anything not listed is context (workload shape, byte counts, flags).
HIGHER_IS_BETTER = {
    "qps",
    "nodes_per_second",
    "speedup",
    "speedup_flat_vs_dict",
    "speedup_flat_vs_dict_batch",
    "reuse_speedup",
    "hit_rate",
    "size_ratio",
}
LOWER_IS_BETTER = {"p50_ms", "p95_ms", "p99_ms"}


def collect_metrics(node, prefix: str = "") -> dict[str, float]:
    """Flatten a report to ``dotted.path -> value`` for tracked leaves."""
    metrics: dict[str, float] = {}
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, (dict, list)):
                metrics.update(collect_metrics(value, path))
            elif (
                isinstance(value, (int, float))
                and not isinstance(value, bool)
                and key in (HIGHER_IS_BETTER | LOWER_IS_BETTER)
            ):
                metrics[path] = float(value)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            metrics.update(collect_metrics(value, f"{prefix}[{i}]"))
    return metrics


def compare_report(baseline: dict, fresh: dict, threshold: float):
    """Returns ``(regressions, improvements, stable_count)`` line lists."""
    base_metrics = collect_metrics(baseline)
    fresh_metrics = collect_metrics(fresh)
    regressions: list[str] = []
    improvements: list[str] = []
    stable = 0
    for path, base in sorted(base_metrics.items()):
        got = fresh_metrics.get(path)
        if got is None or base == 0:
            continue
        leaf = path.rsplit(".", 1)[-1]
        change = got / base - 1.0
        worse = -change if leaf in HIGHER_IS_BETTER else change
        line = f"{path}: {base:.4g} -> {got:.4g} ({change:+.1%})"
        if worse > threshold:
            regressions.append(line)
        elif worse < -threshold:
            improvements.append(line)
        else:
            stable += 1
    return regressions, improvements, stable


def main(argv=None) -> int:
    here = Path(__file__).parent
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--artifacts", type=Path, default=here / "_artifacts",
        help="directory holding fresh BENCH_*.json reports",
    )
    parser.add_argument(
        "--baselines", type=Path, default=here / "baselines",
        help="directory holding committed baseline reports",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.20,
        help="relative change treated as a regression (default 0.20)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero when any metric regressed past the threshold",
    )
    args = parser.parse_args(argv)

    baselines = sorted(args.baselines.glob("BENCH_*.json"))
    if not baselines:
        print(f"no baselines under {args.baselines}; nothing to compare")
        return 0
    total_regressions = 0
    for base_path in baselines:
        fresh_path = args.artifacts / base_path.name
        if not fresh_path.exists():
            print(f"{base_path.name}: no fresh artifact at {fresh_path}, skipped")
            continue
        baseline = json.loads(base_path.read_text())
        fresh = json.loads(fresh_path.read_text())
        regressions, improvements, stable = compare_report(
            baseline, fresh, args.threshold
        )
        total_regressions += len(regressions)
        print(
            f"{base_path.name}: {stable} stable, "
            f"{len(improvements)} improved, {len(regressions)} regressed "
            f"(threshold {args.threshold:.0%})"
        )
        for line in improvements:
            print(f"  better: {line}")
        for line in regressions:
            print(f"  WARNING regressed: {line}")
    if total_regressions and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
