"""Compiled kernel tier: native C vs numpy, per kernel and per query.

PR 8 moved the FlatIndex hot paths behind a kernel-dispatch layer with
a hand-written C tier (``repro.core._native``).  This benchmark races
the two tiers head to head on the CI smoke graph:

* each batch kernel lane (``member_probe_many``, ``table_lookup_many``,
  ``intersect_many``) and the per-pair ``intersect_payload`` scan — the
  native tier must never be slower than numpy;
* the fused scalar ``query()`` loop — one C call per pair instead of
  seven numpy step dispatches — which must answer a warm single query
  in single-digit microseconds (p50 <= 10 us) at >= 5x over the numpy
  scalar resolver.

Outputs are cross-checked between tiers on every lane before anything
is timed, so a fast-but-wrong kernel cannot post a number.

Runnable as a script for CI::

    PYTHONPATH=src python benchmarks/bench_kernels_native.py --smoke

which writes ``benchmarks/_artifacts/BENCH_kernels.json`` (per-call
p50/p95 in ms per kernel x tier, plus the native-over-numpy speedups)
for ``compare_bench.py`` to diff against the committed baseline.  On a
box without the compiled extension the race degrades to a numpy-only
report and exits 0 — the perf bars only gate where the C tier exists.
"""

import json
import time

import numpy as np

from repro.core import _native
from repro.core.engine import FlatQueryEngine
from repro.core.flat import FlatIndex
from repro.core.oracle import VicinityOracle
from repro.experiments.reporting import render_table
from repro.service import zipf_pairs

try:
    from benchmarks.conftest import write_artifact
except ImportError:  # run as a script: benchmarks/ itself is sys.path[0]
    from conftest import write_artifact

#: Elements per batch-kernel lane (one fused call answers all of them).
LANE = 20000
#: Pairs for the per-call races (scalar query, intersect_payload).
PAIRS = 2500
#: Timed passes per lane; the recorded figure is the best pass (shared
#: CI boxes see scheduler noise — the best pass is the steady state).
REPS = 5

TIERS = ("numpy", "native")


def _per_call_stats(samples_ns) -> dict:
    """p50/p95 per call in ms from a list of per-call nanosecond times."""
    p50, p95 = np.percentile(np.asarray(samples_ns, dtype=np.float64), [50, 95])
    return {"p50_ms": p50 / 1e6, "p95_ms": p95 / 1e6}


def _race_lane(run, calls: int) -> dict:
    """Time a whole-lane callable; per-call share, best of ``REPS``.

    Batch kernels answer the entire lane in one fused call, so the
    honest per-call figure is the amortised share of the lane; the
    distribution across passes gives the percentile spread.
    """
    run()  # warm: settle lazy structures outside the timers
    shares_ns = []
    for _ in range(REPS):
        started = time.perf_counter_ns()
        run()
        shares_ns.append((time.perf_counter_ns() - started) / calls)
    return _per_call_stats(shares_ns)


def _race_per_call(calls) -> dict:
    """Time each call individually; keep the pass with the best p50."""
    for call in calls:
        call()  # warm every argument shape once
    best = None
    for _ in range(REPS):
        samples = []
        for call in calls:
            started = time.perf_counter_ns()
            call()
            samples.append(time.perf_counter_ns() - started)
        stats = _per_call_stats(samples)
        if best is None or stats["p50_ms"] < best["p50_ms"]:
            best = stats
    return best


def _normalise(value):
    """Tier-comparable view of a kernel result (arrays -> lists)."""
    if isinstance(value, tuple):
        return tuple(_normalise(v) for v in value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    return value


def run_smoke(scale: float = 0.0008, pairs: int = PAIRS) -> int:
    """Race the kernel tiers on the 4k-node CI smoke graph."""
    from repro.core.config import OracleConfig
    from repro.datasets.social import generate

    graph = generate("livejournal", scale=scale, seed=7)
    config = OracleConfig(alpha=4.0, seed=7, fallback="none", vicinity_floor=0.75)
    index = VicinityOracle.build(graph, config=config).index
    flat = FlatIndex.from_index(index)
    native_reason = None
    if _native.load_library() is None:
        native_reason = str(_native.load_error() or "extension not built")
    tiers = TIERS if native_reason is None else ("numpy",)

    rng = np.random.default_rng(11)
    owners = rng.integers(0, graph.n, LANE).astype(np.int64)
    others = rng.integers(0, graph.n, LANE).astype(np.int64)
    landmarks = np.flatnonzero(np.asarray(flat.landmark_row) >= 0)
    endpoints = landmarks[rng.integers(0, landmarks.size, LANE)].astype(np.int64)
    scan_owner = rng.integers(0, graph.n, LANE).astype(np.int64)
    probe_owner = rng.integers(0, graph.n, LANE).astype(np.int64)
    payloads = [
        (*flat.boundary_payload(int(s)), int(t))
        for s, t in zip(owners[:pairs], others[:pairs])
    ]
    query_pairs = zipf_pairs(graph.n, pairs, exponent=1.0, seed=11)

    lanes = {
        "member_probe_many": (
            LANE, lambda: flat.member_probe_many(owners, others)
        ),
        "table_lookup_many": (
            LANE, lambda: flat.table_lookup_many(endpoints, others)
        ),
        "intersect_many": (
            LANE,
            lambda: flat.intersect_many(
                flat.boundary_offsets, flat.boundary_nodes,
                flat.boundary_dists, scan_owner, probe_owner,
            ),
        ),
    }
    if not flat.has_tables:  # smoke profile always has tables; be safe
        lanes.pop("table_lookup_many")

    failures: list[str] = []
    kernels_report: dict[str, dict] = {}

    # --- batch kernels + per-pair payload scan ------------------------
    for name, (calls, run) in lanes.items():
        entry: dict = {"calls": calls}
        reference = None
        for tier in tiers:
            flat.set_kernels(tier)
            got = _normalise(run())
            if reference is None:
                reference = got
            elif got != reference:
                failures.append(f"{name}: tiers disagree")
            entry[tier] = _race_lane(run, calls)
        kernels_report[name] = entry

    entry = {"calls": len(payloads)}
    reference = None
    for tier in tiers:
        flat.set_kernels(tier)
        got = [_normalise(flat.intersect_payload(*p)) for p in payloads]
        if reference is None:
            reference = got
        elif got != reference:
            failures.append("intersect_payload: tiers disagree")
        entry[tier] = _race_per_call(
            [lambda p=p: flat.intersect_payload(*p) for p in payloads]
        )
    kernels_report["intersect_payload"] = entry

    for name, entry in kernels_report.items():
        if "native" not in entry:
            continue
        entry["speedup"] = round(
            entry["numpy"]["p50_ms"] / entry["native"]["p50_ms"], 2
        )
        if entry["speedup"] < 1.0:
            failures.append(
                f"{name}: native slower than numpy ({entry['speedup']:.2f}x)"
            )

    # --- fused scalar query loop --------------------------------------
    scalar: dict = {"pairs": len(query_pairs)}
    reference = None
    for tier in tiers:
        # Tier order matters: the flat index is shared, so each engine
        # is built and fully measured before the next tier flips it.
        engine = FlatQueryEngine.from_index(index, kernels=tier)
        assert engine.kernels == tier
        results = [
            (r.distance, r.method, r.witness, r.probes)
            for r in (engine.resolve(s, t, False) for s, t in query_pairs)
        ]
        if reference is None:
            reference = results
        elif results != reference:
            failures.append("scalar query: tiers disagree")
        scalar[tier] = _race_per_call(
            [lambda e=engine, s=s, t=t: e.resolve(s, t, False)
             for s, t in query_pairs]
        )
    if "native" in scalar:
        scalar["speedup"] = round(
            scalar["numpy"]["p50_ms"] / scalar["native"]["p50_ms"], 2
        )
        if scalar["native"]["p50_ms"] > 0.010:
            failures.append(
                f"scalar query native p50 {scalar['native']['p50_ms'] * 1e3:.2f} us"
                " > 10 us"
            )
        if scalar["speedup"] < 5.0:
            failures.append(
                f"scalar query speedup {scalar['speedup']:.2f}x < 5x"
            )

    report = {
        "workload": {
            "graph": "livejournal-chung-lu",
            "nodes": graph.n,
            "lane": LANE,
            "pairs": len(query_pairs),
            "reps": REPS,
            "seed": 11,
        },
        "native_available": native_reason is None,
        "native_unavailable_reason": native_reason,
        "kernels": kernels_report,
        "scalar_query": scalar,
        "ok": not failures,
        "failures": failures,
    }
    path = write_artifact("BENCH_kernels.json", json.dumps(report, indent=2))

    rows = []
    for name, entry in {**kernels_report, "scalar query()": scalar}.items():
        rows.append((
            name,
            f"{entry['numpy']['p50_ms'] * 1e3:.2f}",
            f"{entry['native']['p50_ms'] * 1e3:.2f}" if "native" in entry else "-",
            f"{entry['speedup']:.2f}x" if "speedup" in entry else "-",
        ))
    print(
        render_table(
            ["kernel", "numpy p50 us", "native p50 us", "speedup"],
            rows,
            title=(
                f"kernel tiers, livejournal Chung-Lu stand-in "
                f"({graph.n:,} nodes, per-call figures, best of {REPS})"
            ),
        )
    )
    if native_reason is not None:
        print(f"note: native tier unavailable ({native_reason}); numpy-only run")
    print(f"wrote {path}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    if native_reason is None:
        print(
            "ok: native tier bit-identical and never slower; scalar query "
            f"p50 {scalar['native']['p50_ms'] * 1e3:.2f} us "
            f"({scalar['speedup']:.2f}x over numpy)"
        )
    return 0


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the tier race on the CI smoke graph and exit",
    )
    parser.add_argument("--scale", type=float, default=0.0008)
    parser.add_argument("--pairs", type=int, default=PAIRS)
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("this script only supports --smoke")
    return run_smoke(scale=args.scale, pairs=args.pairs)


if __name__ == "__main__":
    import sys

    sys.exit(main())
