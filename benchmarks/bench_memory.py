"""§3.2 memory claims: entries/node vs 4*sqrt(n), ratio vs APSP.

Reproduction targets:

* vicinity entries/node tracks ``4 sqrt(n)`` within a small factor
  (paper profile, no floor);
* the paper-accounting APSP ratio tracks ``sqrt(n)/4`` (the "550x" for
  full-scale LiveJournal becomes ``sqrt(n)/4`` at our scale);
* a real dense APSP table (built!) confirms the model on the smallest
  dataset.
"""

import math

import pytest

from repro.baselines.apsp import ApspOracle
from repro.experiments.memory_table import (
    MemoryRow,
    render_memory_table,
    run_memory_for_graph,
)

from benchmarks.conftest import write_artifact

_rows: list[MemoryRow] = []


@pytest.mark.parametrize("name", ["dblp", "flickr", "orkut", "livejournal"])
def test_memory_accounting(benchmark, name, paper_profile_oracles, graphs):
    """Model the built Definition-1 index against the APSP strawman."""
    row = benchmark.pedantic(
        lambda: run_memory_for_graph(
            graphs[name], dataset=name, seed=7, oracle=paper_profile_oracles[name]
        ),
        rounds=1,
        iterations=1,
    )
    _rows.append(row)
    benchmark.extra_info["entries_per_node"] = round(row.entries_per_node, 1)
    benchmark.extra_info["apsp_ratio_paper"] = round(row.apsp_ratio_paper, 1)
    # The paper accounting must land within a small factor of sqrt(n)/4.
    assert 0.2 * row.apsp_ratio_expected < row.apsp_ratio_paper < 8 * row.apsp_ratio_expected
    # Entries per node within a small factor of the 4*sqrt(n) target.
    assert 0.15 * row.target_entries_per_node < row.entries_per_node
    assert row.entries_per_node < 4 * row.target_entries_per_node
    if len(_rows) == 4:
        write_artifact("memory.txt", render_memory_table(_rows))


def test_real_apsp_comparison(benchmark, graphs, paper_profile_oracles):
    """Build the actual dense APSP matrix on the smallest dataset and
    compare its real bytes against the index's modelled bytes."""
    graph = graphs["dblp"]
    apsp = benchmark.pedantic(lambda: ApspOracle(graph), rounds=1, iterations=1)
    report = paper_profile_oracles["dblp"].memory()
    ratio = apsp.nbytes / report.model_bytes
    benchmark.extra_info["apsp_bytes"] = apsp.nbytes
    benchmark.extra_info["index_model_bytes"] = report.model_bytes
    benchmark.extra_info["real_ratio"] = round(ratio, 1)
    # The index must be materially smaller than real all-pairs storage.
    assert ratio > 2.0


def test_flat_layout_resident_bytes(oracles):
    """Resident array bytes per layout: compact vs the int64 ancestor.

    The dtype policy (uint16/uint32 ids, uint32 offsets, int32/float32
    distances) must shrink every built index's *actual* working set by
    at least 1.8x — the acceptance bar for the compaction, measured on
    real stores rather than the cost model.
    """
    from repro.core.flat import flatten_index, store_nbytes, widen_store
    from repro.experiments.reporting import render_table

    rows = []
    for name, oracle in sorted(oracles.items()):
        store = flatten_index(oracle.index)
        compact = store_nbytes(store)
        wide = store_nbytes(widen_store(store))
        ratio = wide / compact
        rows.append(
            (
                name,
                f"{compact / 1e6:.1f}",
                f"{wide / 1e6:.1f}",
                f"{ratio:.2f}x",
                str(store["vic_nodes"].dtype),
            )
        )
        assert ratio >= 1.8, f"{name}: compact layout only {ratio:.2f}x smaller"
    write_artifact(
        "flat_layout.txt",
        render_table(
            ["dataset", "compact MB", "int64 MB", "shrink", "id dtype"],
            rows,
            title="FlatIndex resident bytes per layout (built indices)",
        ),
    )
