"""Extension E1 (§5 challenge 2): directed vicinity intersection.

Reproduction target: on a reciprocity-calibrated directed stand-in,
directed queries are exact and the answered fraction under the guarded
profile stays high, with roughly double the per-node state of the
undirected oracle.
"""

import numpy as np
import pytest

from repro.core.directed import DirectedVicinityOracle
from repro.datasets.social import generate_directed
from repro.experiments.reporting import render_table
from repro.graph.traversal.vectorized import digraph_bfs_tree_vectorized

from benchmarks.conftest import bench_scale, write_artifact


@pytest.fixture(scope="module")
def directed_setup():
    graph = generate_directed("flickr", scale=bench_scale("flickr"), seed=7)
    oracle = DirectedVicinityOracle.build(
        graph, alpha=4.0, seed=7, fallback="none", vicinity_floor=0.75
    )
    return graph, oracle


def test_directed_build(benchmark):
    """Offline-phase cost of the directed extension."""
    graph = generate_directed("dblp", scale=bench_scale("dblp") / 2, seed=7)
    oracle = benchmark.pedantic(
        lambda: DirectedVicinityOracle.build(graph, alpha=4.0, seed=7),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["landmarks"] = int(oracle.landmark_ids.size)


def test_directed_query_latency(benchmark, directed_setup):
    """Online latency + exactness + answered fraction."""
    graph, oracle = directed_setup
    rng = np.random.default_rng(19)
    pairs = [tuple(int(x) for x in rng.integers(0, graph.n, 2)) for _ in range(300)]
    state = {"i": 0}

    def one_query():
        s, t = pairs[state["i"] % len(pairs)]
        state["i"] += 1
        return oracle.query(s, t)

    benchmark(one_query)

    answered = 0
    exact = 0
    checked = 0
    for s, t in pairs[:120]:
        result = oracle.query(s, t)
        truth = digraph_bfs_tree_vectorized(
            graph.out_indptr, graph.out_indices, graph.n, s
        )[0][t]
        expected = None if truth < 0 else int(truth)
        if result.distance is not None:
            answered += 1
            exact += result.distance == expected
        checked += 1
    benchmark.extra_info["answered_fraction"] = round(answered / checked, 4)
    assert exact == answered  # every answer exact
    write_artifact(
        "directed.txt",
        render_table(
            ["metric", "value"],
            [
                ("pairs checked", checked),
                ("answered", answered),
                ("exact", exact),
                ("mean probes", f"{oracle.counters.mean_probes:,.1f}"),
            ],
            title="Extension E1: directed oracle on flickr stand-in",
        ),
    )
