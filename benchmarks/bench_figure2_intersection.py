"""Figure 2 (left): fraction of vicinity intersections vs alpha.

Reproduction target: the fraction rises monotonically (within noise)
with alpha and approaches 1 by alpha = 16, for every dataset.  The full
four-dataset sweep is written to
``benchmarks/_artifacts/figure2_intersection.txt``.
"""

import pytest

from repro.experiments.figure2 import render_figure2, run_figure2

from benchmarks.conftest import write_artifact

ALPHAS = (1 / 64, 1 / 16, 1 / 4, 1, 4, 16)

_results = []


@pytest.mark.parametrize("name", ["dblp", "flickr", "orkut", "livejournal"])
def test_intersection_curve(benchmark, name, graphs):
    """One dataset's alpha sweep (sampled-node protocol, one run)."""
    graph = graphs[name]
    result = benchmark.pedantic(
        lambda: run_figure2(
            graph,
            dataset=name,
            alphas=ALPHAS,
            sample_nodes=40,
            runs=1,
            seed=11,
        ),
        rounds=1,
        iterations=1,
    )
    _results.append(result)
    curve = result.curve()
    rates = {alpha: rate for alpha, rate, _r, _s in curve}
    benchmark.extra_info.update({f"alpha_{a:g}": round(r, 4) for a, r in rates.items()})
    # Shape: near zero at alpha=1/64, high by alpha=16.
    assert rates[1 / 64] < 0.35
    assert rates[16] > 0.85
    assert rates[16] >= rates[1 / 4] - 0.05
    if len(_results) == 4:
        write_artifact("figure2_intersection.txt", render_figure2(_results))
