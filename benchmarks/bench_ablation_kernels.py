"""Ablations A1 + A2: what the boundary optimisation buys.

* A1 — boundary iteration vs full-vicinity iteration (Lemma 1's value);
* A2 — smaller-side selection vs always-source.

Reproduction target: boundary scanning probes no more than full
scanning; smaller-side selection probes no more than fixed-side.  (On
social graphs most vicinity members touch the outside, so A1's saving
is modest — the honest result the artifact records.)
"""

import pytest

from repro.core.intersect import run_kernel
from repro.experiments.reporting import render_table
from repro.experiments.workloads import sample_pair_workload

from benchmarks.conftest import write_artifact

KERNELS = ("boundary-smaller", "boundary-source", "full-source", "full-smaller")


@pytest.mark.parametrize("kernel", KERNELS)
def test_kernel_probe_cost(benchmark, kernel, oracles, graphs):
    """Probe counts and latency per kernel on the livejournal stand-in."""
    oracle = oracles["livejournal"]
    graph = graphs["livejournal"]
    index = oracle.index
    workload = sample_pair_workload(graph, 28, rng=17)
    flags = index.landmarks.is_landmark
    pairs = [
        (s, t)
        for s, t in workload.pairs()
        if not flags[s]
        and not flags[t]
        and t not in index.vicinities[s].members
        and s not in index.vicinities[t].members
    ]
    assert pairs, "workload produced no intersection-path pairs"

    state = {"i": 0, "probes": 0, "answered": 0}

    def one_intersection():
        s, t = pairs[state["i"] % len(pairs)]
        state["i"] += 1
        best, _w, probes = run_kernel(kernel, index.vicinities[s], index.vicinities[t])
        state["probes"] += probes
        state["answered"] += best is not None
        return best

    benchmark(one_intersection)
    mean_probes = state["probes"] / state["i"]
    benchmark.extra_info["mean_probes"] = round(mean_probes, 1)
    benchmark.extra_info["answer_rate"] = round(state["answered"] / state["i"], 4)
    _record(kernel, mean_probes)


_results: dict[str, float] = {}


def _record(kernel: str, mean_probes: float) -> None:
    _results[kernel] = mean_probes
    if len(_results) == len(KERNELS):
        rows = [(k, f"{v:,.1f}") for k, v in sorted(_results.items())]
        write_artifact(
            "ablation_kernels.txt",
            render_table(["kernel", "mean probes"], rows,
                         title="Ablation A1/A2: intersection kernels (livejournal)"),
        )
        # Lemma 1: boundary never probes more than the full scan, and
        # smaller-side selection never probes more than fixed-side.
        assert _results["boundary-source"] <= _results["full-source"] + 1e-9
        assert _results["boundary-smaller"] <= _results["boundary-source"] + 1e-9
        assert _results["full-smaller"] <= _results["full-source"] + 1e-9
