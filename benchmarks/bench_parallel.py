"""Extension E2 (§5 challenge 3): partitioned serving without replication.

Reproduction target: per-shard memory falls roughly linearly with the
shard count while per-query traffic stays bounded by a couple of small
messages — the property that makes the structure shardable where
graph-replication approaches are not.
"""

import numpy as np
import pytest

from repro.core.parallel import PartitionedOracle
from repro.experiments.reporting import render_table

from benchmarks.conftest import write_artifact

SHARD_COUNTS = (1, 2, 4, 8, 16)


def test_shard_memory_scaling(benchmark, oracles):
    """Max per-shard bytes across shard counts."""
    index = oracles["livejournal"].index

    def sweep():
        rows = []
        for k in SHARD_COUNTS:
            sharded = PartitionedOracle(index, k)
            summary = sharded.balance_summary()
            rows.append((k, summary["max_bytes"], summary["imbalance"]))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by_k = {k: mx for k, mx, _imb in rows}
    benchmark.extra_info.update({f"max_bytes_k{k}": int(v) for k, v in by_k.items()})
    # Memory per machine must drop substantially with sharding.
    assert by_k[16] < by_k[1] / 4
    write_artifact(
        "parallel_memory.txt",
        render_table(
            ["shards", "max bytes/machine", "imbalance"],
            [(k, int(mx), f"{imb:.2f}") for k, mx, imb in rows],
            title="Extension E2: per-machine memory vs shard count (livejournal)",
        ),
    )


def test_sharded_query_traffic(benchmark, oracles, graphs):
    """Messages and bytes per query at 8 shards."""
    index = oracles["livejournal"].index
    graph = graphs["livejournal"]
    sharded = PartitionedOracle(index, 8)
    rng = np.random.default_rng(23)
    pairs = [tuple(int(x) for x in rng.integers(0, graph.n, 2)) for _ in range(256)]
    state = {"i": 0}

    def one_query():
        s, t = pairs[state["i"] % len(pairs)]
        state["i"] += 1
        return sharded.query(s, t)

    benchmark(one_query)
    log = sharded.log
    total = log.local_queries + log.remote_queries
    benchmark.extra_info["mean_messages"] = round(log.messages / total, 2)
    benchmark.extra_info["mean_bytes"] = int(log.bytes / total)
    # Bounded rounds: at most two round trips per query in this design.
    assert log.messages / total <= 4.0


def test_sharded_results_match_single_machine(benchmark, oracles, graphs):
    """Distance agreement between sharded and single-machine serving."""
    oracle = oracles["livejournal"]
    graph = graphs["livejournal"]
    sharded = PartitionedOracle(oracle.index, 4)
    rng = np.random.default_rng(29)
    pairs = [tuple(int(x) for x in rng.integers(0, graph.n, 2)) for _ in range(200)]

    def check_all():
        mismatches = 0
        for s, t in pairs:
            if oracle.query(s, t).distance != sharded.query(s, t).distance:
                mismatches += 1
        return mismatches

    mismatches = benchmark.pedantic(check_all, rounds=1, iterations=1)
    assert mismatches == 0
