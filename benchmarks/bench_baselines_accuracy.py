"""Related-work comparison (§4): exactness vs approximation error.

The paper positions vicinity intersection against landmark estimation
[11] and sketches [12]: comparable latency class, but those return
paths/distances with multi-hop absolute error.  This benchmark measures
the error distributions on a shared workload and asserts the paper's
qualitative claim: our answers are exact; the approximations are not.
"""

import numpy as np
import pytest

from repro.baselines.landmark_estimate import LandmarkEstimateOracle
from repro.baselines.sketch import SketchOracle
from repro.experiments.reporting import render_table
from repro.graph.traversal.bfs import bfs_distances

from benchmarks.conftest import write_artifact


@pytest.fixture(scope="module")
def workload(graphs):
    graph = graphs["livejournal"]
    rng = np.random.default_rng(31)
    sources = rng.choice(graph.n, 12, replace=False)
    truth = {int(s): bfs_distances(graph, int(s)) for s in sources}
    targets = rng.choice(graph.n, 40, replace=False)
    pairs = [
        (int(s), int(t))
        for s in sources
        for t in targets
        if s != t and truth[int(s)][int(t)] >= 0
    ]
    return graph, truth, pairs


def _errors(estimator, truth, pairs):
    errors = []
    for s, t in pairs:
        estimate = estimator.distance(s, t)
        if estimate is None:
            continue
        errors.append(estimate - int(truth[s][t]))
    return np.asarray(errors, dtype=np.float64)


def test_landmark_estimate_error(benchmark, workload):
    """Potamias-style triangulation error on the shared workload."""
    graph, truth, pairs = workload
    estimator = LandmarkEstimateOracle(graph, num_landmarks=16, strategy="degree")
    errors = benchmark.pedantic(
        lambda: _errors(estimator, truth, pairs), rounds=1, iterations=1
    )
    benchmark.extra_info["mean_abs_error"] = round(float(np.abs(errors).mean()), 3)
    benchmark.extra_info["exact_fraction"] = round(float((errors == 0).mean()), 3)
    assert (errors >= 0).all()  # upper bounds only
    _record("landmark-estimate [11]", errors)


def test_sketch_error(benchmark, workload):
    """Das-Sarma-style sketch error on the shared workload."""
    graph, truth, pairs = workload
    estimator = SketchOracle(graph, repetitions=2, rng=3)
    errors = benchmark.pedantic(
        lambda: _errors(estimator, truth, pairs), rounds=1, iterations=1
    )
    benchmark.extra_info["mean_abs_error"] = round(float(np.abs(errors).mean()), 3)
    assert (errors >= 0).all()
    _record("sketch [12]", errors)


def test_vicinity_oracle_error(benchmark, workload, oracles):
    """Ours on the same workload: exact wherever answered."""
    graph, truth, pairs = workload
    oracle = oracles["livejournal"]

    def run():
        errors = []
        for s, t in pairs:
            result = oracle.query(s, t)
            if result.distance is not None:
                errors.append(result.distance - int(truth[s][t]))
        return np.asarray(errors, dtype=np.float64)

    errors = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["answered_fraction"] = round(len(errors) / len(pairs), 4)
    assert (errors == 0).all()  # the paper's headline: exact answers
    _record("vicinity oracle (ours)", errors)


_rows = {}


def _record(name, errors):
    _rows[name] = errors
    if len(_rows) == 3:
        table = render_table(
            ["technique", "mean |error|", "max error", "exact fraction"],
            [
                (
                    name,
                    f"{np.abs(e).mean():.3f}" if e.size else "-",
                    f"{e.max():.0f}" if e.size else "-",
                    f"{(e == 0).mean():.2%}" if e.size else "-",
                )
                for name, e in _rows.items()
            ],
            title="Related-work accuracy comparison (livejournal stand-in)",
        )
        write_artifact("baselines_accuracy.txt", table)
