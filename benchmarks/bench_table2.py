"""Table 2 regeneration: dataset statistics.

Benchmarks the generator throughput and writes the reproduced table to
``benchmarks/_artifacts/table2.txt``.
"""

from repro.datasets.social import generate_directed
from repro.experiments.table2 import render_table2, run_table2

from benchmarks.conftest import bench_scale, write_artifact


def test_generate_livejournal_standin(benchmark):
    """Generator throughput on the densest workload we default to."""
    graph = benchmark(
        lambda: generate_directed("livejournal", scale=bench_scale("livejournal"), seed=7)
    )
    assert graph.n > 1000
    benchmark.extra_info["nodes"] = graph.n
    benchmark.extra_info["arcs"] = graph.num_arcs


def test_table2_rows(benchmark):
    """Regenerate the full Table 2 and persist it."""
    rows = benchmark.pedantic(
        lambda: run_table2(scale=bench_scale("dblp"), seed=7), rounds=1, iterations=1
    )
    text = render_table2(rows)
    write_artifact("table2.txt", text)
    for row in rows:
        # Densities must track the paper within 25% for the stand-in to
        # be meaningful.
        assert 0.75 < row.density_ratio < 1.25
        benchmark.extra_info[f"{row.dataset}_density_ratio"] = round(
            row.density_ratio, 3
        )
