"""Figure 2 (right): mean vicinity radius vs alpha.

Reproduction target: the radius grows slowly (roughly logarithmically)
with alpha and stays small (a few hops) at alpha = 4 — the property
that makes truncated traversals cheap.
"""

import pytest

from repro.core.landmarks import calibrate_scale, sample_landmarks
from repro.experiments.reporting import render_series
from repro.graph.traversal.vectorized import multi_source_bfs_vectorized

from benchmarks.conftest import write_artifact

ALPHAS = (1 / 16, 1 / 4, 1, 4, 16)

_blocks = []


@pytest.mark.parametrize("name", ["dblp", "flickr", "orkut", "livejournal"])
def test_radius_curve(benchmark, name, graphs):
    """Exact mean d(u, L) over all nodes via one multi-source sweep."""
    graph = graphs[name]

    def sweep():
        points = []
        for alpha in ALPHAS:
            scale = calibrate_scale(graph, alpha, rng=13)
            landmarks = sample_landmarks(graph, alpha, rng=13, scale=scale)
            radii = multi_source_bfs_vectorized(graph, landmarks.ids)
            mask = radii > 0
            mean_radius = float(radii[mask].mean()) if mask.any() else 0.0
            points.append((alpha, mean_radius))
        return points

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    radii = dict(points)
    benchmark.extra_info.update({f"alpha_{a:g}": round(r, 2) for a, r in radii.items()})
    # Shape: non-decreasing in alpha (within one-level noise) and small.
    assert radii[16] >= radii[1 / 16] - 0.25
    assert radii[4] < 6.0
    _blocks.append(
        render_series(
            "alpha",
            ["mean radius (hops)"],
            [(f"{a:g}", f"{r:.2f}") for a, r in points],
            title=f"Figure 2 (right) {name}",
        )
    )
    if len(_blocks) == 4:
        write_artifact("figure2_radius.txt", "\n\n".join(_blocks))
