"""Ablation A5: landmark full tables — memory vs coverage.

§3.1's data structure stores a complete single-source table per
landmark, which DESIGN.md flags as the structure's memory-heavy
component at scale.  This ablation builds the same index with
``landmark_tables="none"`` and measures what the tables actually buy:
conditions (1)/(2) of Algorithm 1 versus the entries they cost.
"""

import numpy as np
import pytest

from repro.core.config import OracleConfig
from repro.core.oracle import VicinityOracle
from repro.experiments.reporting import render_table

from benchmarks.conftest import write_artifact


def test_tables_none_tradeoff(benchmark, graphs):
    """Coverage and memory with and without landmark tables."""
    graph = graphs["livejournal"]

    def build_both():
        rows = []
        for mode in ("full", "none"):
            config = OracleConfig(
                alpha=4.0, seed=7, fallback="none", landmark_tables=mode
            )
            oracle = VicinityOracle.build(graph, config=config)
            rng = np.random.default_rng(43)
            answered = 0
            landmark_endpoint = 0
            total = 600
            flags = oracle.index.landmarks.is_landmark
            for _ in range(total):
                s, t = (int(x) for x in rng.integers(0, graph.n, 2))
                if flags[s] or flags[t]:
                    landmark_endpoint += 1
                if oracle.query(s, t).distance is not None:
                    answered += 1
            memory = oracle.memory()
            rows.append(
                {
                    "mode": mode,
                    "answered": answered / total,
                    "landmark_endpoint_rate": landmark_endpoint / total,
                    "table_entries": memory.table_entries,
                    "total_entries": memory.total_entries,
                }
            )
        return rows

    rows = benchmark.pedantic(build_both, rounds=1, iterations=1)
    full, none = rows
    benchmark.extra_info["answered_full"] = round(full["answered"], 4)
    benchmark.extra_info["answered_none"] = round(none["answered"], 4)
    benchmark.extra_info["entries_saved"] = full["table_entries"]
    # Dropping tables saves their entries entirely...
    assert none["table_entries"] == 0
    assert none["total_entries"] < full["total_entries"]
    # ...and costs at most the landmark-endpoint query share.
    assert full["answered"] >= none["answered"]
    assert (
        full["answered"] - none["answered"]
        <= full["landmark_endpoint_rate"] + 0.02
    )
    write_artifact(
        "ablation_tables.txt",
        render_table(
            ["tables", "answered", "landmark-endpoint pairs", "table entries", "total entries"],
            [
                (
                    r["mode"],
                    f"{r['answered']:.2%}",
                    f"{r['landmark_endpoint_rate']:.2%}",
                    r["table_entries"],
                    r["total_entries"],
                )
                for r in rows
            ],
            title="Ablation A5: landmark tables (livejournal)",
        ),
    )
