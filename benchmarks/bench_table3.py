"""Table 3 regeneration: query latency and probe counts vs BFS / BiBFS.

The paper's headline table, reproduced under two operating profiles:

* **paper** — Definition 1 verbatim (``vicinity_floor=0``).  Probe
  counts track ``alpha * sqrt(n)``; some pairs miss (the answered
  column; the paper reports 99.9 % at 4.85M nodes, our synthetic
  stand-ins give ~80-90 % at a few thousand nodes — see EXPERIMENTS.md);
* **guarded** — the exactness-preserving ``vicinity_floor=0.75``
  extension: ~100 % answered at a measured probe/memory premium.

Reproduction targets: ours beats plain BFS by 1-2 orders of magnitude
even at laptop scale; the bidirectional-BFS advantage is present in the
paper profile and grows with density (orkut > dblp); absolute 431x-class
factors require the paper's millions of nodes (bench_scaling.py measures
the machine-independent trend).
"""

import numpy as np
import pytest

from repro.baselines.exact import BFSBaseline, BidirectionalBaseline
from repro.experiments.table3 import Table3Row, render_table3, run_table3_for_graph
from repro.experiments.workloads import sample_pair_workload

from benchmarks.conftest import write_artifact

_rows: dict[str, list[Table3Row]] = {"paper": [], "guarded": []}

DATASETS = ("dblp", "flickr", "orkut", "livejournal")


@pytest.mark.parametrize("name", DATASETS)
def test_oracle_query_latency(benchmark, name, paper_profile_oracles, graphs):
    """Per-query latency of Algorithm 1 (paper profile) on the workload."""
    oracle = paper_profile_oracles[name]
    graph = graphs[name]
    workload = sample_pair_workload(graph, 32, rng=3)
    pairs = list(workload.pairs())

    state = {"i": 0}

    def one_query():
        s, t = pairs[state["i"] % len(pairs)]
        state["i"] += 1
        return oracle.query(s, t)

    benchmark(one_query)
    benchmark.extra_info["mean_probes"] = round(oracle.counters.mean_probes, 1)
    benchmark.extra_info["n"] = graph.n
    benchmark.extra_info["m"] = graph.num_edges


@pytest.mark.parametrize("name", ["dblp", "orkut"])
def test_bfs_baseline_latency(benchmark, name, graphs):
    """Plain BFS latency — the 'standard algorithm' the paper dismisses."""
    graph = graphs[name]
    engine = BFSBaseline(graph)
    rng = np.random.default_rng(5)
    pairs = [tuple(int(x) for x in rng.integers(0, graph.n, 2)) for _ in range(8)]
    state = {"i": 0}

    def one_query():
        s, t = pairs[state["i"] % len(pairs)]
        state["i"] += 1
        return engine.distance(s, t)

    benchmark.pedantic(one_query, rounds=6, iterations=1)
    benchmark.extra_info["mean_edges_scanned"] = int(engine.counters.mean_edges)


@pytest.mark.parametrize("name", ["dblp", "orkut"])
def test_bidirectional_baseline_latency(benchmark, name, graphs):
    """Bidirectional BFS latency — the state-of-the-art comparator [4]."""
    graph = graphs[name]
    engine = BidirectionalBaseline(graph)
    rng = np.random.default_rng(6)
    pairs = [tuple(int(x) for x in rng.integers(0, graph.n, 2)) for _ in range(32)]
    state = {"i": 0}

    def one_query():
        s, t = pairs[state["i"] % len(pairs)]
        state["i"] += 1
        return engine.distance(s, t)

    benchmark(one_query)
    benchmark.extra_info["mean_edges_scanned"] = int(engine.counters.mean_edges)


@pytest.mark.parametrize("profile", ["paper", "guarded"])
@pytest.mark.parametrize("name", DATASETS)
def test_table3_row(benchmark, name, profile, oracles, paper_profile_oracles, graphs):
    """The full Table 3 protocol per dataset and profile."""
    oracle = paper_profile_oracles[name] if profile == "paper" else oracles[name]
    row = benchmark.pedantic(
        lambda: run_table3_for_graph(
            graphs[name],
            dataset=name,
            seed=7,
            sample_nodes=32,
            bfs_pairs=6,
            bidirectional_pairs=40,
            oracle=oracle,
        ),
        rounds=1,
        iterations=1,
    )
    _rows[profile].append(row)
    benchmark.extra_info["speedup_vs_bfs"] = round(row.speedup_vs_bfs, 1)
    benchmark.extra_info["speedup_vs_bibfs"] = round(row.speedup_vs_bidirectional, 2)
    benchmark.extra_info["answered"] = round(row.answered_fraction, 4)
    assert row.speedup_vs_bfs > 3
    if profile == "paper":
        # Definition 1 probe counts stay near alpha*sqrt(n); most pairs
        # answered even without the floor.
        assert row.answered_fraction > 0.6
        assert row.avg_probes < 8 * 4 * np.sqrt(row.n)
    else:
        # The guarded profile buys near-total coverage.
        assert row.answered_fraction > 0.9
    if len(_rows[profile]) == len(DATASETS):
        order = {r.dataset: r for r in _rows[profile]}
        write_artifact(
            f"table3_{profile}.txt",
            render_table3([order[k] for k in DATASETS]),
        )
        if profile == "paper":
            # Density shape on the paper's comparison column: the dense
            # orkut stand-in gains more against bidirectional BFS than
            # the sparse dblp stand-in (BiBFS pays for density; the
            # oracle does not).
            assert (
                order["orkut"].speedup_vs_bidirectional
                > order["dblp"].speedup_vs_bidirectional
            )
