"""Serving-layer throughput: batching + caching vs the naive loop.

Reproduction targets on a Chung-Lu social graph under a repeated-pair
(Zipf) workload:

* the batched + cached serving stack answers at least 2x the
  throughput of the single-query loop — the property that makes the
  oracle deployable behind production traffic, per the follow-up
  serving paper ("Shortest Paths in Microseconds", arXiv:1309.0874);
* the fused flat-engine ``query_batch`` answers at least 2x the
  throughput of the retired PR 2 dict ``query_batch`` (preserved in
  :mod:`repro.core.reference`) with field-identical results — the
  property that justifies committing the read path to contiguous
  arrays;
* the process-pool shard backend answers batches at least 2x the
  throughput of the GIL-bound thread backend at 4 shards, with
  identical results — the property that makes sharding buy *speed*,
  not just routing fidelity (the default shared-memory ring transport
  moves fixed-dtype frames, never per-pair pickles);
* the asyncio network front end answers a pipelined multi-client TCP
  workload at least 2x the throughput of the same workload issued
  serially per connection — cross-client coalescing into single
  ``query_batch`` calls is what turns the fused kernels into served
  throughput — and a hot store reload under that load drops nothing.

Also runnable as a script for CI::

    PYTHONPATH=src python benchmarks/bench_service.py --smoke

which drives a tiny graph through the dict reference and the flat
engine, and through every shard backend×transport plane (threads
inline, procpool pipe-frame, procpool shared-memory ring), verifies
identical results and MessageLog totals, asserts the engine speedup,
and writes the machine-readable
``benchmarks/_artifacts/BENCH_service.json`` (throughput and
p50/p95/p99 per engine×backend, plus the dispatch/execute/collect
overhead split per transport) that CI uploads to seed the perf
trajectory.
"""

import json
import os
import time

import numpy as np

try:
    import pytest
except ImportError:  # --smoke script mode on a bare interpreter
    pytest = None

from repro.core.engine import FlatQueryEngine
from repro.core.oracle import VicinityOracle
from repro.core.reference import DictReferenceOracle
from repro.experiments.reporting import render_table
from repro.service import (
    ProcessShardedService,
    ServiceApp,
    ShardedService,
    in_batches,
    zipf_pairs,
)

try:
    from benchmarks.conftest import write_artifact
except ImportError:  # run as a script: benchmarks/ itself is sys.path[0]
    from conftest import write_artifact

QUERIES = 20000
BATCH_SIZE = 256
#: Query count for the backend-vs-backend comparison (the thread
#: backend pays several executor hops per query, so it sets the pace).
SHARD_QUERIES = 6000
SHARD_COUNT = 4


def _drive_batches(query_batch, batches):
    """Run a batch callable; returns (results, seconds, per-query times).

    The one timing loop every serving benchmark shares.  Per-query
    latency is the batch's amortised share — the figure that matters
    for capacity planning (individual in-batch timings drown in timer
    overhead).
    """
    results = []
    per_query = []
    started = time.perf_counter()
    for batch in batches:
        batch_start = time.perf_counter()
        results.extend(query_batch(batch))
        share = (time.perf_counter() - batch_start) / len(batch)
        per_query.extend([share] * len(batch))
    return results, time.perf_counter() - started, per_query


def _drive(executor, pairs):
    return _drive_batches(executor.run, list(in_batches(pairs, BATCH_SIZE)))[1]


def _drive_backend(service, batches):
    results, seconds, _ = _drive_batches(service.query_batch, batches)
    return results, seconds


def test_batched_cached_throughput(benchmark, oracles, graphs):
    """Batched+cached serving must clearly beat the single-query loop.

    The original PR 1 bar was 2x — against the dict path, where a
    single query cost ~1 ms.  PR 3's flat engine made the *single-query
    loop itself* ~20x faster (it runs the same fused kernels), so the
    remaining headroom for batching + caching is the executor's dedup
    and cache hits over an already-fast resolver; the bar is 1.3x with
    a cache actually carrying the repeated tail, and the absolute
    throughput (which is the number that matters) is exported in the
    extra info.
    """
    oracle = oracles["livejournal"]
    graph = graphs["livejournal"]
    pairs = zipf_pairs(graph.n, QUERIES, exponent=1.0, seed=11)
    oracle.engine  # flatten once, outside every timer (cached on the index)

    # Baseline: the naive per-pair loop on a fresh oracle wrapper.
    single_oracle = VicinityOracle(oracle.index)
    started = time.perf_counter()
    for s, t in pairs:
        single_oracle.query(s, t)
    single_s = time.perf_counter() - started

    # Serving stack: dedup + symmetry + landmark-aware LRU, cold start.
    app = ServiceApp.from_index(oracle.index)
    batched_s = benchmark.pedantic(
        _drive, args=(app.executor, pairs), rounds=1, iterations=1
    )

    single_qps = QUERIES / single_s
    batched_qps = QUERIES / batched_s
    speedup = single_s / batched_s
    snapshot = app.snapshot()
    benchmark.extra_info.update(
        {
            "single_qps": int(single_qps),
            "batched_qps": int(batched_qps),
            "speedup": round(speedup, 2),
            "cache_hit_rate": round(snapshot["cache"]["hit_rate"], 3),
        }
    )
    write_artifact(
        "service_throughput.txt",
        render_table(
            ["mode", "seconds", "queries/s"],
            [
                ("single-query loop", f"{single_s:.3f}", int(single_qps)),
                ("batched + cached", f"{batched_s:.3f}", int(batched_qps)),
            ],
            title=(
                f"Serving throughput, livejournal Chung-Lu stand-in "
                f"({QUERIES:,} Zipf queries, speedup {speedup:.2f}x)"
            ),
        ),
    )
    assert speedup >= 1.3, f"batched+cached speedup {speedup:.2f}x < 1.3x"
    assert snapshot["cache"]["hit_rate"] >= 0.3, "cache not carrying the repeated tail"


def test_batch_results_match_single_queries(oracles, graphs):
    """The serving stack must not change a single answer."""
    oracle = oracles["dblp"]
    graph = graphs["dblp"]
    pairs = zipf_pairs(graph.n, 2000, exponent=1.0, seed=5)
    app = ServiceApp.from_index(oracle.index)
    results = []
    for batch in in_batches(pairs, BATCH_SIZE):
        results.extend(app.executor.run(batch))
    reference = VicinityOracle(oracle.index)
    for (s, t), got in zip(pairs, results):
        assert got.source == s and got.target == t
        assert got.distance == reference.query(s, t).distance


def test_flat_batch_doubles_dict_batch(benchmark, oracles, graphs):
    """The fused flat ``query_batch`` must be >= 2x the dict path.

    Same Zipf workload, same batch sizes, field-identical results; the
    speedup comes from the vectorised condition lanes, the fused
    intersection kernels and batch-level pair dedup.
    """
    oracle = oracles["livejournal"]
    graph = graphs["livejournal"]
    pairs = zipf_pairs(graph.n, QUERIES, exponent=1.0, seed=29)
    batches = list(in_batches(pairs, BATCH_SIZE))
    reference = DictReferenceOracle(oracle.index)
    engine = oracle.engine  # flatten outside the timers

    def drive(query_batch):
        results = []
        started = time.perf_counter()
        for batch in batches:
            results.extend(query_batch(batch))
        return results, time.perf_counter() - started

    dict_results, dict_s = drive(reference.query_batch)

    def flat_drive():
        return drive(engine.query_batch)

    flat_results, flat_s = benchmark.pedantic(flat_drive, rounds=1, iterations=1)
    for got, want in zip(flat_results, dict_results):
        assert (got.distance, got.method, got.witness, got.probes) == (
            want.distance, want.method, want.witness, want.probes
        )
    speedup = dict_s / flat_s
    benchmark.extra_info.update(
        {
            "dict_qps": int(QUERIES / dict_s),
            "flat_qps": int(QUERIES / flat_s),
            "speedup": round(speedup, 2),
        }
    )
    write_artifact(
        "engine_batch_throughput.txt",
        render_table(
            ["engine", "seconds", "queries/s"],
            [
                ("dict (PR 2 reference)", f"{dict_s:.3f}", int(QUERIES / dict_s)),
                ("flat (fused)", f"{flat_s:.3f}", int(QUERIES / flat_s)),
            ],
            title=(
                f"query_batch engines, livejournal Chung-Lu stand-in "
                f"({QUERIES:,} Zipf queries, speedup {speedup:.2f}x)"
            ),
        ),
    )
    assert speedup >= 2.0, f"flat engine speedup {speedup:.2f}x < 2x"


def test_sharded_service_throughput_and_traffic(benchmark, oracles, graphs):
    """The real sharded executor: bounded traffic, exact answers."""
    oracle = oracles["livejournal"]
    graph = graphs["livejournal"]
    rng = np.random.default_rng(23)
    pairs = [tuple(int(x) for x in rng.integers(0, graph.n, 2)) for _ in range(2000)]

    with ShardedService(oracle.index, 8) as service:

        def drive():
            return service.query_batch(pairs)

        results = benchmark.pedantic(drive, rounds=1, iterations=1)
        log = service.log
        total = log.local_queries + log.remote_queries
        mean_messages = log.messages / total
        benchmark.extra_info.update(
            {
                "mean_messages": round(mean_messages, 2),
                "mean_bytes": int(log.bytes / total),
                "remote_fraction": round(log.remote_queries / total, 3),
            }
        )
        # Same single-round-trip bound the simulation asserts.
        assert mean_messages <= 4.0
        reference = VicinityOracle(oracle.index)
        mismatches = 0
        for (s, t), got in zip(pairs, results):
            expected = reference.query(s, t)
            # Sharded serving has no fallback; any other method must agree.
            if expected.method == "fallback":
                assert got.method == "miss"
            else:
                mismatches += got.distance != expected.distance
        assert mismatches == 0


def test_procpool_doubles_thread_shard_throughput(benchmark, oracles, graphs):
    """The process-pool backend: >= 2x thread-backend batch throughput.

    The thread backend executes shard work under the GIL (sharding buys
    isolation, not speed); the procpool backend runs the same §5 scheme
    — the same :class:`ShardQueryEngine`, since PR 3 — on worker
    processes over a shared-memory index.  Same answers, same wire
    accounting, at least double the throughput at 4 shards.

    The 2x bar presumes cores to parallelise over: with the thread
    backend now running the fused flat engine (PR 3 removed its
    per-condition executor hops), a single-core machine leaves procpool
    only its IPC overhead.  There the assertion degrades to a bounded-
    overhead check; the identical-results check always runs.
    """
    oracle = oracles["livejournal"]
    graph = graphs["livejournal"]
    pairs = zipf_pairs(graph.n, SHARD_QUERIES, exponent=1.0, seed=17)
    batches = list(in_batches(pairs, BATCH_SIZE))

    with ShardedService(oracle.index, SHARD_COUNT) as threads:
        thread_results, thread_s = _drive_backend(threads, batches)
        thread_log = (threads.log.messages, threads.log.bytes)

    from repro.core.parallel import MessageLog

    with ProcessShardedService(oracle.index, SHARD_COUNT) as procs:
        procs.query_batch(pairs[:64])  # warm the worker pipes
        procs.log = MessageLog()  # drop the warm-up's wire accounting

        def drive():
            return _drive_backend(procs, batches)

        proc_results, proc_s = benchmark.pedantic(drive, rounds=1, iterations=1)
        transport_name = procs.transport_stats()["transport"]

    assert proc_results == thread_results  # byte-identical serving
    thread_qps = SHARD_QUERIES / thread_s
    proc_qps = SHARD_QUERIES / proc_s
    speedup = thread_s / proc_s
    cores = os.cpu_count() or 1
    benchmark.extra_info.update(
        {
            "thread_qps": int(thread_qps),
            "procpool_qps": int(proc_qps),
            "speedup": round(speedup, 2),
            "shards": SHARD_COUNT,
            "cores": cores,
            "transport": transport_name,
        }
    )
    write_artifact(
        "shard_backend_throughput.txt",
        render_table(
            ["backend", "seconds", "queries/s"],
            [
                (f"threads ({SHARD_COUNT} shards)", f"{thread_s:.3f}", int(thread_qps)),
                (f"procpool ({SHARD_COUNT} shards)", f"{proc_s:.3f}", int(proc_qps)),
            ],
            title=(
                f"Shard-backend throughput, livejournal Chung-Lu stand-in "
                f"({SHARD_QUERIES:,} Zipf queries, speedup {speedup:.2f}x)"
            ),
        ),
    )
    assert thread_log == (procs.log.messages, procs.log.bytes)
    if cores >= SHARD_COUNT:
        assert speedup >= 2.0, f"procpool speedup {speedup:.2f}x < 2x"
    # Fewer cores than shards: there is nothing to parallelise over, so
    # a timing bar would only measure scheduler noise — the
    # byte-identical results and wire-log assertions above are the
    # meaningful checks, and the measured ratio ships in extra_info.


# ----------------------------------------------------------------------
# script mode: the CI smoke run
# ----------------------------------------------------------------------
def _fields(results):
    return [(r.distance, r.method, r.witness, r.probes, r.path) for r in results]


def _time_cold_start(path, shards, *, mmap, start_method, probe_pair) -> float:
    """Seconds from ``from_saved`` to the first answered batch."""
    from repro.service.procpool import ProcessShardedService

    started = time.perf_counter()
    service = ProcessShardedService.from_saved(
        path, shards, mmap=mmap, start_method=start_method
    )
    try:
        service.query_batch([probe_pair])
    finally:
        service.close()
    return time.perf_counter() - started


def _mmap_phase(index, pairs, shards, failures, report) -> None:
    """The compact/mmap acceptance block of the smoke run.

    * compact store >= 1.8x smaller than the int64 layout it replaced;
    * mmap-loaded index answers byte-identical ``query`` /
      ``query_batch`` / ``with_path`` results vs in-memory, on the
      engine and on both shard backends;
    * ``from_saved(mmap=True)`` cold start (to first answer) >= 5x
      faster than the copy path — loading the legacy archive and
      copying it into a shared-memory segment, which is exactly what
      serving did before the single-file layout.
    """
    import multiprocessing
    import tempfile
    from pathlib import Path

    from repro.core.flat import flatten_index, store_nbytes, widen_store
    from repro.io.oracle_store import load_flat_index, save_index
    from repro.service.procpool import ProcessShardedService
    from repro.service.sharded import ShardedService

    store = flatten_index(index)
    compact_bytes = store_nbytes(store)
    int64_bytes = store_nbytes(widen_store(store))
    size_ratio = int64_bytes / compact_bytes
    block = {
        "compact_bytes": compact_bytes,
        "int64_bytes": int64_bytes,
        "size_ratio": size_ratio,
    }
    report["mmap"] = block
    if size_ratio < 1.8:
        failures.append(
            f"compact store only {size_ratio:.2f}x smaller than int64 (< 1.8x)"
        )

    with tempfile.TemporaryDirectory(prefix="repro-mmap-smoke-") as tmp:
        flat_path = Path(tmp) / "oracle.bin"
        npz_path = Path(tmp) / "oracle.npz"
        save_index(index, flat_path)
        save_index(index, npz_path, format="npz")
        block["store_file_bytes"] = flat_path.stat().st_size

        # --- engine parity: mmap vs in-memory, all three surfaces ----
        engine = FlatQueryEngine.from_index(index)
        mapped = FlatQueryEngine(
            load_flat_index(flat_path, mmap=True), kernel=index.config.kernel
        )
        if _fields(mapped.query_batch(pairs)) != _fields(engine.query_batch(pairs)):
            failures.append("mmap engine query_batch differs from in-memory")
        sample = pairs[:128]
        if _fields([mapped.query(s, t) for s, t in sample]) != _fields(
            [engine.query(s, t) for s, t in sample]
        ):
            failures.append("mmap engine query differs from in-memory")
        if _fields(mapped.query_batch(sample, with_path=True)) != _fields(
            engine.query_batch(sample, with_path=True)
        ):
            failures.append("mmap engine with_path differs from in-memory")

        # --- both shard backends: mmap vs copy, byte-identical -------
        methods = multiprocessing.get_all_start_methods()
        start_method = "fork" if "fork" in methods else "spawn"
        for name, cls, kwargs in (
            ("threads", ShardedService, {}),
            ("procpool", ProcessShardedService, {"start_method": start_method}),
        ):
            with cls.from_saved(flat_path, shards, **kwargs) as copy_svc:
                want = copy_svc.query_batch(pairs, with_path=True)
            with cls.from_saved(flat_path, shards, mmap=True, **kwargs) as mm_svc:
                got = mm_svc.query_batch(pairs, with_path=True)
            if got != want:
                failures.append(f"{name} backend: mmap results differ from copy")

        # --- cold start: mmap vs the legacy copy path -----------------
        probe = pairs[0]
        copy_s = min(
            _time_cold_start(
                npz_path, shards, mmap=False,
                start_method=start_method, probe_pair=probe,
            )
            for _ in range(2)
        )
        mmap_s = min(
            _time_cold_start(
                flat_path, shards, mmap=True,
                start_method=start_method, probe_pair=probe,
            )
            for _ in range(2)
        )
        speedup = copy_s / mmap_s if mmap_s > 0 else float("inf")
        block["cold_start"] = {
            "copy_seconds": copy_s,
            "mmap_seconds": mmap_s,
            "speedup": speedup,
            "start_method": start_method,
            "shards": shards,
        }
        if start_method == "fork" and speedup < 5.0:
            failures.append(
                f"mmap cold start only {speedup:.2f}x over the copy path (< 5x)"
            )
        # Without fork, worker interpreter spawn dominates both sides
        # identically; the ratio is recorded but not asserted.


def _cache_race_phase(index, pairs, report, capacities=(16, 64, 256)) -> None:
    """Race LRU vs 2Q vs TinyLFU admission on the Zipf workload.

    All caches replay the same stream against the same resolved
    answers; what differs is only admission.  Per-capacity hit rates
    land in ``BENCH_service.json`` (the ROADMAP cache-tuning
    evaluation).  The sweep spans capacity regimes deliberately: under
    hard eviction pressure probation (2Q) and the frequency-sketch gate
    (TinyLFU) protect the repeated tail from one-hit wonders; with
    ample capacity the policies converge.
    """
    from repro.service.cache import ResultCache

    engine = FlatQueryEngine.from_index(index)
    keys = list(dict.fromkeys(ResultCache.canonical(s, t) for s, t in pairs))
    answers = dict(zip(keys, engine.query_batch(keys)))
    race = {"distinct_pairs": len(keys), "capacities": {}}
    for capacity in capacities:
        row = {}
        for admission in ("lru", "2q", "tinylfu"):
            cache = ResultCache(capacity, admission=admission)
            for s, t in pairs:
                if cache.get(s, t) is None:
                    cache.put(answers[ResultCache.canonical(s, t)])
            snap = cache.snapshot()
            row[admission] = {
                "hit_rate": snap["hit_rate"],
                "hits": snap["hits"],
                "evictions": snap["evictions"],
                **(
                    {"promotions": snap["promotions"]}
                    if "promotions" in snap
                    else {}
                ),
                **({"denied": snap["denied"]} if "denied" in snap else {}),
            }
        race["capacities"][str(capacity)] = row
    report["cache_race"] = race


def _split_round_robin(items, parts):
    """Deal ``items`` across ``parts`` clients, preserving per-client order."""
    return [items[i::parts] for i in range(parts)]


async def _net_client_serial(host, port, pairs):
    """One lockstep client: send a query, await its answer, repeat."""
    import asyncio

    reader, writer = await asyncio.open_connection(host, port)
    responses = []
    try:
        for s, t in pairs:
            writer.write(json.dumps({"s": int(s), "t": int(t)}).encode() + b"\n")
            await writer.drain()
            responses.append(json.loads(await reader.readline()))
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, OSError):
            pass
    return responses


async def _net_client_pipelined(host, port, pairs):
    """One pipelined client: concurrent writer and reader tasks.

    Keeping many requests outstanding per connection is what lets the
    server's coalescer see cross-client batches; the reader runs
    concurrently so neither side deadlocks on full socket buffers.
    """
    import asyncio

    reader, writer = await asyncio.open_connection(host, port)

    async def pump():
        for i, (s, t) in enumerate(pairs):
            writer.write(json.dumps({"s": int(s), "t": int(t)}).encode() + b"\n")
            if i % 128 == 127:
                await writer.drain()
        await writer.drain()

    pump_task = asyncio.create_task(pump())
    responses = []
    try:
        for _ in pairs:
            responses.append(json.loads(await reader.readline()))
        await pump_task
    finally:
        pump_task.cancel()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, OSError):
            pass
    return responses


def _net_phase(index, pairs, failures, report, *, clients=6) -> None:
    """Race coalesced (pipelined) against per-connection-serial TCP serving.

    The same Zipf workload is dealt across ``clients`` concurrent TCP
    connections twice: once lockstep (one outstanding request per
    connection — the coalescer can only fold what happens to collide)
    and once pipelined (many outstanding — flushes grow toward
    ``max_batch`` and the fused kernels amortise per-query overhead).
    The served app runs with ``cache_size=0`` so the measured win is
    coalescing, not result caching.  Asserts the ISSUE 6 bar —
    coalesced >= 2x serial — then drills a hot reload under pipelined
    load and asserts zero dropped or errored responses.
    """
    import asyncio
    import tempfile

    from repro.io.oracle_store import save_index
    from repro.service.net import NetServer

    engine = FlatQueryEngine.from_index(index)
    expected = [r.distance for r in engine.query_batch(pairs)]
    slices = _split_round_robin(pairs, clients)
    expected_slices = _split_round_robin(expected, clients)

    def check_answers(mode, answers):
        got = [len(part) for part in answers]
        want = [len(part) for part in slices]
        if got != want:
            failures.append(f"net {mode}: response counts {got} != {want}")
            return
        errors = sum(1 for part in answers for r in part if "error" in r)
        if errors:
            failures.append(f"net {mode}: {errors} error responses")
        for part, want_part in zip(answers, expected_slices):
            if [r.get("distance") for r in part] != want_part:
                failures.append(
                    f"net {mode}: distances diverge from the flat engine "
                    "(per-connection ordering broken?)"
                )
                break

    async def run_mode(client):
        app = ServiceApp.from_index(index, cache_size=0)
        server = NetServer(app, port=0)
        host, port = await server.start()
        try:
            started = time.perf_counter()
            answers = await asyncio.gather(
                *(client(host, port, part) for part in slices)
            )
            elapsed = time.perf_counter() - started
            snap = server.stats.snapshot()
        finally:
            await server.drain()
            app.close()
        return answers, elapsed, snap

    async def run_reload(tmp):
        path = os.path.join(tmp, "store.flat")
        save_index(index, path)
        app = ServiceApp.from_saved(path, mmap=True, cache_size=0)
        server = NetServer(app, port=0)
        host, port = await server.start()

        async def control():
            # Fire the reload a moment in, while the pipelined clients
            # are mid-stream — the swap must not drop or fail anything.
            await asyncio.sleep(0.01)
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                json.dumps({"cmd": "reload", "path": path}).encode() + b"\n"
            )
            await writer.drain()
            response = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            return response

        try:
            outcome = await asyncio.gather(
                control(),
                *(_net_client_pipelined(host, port, part) for part in slices),
            )
            reloads = server.stats.reloads
        finally:
            await server.drain()
            server.app.close()  # the reload swapped the app we opened
        return outcome[0], outcome[1:], reloads

    serial_answers, serial_s, _ = asyncio.run(run_mode(_net_client_serial))
    coalesced_answers, coalesced_s, snap = asyncio.run(
        run_mode(_net_client_pipelined)
    )
    check_answers("serial", serial_answers)
    check_answers("coalesced", coalesced_answers)
    speedup = serial_s / coalesced_s if coalesced_s > 0 else float("inf")
    if speedup < 2.0:
        failures.append(f"net coalesce speedup {speedup:.2f}x < 2x")

    with tempfile.TemporaryDirectory() as tmp:
        control_response, reload_answers, reloads = asyncio.run(run_reload(tmp))
    check_answers("reload", reload_answers)
    reload_ok = bool(control_response.get("ok")) and reloads == 1
    if not reload_ok:
        failures.append(f"net reload did not complete: {control_response}")

    flushes = snap["flushes"]
    report["net"] = {
        "clients": clients,
        "queries": len(pairs),
        "serial": {"seconds": serial_s, "qps": len(pairs) / serial_s},
        "coalesced": {
            "seconds": coalesced_s,
            "qps": len(pairs) / coalesced_s,
            "flushes": flushes["count"],
            "mean_batch": flushes["mean_batch"],
            "max_batch": flushes["max_batch"],
            "cross_client_flushes": flushes["cross_client"],
        },
        "coalesce": {"speedup": speedup},
        "reload": {
            "queries": len(pairs),
            "responses": sum(len(part) for part in reload_answers),
            "errors": sum(
                1 for part in reload_answers for r in part if "error" in r
            ),
            "reloads": reloads,
            "ok": reload_ok,
        },
    }


def _percentiles_ms(per_query_seconds) -> dict:
    p50, p95, p99 = np.percentile(np.asarray(per_query_seconds), [50, 95, 99])
    return {"p50_ms": p50 * 1e3, "p95_ms": p95 * 1e3, "p99_ms": p99 * 1e3}


def run_smoke(
    shards: int = 2,
    queries: int = 1500,
    scale: float = 0.0008,
    batch_size: int = 256,
) -> int:
    """Drive both engines and every shard transport on a tiny graph.

    Exercised by CI on every PR:

    * dict reference vs flat engine ``query_batch`` — field-identical
      results and a >= 2x flat speedup (the PR 3 acceptance bar);
    * thread vs process shard backends across all transport planes
      (inline, pipe-frame, shared-memory ring) — identical results,
      paths and MessageLog totals (so process spawn, shared memory,
      frame codecs and wire accounting cannot rot between runs).

    Writes ``benchmarks/_artifacts/BENCH_service.json`` with
    throughput and p50/p95/p99 per engine×backend plus the
    dispatch/execute/collect overhead split per transport
    (``shard_overhead``), and returns a process exit code.
    """
    from repro.core.config import OracleConfig
    from repro.datasets.social import generate

    graph = generate("livejournal", scale=scale, seed=7)
    config = OracleConfig(alpha=4.0, seed=7, fallback="none", vicinity_floor=0.75)
    index = VicinityOracle.build(graph, config=config).index
    pairs = zipf_pairs(graph.n, queries, exponent=1.0, seed=11)
    batches = list(in_batches(pairs, batch_size))
    failures: list[str] = []
    grid: dict[str, dict] = {}
    extra: dict = {}
    speedup = None

    def record(engine_name, backend_name, seconds, per_query):
        grid[f"{engine_name}:{backend_name}"] = {
            "engine": engine_name,
            "backend": backend_name,
            "seconds": seconds,
            "qps": queries / seconds if seconds > 0 else float("inf"),
            **_percentiles_ms(per_query),
        }

    def write_report():
        report = {
            "workload": {
                "graph": "livejournal-chung-lu",
                "nodes": graph.n,
                "queries": queries,
                "batch_size": batch_size,
                "zipf_exponent": 1.0,
                "shards": shards,
                "seed": 11,
            },
            "grid": grid,
            "speedup_flat_vs_dict_batch": speedup,
            **extra,
            "ok": not failures,
            "failures": failures,
        }
        return write_artifact("BENCH_service.json", json.dumps(report, indent=2))

    try:
        speedup = _smoke_phases(
            index, pairs, batches, shards, failures, record, extra
        )
        _mmap_phase(index, pairs, shards, failures, extra)
        _cache_race_phase(index, pairs, extra)
        _net_phase(index, pairs, failures, extra)
    except Exception as exc:
        # A crash (dead worker, QueryError) is when the diagnostics
        # matter most — persist the partial grid before propagating.
        failures.append(f"smoke crashed: {type(exc).__name__}: {exc}")
        write_report()
        raise

    path = write_report()
    rows = [
        (key, f"{entry['seconds']:.3f}", int(entry["qps"]),
         f"{entry['p50_ms']:.3f}", f"{entry['p99_ms']:.3f}")
        for key, entry in grid.items()
    ]
    print(
        render_table(
            ["engine:backend", "seconds", "queries/s", "p50 ms", "p99 ms"],
            rows,
            title=(
                f"smoke: {graph.n:,} nodes, {queries:,} Zipf queries, "
                f"{shards} shards, flat-vs-dict speedup {speedup:.2f}x"
            ),
        )
    )
    for key, split in extra.get("shard_overhead", {}).items():
        print(
            f"{key} ({split['transport']}): dispatch {split['dispatch_s']:.3f}s"
            f" / execute {split['execute_s']:.3f}s"
            f" / collect {split['collect_s']:.3f}s"
        )
    mmap_block = extra.get("mmap", {})
    cold = mmap_block.get("cold_start", {})
    race = extra.get("cache_race", {})
    if mmap_block:
        print(
            f"compact store {mmap_block['size_ratio']:.2f}x smaller than int64; "
            f"mmap cold start {cold.get('speedup', float('nan')):.1f}x over the "
            f"copy path ({cold.get('start_method', '?')} workers)"
        )
    if race:
        sweep = ", ".join(
            f"@{cap}: lru {row['lru']['hit_rate']:.3f} / 2q {row['2q']['hit_rate']:.3f}"
            f" / tinylfu {row['tinylfu']['hit_rate']:.3f}"
            for cap, row in race["capacities"].items()
        )
        print(f"cache admission race (hit rates) {sweep}")
    net = extra.get("net", {})
    if net:
        print(
            f"net serving ({net['clients']} clients): coalesced "
            f"{net['coalesced']['qps']:,.0f} qps vs serial "
            f"{net['serial']['qps']:,.0f} qps "
            f"({net['coalesce']['speedup']:.2f}x, mean batch "
            f"{net['coalesced']['mean_batch']:.1f}, "
            f"{net['coalesced']['cross_client_flushes']} cross-client flushes); "
            f"hot reload under load: {net['reload']['responses']}/"
            f"{net['reload']['queries']} answered, "
            f"{net['reload']['errors']} errors"
        )
    print(f"wrote {path}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        "ok: identical results across engines and backends (mmap included), "
        f"flat query_batch {speedup:.2f}x over the dict path"
    )
    return 0


#: Every shard backend×transport plane the smoke must agree across.
#: The grid key for the ring plane stays ``flat:procpool`` so the
#: committed-baseline trend (one procpool number per PR) is unbroken;
#: ring is the backend's default transport.
SMOKE_SHARD_CONFIGS = (
    ("flat:threads", "threads", {}),
    ("flat:procpool:pipe", "procpool", {"transport": "pipe"}),
    ("flat:procpool", "procpool", {"transport": "ring"}),
)

#: Timed passes per shard config; the recorded figure is the best one
#: (cross-process transports on a shared CI box see ±30% scheduler
#: noise per pass — the best pass is the steady state).
SMOKE_SHARD_PASSES = 3


def _smoke_phases(index, pairs, batches, shards, failures, record, extra) -> float:
    """The measured smoke phases; appends to ``failures``, fills the grid.

    Returns the flat-vs-dict batch speedup.
    """
    from repro.service import create_shard_backend

    # --- engines, single machine -------------------------------------
    reference = DictReferenceOracle(index)
    engine = FlatQueryEngine.from_index(index)
    reference.query_batch(pairs[:64])  # warm both outside the timers
    engine.query_batch(pairs[:64])
    # Best of two passes per engine: the comparison should measure the
    # steady state, not whichever pass a CI neighbour perturbed.
    dict_results, dict_s, dict_pq = _drive_batches(reference.query_batch, batches)
    _, dict_s2, dict_pq2 = _drive_batches(reference.query_batch, batches)
    if dict_s2 < dict_s:
        dict_s, dict_pq = dict_s2, dict_pq2
    flat_results, flat_s, flat_pq = _drive_batches(engine.query_batch, batches)
    _, flat_s2, flat_pq2 = _drive_batches(engine.query_batch, batches)
    if flat_s2 < flat_s:
        flat_s, flat_pq = flat_s2, flat_pq2
    record("dict", "single", dict_s, dict_pq)
    record("flat", "single", flat_s, flat_pq)
    mismatched = sum(
        (got.distance, got.method, got.witness, got.probes)
        != (want.distance, want.method, want.witness, want.probes)
        for got, want in zip(flat_results, dict_results)
    )
    if mismatched:
        failures.append(f"engines disagree on {mismatched} results")
    flat_paths = engine.query_batch(batches[0], with_path=True)
    dict_paths = reference.query_batch(batches[0], with_path=True)
    if [r.path for r in flat_paths] != [r.path for r in dict_paths]:
        failures.append("engines disagree on paths")
    speedup = dict_s / flat_s if flat_s > 0 else float("inf")
    if speedup < 2.0:
        failures.append(f"flat engine speedup {speedup:.2f}x < 2x")

    # --- shard backends x transport planes (all run ShardQueryEngine) -
    outcomes = {}
    overhead = {}
    for key, backend, kwargs in SMOKE_SHARD_CONFIGS:
        service = create_shard_backend(index, shards, backend=backend, **kwargs)
        try:
            # Warm with a full batch so worker spawn and the engines'
            # lazy structures settle outside the timers, then take the
            # best of two passes — the same steady-state policy as the
            # single-machine engines above (the coordinator logs every
            # pass, so the parity totals below cover both).
            service.query_batch(batches[0])
            log_mark = (service.log.messages, service.log.bytes)
            splits = []
            drives = []
            for _ in range(SMOKE_SHARD_PASSES):
                before = service.transport_stats()
                results, seconds, per_query = _drive_batches(
                    service.query_batch, batches
                )
                after = service.transport_stats()
                drives.append((seconds, per_query, results))
                splits.append({
                    phase: after[f"{phase}_s"] - before[f"{phase}_s"]
                    for phase in ("dispatch", "execute", "collect")
                })
            best = min(range(len(drives)), key=lambda i: drives[i][0])
            seconds, per_query, results = drives[best]
            stats = service.transport_stats()
            log = service.log
            outcomes[key] = {
                "results": results,
                "paths": service.query_batch(batches[0], with_path=True),
                "log": (log.messages - log_mark[0], log.bytes - log_mark[1]),
            }
            record("flat", key.split(":", 1)[1], seconds, per_query)
            # Coordinator/worker time split over the best timed drive
            # (not service lifetime, which would fold in spawn and
            # warm-up): dispatch and collect are the coordinator's
            # transport overhead, execute is summed worker engine time
            # — the figures that *measure* the shard-overhead gap
            # instead of inferring it.
            overhead[key] = {
                "backend": backend,
                "transport": stats["transport"],
                "replicas": stats["replicas"],
                "sub_batch": stats["sub_batch"],
                "dispatch_s": splits[best]["dispatch"],
                "execute_s": splits[best]["execute"],
                "collect_s": splits[best]["collect"],
                "coordinator_s": (
                    splits[best]["dispatch"] + splits[best]["collect"]
                ),
            }
        finally:
            service.close()

    reference_key = SMOKE_SHARD_CONFIGS[0][0]
    want = outcomes[reference_key]
    for key, _, _ in SMOKE_SHARD_CONFIGS[1:]:
        got = outcomes[key]
        if got["results"] != want["results"]:
            failures.append(f"{key}: results differ from {reference_key}")
        if got["paths"] != want["paths"]:
            failures.append(f"{key}: paths differ from {reference_key}")
        if got["log"] != want["log"]:
            failures.append(
                f"{key}: message log {got['log']} != {want['log']}"
            )
    extra["shard_overhead"] = overhead
    return speedup


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the tiny two-backend agreement check and exit",
    )
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--queries", type=int, default=1500)
    parser.add_argument("--scale", type=float, default=0.0008)
    parser.add_argument("--batch-size", type=int, default=256)
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("this script only supports --smoke; run benchmarks via pytest")
    return run_smoke(
        shards=args.shards,
        queries=args.queries,
        scale=args.scale,
        batch_size=args.batch_size,
    )


if __name__ == "__main__":
    import sys

    sys.exit(main())
