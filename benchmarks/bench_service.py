"""Serving-layer throughput: batching + caching vs the naive loop.

Reproduction targets on a Chung-Lu social graph under a repeated-pair
(Zipf) workload:

* the batched + cached serving stack answers at least 2x the
  throughput of the single-query loop — the property that makes the
  oracle deployable behind production traffic, per the follow-up
  serving paper ("Shortest Paths in Microseconds", arXiv:1309.0874);
* the process-pool shard backend answers batches at least 2x the
  throughput of the GIL-bound thread backend at 4 shards, with
  identical results — the property that makes sharding buy *speed*,
  not just routing fidelity.

Also runnable as a script for CI::

    PYTHONPATH=src python benchmarks/bench_service.py --smoke

which drives a tiny graph through both shard backends and verifies
identical results and MessageLog totals.
"""

import time

import numpy as np

try:
    import pytest
except ImportError:  # --smoke script mode on a bare interpreter
    pytest = None

from repro.core.oracle import VicinityOracle
from repro.experiments.reporting import render_table
from repro.service import (
    ProcessShardedService,
    ServiceApp,
    ShardedService,
    in_batches,
    zipf_pairs,
)

try:
    from benchmarks.conftest import write_artifact
except ImportError:  # run as a script: benchmarks/ itself is sys.path[0]
    from conftest import write_artifact

QUERIES = 20000
BATCH_SIZE = 256
#: Query count for the backend-vs-backend comparison (the thread
#: backend pays several executor hops per query, so it sets the pace).
SHARD_QUERIES = 6000
SHARD_COUNT = 4


def _drive(executor, pairs):
    started = time.perf_counter()
    for batch in in_batches(pairs, BATCH_SIZE):
        executor.run(batch)
    return time.perf_counter() - started


def test_batched_cached_throughput(benchmark, oracles, graphs):
    """Batched+cached serving must be >= 2x the single-query loop."""
    oracle = oracles["livejournal"]
    graph = graphs["livejournal"]
    pairs = zipf_pairs(graph.n, QUERIES, exponent=1.0, seed=11)

    # Baseline: the naive per-pair loop on a fresh oracle wrapper.
    single_oracle = VicinityOracle(oracle.index)
    started = time.perf_counter()
    for s, t in pairs:
        single_oracle.query(s, t)
    single_s = time.perf_counter() - started

    # Serving stack: dedup + symmetry + landmark-aware LRU, cold start.
    app = ServiceApp.from_index(oracle.index)
    batched_s = benchmark.pedantic(
        _drive, args=(app.executor, pairs), rounds=1, iterations=1
    )

    single_qps = QUERIES / single_s
    batched_qps = QUERIES / batched_s
    speedup = single_s / batched_s
    snapshot = app.snapshot()
    benchmark.extra_info.update(
        {
            "single_qps": int(single_qps),
            "batched_qps": int(batched_qps),
            "speedup": round(speedup, 2),
            "cache_hit_rate": round(snapshot["cache"]["hit_rate"], 3),
        }
    )
    write_artifact(
        "service_throughput.txt",
        render_table(
            ["mode", "seconds", "queries/s"],
            [
                ("single-query loop", f"{single_s:.3f}", int(single_qps)),
                ("batched + cached", f"{batched_s:.3f}", int(batched_qps)),
            ],
            title=(
                f"Serving throughput, livejournal Chung-Lu stand-in "
                f"({QUERIES:,} Zipf queries, speedup {speedup:.2f}x)"
            ),
        ),
    )
    assert speedup >= 2.0, f"batched+cached speedup {speedup:.2f}x < 2x"


def test_batch_results_match_single_queries(oracles, graphs):
    """The serving stack must not change a single answer."""
    oracle = oracles["dblp"]
    graph = graphs["dblp"]
    pairs = zipf_pairs(graph.n, 2000, exponent=1.0, seed=5)
    app = ServiceApp.from_index(oracle.index)
    results = []
    for batch in in_batches(pairs, BATCH_SIZE):
        results.extend(app.executor.run(batch))
    reference = VicinityOracle(oracle.index)
    for (s, t), got in zip(pairs, results):
        assert got.source == s and got.target == t
        assert got.distance == reference.query(s, t).distance


def test_sharded_service_throughput_and_traffic(benchmark, oracles, graphs):
    """The real sharded executor: bounded traffic, exact answers."""
    oracle = oracles["livejournal"]
    graph = graphs["livejournal"]
    rng = np.random.default_rng(23)
    pairs = [tuple(int(x) for x in rng.integers(0, graph.n, 2)) for _ in range(2000)]

    with ShardedService(oracle.index, 8) as service:

        def drive():
            return service.query_batch(pairs)

        results = benchmark.pedantic(drive, rounds=1, iterations=1)
        log = service.log
        total = log.local_queries + log.remote_queries
        mean_messages = log.messages / total
        benchmark.extra_info.update(
            {
                "mean_messages": round(mean_messages, 2),
                "mean_bytes": int(log.bytes / total),
                "remote_fraction": round(log.remote_queries / total, 3),
            }
        )
        # Same single-round-trip bound the simulation asserts.
        assert mean_messages <= 4.0
        reference = VicinityOracle(oracle.index)
        mismatches = 0
        for (s, t), got in zip(pairs, results):
            expected = reference.query(s, t)
            # Sharded serving has no fallback; any other method must agree.
            if expected.method == "fallback":
                assert got.method == "miss"
            else:
                mismatches += got.distance != expected.distance
        assert mismatches == 0


def _drive_backend(service, batches):
    results = []
    started = time.perf_counter()
    for batch in batches:
        results.extend(service.query_batch(batch))
    return results, time.perf_counter() - started


def test_procpool_doubles_thread_shard_throughput(benchmark, oracles, graphs):
    """The process-pool backend: >= 2x thread-backend batch throughput.

    The thread backend executes shard work under the GIL (sharding buys
    isolation, not speed); the procpool backend runs the same §5 scheme
    on worker processes over a shared-memory index.  Same answers, same
    wire accounting, at least double the throughput at 4 shards.
    """
    oracle = oracles["livejournal"]
    graph = graphs["livejournal"]
    pairs = zipf_pairs(graph.n, SHARD_QUERIES, exponent=1.0, seed=17)
    batches = list(in_batches(pairs, BATCH_SIZE))

    with ShardedService(oracle.index, SHARD_COUNT) as threads:
        thread_results, thread_s = _drive_backend(threads, batches)
        thread_log = (threads.log.messages, threads.log.bytes)

    from repro.core.parallel import MessageLog

    with ProcessShardedService(oracle.index, SHARD_COUNT) as procs:
        procs.query_batch(pairs[:64])  # warm the worker pipes
        procs.log = MessageLog()  # drop the warm-up's wire accounting

        def drive():
            return _drive_backend(procs, batches)

        proc_results, proc_s = benchmark.pedantic(drive, rounds=1, iterations=1)

    assert proc_results == thread_results  # byte-identical serving
    thread_qps = SHARD_QUERIES / thread_s
    proc_qps = SHARD_QUERIES / proc_s
    speedup = thread_s / proc_s
    benchmark.extra_info.update(
        {
            "thread_qps": int(thread_qps),
            "procpool_qps": int(proc_qps),
            "speedup": round(speedup, 2),
            "shards": SHARD_COUNT,
        }
    )
    write_artifact(
        "shard_backend_throughput.txt",
        render_table(
            ["backend", "seconds", "queries/s"],
            [
                (f"threads ({SHARD_COUNT} shards)", f"{thread_s:.3f}", int(thread_qps)),
                (f"procpool ({SHARD_COUNT} shards)", f"{proc_s:.3f}", int(proc_qps)),
            ],
            title=(
                f"Shard-backend throughput, livejournal Chung-Lu stand-in "
                f"({SHARD_QUERIES:,} Zipf queries, speedup {speedup:.2f}x)"
            ),
        ),
    )
    assert thread_log == (procs.log.messages, procs.log.bytes)
    assert speedup >= 2.0, f"procpool speedup {speedup:.2f}x < 2x"


# ----------------------------------------------------------------------
# script mode: the CI smoke run
# ----------------------------------------------------------------------
def run_smoke(shards: int = 2, queries: int = 1500, scale: float = 0.0008) -> int:
    """Drive both shard backends on a tiny graph; verify they agree.

    Exercised by CI on every PR so the procpool path (process spawn,
    shared memory, wire accounting) cannot rot between benchmark runs.
    Returns a process exit code.
    """
    from repro.core.config import OracleConfig
    from repro.datasets.social import generate
    from repro.service import create_shard_backend

    graph = generate("livejournal", scale=scale, seed=7)
    config = OracleConfig(alpha=4.0, seed=7, fallback="none", vicinity_floor=0.75)
    index = VicinityOracle.build(graph, config=config).index
    pairs = zipf_pairs(graph.n, queries, exponent=1.0, seed=11)
    batches = list(in_batches(pairs, 128))

    outcomes = {}
    for backend in ("threads", "procpool"):
        service = create_shard_backend(index, shards, backend=backend)
        try:
            service.query_batch(pairs[:32])  # warm-up outside the timer
            results, seconds = _drive_backend(service, batches)
            log = service.log
            outcomes[backend] = {
                "results": results,
                "paths": service.query_batch(batches[0], with_path=True),
                "seconds": seconds,
                "log": (log.messages, log.bytes),
            }
        finally:
            service.close()

    threads, procpool = outcomes["threads"], outcomes["procpool"]
    rows = [
        (name, f"{out['seconds']:.3f}", int(queries / out["seconds"]))
        for name, out in outcomes.items()
    ]
    print(
        render_table(
            ["backend", "seconds", "queries/s"],
            rows,
            title=f"smoke: {graph.n:,} nodes, {queries:,} Zipf queries, {shards} shards",
        )
    )
    if threads["results"] != procpool["results"]:
        print("FAIL: backends disagree on results")
        return 1
    if threads["paths"] != procpool["paths"]:
        print("FAIL: backends disagree on paths")
        return 1
    if threads["log"] != procpool["log"]:
        print(f"FAIL: message logs differ: {threads['log']} != {procpool['log']}")
        return 1
    print("ok: identical results, paths and message logs across backends")
    return 0


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the tiny two-backend agreement check and exit",
    )
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--queries", type=int, default=1500)
    parser.add_argument("--scale", type=float, default=0.0008)
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("this script only supports --smoke; run benchmarks via pytest")
    return run_smoke(shards=args.shards, queries=args.queries, scale=args.scale)


if __name__ == "__main__":
    import sys

    sys.exit(main())
