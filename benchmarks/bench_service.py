"""Serving-layer throughput: batching + caching vs the naive loop.

Reproduction target: on a Chung-Lu social graph under a repeated-pair
(Zipf) workload, the batched + cached serving stack answers at least
2x the throughput of the single-query loop — the property that makes
the oracle deployable behind production traffic, per the follow-up
serving paper ("Shortest Paths in Microseconds", arXiv:1309.0874).
"""

import time

import numpy as np
import pytest

from repro.core.oracle import VicinityOracle
from repro.experiments.reporting import render_table
from repro.service import ServiceApp, ShardedService, in_batches, zipf_pairs

from benchmarks.conftest import write_artifact

QUERIES = 20000
BATCH_SIZE = 256


def _drive(executor, pairs):
    started = time.perf_counter()
    for batch in in_batches(pairs, BATCH_SIZE):
        executor.run(batch)
    return time.perf_counter() - started


def test_batched_cached_throughput(benchmark, oracles, graphs):
    """Batched+cached serving must be >= 2x the single-query loop."""
    oracle = oracles["livejournal"]
    graph = graphs["livejournal"]
    pairs = zipf_pairs(graph.n, QUERIES, exponent=1.0, seed=11)

    # Baseline: the naive per-pair loop on a fresh oracle wrapper.
    single_oracle = VicinityOracle(oracle.index)
    started = time.perf_counter()
    for s, t in pairs:
        single_oracle.query(s, t)
    single_s = time.perf_counter() - started

    # Serving stack: dedup + symmetry + landmark-aware LRU, cold start.
    app = ServiceApp.from_index(oracle.index)
    batched_s = benchmark.pedantic(
        _drive, args=(app.executor, pairs), rounds=1, iterations=1
    )

    single_qps = QUERIES / single_s
    batched_qps = QUERIES / batched_s
    speedup = single_s / batched_s
    snapshot = app.snapshot()
    benchmark.extra_info.update(
        {
            "single_qps": int(single_qps),
            "batched_qps": int(batched_qps),
            "speedup": round(speedup, 2),
            "cache_hit_rate": round(snapshot["cache"]["hit_rate"], 3),
        }
    )
    write_artifact(
        "service_throughput.txt",
        render_table(
            ["mode", "seconds", "queries/s"],
            [
                ("single-query loop", f"{single_s:.3f}", int(single_qps)),
                ("batched + cached", f"{batched_s:.3f}", int(batched_qps)),
            ],
            title=(
                f"Serving throughput, livejournal Chung-Lu stand-in "
                f"({QUERIES:,} Zipf queries, speedup {speedup:.2f}x)"
            ),
        ),
    )
    assert speedup >= 2.0, f"batched+cached speedup {speedup:.2f}x < 2x"


def test_batch_results_match_single_queries(oracles, graphs):
    """The serving stack must not change a single answer."""
    oracle = oracles["dblp"]
    graph = graphs["dblp"]
    pairs = zipf_pairs(graph.n, 2000, exponent=1.0, seed=5)
    app = ServiceApp.from_index(oracle.index)
    results = []
    for batch in in_batches(pairs, BATCH_SIZE):
        results.extend(app.executor.run(batch))
    reference = VicinityOracle(oracle.index)
    for (s, t), got in zip(pairs, results):
        assert got.source == s and got.target == t
        assert got.distance == reference.query(s, t).distance


def test_sharded_service_throughput_and_traffic(benchmark, oracles, graphs):
    """The real sharded executor: bounded traffic, exact answers."""
    oracle = oracles["livejournal"]
    graph = graphs["livejournal"]
    rng = np.random.default_rng(23)
    pairs = [tuple(int(x) for x in rng.integers(0, graph.n, 2)) for _ in range(2000)]

    with ShardedService(oracle.index, 8) as service:

        def drive():
            return service.query_batch(pairs)

        results = benchmark.pedantic(drive, rounds=1, iterations=1)
        log = service.log
        total = log.local_queries + log.remote_queries
        mean_messages = log.messages / total
        benchmark.extra_info.update(
            {
                "mean_messages": round(mean_messages, 2),
                "mean_bytes": int(log.bytes / total),
                "remote_fraction": round(log.remote_queries / total, 3),
            }
        )
        # Same single-round-trip bound the simulation asserts.
        assert mean_messages <= 4.0
        reference = VicinityOracle(oracle.index)
        mismatches = 0
        for (s, t), got in zip(pairs, results):
            expected = reference.query(s, t)
            # Sharded serving has no fallback; any other method must agree.
            if expected.method == "fallback":
                assert got.method == "miss"
            else:
                mismatches += got.distance != expected.distance
        assert mismatches == 0
