"""Shared benchmark fixtures: datasets and built oracles.

Scales are chosen so the whole suite runs in a few minutes of CPython;
set ``REPRO_BENCH_SCALE`` (a multiplier, default 1.0) to grow every
dataset proportionally for a longer, higher-fidelity run.  Reproduced
tables are written to ``benchmarks/_artifacts/`` and summarised in
EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core.config import OracleConfig
from repro.core.oracle import VicinityOracle
from repro.datasets.social import generate

#: Per-dataset base scales giving ~4-10k nodes each at multiplier 1.
#: Large enough that online search costs dominate interpreter noise,
#: small enough that the whole suite builds in ~a minute.
BASE_SCALES = {
    "dblp": 0.01,
    "flickr": 0.004,
    "orkut": 0.0012,
    "livejournal": 0.002,
}

#: The operating profile used for headline runs (see DESIGN.md):
#: alpha = 4 with the exactness-preserving vicinity floor.
GUARDED_FLOOR = 0.75

ARTIFACTS = Path(__file__).parent / "_artifacts"


def bench_scale(name: str) -> float:
    """Effective generation scale for a dataset under the env multiplier."""
    multiplier = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    return BASE_SCALES[name] * multiplier


def write_artifact(filename: str, text: str) -> Path:
    """Persist a reproduced table/figure next to the benchmarks."""
    ARTIFACTS.mkdir(exist_ok=True)
    path = ARTIFACTS / filename
    path.write_text(text + "\n", encoding="utf-8")
    return path


@pytest.fixture(scope="session")
def graphs():
    """All four calibrated stand-ins at bench scale."""
    return {
        name: generate(name, scale=bench_scale(name), seed=7)
        for name in BASE_SCALES
    }


@pytest.fixture(scope="session")
def oracles(graphs):
    """Built oracles (guarded profile) for every dataset."""
    built = {}
    for name, graph in graphs.items():
        config = OracleConfig(
            alpha=4.0, seed=7, fallback="none", vicinity_floor=GUARDED_FLOOR
        )
        built[name] = VicinityOracle.build(graph, config=config)
    return built


@pytest.fixture(scope="session")
def paper_profile_oracles(graphs):
    """Built oracles with Definition 1 verbatim (floor disabled)."""
    built = {}
    for name, graph in graphs.items():
        config = OracleConfig(alpha=4.0, seed=7, fallback="none")
        built[name] = VicinityOracle.build(graph, config=config)
    return built
