"""§3.2 scaling claim: per-query work grows like sqrt(n), not n.

The paper: "the relative performance of our technique improves with the
size (and density) of the network".  The machine-independent content of
that claim is the work law: Algorithm 1 performs ``~ alpha * sqrt(n)``
hash probes per query regardless of m, while any online search must
touch a frontier that grows with the network.  This bench builds the
livejournal stand-in at four sizes (8x range) and asserts:

* mean probes grow sub-linearly, tracking ``sqrt(n)`` within a factor;
* the oracle consistently does several times less work per query than
  bidirectional BFS (the paper profile's steady ~4x at these sizes;
  the 431x wall-clock headline additionally needs the per-operation
  cost gap and millions of nodes).
"""

import numpy as np
import pytest

from repro.baselines.exact import BidirectionalBaseline
from repro.core.config import OracleConfig
from repro.core.oracle import VicinityOracle
from repro.datasets.social import generate
from repro.experiments.reporting import render_table

from benchmarks.conftest import write_artifact

SCALES = (0.0005, 0.001, 0.002, 0.004)


@pytest.fixture(scope="module")
def scaling_runs():
    rows = []
    for scale in SCALES:
        graph = generate("livejournal", scale=scale, seed=7)
        config = OracleConfig(alpha=4.0, seed=7, fallback="none")
        oracle = VicinityOracle.build(graph, config=config)
        bibfs = BidirectionalBaseline(graph)
        rng = np.random.default_rng(41)
        pairs = [tuple(int(x) for x in rng.integers(0, graph.n, 2)) for _ in range(150)]
        oracle.counters.reset()
        answered = 0
        for s, t in pairs:
            if oracle.query(s, t).distance is not None:
                answered += 1
            bibfs.distance(s, t)
        rows.append(
            {
                "n": graph.n,
                "m": graph.num_edges,
                "our_probes": oracle.counters.mean_probes,
                "bibfs_edges": bibfs.counters.mean_edges,
                "answered": answered / len(pairs),
                "work_ratio": bibfs.counters.mean_edges
                / max(oracle.counters.mean_probes, 1.0),
            }
        )
    return rows


def test_probe_count_tracks_sqrt_n(benchmark, scaling_runs):
    """Probes per query scale like sqrt(n) across an 8x size range."""
    rows = benchmark.pedantic(lambda: scaling_runs, rounds=1, iterations=1)
    for i, row in enumerate(rows):
        benchmark.extra_info[f"n_{i}"] = row["n"]
        benchmark.extra_info[f"probes_{i}"] = round(row["our_probes"], 1)
        benchmark.extra_info[f"work_ratio_{i}"] = round(row["work_ratio"], 2)
    # Normalised probes/sqrt(n) must stay within a constant band while
    # n grows 8x (the first, smallest point is noisiest — skip it).
    normalised = [r["our_probes"] / np.sqrt(r["n"]) for r in rows[1:]]
    assert max(normalised) < 4.0 * min(normalised)
    # Sub-linear: a 4x n increase (from the second point) must stay far
    # below a 4x probe increase — sqrt scaling predicts 2x.
    assert rows[-1]["our_probes"] < 3.0 * rows[1]["our_probes"]
    write_artifact(
        "scaling.txt",
        render_table(
            ["n", "m", "our probes", "probes/sqrt(n)", "BiBFS edges", "work ratio", "answered"],
            [
                (
                    r["n"],
                    r["m"],
                    f"{r['our_probes']:,.0f}",
                    f"{r['our_probes'] / np.sqrt(r['n']):.2f}",
                    f"{r['bibfs_edges']:,.0f}",
                    f"{r['work_ratio']:.2f}",
                    f"{r['answered']:.2%}",
                )
                for r in rows
            ],
            title="Scaling (Section 3.2): per-query work vs n (livejournal, paper profile)",
        ),
    )


def test_work_advantage_over_bidirectional(benchmark, scaling_runs):
    """The oracle does several times less work than BiBFS at every size."""
    rows = benchmark.pedantic(lambda: scaling_runs, rounds=1, iterations=1)
    for row in rows[1:]:
        assert row["work_ratio"] > 1.5, row
    benchmark.extra_info["min_work_ratio"] = round(
        min(r["work_ratio"] for r in rows[1:]), 2
    )
