"""Deadlines under overload: the degrade ladder priced against capacity.

The deadline plane (PR 10) claims that *slowness* is an operational
event, not a correctness event: every admitted request either meets
its budget with an exact answer, degrades to a landmark estimate
(``"degraded": true``), or is shed with an honest ``retry_after_ms`` —
never silently late, never unanswered.  This benchmark prices that
claim on the network front end over the process backend:

* **capacity** — closed-loop TCP clients drive the undisturbed server
  flat out with no deadlines configured: the measured goodput is the
  yardstick, and every answer must be exact;
* **overload** — the workers are slowed with deterministic ``delay:*``
  latency faults (:mod:`repro.service.faults`) while open-loop paced
  clients offer ~2x the measured capacity, every request carrying (or
  inheriting) a deadline, with the SLO ladder and the AIMD adaptive
  limiter active.  Acceptance: zero unanswered requests, 100% of
  responses exact / degraded / shed-with-retry, p99 of the *exact*
  answers within the configured deadline, and goodput (exact +
  degraded answers per second) at >= 80% of the no-fault yardstick.

The server runs an *internal* budget at 40% of the external deadline —
the usual serving practice: under overload the admitted exact answers
hug the internal budget (the predictor admits exactly what still
fits), so the remaining 60% is the allowance that keeps a budget-edge
answer inside the client-measured SLO after the wire and event-loop
overhead on both sides of the socket (this harness runs the server
and the whole client fleet on one process's event loop, which
inflates that overhead well past what a real deployment sees).

Runnable as a script for CI::

    PYTHONPATH=src python benchmarks/bench_slo.py --smoke

which writes ``benchmarks/_artifacts/BENCH_slo.json`` — qps, exact
p50/p99, ladder-rung rates and the SLO/limiter counters per phase —
and exits non-zero on any acceptance failure.
"""

import asyncio
import json
import math
import multiprocessing
import time

import numpy as np

from repro.core.config import OracleConfig
from repro.core.oracle import VicinityOracle
from repro.datasets.social import generate
from repro.experiments.reporting import render_table
from repro.service import ServiceApp, zipf_pairs
from repro.service.faults import FaultPlan
from repro.service.net import NetServer
from repro.service.slo import SloConfig

try:
    from benchmarks.conftest import write_artifact
except ImportError:  # script mode from the benchmarks directory
    from conftest import write_artifact


def _split_round_robin(items, parts):
    """Deal ``items`` across ``parts`` clients, preserving global order."""
    return [list(enumerate(items))[i::parts] for i in range(parts)]


async def _client(host, port, indexed_groups, *, window=0, interval_s=0.0,
                  deadline_ms=None):
    """One TCP client; returns ``[(global_index, latency_s, response)]``.

    Each item is ``(global_index, [pairs...])`` — one wire request: a
    single ``{"s", "t"}`` object for a one-pair group, a ``{"pairs"}``
    batch otherwise.  ``window > 0`` runs closed-loop (at most
    ``window`` outstanding, full speed — the capacity probe);
    ``interval_s > 0`` runs open-loop (send on schedule regardless of
    responses — the overload drive).  ``deadline_ms`` is attached to
    every *even* global index so both the explicit field and the
    server default are exercised.
    """
    reader, writer = await asyncio.open_connection(host, port)
    total = len(indexed_groups)
    sent = [0.0] * total
    out: list = [None] * total
    gate = asyncio.Semaphore(window) if window else None

    async def pump():
        start = time.perf_counter()
        for i, (index, group) in enumerate(indexed_groups):
            if gate is not None:
                await gate.acquire()
            elif interval_s > 0.0:
                lag = start + i * interval_s - time.perf_counter()
                if lag > 0:
                    await asyncio.sleep(lag)
            if len(group) == 1:
                (s, t), = group
                obj = {"s": int(s), "t": int(t)}
            else:
                obj = {"pairs": [[int(s), int(t)] for s, t in group]}
            if deadline_ms is not None and index % 2 == 0:
                obj["deadline_ms"] = deadline_ms
            sent[i] = time.perf_counter()
            writer.write(json.dumps(obj).encode() + b"\n")
            await writer.drain()

    async def soak():
        for i in range(total):
            line = await reader.readline()
            if not line:  # server closed: remaining slots stay None
                return
            out[i] = (time.perf_counter() - sent[i], json.loads(line))
            if gate is not None:
                gate.release()

    await asyncio.gather(pump(), soak())
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionResetError, OSError):
        pass
    return [
        (index, len(group), *payload)
        if payload is not None else (index, len(group), None, None)
        for (index, group), payload in zip(indexed_groups, out)
    ]


def _classify(response) -> str:
    if response is None:
        return "unanswered"
    if "retry_after_ms" in response and "error" in response:
        return "shed"
    results = response.get("results")
    if results is not None:  # a batch request: all-exact or all-degraded
        response = results[0] if results else {}
    if response.get("degraded"):
        return "degraded"
    if "distance" in response and "error" not in response:
        return "exact"
    return "bogus"


async def _drive(app, pairs, *, slo=None, clients=8, window=0,
                 interval_s=0.0, deadline_ms=None, warmup=256, group=1):
    """Serve ``app``, run the client fleet, return (rows, seconds, snap)."""
    server = NetServer(app, port=0, slo=slo)
    host, port = await server.start()
    groups = [pairs[i:i + group] for i in range(0, len(pairs), group)]
    try:
        if warmup:
            warm = _split_round_robin(groups[: max(1, warmup // group)], 2)
            await asyncio.gather(
                *(_client(host, port, part, window=8) for part in warm)
            )
        slices = _split_round_robin(groups, clients)
        started = time.perf_counter()
        answers = await asyncio.gather(*(
            _client(
                host, port, part, window=window,
                interval_s=interval_s, deadline_ms=deadline_ms,
            )
            for part in slices
        ))
        seconds = time.perf_counter() - started
        snap = server.snapshot()["net"]
    finally:
        await server.drain()
    rows = sorted(row for part in answers for row in part)
    return rows, seconds, snap


def _phase_metrics(rows, seconds) -> dict:
    kinds = {"exact": 0, "degraded": 0, "shed": 0, "unanswered": 0, "bogus": 0}
    exact_lat = []
    for _, npairs, latency, response in rows:
        kind = _classify(response)
        kinds[kind] += npairs
        if kind == "exact":
            exact_lat.append(latency)
    queries = sum(row[1] for row in rows)
    requests = len(rows)
    goodput = kinds["exact"] + kinds["degraded"]
    lat = (
        np.percentile(np.asarray(exact_lat) * 1e3, [50, 99])
        if exact_lat else (float("nan"), float("nan"))
    )
    return {
        "queries": queries,
        "requests": requests,
        "seconds": seconds,
        "qps": queries / seconds if seconds > 0 else float("inf"),
        "goodput_qps": goodput / seconds if seconds > 0 else float("inf"),
        "unanswered_rate": kinds["unanswered"] / queries if queries else 0.0,
        "exact_rate": kinds["exact"] / queries if queries else 0.0,
        "degraded_rate": kinds["degraded"] / queries if queries else 0.0,
        "shed_rate": kinds["shed"] / queries if queries else 0.0,
        "bogus": kinds["bogus"],
        "exact_p50_ms": float(lat[0]),
        "exact_p99_ms": float(lat[1]),
    }


def run_slo(
    shards: int = 2,
    queries: int = 4000,
    scale: float = 0.0008,
    deadline_ms: float = 150.0,
    delay_ms: float = 5.0,
    overload_s: float = 1.5,
    clients: int = 8,
) -> int:
    """Drive both phases and write ``BENCH_slo.json``."""
    start_method = (
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else "spawn"
    )
    graph = generate("livejournal", scale=scale, seed=7)
    config = OracleConfig(alpha=4.0, seed=7, fallback="none", vicinity_floor=0.75)
    index = VicinityOracle.build(graph, config=config).index
    failures: list[str] = []
    report: dict = {
        "workload": {
            "graph": "livejournal-chung-lu",
            "nodes": graph.n,
            "shards": shards,
            "clients": clients,
            "deadline_ms": deadline_ms,
            "budget_ms": 0.4 * deadline_ms,
            "delay_ms": delay_ms,
            "zipf_exponent": 1.0,
            "start_method": start_method,
        },
    }
    common = dict(
        cache_size=0, shards=shards, backend="procpool", replicas=1,
        supervise=True, start_method=start_method, sub_batch=32,
    )

    # --- phase 0: no faults, no deadlines — the goodput yardstick ------
    pairs = zipf_pairs(graph.n, queries, exponent=1.0, seed=11)
    app = ServiceApp.from_index(index, **common)
    try:
        rows, seconds, _ = asyncio.run(
            _drive(app, pairs, clients=clients, window=16)
        )
        capacity = _phase_metrics(rows, seconds)
    finally:
        app.close()
    report["capacity"] = capacity
    if capacity["unanswered_rate"] > 0:
        failures.append("capacity: requests went unanswered with no faults")
    if capacity["exact_rate"] < 1.0:
        failures.append(
            f"capacity: only {capacity['exact_rate']:.2%} exact answers "
            "with no deadlines configured"
        )
    yardstick = capacity["goodput_qps"]

    # --- phase 1: delay faults + ~2x offered load + the SLO ladder -----
    offered = 2.0 * yardstick
    overload_n = int(min(24_000, max(2_000, offered * overload_s)))
    pairs = zipf_pairs(graph.n, overload_n, exponent=1.0, seed=13)
    group = 8  # pairs per wire request: the offered *pair* rate stays
    # ~2x capacity while the wire/event-loop message rate stays low
    # enough that client-side measurement does not swamp the budget.
    interval_s = group * clients / offered if offered > 0 else 0.0
    budget_ms = 0.4 * deadline_ms  # internal budget under the external SLO
    slo = SloConfig(
        default_deadline_ms=budget_ms,
        # The limiter chases a p99 at half the budget: completions
        # settle well inside the per-request gate, so a budget-edge
        # exact answer is the tail, not the median.
        slo_p99_ms=0.5 * budget_ms,
        ladder="exact,estimate,shed",
        adaptive_limit=True,
    )
    app = ServiceApp.from_index(
        index, faults=FaultPlan.parse(f"delay:*:{delay_ms:g}"), **common
    )
    try:
        rows, seconds, snap = asyncio.run(_drive(
            app, pairs, slo=slo, clients=clients,
            interval_s=interval_s, deadline_ms=budget_ms, group=group,
        ))
        overload = _phase_metrics(rows, seconds)
        shard_slo = app.sharded.transport_stats().get("slo", {})
    finally:
        app.close()
    overload["offered_qps"] = offered
    overload["slo"] = snap["slo"]
    overload["shard_slo"] = shard_slo
    report["overload"] = overload

    if overload["unanswered_rate"] > 0:
        failures.append(
            f"overload: unanswered_rate {overload['unanswered_rate']:.4f} > 0"
        )
    if overload["bogus"]:
        failures.append(
            f"overload: {overload['bogus']} responses are neither exact, "
            "degraded, nor shed-with-retry"
        )
    if not np.isnan(overload["exact_p99_ms"]) and (
        overload["exact_p99_ms"] > deadline_ms
    ):
        failures.append(
            f"overload: exact p99 {overload['exact_p99_ms']:.1f} ms blows "
            f"the {deadline_ms:g} ms deadline"
        )
    if overload["goodput_qps"] < 0.8 * yardstick:
        failures.append(
            f"overload: goodput {overload['goodput_qps']:.0f} q/s under 80% "
            f"of the no-fault {yardstick:.0f} q/s"
        )
    pressured = (
        overload["degraded_rate"] + overload["shed_rate"] > 0
        or snap["slo"]["deadline"]["misses"] > 0
    )
    if not pressured:
        failures.append(
            "overload: no degrades, sheds or deadline misses — the delay "
            "faults did not actually bite"
        )
    # The SLO controller counts wire requests (a batch line is one
    # admission decision), so compare against requests, not pairs.
    if snap["slo"]["deadline"]["requests"] < overload["requests"]:
        failures.append("overload: some requests carried no deadline at all")

    report["ok"] = not failures
    report["failures"] = failures
    path = write_artifact("BENCH_slo.json", json.dumps(report, indent=2))

    rows = []
    for phase in ("capacity", "overload"):
        block = report[phase]
        rows.append((
            phase,
            int(block["qps"]),
            int(block["goodput_qps"]),
            f"{block['exact_p50_ms']:.2f}",
            f"{block['exact_p99_ms']:.2f}",
            f"{block['exact_rate']:.3f}",
            f"{block['degraded_rate']:.3f}",
            f"{block['shed_rate']:.3f}",
        ))
    print(
        render_table(
            ["phase", "resp/s", "goodput/s", "exact p50 ms", "exact p99 ms",
             "exact", "degraded", "shed"],
            rows,
            title=(
                f"slo: {graph.n:,} nodes, {shards} shards, "
                f"{deadline_ms:g} ms deadline, delay {delay_ms:g} ms/frame, "
                f"offered ~2x capacity"
            ),
        )
    )
    limiter = report["overload"]["slo"].get("limiter")
    if limiter:
        print(
            f"limiter: window {limiter['limit']:.0f} "
            f"({limiter['increases']} raises / {limiter['decreases']} cuts)"
        )
    print(f"wrote {path}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    p99 = report["overload"]["exact_p99_ms"]
    tail = (
        f"exact p99 {p99:.1f} ms inside the {deadline_ms:g} ms deadline"
        if not math.isnan(p99) else "no exact answers under overload"
    )
    print(
        f"ok: {report['overload']['queries']:,} requests at ~2x capacity, "
        "none unanswered; goodput "
        f"{report['overload']['goodput_qps']:.0f}/{yardstick:.0f} q/s, "
        + tail
    )
    return 0


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the small CI drill (same phases, tiny workload)",
    )
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--deadline-ms", type=float, default=150.0)
    parser.add_argument("--delay-ms", type=float, default=5.0)
    parser.add_argument("--clients", type=int, default=8)
    args = parser.parse_args(argv)
    queries = args.queries or (4000 if args.smoke else 12000)
    scale = args.scale or (0.0008 if args.smoke else 0.002)
    return run_slo(
        shards=args.shards,
        queries=queries,
        scale=scale,
        deadline_ms=args.deadline_ms,
        delay_ms=args.delay_ms,
        clients=args.clients,
    )


if __name__ == "__main__":
    import sys

    sys.exit(main())
