"""Figure 2 (center): CDF of boundary size as a fraction of n (alpha=4).

Reproduction target: boundaries are a small fraction of the network —
the paper reports a worst case below 0.4 % of n at full scale; at our
scales (n a few thousand, vicinity ~ alpha*sqrt(n) of it) the fractions
are proportionally larger, so the target is the *shape*: the CDF is
concentrated far below the vicinity-size fraction itself.
"""

import numpy as np
import pytest

from repro.core.stats import IndexStats

from benchmarks.conftest import write_artifact
from repro.experiments.reporting import render_series

_blocks = []


@pytest.mark.parametrize("name", ["dblp", "flickr", "orkut", "livejournal"])
def test_boundary_cdf(benchmark, name, paper_profile_oracles):
    """Boundary-size distribution of the Definition-1 index."""
    oracle = paper_profile_oracles[name]
    stats = benchmark.pedantic(
        lambda: IndexStats.from_index(oracle.index), rounds=1, iterations=1
    )
    x, y = stats.boundary_cdf(points=15)
    benchmark.extra_info["median_boundary_fraction"] = round(
        float(np.median(stats.boundary_sizes) / stats.n), 5
    )
    benchmark.extra_info["worst_boundary_fraction"] = round(
        stats.max_boundary_fraction, 5
    )
    # Boundary never exceeds the vicinity it borders.
    assert np.all(stats.boundary_sizes <= stats.vicinity_sizes)
    # Shape: the median boundary is well below the mean vicinity-size
    # fraction of the graph.
    assert np.median(stats.boundary_sizes) <= stats.mean_vicinity_size
    rows = [(f"{a:.5f}", f"{b:.3f}") for a, b in zip(x.tolist(), y.tolist())]
    _blocks.append(
        render_series(
            "boundary/n",
            ["CDF"],
            rows,
            title=f"Figure 2 (center) {name}: boundary CDF at alpha=4",
        )
    )
    if len(_blocks) == 4:
        write_artifact("figure2_boundary.txt", "\n\n".join(_blocks))
