"""Cross-module integration tests: the full pipeline, per generator."""

import numpy as np
import pytest

from repro.baselines.exact import BidirectionalBaseline
from repro.core.config import OracleConfig
from repro.core.oracle import VicinityOracle
from repro.datasets.barabasi_albert import barabasi_albert_graph
from repro.datasets.chung_lu import chung_lu_graph, powerlaw_weights
from repro.datasets.erdos_renyi import erdos_renyi_graph
from repro.datasets.forest_fire import forest_fire_graph
from repro.datasets.rmat import rmat_graph
from repro.datasets.watts_strogatz import watts_strogatz_graph
from repro.graph.components import largest_component
from repro.graph.traversal.bfs import bfs_distance
from repro.io.oracle_store import load_index, save_index


def generators():
    w = powerlaw_weights(900, exponent=2.5, mean_degree=10, rng=1)
    yield "chung-lu", largest_component(chung_lu_graph(w, rng=2))[0]
    yield "barabasi-albert", barabasi_albert_graph(700, 3, rng=3)
    yield "watts-strogatz", largest_component(
        watts_strogatz_graph(600, 3, 0.1, rng=4)
    )[0]
    yield "erdos-renyi", largest_component(erdos_renyi_graph(600, 2400, rng=5))[0]
    yield "rmat", largest_component(rmat_graph(9, 6, rng=6))[0]
    yield "forest-fire", forest_fire_graph(400, 0.3, rng=7)


@pytest.mark.integration
@pytest.mark.parametrize("name,graph", list(generators()), ids=lambda p: p if isinstance(p, str) else "")
def test_offline_online_pipeline_every_generator(name, graph):
    """Build + query on each topology family; exactness everywhere."""
    config = OracleConfig(alpha=4.0, seed=17, fallback="bidirectional")
    oracle = VicinityOracle.build(graph, config=config)
    rng = np.random.default_rng(8)
    for _ in range(120):
        s, t = (int(x) for x in rng.integers(0, graph.n, 2))
        result = oracle.query(s, t, with_path=True)
        assert result.distance == bfs_distance(graph, s, t), (name, s, t)
        if result.path is not None:
            for a, b in zip(result.path, result.path[1:]):
                assert graph.has_edge(a, b)


@pytest.mark.integration
def test_persist_query_consistency_under_load(tmp_path, social_graph):
    """Build -> persist -> load -> answers agree with live baselines."""
    config = OracleConfig(alpha=4.0, seed=19, fallback="bidirectional")
    oracle = VicinityOracle.build(social_graph, config=config)
    path = tmp_path / "oracle.npz"
    save_index(oracle.index, path)
    restored = VicinityOracle(load_index(path))
    baseline = BidirectionalBaseline(social_graph)
    rng = np.random.default_rng(9)
    for _ in range(150):
        s, t = (int(x) for x in rng.integers(0, social_graph.n, 2))
        assert restored.query(s, t).distance == baseline.distance(s, t)


@pytest.mark.integration
def test_accuracy_claim_on_social_standins():
    """The §3.2-style accuracy shape: alpha=4 + floor answers ~all pairs."""
    from repro.datasets.social import generate

    graph = generate("flickr", scale=0.0008, seed=23)
    config = OracleConfig(alpha=4.0, seed=5, fallback="none", vicinity_floor=0.75)
    oracle = VicinityOracle.build(graph, config=config)
    rng = np.random.default_rng(10)
    answered = 0
    total = 500
    for _ in range(total):
        s, t = (int(x) for x in rng.integers(0, graph.n, 2))
        if oracle.query(s, t).distance is not None:
            answered += 1
    assert answered / total > 0.95


@pytest.mark.integration
def test_sqrt_n_memory_shape():
    """Entries/node tracks alpha*sqrt(n) within a small constant."""
    from repro.datasets.social import generate

    graph = generate("dblp", scale=0.002, seed=29)
    config = OracleConfig(alpha=4.0, seed=6, fallback="none")
    oracle = VicinityOracle.build(graph, config=config)
    report = oracle.memory()
    target = 4.0 * np.sqrt(graph.n)
    assert 0.25 * target < report.entries_per_node < 4.0 * target
