"""CLI smoke tests (everything at tiny scales)."""

import io
import json

import pytest

from repro.cli import main


@pytest.fixture()
def graph_file(tmp_path):
    path = tmp_path / "g.npz"
    assert main(["generate", "dblp", "--scale", "0.0005", "--seed", "1",
                 "--out", str(path)]) == 0
    return path


class TestGenerate:
    def test_npz_output(self, graph_file, capsys):
        assert graph_file.exists()

    def test_edgelist_output(self, tmp_path):
        out = tmp_path / "g.txt"
        assert main(["generate", "dblp", "--scale", "0.0005", "--out", str(out)]) == 0
        text = out.read_text()
        assert text.startswith("#")


class TestStats:
    def test_prints_degree_info(self, graph_file, capsys):
        assert main(["stats", str(graph_file)]) == 0
        out = capsys.readouterr().out
        assert "average degree" in out


class TestBuildAndQuery:
    def test_build_then_query(self, graph_file, tmp_path, capsys):
        oracle_file = tmp_path / "oracle.npz"
        assert main(["build", str(graph_file), "--alpha", "4", "--seed", "2",
                     "--out", str(oracle_file)]) == 0
        assert oracle_file.exists()
        assert main(["query", str(oracle_file), "0", "5", "--path"]) == 0
        out = capsys.readouterr().out
        assert "distance(0, 5)" in out
        assert "method" in out

    def test_query_explain(self, graph_file, tmp_path, capsys):
        oracle_file = tmp_path / "oracle.npz"
        assert main(["build", str(graph_file), "--alpha", "4", "--seed", "2",
                     "--out", str(oracle_file)]) == 0
        capsys.readouterr()
        assert main(["query", str(oracle_file), "0", "5", "--explain"]) == 0
        out = capsys.readouterr().out
        assert "resolved by" in out
        assert "Gamma(s)" in out


class TestServe:
    @pytest.fixture()
    def oracle_file(self, graph_file, tmp_path, capsys):
        path = tmp_path / "oracle.npz"
        assert main(["build", str(graph_file), "--alpha", "4", "--seed", "2",
                     "--out", str(path)]) == 0
        capsys.readouterr()
        return path

    def test_bench_prints_telemetry_snapshot(self, oracle_file, capsys):
        assert main(["serve", str(oracle_file), "--bench",
                     "--queries", "800", "--batch-size", "64", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        for needle in ("speedup", "p50", "p95", "p99", "cache", "resolution mix"):
            assert needle in out, needle

    def test_bench_json_report(self, oracle_file, capsys):
        assert main(["serve", str(oracle_file), "--bench", "--json",
                     "--queries", "400", "--batch-size", "64", "--seed", "5"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["workload"]["queries"] == 400
        assert "p99_ms" in report["snapshot"]["latency"]
        assert "hit_rate" in report["snapshot"]["cache"]

    def test_bench_sharded(self, oracle_file, capsys):
        assert main(["serve", str(oracle_file), "--bench", "--shards", "2",
                     "--queries", "300", "--batch-size", "64", "--seed", "5"]) == 0
        assert "shard traffic" in capsys.readouterr().out

    def test_bench_procpool_backend(self, oracle_file, capsys):
        assert main(["serve", str(oracle_file), "--bench", "--shards", "2",
                     "--backend", "procpool",
                     "--queries", "300", "--batch-size", "64", "--seed", "5"]) == 0
        assert "shard traffic" in capsys.readouterr().out

    def test_procpool_without_shards_is_rejected(self, oracle_file, capsys):
        assert main(["serve", str(oracle_file), "--backend", "procpool"]) == 2
        assert "--shards" in capsys.readouterr().err

    def test_stdin_request_loop(self, oracle_file, capsys, monkeypatch):
        requests = "\n".join([
            json.dumps({"s": 0, "t": 5}),
            json.dumps({"pairs": [[0, 5], [5, 0]]}),
            json.dumps({"cmd": "stats"}),
            json.dumps({"cmd": "quit"}),
        ]) + "\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(requests))
        assert main(["serve", str(oracle_file)]) == 0
        lines = [json.loads(line)
                 for line in capsys.readouterr().out.splitlines() if line]
        assert lines[0]["distance"] is not None
        assert lines[1]["results"][0]["distance"] == lines[0]["distance"]
        assert lines[2]["queries"] == 3
        assert lines[3] == {"ok": True}

    def test_cache_can_be_disabled(self, oracle_file, capsys):
        assert main(["serve", str(oracle_file), "--bench", "--json",
                     "--cache-size", "0",
                     "--queries", "200", "--batch-size", "64", "--seed", "5"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert "cache" not in report["snapshot"]


class TestExperiments:
    def test_table2(self, capsys):
        assert main(["experiment", "table2", "--scale", "0.0004",
                     "--datasets", "dblp"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_memory(self, capsys):
        assert main(["experiment", "memory", "--scale", "0.0008",
                     "--datasets", "dblp"]) == 0
        assert "Memory accounting" in capsys.readouterr().out


class TestErrors:
    def test_missing_oracle_file_is_reported(self, tmp_path, capsys):
        assert main(["serve", str(tmp_path / "missing.npz"), "--bench"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_non_oracle_file_is_reported(self, graph_file, capsys):
        assert main(["serve", str(graph_file), "--bench"]) == 1
        assert "not a repro-oracle-v1 snapshot" in capsys.readouterr().err

    def test_dataset_error_is_reported(self, tmp_path, capsys):
        # Valid CLI usage but an unloadable file -> clean error, exit 1.
        missing = tmp_path / "missing.txt"
        missing.write_text("not numbers\n")
        assert main(["stats", str(missing)]) == 1
        assert "error:" in capsys.readouterr().err
