"""CLI smoke tests (everything at tiny scales)."""

import pytest

from repro.cli import main


@pytest.fixture()
def graph_file(tmp_path):
    path = tmp_path / "g.npz"
    assert main(["generate", "dblp", "--scale", "0.0005", "--seed", "1",
                 "--out", str(path)]) == 0
    return path


class TestGenerate:
    def test_npz_output(self, graph_file, capsys):
        assert graph_file.exists()

    def test_edgelist_output(self, tmp_path):
        out = tmp_path / "g.txt"
        assert main(["generate", "dblp", "--scale", "0.0005", "--out", str(out)]) == 0
        text = out.read_text()
        assert text.startswith("#")


class TestStats:
    def test_prints_degree_info(self, graph_file, capsys):
        assert main(["stats", str(graph_file)]) == 0
        out = capsys.readouterr().out
        assert "average degree" in out


class TestBuildAndQuery:
    def test_build_then_query(self, graph_file, tmp_path, capsys):
        oracle_file = tmp_path / "oracle.npz"
        assert main(["build", str(graph_file), "--alpha", "4", "--seed", "2",
                     "--out", str(oracle_file)]) == 0
        assert oracle_file.exists()
        assert main(["query", str(oracle_file), "0", "5", "--path"]) == 0
        out = capsys.readouterr().out
        assert "distance(0, 5)" in out
        assert "method" in out

    def test_query_explain(self, graph_file, tmp_path, capsys):
        oracle_file = tmp_path / "oracle.npz"
        assert main(["build", str(graph_file), "--alpha", "4", "--seed", "2",
                     "--out", str(oracle_file)]) == 0
        capsys.readouterr()
        assert main(["query", str(oracle_file), "0", "5", "--explain"]) == 0
        out = capsys.readouterr().out
        assert "resolved by" in out
        assert "Gamma(s)" in out


class TestExperiments:
    def test_table2(self, capsys):
        assert main(["experiment", "table2", "--scale", "0.0004",
                     "--datasets", "dblp"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_memory(self, capsys):
        assert main(["experiment", "memory", "--scale", "0.0008",
                     "--datasets", "dblp"]) == 0
        assert "Memory accounting" in capsys.readouterr().out


class TestErrors:
    def test_dataset_error_is_reported(self, tmp_path, capsys):
        # Valid CLI usage but an unloadable file -> clean error, exit 1.
        missing = tmp_path / "missing.txt"
        missing.write_text("not numbers\n")
        assert main(["stats", str(missing)]) == 1
        assert "error:" in capsys.readouterr().err
