"""Unit tests for label encoding."""

import pytest

from repro.exceptions import GraphError
from repro.graph.labels import LabelEncoder, labeled_graph_from_edges


class TestLabelEncoder:
    def test_first_seen_order(self):
        enc = LabelEncoder()
        assert enc.encode("alice") == 0
        assert enc.encode("bob") == 1
        assert enc.encode("alice") == 0
        assert len(enc) == 2

    def test_decode(self):
        enc = LabelEncoder()
        enc.encode_many(["x", "y", "z"])
        assert enc.decode(1) == "y"
        assert enc.decode_many([2, 0]) == ["z", "x"]

    def test_lookup_known(self):
        enc = LabelEncoder()
        enc.encode("a")
        assert enc.lookup("a") == 0

    def test_lookup_unknown_raises(self):
        enc = LabelEncoder()
        with pytest.raises(GraphError, match="unknown label"):
            enc.lookup("ghost")

    def test_decode_unknown_raises(self):
        enc = LabelEncoder()
        with pytest.raises(GraphError, match="unknown node id"):
            enc.decode(0)

    def test_contains(self):
        enc = LabelEncoder()
        enc.encode("a")
        assert "a" in enc
        assert "b" not in enc

    def test_labels_property(self):
        enc = LabelEncoder()
        enc.encode_many(["p", "q"])
        assert enc.labels == ("p", "q")


class TestLabeledGraph:
    def test_round_trip(self):
        graph, enc = labeled_graph_from_edges(
            [("alice", "bob"), ("bob", "carol"), ("carol", "alice")]
        )
        assert graph.n == 3
        assert graph.num_edges == 3
        assert graph.has_edge(enc.lookup("alice"), enc.lookup("bob"))

    def test_duplicate_labelled_edges_collapse(self):
        graph, _ = labeled_graph_from_edges([("a", "b"), ("b", "a")])
        assert graph.num_edges == 1

    def test_hashable_nonstring_labels(self):
        graph, enc = labeled_graph_from_edges([((1, 2), (3, 4))])
        assert graph.n == 2
        assert enc.decode(0) == (1, 2)
