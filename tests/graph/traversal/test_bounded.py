"""Truncated (ball) traversals — the heart of the offline phase."""

import numpy as np
import pytest

from repro.graph.builder import graph_from_weighted_edges, path_graph, star_graph
from repro.graph.traversal.bfs import bfs_distances
from repro.graph.traversal.bounded import (
    truncated_bfs_ball,
    truncated_dijkstra_ball,
)
from repro.graph.traversal.dijkstra import dijkstra_distances

from tests.conftest import random_connected_graph


def flags_for(n, landmarks):
    flags = bytearray(n)
    for u in landmarks:
        flags[u] = 1
    return flags


class TestTruncatedBfs:
    def test_definition_1_exactly(self):
        # Gamma(u) must equal {v : d(u,v) <= d(u, L)} on unweighted graphs.
        g = random_connected_graph(80, 200, seed=1)
        landmarks = [0, 17 % g.n, 33 % g.n]
        flags = flags_for(g.n, landmarks)
        for source in range(0, g.n, 9):
            if flags[source]:
                continue
            result = truncated_bfs_ball(g, source, flags)
            dist = bfs_distances(g, source)
            radius = min(dist[l] for l in landmarks if dist[l] >= 0)
            assert result.radius == radius
            expected_gamma = {v for v in range(g.n) if 0 <= dist[v] <= radius}
            assert set(result.gamma) == expected_gamma
            expected_ball = {v for v in range(g.n) if 0 <= dist[v] < radius}
            assert set(result.ball) == expected_ball

    def test_distances_exact(self):
        g = random_connected_graph(80, 200, seed=2)
        flags = flags_for(g.n, [1, 5])
        result = truncated_bfs_ball(g, 0, flags) if not flags[0] else None
        if result is None:
            return
        dist = bfs_distances(g, 0)
        for v, d in result.dist.items():
            assert d == dist[v]

    def test_pred_chains_reach_source(self):
        g = random_connected_graph(80, 200, seed=3)
        flags = flags_for(g.n, [2])
        source = 0 if not flags[0] else 1
        result = truncated_bfs_ball(g, source, flags)
        for v in result.gamma:
            node = v
            steps = 0
            while node != source:
                node = result.pred[node]
                steps += 1
                assert steps <= g.n
            assert steps == result.dist[v]

    def test_source_is_landmark(self):
        g = path_graph(5)
        result = truncated_bfs_ball(g, 2, flags_for(5, [2]))
        assert result.radius == 0
        assert result.gamma == []
        assert result.ball == []

    def test_no_landmark_in_component(self):
        g = path_graph(5)
        result = truncated_bfs_ball(g, 0, flags_for(5, []))
        assert result.radius is None
        assert set(result.gamma) == set(range(5))

    def test_adjacent_landmark_gives_radius_one(self):
        g = star_graph(6)
        result = truncated_bfs_ball(g, 1, flags_for(6, [0]))
        assert result.radius == 1
        # Gamma = {1, 0} — the leaf and the hub landmark at distance 1.
        assert set(result.gamma) == {0, 1}

    def test_max_size_aborts(self):
        g = random_connected_graph(200, 600, seed=4)
        flags = flags_for(g.n, [])  # no landmark: would explore everything
        result = truncated_bfs_ball(g, 0, flags, max_size=10)
        assert result.radius is None
        assert len(result.dist) <= 10 + 200  # one level overshoot at most

    def test_min_size_extends_past_landmark(self):
        g = path_graph(10)
        flags = flags_for(10, [1])
        plain = truncated_bfs_ball(g, 0, flags)
        assert plain.radius == 1
        extended = truncated_bfs_ball(g, 0, flags, min_size=5)
        assert extended.radius is not None and extended.radius > 1
        assert len(extended.gamma) >= 5
        # Distances must remain exact.
        dist = bfs_distances(g, 0)
        for v, d in extended.dist.items():
            assert d == dist[v]

    def test_min_size_still_level_complete(self):
        g = random_connected_graph(100, 260, seed=5)
        flags = flags_for(g.n, [3])
        source = 0 if not flags[0] else 1
        result = truncated_bfs_ball(g, source, flags, min_size=30)
        if result.radius is None:
            return
        dist = bfs_distances(g, source)
        expected = {v for v in range(g.n) if 0 <= dist[v] <= result.radius}
        assert set(result.gamma) == expected


class TestTruncatedDijkstra:
    def test_matches_bfs_on_unit_weights(self):
        g = random_connected_graph(60, 160, seed=6)
        weighted = graph_from_weighted_edges(
            [(u, v, 1.0) for u, v in g.edges()], n=g.n
        )
        flags = flags_for(g.n, [1, 7 % g.n])
        for source in range(0, g.n, 13):
            if flags[source]:
                continue
            a = truncated_bfs_ball(g, source, flags)
            b = truncated_dijkstra_ball(weighted, source, flags)
            assert a.radius == b.radius
            assert set(a.gamma) == set(b.gamma)

    def test_distances_exact_weighted(self):
        g = random_connected_graph(60, 160, seed=7, weighted=True)
        flags = flags_for(g.n, [2, 9 % g.n])
        for source in range(0, g.n, 11):
            if flags[source]:
                continue
            result = truncated_dijkstra_ball(g, source, flags)
            full = dijkstra_distances(g, source)
            for v, d in result.dist.items():
                assert d == pytest.approx(full[v]), (source, v)

    def test_gamma_is_ball_union_frontier(self):
        g = random_connected_graph(60, 160, seed=8, weighted=True)
        flags = flags_for(g.n, [4])
        source = 0 if not flags[0] else 1
        result = truncated_dijkstra_ball(g, source, flags)
        full = dijkstra_distances(g, source)
        radius = result.radius
        ball = {v for v in range(g.n) if full[v] < radius}
        frontier = set()
        for b in ball:
            frontier.update(g.neighbors(b).tolist())
        assert set(result.gamma) == ball | frontier

    def test_heavy_frontier_edge_settled_exactly(self):
        # A frontier node whose only cheap path enters from outside the
        # ball: phase 2 must still label it with the true distance.
        edges = [
            (0, 1, 1.0),   # ball
            (1, 2, 1.0),   # landmark at distance 2
            (0, 3, 10.0),  # heavy frontier edge
            (2, 3, 1.0),   # cheap path to 3 through the landmark
        ]
        g = graph_from_weighted_edges(edges)
        flags = flags_for(4, [2])
        result = truncated_dijkstra_ball(g, 0, flags)
        assert result.radius == pytest.approx(2.0)
        assert result.dist[3] == pytest.approx(3.0)  # 0-1-2-3, not 10.0

    def test_source_is_landmark(self):
        g = graph_from_weighted_edges([(0, 1, 1.0)])
        result = truncated_dijkstra_ball(g, 0, flags_for(2, [0]))
        assert result.radius == 0
        assert result.gamma == []

    def test_no_landmark(self):
        g = graph_from_weighted_edges([(0, 1, 2.0), (1, 2, 2.0)])
        result = truncated_dijkstra_ball(g, 0, flags_for(3, []))
        assert result.radius is None
        assert set(result.gamma) == {0, 1, 2}
