"""Dijkstra engines cross-validated against NetworkX and BFS."""

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import UnreachableError
from repro.graph.builder import graph_from_weighted_edges, path_graph
from repro.graph.traversal.bfs import bfs_distances
from repro.graph.traversal.dijkstra import (
    dijkstra_distance,
    dijkstra_distances,
    dijkstra_path,
    dijkstra_tree,
)

from tests.conftest import random_graph


def to_networkx_weighted(graph):
    nxg = nx.Graph()
    nxg.add_nodes_from(range(graph.n))
    for u, v, w in graph.weighted_edges():
        nxg.add_edge(u, v, weight=w)
    return nxg


class TestDijkstraDistances:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_networkx(self, seed):
        g = random_graph(60, 180, seed=seed, weighted=True)
        nxg = to_networkx_weighted(g)
        expected = nx.single_source_dijkstra_path_length(nxg, 0)
        dist = dijkstra_distances(g, 0)
        for v in range(g.n):
            if v in expected:
                assert dist[v] == pytest.approx(expected[v])
            else:
                assert dist[v] == np.inf

    def test_unit_weights_match_bfs(self):
        g = random_graph(70, 200, seed=3)
        bfs = bfs_distances(g, 2).astype(float)
        bfs[bfs < 0] = np.inf
        dij = dijkstra_distances(g, 2)
        assert np.allclose(bfs, dij)


class TestDijkstraTree:
    def test_parents_relax_correctly(self):
        g = random_graph(50, 150, seed=4, weighted=True)
        dist, parent = dijkstra_tree(g, 0)
        for v in range(g.n):
            if v == 0 or dist[v] == np.inf:
                continue
            p = int(parent[v])
            assert dist[v] == pytest.approx(dist[p] + g.edge_weight(p, v))


class TestPointToPoint:
    def test_matches_full(self):
        g = random_graph(50, 140, seed=5, weighted=True)
        full = dijkstra_distances(g, 1)
        for t in range(g.n):
            got = dijkstra_distance(g, 1, t)
            if full[t] == np.inf:
                assert got is None
            else:
                assert got == pytest.approx(full[t])

    def test_identical(self):
        assert dijkstra_distance(path_graph(3), 1, 1) == 0.0

    def test_path_weight_sums(self):
        g = random_graph(50, 140, seed=6, weighted=True)
        full = dijkstra_distances(g, 0)
        for t in range(1, g.n):
            if full[t] == np.inf:
                continue
            path = dijkstra_path(g, 0, t)
            total = sum(g.edge_weight(a, b) for a, b in zip(path, path[1:]))
            assert total == pytest.approx(full[t])

    def test_unreachable_raises(self):
        g = graph_from_weighted_edges([(0, 1, 1.0)], n=3)
        with pytest.raises(UnreachableError):
            dijkstra_path(g, 0, 2)

    def test_zero_weight_edges(self):
        g = graph_from_weighted_edges([(0, 1, 0.0), (1, 2, 2.0)])
        assert dijkstra_distance(g, 0, 2) == pytest.approx(2.0)
