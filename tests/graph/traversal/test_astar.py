"""A* must be exact under admissible heuristics."""

import pytest

from repro.exceptions import UnreachableError
from repro.graph.builder import graph_from_edges, grid_graph
from repro.graph.traversal.astar import astar_distance, astar_path
from repro.graph.traversal.bfs import bfs_distances
from repro.graph.traversal.dijkstra import dijkstra_distances

from tests.conftest import random_graph


def zero_heuristic(_v: int) -> float:
    return 0.0


class TestAstar:
    def test_zero_heuristic_is_dijkstra(self):
        g = random_graph(60, 160, seed=1, weighted=True)
        full = dijkstra_distances(g, 0)
        for t in range(0, g.n, 3):
            got = astar_distance(g, 0, t, zero_heuristic)
            if full[t] == float("inf"):
                assert got is None
            else:
                assert got == pytest.approx(full[t])

    def test_manhattan_heuristic_on_grid(self):
        rows, cols = 7, 9
        g = grid_graph(rows, cols)
        target = (rows - 1) * cols + (cols - 1)

        def manhattan(v: int) -> float:
            r, c = divmod(v, cols)
            tr, tc = divmod(target, cols)
            return abs(r - tr) + abs(c - tc)

        expected = bfs_distances(g, 0)[target]
        assert astar_distance(g, 0, target, manhattan) == pytest.approx(expected)

    def test_path_valid(self):
        g = grid_graph(5, 5)
        path = astar_path(g, 0, 24, zero_heuristic)
        assert path[0] == 0 and path[-1] == 24
        for a, b in zip(path, path[1:]):
            assert g.has_edge(a, b)
        assert len(path) - 1 == bfs_distances(g, 0)[24]

    def test_identical(self):
        g = grid_graph(2, 2)
        assert astar_distance(g, 1, 1, zero_heuristic) == 0.0
        assert astar_path(g, 1, 1, zero_heuristic) == [1]

    def test_unreachable(self):
        g = graph_from_edges([(0, 1)], n=3)
        assert astar_distance(g, 0, 2, zero_heuristic) is None
        with pytest.raises(UnreachableError):
            astar_path(g, 0, 2, zero_heuristic)
