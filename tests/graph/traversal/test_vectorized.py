"""Vectorised BFS must agree bit-for-bit with the scalar engines."""

import numpy as np
import pytest

from repro.graph.builder import digraph_from_edges, graph_from_edges, path_graph
from repro.graph.traversal.bfs import bfs_distances, multi_source_bfs
from repro.graph.traversal.vectorized import (
    bfs_distances_vectorized,
    bfs_tree_vectorized,
    digraph_bfs_tree_vectorized,
    multi_source_bfs_vectorized,
)

from tests.conftest import random_graph


class TestVectorizedBfs:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_distances_match_scalar(self, seed):
        g = random_graph(120, 400, seed=seed)
        for source in (0, g.n // 2, g.n - 1):
            assert np.array_equal(
                bfs_distances(g, source), bfs_distances_vectorized(g, source)
            )

    def test_parents_form_valid_tree(self):
        g = random_graph(100, 300, seed=4)
        dist, parent = bfs_tree_vectorized(g, 0)
        assert parent[0] == 0
        for v in range(g.n):
            if dist[v] > 0:
                p = int(parent[v])
                assert dist[p] == dist[v] - 1
                assert g.has_edge(p, v)
            elif dist[v] < 0:
                assert parent[v] == -1

    def test_isolated_source(self):
        g = graph_from_edges([(1, 2)], n=4)
        dist, parent = bfs_tree_vectorized(g, 0)
        assert dist.tolist() == [0, -1, -1, -1]

    def test_multi_source_matches_scalar(self):
        g = random_graph(100, 250, seed=5)
        sources = [0, 9, 42]
        assert np.array_equal(
            multi_source_bfs(g, sources),
            multi_source_bfs_vectorized(g, sources),
        )

    def test_multi_source_empty(self):
        g = path_graph(4)
        assert multi_source_bfs_vectorized(g, []).tolist() == [-1] * 4


class TestDigraphVectorized:
    def test_forward_distances(self):
        g = digraph_from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
        dist, parent = digraph_bfs_tree_vectorized(
            g.out_indptr, g.out_indices, g.n, 0
        )
        assert dist.tolist() == [0, 1, 2, 3]

    def test_backward_distances(self):
        g = digraph_from_edges([(0, 1), (1, 2)])
        dist, _ = digraph_bfs_tree_vectorized(g.in_indptr, g.in_indices, g.n, 2)
        # distances *to* node 2
        assert dist.tolist() == [2, 1, 0]

    def test_unreachable_direction(self):
        g = digraph_from_edges([(0, 1)])
        dist, _ = digraph_bfs_tree_vectorized(g.out_indptr, g.out_indices, g.n, 1)
        assert dist.tolist() == [-1, 0]
