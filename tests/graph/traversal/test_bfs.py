"""BFS engines cross-validated against NetworkX."""

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import UnreachableError
from repro.graph.builder import graph_from_edges, path_graph
from repro.graph.traversal.bfs import (
    bfs_distance,
    bfs_distances,
    bfs_path,
    bfs_tree,
    eccentricity,
    multi_source_bfs,
)

from tests.conftest import random_graph


def to_networkx(graph):
    nxg = nx.Graph()
    nxg.add_nodes_from(range(graph.n))
    nxg.add_edges_from(graph.edges())
    return nxg


class TestBfsDistances:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_networkx(self, seed):
        g = random_graph(80, 220, seed=seed)
        nxg = to_networkx(g)
        source = seed % g.n
        expected = nx.single_source_shortest_path_length(nxg, source)
        dist = bfs_distances(g, source)
        for v in range(g.n):
            if v in expected:
                assert dist[v] == expected[v]
            else:
                assert dist[v] == -1

    def test_source_zero(self):
        g = path_graph(4)
        dist = bfs_distances(g, 0)
        assert dist.tolist() == [0, 1, 2, 3]

    def test_unreachable_marked(self):
        g = graph_from_edges([(0, 1)], n=3)
        assert bfs_distances(g, 0)[2] == -1


class TestBfsTree:
    def test_parents_consistent(self):
        g = random_graph(60, 180, seed=4)
        dist, parent = bfs_tree(g, 0)
        assert parent[0] == 0
        for v in range(g.n):
            if dist[v] > 0:
                p = int(parent[v])
                assert dist[p] == dist[v] - 1
                assert g.has_edge(p, v)

    def test_unreachable_parent(self):
        g = graph_from_edges([(0, 1)], n=3)
        _dist, parent = bfs_tree(g, 0)
        assert parent[2] == -1


class TestPointToPoint:
    @pytest.mark.parametrize("seed", [5, 6, 7])
    def test_matches_full_bfs(self, seed):
        g = random_graph(70, 200, seed=seed)
        rng = np.random.default_rng(seed)
        full = bfs_distances(g, 3)
        for _ in range(40):
            t = int(rng.integers(0, g.n))
            got = bfs_distance(g, 3, t)
            expected = None if full[t] < 0 else int(full[t])
            assert got == expected

    def test_identical_nodes(self):
        g = path_graph(3)
        assert bfs_distance(g, 1, 1) == 0

    def test_path_valid(self):
        g = random_graph(60, 160, seed=8)
        full = bfs_distances(g, 0)
        for t in range(1, g.n):
            if full[t] < 0:
                continue
            path = bfs_path(g, 0, t)
            assert path[0] == 0 and path[-1] == t
            assert len(path) - 1 == full[t]
            for a, b in zip(path, path[1:]):
                assert g.has_edge(a, b)

    def test_path_unreachable_raises(self):
        g = graph_from_edges([(0, 1)], n=3)
        with pytest.raises(UnreachableError):
            bfs_path(g, 0, 2)

    def test_path_identical(self):
        g = path_graph(3)
        assert bfs_path(g, 2, 2) == [2]


class TestMultiSource:
    def test_matches_min_of_singles(self):
        g = random_graph(60, 150, seed=9)
        sources = [0, 5, 11]
        singles = np.stack([bfs_distances(g, s) for s in sources]).astype(float)
        singles[singles < 0] = np.inf
        best = singles.min(axis=0)
        multi = multi_source_bfs(g, sources)
        for v in range(g.n):
            if best[v] == np.inf:
                assert multi[v] == -1
            else:
                assert multi[v] == best[v]

    def test_duplicate_sources(self):
        g = path_graph(5)
        dist = multi_source_bfs(g, [0, 0, 4])
        assert dist.tolist() == [0, 1, 2, 1, 0]

    def test_no_sources(self):
        g = path_graph(3)
        assert multi_source_bfs(g, []).tolist() == [-1, -1, -1]


class TestEccentricity:
    def test_path_end(self):
        assert eccentricity(path_graph(6), 0) == 5

    def test_path_middle(self):
        assert eccentricity(path_graph(5), 2) == 2
