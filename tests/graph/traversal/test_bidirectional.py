"""Bidirectional search must agree with unidirectional ground truth."""

import numpy as np
import pytest

from repro.exceptions import UnreachableError
from repro.graph.builder import graph_from_edges, path_graph
from repro.graph.traversal.bfs import bfs_distances
from repro.graph.traversal.bidirectional import (
    bidirectional_bfs,
    bidirectional_bfs_path,
    bidirectional_dijkstra,
)
from repro.graph.traversal.dijkstra import dijkstra_distances

from tests.conftest import random_graph


class TestBidirectionalBfs:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_matches_bfs_exhaustively(self, seed):
        g = random_graph(60, 150, seed=seed)
        for s in range(0, g.n, 7):
            full = bfs_distances(g, s)
            for t in range(g.n):
                got = bidirectional_bfs(g, s, t)
                expected = None if full[t] < 0 else int(full[t])
                assert got == expected, (s, t)

    def test_identical(self):
        assert bidirectional_bfs(path_graph(4), 2, 2) == 0

    def test_adjacent(self):
        assert bidirectional_bfs(path_graph(4), 1, 2) == 1

    def test_disconnected(self):
        g = graph_from_edges([(0, 1)], n=4)
        assert bidirectional_bfs(g, 0, 3) is None

    def test_path_valid_and_shortest(self):
        g = random_graph(70, 180, seed=5)
        full = bfs_distances(g, 0)
        for t in range(1, g.n):
            if full[t] < 0:
                continue
            path = bidirectional_bfs_path(g, 0, t)
            assert path[0] == 0 and path[-1] == t
            assert len(path) - 1 == full[t]
            for a, b in zip(path, path[1:]):
                assert g.has_edge(a, b)

    def test_path_unreachable_raises(self):
        g = graph_from_edges([(0, 1)], n=3)
        with pytest.raises(UnreachableError):
            bidirectional_bfs_path(g, 0, 2)

    def test_long_path_graph(self):
        # Worst case for meeting rules: a single path, distance n-1.
        g = path_graph(30)
        assert bidirectional_bfs(g, 0, 29) == 29


class TestBidirectionalDijkstra:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_dijkstra(self, seed):
        g = random_graph(50, 140, seed=seed, weighted=True)
        for s in range(0, g.n, 11):
            full = dijkstra_distances(g, s)
            for t in range(g.n):
                got = bidirectional_dijkstra(g, s, t)
                if full[t] == np.inf:
                    assert got is None
                else:
                    assert got == pytest.approx(full[t]), (s, t)

    def test_unit_weights_match_bfs_variant(self):
        g = random_graph(60, 150, seed=6)
        for t in range(0, g.n, 5):
            assert bidirectional_dijkstra(g, 0, t) == (
                None if bidirectional_bfs(g, 0, t) is None else float(bidirectional_bfs(g, 0, t))
            )

    def test_identical(self):
        assert bidirectional_dijkstra(path_graph(3), 0, 0) == 0.0
