"""Unit tests for degree statistics."""

import numpy as np
import pytest

from repro.datasets.chung_lu import chung_lu_graph, powerlaw_weights
from repro.exceptions import GraphError
from repro.graph.builder import empty_graph, graph_from_edges, star_graph
from repro.graph.degree import (
    average_degree,
    degree_histogram,
    degree_percentiles,
    estimate_powerlaw_exponent,
    max_degree,
)


class TestDegreeStats:
    def test_histogram(self):
        g = star_graph(5)
        hist = degree_histogram(g)
        assert hist[1] == 4  # four leaves
        assert hist[4] == 1  # the hub

    def test_histogram_empty(self):
        assert degree_histogram(empty_graph(0)).tolist() == [0]

    def test_average_degree(self):
        g = graph_from_edges([(0, 1), (1, 2)])
        assert average_degree(g) == pytest.approx(4 / 3)

    def test_average_degree_empty(self):
        assert average_degree(empty_graph(0)) == 0.0

    def test_max_degree(self):
        assert max_degree(star_graph(8)) == 7
        assert max_degree(empty_graph(3)) == 0

    def test_percentiles(self):
        g = star_graph(11)
        p = degree_percentiles(g, (50.0, 100.0))
        assert p[50.0] == 1.0
        assert p[100.0] == 10.0


class TestPowerlawFit:
    def test_recovers_exponent_roughly(self):
        weights = powerlaw_weights(4000, exponent=2.5, mean_degree=8, rng=1)
        graph = chung_lu_graph(weights, rng=2)
        alpha, tail = estimate_powerlaw_exponent(graph, k_min=5)
        # The MLE over a truncated, finite sample is biased; just require
        # a heavy-tail-range answer.
        assert 1.3 < alpha < 3.5
        assert tail > 100

    def test_no_tail_raises(self):
        with pytest.raises(GraphError):
            estimate_powerlaw_exponent(empty_graph(5), k_min=2)

    def test_invalid_k_min(self):
        with pytest.raises(GraphError):
            estimate_powerlaw_exponent(star_graph(4), k_min=0)
