"""Unit tests for the CSR graph core."""

import numpy as np
import pytest

from repro.exceptions import GraphError, NodeNotFoundError
from repro.graph.builder import graph_from_arrays, graph_from_edges, path_graph
from repro.graph.csr import CSRGraph

from tests.conftest import random_graph


class TestConstruction:
    def test_basic_counts(self):
        g = graph_from_edges([(0, 1), (1, 2), (2, 3)])
        assert g.n == 4
        assert g.num_edges == 3
        assert g.num_directed_entries == 6

    def test_duplicate_edges_collapse(self):
        g = graph_from_edges([(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_self_loops_dropped(self):
        g = graph_from_edges([(0, 0), (0, 1), (2, 2)], n=3)
        assert g.num_edges == 1
        assert not g.has_edge(0, 0)

    def test_explicit_n_larger_than_ids(self):
        g = graph_from_edges([(0, 1)], n=10)
        assert g.n == 10
        assert g.degree(9) == 0

    def test_rows_sorted(self):
        g = random_graph(50, 300, seed=3)
        for u in range(g.n):
            row = g.neighbors(u)
            assert np.all(np.diff(row) > 0)

    def test_validate_accepts_builder_output(self):
        random_graph(40, 160, seed=1).validate()

    def test_validate_rejects_asymmetric(self):
        bad = CSRGraph(
            2,
            np.array([0, 1, 1], dtype=np.int64),
            np.array([1], dtype=np.int32),
        )
        with pytest.raises(GraphError, match="symmetric"):
            bad.validate()

    def test_bad_indptr_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(3, np.array([0, 1]), np.array([1], dtype=np.int32))

    def test_indices_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(2, np.array([0, 1, 2]), np.array([5, 0], dtype=np.int32))

    def test_negative_weight_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(
                2,
                np.array([0, 1, 2]),
                np.array([1, 0], dtype=np.int32),
                np.array([-1.0, -1.0]),
            )


class TestAccessors:
    def test_degree_and_degrees_agree(self):
        g = random_graph(60, 200, seed=2)
        degrees = g.degrees()
        for u in range(g.n):
            assert g.degree(u) == degrees[u]

    def test_degrees_sum_to_twice_edges(self):
        g = random_graph(60, 200, seed=4)
        assert int(g.degrees().sum()) == 2 * g.num_edges

    def test_has_edge_matches_neighbors(self):
        g = random_graph(40, 120, seed=5)
        for u in range(g.n):
            for v in g.neighbors(u).tolist():
                assert g.has_edge(u, v)
                assert g.has_edge(v, u)
        assert not g.has_edge(0, 0)

    def test_unknown_node_raises(self):
        g = path_graph(3)
        with pytest.raises(NodeNotFoundError):
            g.degree(3)
        with pytest.raises(NodeNotFoundError):
            g.neighbors(-1)

    def test_edge_weight_default_one(self):
        g = graph_from_edges([(0, 1)])
        assert g.edge_weight(0, 1) == 1.0

    def test_edge_weight_missing_edge(self):
        g = graph_from_edges([(0, 1), (1, 2)])
        with pytest.raises(GraphError, match="does not exist"):
            g.edge_weight(0, 2)

    def test_weighted_edge_weight(self):
        g = graph_from_arrays(
            np.array([0, 1]), np.array([1, 2]), weights=np.array([2.5, 0.5])
        )
        assert g.edge_weight(0, 1) == 2.5
        assert g.edge_weight(2, 1) == 0.5
        assert g.is_weighted

    def test_duplicate_weighted_edges_keep_minimum(self):
        g = graph_from_arrays(
            np.array([0, 1, 0]),
            np.array([1, 0, 1]),
            weights=np.array([3.0, 1.0, 2.0]),
        )
        assert g.num_edges == 1
        assert g.edge_weight(0, 1) == 1.0


class TestViewsAndExport:
    def test_adjacency_matches_neighbors(self):
        g = random_graph(30, 100, seed=7)
        adj = g.adjacency()
        for u in range(g.n):
            assert adj[u] == g.neighbors(u).tolist()

    def test_adjacency_cached(self):
        g = random_graph(10, 20, seed=8)
        assert g.adjacency() is g.adjacency()

    def test_weighted_adjacency_unit_weights(self):
        g = graph_from_edges([(0, 1), (1, 2)])
        wadj = g.weighted_adjacency()
        assert wadj[1] == [(0, 1.0), (2, 1.0)]

    def test_edges_each_once(self):
        g = random_graph(25, 80, seed=9)
        edges = list(g.edges())
        assert len(edges) == g.num_edges
        assert all(u < v for u, v in edges)
        assert len(set(edges)) == len(edges)

    def test_edge_arrays_round_trip(self):
        g = random_graph(25, 80, seed=10)
        src, dst, _ = g.edge_arrays()
        rebuilt = graph_from_arrays(src, dst, n=g.n)
        assert rebuilt == g

    def test_weighted_edges_round_trip(self):
        g = random_graph(20, 60, seed=11, weighted=True)
        triples = list(g.weighted_edges())
        from repro.graph.builder import graph_from_weighted_edges

        rebuilt = graph_from_weighted_edges(triples, n=g.n)
        assert rebuilt == g

    def test_equality(self):
        a = random_graph(15, 40, seed=12)
        b = random_graph(15, 40, seed=12)
        c = random_graph(15, 40, seed=13)
        assert a == b
        assert a != c

    def test_repr_mentions_sizes(self):
        g = graph_from_edges([(0, 1)])
        assert "n=2" in repr(g)
        assert "m=1" in repr(g)


class TestSubgraph:
    def test_induced_subgraph(self):
        g = graph_from_edges([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
        sub, originals = g.subgraph([0, 1, 2])
        assert sub.n == 3
        assert sub.num_edges == 3  # triangle 0-1-2 via edges (0,1),(1,2),(0,2)
        assert originals.tolist() == [0, 1, 2]

    def test_subgraph_relabels(self):
        g = graph_from_edges([(0, 1), (1, 2), (2, 3)])
        sub, originals = g.subgraph([2, 3])
        assert sub.n == 2
        assert sub.has_edge(0, 1)
        assert originals.tolist() == [2, 3]

    def test_subgraph_duplicates_rejected(self):
        g = path_graph(4)
        with pytest.raises(GraphError, match="duplicates"):
            g.subgraph([1, 1])

    def test_subgraph_unknown_nodes_rejected(self):
        g = path_graph(4)
        with pytest.raises(GraphError):
            g.subgraph([0, 99])

    def test_weighted_subgraph_keeps_weights(self):
        g = graph_from_arrays(
            np.array([0, 1, 2]),
            np.array([1, 2, 3]),
            weights=np.array([1.5, 2.5, 3.5]),
        )
        sub, _ = g.subgraph([1, 2])
        assert sub.edge_weight(0, 1) == 2.5
