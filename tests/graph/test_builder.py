"""Unit tests for graph builders and deterministic toy graphs."""

import numpy as np
import pytest

from repro.exceptions import EdgeError, GraphError
from repro.graph.builder import (
    complete_graph,
    cycle_graph,
    digraph_from_arrays,
    digraph_from_edges,
    empty_graph,
    graph_from_arrays,
    graph_from_edges,
    graph_from_weighted_edges,
    grid_graph,
    path_graph,
    star_graph,
)


class TestEdgeListBuilders:
    def test_empty_edge_list(self):
        g = graph_from_edges([], n=5)
        assert g.n == 5
        assert g.num_edges == 0

    def test_empty_edge_list_no_n(self):
        g = graph_from_edges([])
        assert g.n == 0

    def test_malformed_pairs_rejected(self):
        with pytest.raises(EdgeError):
            graph_from_edges([(0, 1, 2)])

    def test_negative_ids_rejected(self):
        with pytest.raises(EdgeError):
            graph_from_edges([(-1, 2)])

    def test_n_too_small_rejected(self):
        with pytest.raises(EdgeError, match="references node"):
            graph_from_edges([(0, 5)], n=3)

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(EdgeError):
            graph_from_arrays(np.array([0, 1]), np.array([1]))

    def test_weight_alignment_enforced(self):
        with pytest.raises(EdgeError):
            graph_from_arrays(
                np.array([0]), np.array([1]), weights=np.array([1.0, 2.0])
            )

    def test_negative_weights_rejected(self):
        with pytest.raises(EdgeError):
            graph_from_arrays(
                np.array([0]), np.array([1]), weights=np.array([-2.0])
            )

    def test_weighted_triples(self):
        g = graph_from_weighted_edges([(0, 1, 2.0), (1, 2, 0.25)])
        assert g.is_weighted
        assert g.edge_weight(1, 2) == 0.25

    def test_weighted_empty(self):
        g = graph_from_weighted_edges([], n=3)
        assert g.n == 3
        assert g.is_weighted

    def test_orientation_ignored_for_undirected(self):
        a = graph_from_edges([(0, 1), (2, 1)])
        b = graph_from_edges([(1, 0), (1, 2)])
        assert a == b


class TestDigraphBuilders:
    def test_orientation_preserved(self):
        g = digraph_from_edges([(0, 1), (1, 2)])
        assert g.has_arc(0, 1)
        assert not g.has_arc(1, 0)

    def test_in_out_consistency(self):
        rng = np.random.default_rng(3)
        src = rng.integers(0, 30, 100)
        dst = rng.integers(0, 30, 100)
        g = digraph_from_arrays(src, dst)
        for u in range(g.n):
            for v in g.successors(u).tolist():
                assert u in g.predecessors(v).tolist()
        assert int(g.out_degrees().sum()) == int(g.in_degrees().sum()) == g.num_arcs

    def test_self_loops_dropped(self):
        g = digraph_from_edges([(0, 0), (0, 1)])
        assert g.num_arcs == 1

    def test_duplicates_collapse(self):
        g = digraph_from_edges([(0, 1), (0, 1), (1, 0)])
        assert g.num_arcs == 2

    def test_reverse(self):
        g = digraph_from_edges([(0, 1), (1, 2)])
        r = g.reverse()
        assert r.has_arc(1, 0)
        assert r.has_arc(2, 1)
        assert not r.has_arc(0, 1)

    def test_as_undirected(self):
        g = digraph_from_edges([(0, 1), (1, 0), (1, 2)])
        und = g.as_undirected()
        assert und.num_edges == 2

    def test_weighted_digraph_min_weight_kept(self):
        g = digraph_from_arrays(
            np.array([0, 0]),
            np.array([1, 1]),
            weights=np.array([5.0, 2.0]),
        )
        assert g.num_arcs == 1
        assert g.out_weights[0] == 2.0


class TestToyGraphs:
    def test_path(self):
        g = path_graph(5)
        assert g.num_edges == 4
        assert g.degree(0) == 1
        assert g.degree(2) == 2

    def test_path_degenerate(self):
        assert path_graph(1).num_edges == 0
        assert path_graph(0).n == 0

    def test_cycle(self):
        g = cycle_graph(6)
        assert g.num_edges == 6
        assert all(g.degree(u) == 2 for u in range(6))

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(7)
        assert g.degree(0) == 6
        assert g.num_edges == 6

    def test_complete(self):
        g = complete_graph(6)
        assert g.num_edges == 15
        assert all(g.degree(u) == 5 for u in range(6))

    def test_complete_trivial(self):
        assert complete_graph(0).n == 0
        assert complete_graph(1).num_edges == 0

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.n == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical
        assert g.degree(0) == 2  # corner

    def test_grid_invalid(self):
        with pytest.raises(GraphError):
            grid_graph(0, 4)

    def test_empty_graph_negative(self):
        with pytest.raises(GraphError):
            empty_graph(-1)
