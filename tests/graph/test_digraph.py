"""DiGraph accessor and invariant tests."""

import numpy as np
import pytest

from repro.exceptions import GraphError, NodeNotFoundError
from repro.graph.builder import digraph_from_arrays, digraph_from_edges
from repro.graph.digraph import DiGraph


@pytest.fixture()
def triangle():
    return digraph_from_edges([(0, 1), (1, 2), (2, 0)])


class TestAccessors:
    def test_degrees(self, triangle):
        assert triangle.out_degree(0) == 1
        assert triangle.in_degree(0) == 1
        assert triangle.total_degrees().tolist() == [2, 2, 2]

    def test_successors_predecessors(self, triangle):
        assert triangle.successors(0).tolist() == [1]
        assert triangle.predecessors(0).tolist() == [2]

    def test_has_arc(self, triangle):
        assert triangle.has_arc(0, 1)
        assert not triangle.has_arc(1, 0)

    def test_unknown_nodes(self, triangle):
        with pytest.raises(NodeNotFoundError):
            triangle.out_degree(9)
        with pytest.raises(NodeNotFoundError):
            triangle.has_arc(0, 9)

    def test_arcs_iterator(self, triangle):
        assert sorted(triangle.arcs()) == [(0, 1), (1, 2), (2, 0)]

    def test_adjacency_views_cached(self, triangle):
        assert triangle.out_adjacency() is triangle.out_adjacency()
        assert triangle.in_adjacency() is triangle.in_adjacency()

    def test_repr(self, triangle):
        assert "DiGraph(n=3, arcs=3" in repr(triangle)


class TestReverseAndProjection:
    def test_reverse_twice_is_identity(self):
        rng = np.random.default_rng(1)
        g = digraph_from_arrays(rng.integers(0, 20, 60), rng.integers(0, 20, 60))
        rr = g.reverse().reverse()
        assert np.array_equal(rr.out_indices, g.out_indices)
        assert np.array_equal(rr.in_indices, g.in_indices)

    def test_reverse_swaps_weights(self):
        g = digraph_from_arrays(
            np.array([0, 1]), np.array([1, 2]), weights=np.array([3.0, 5.0])
        )
        r = g.reverse()
        assert r.is_weighted
        assert np.array_equal(np.sort(r.out_weights), np.sort(g.in_weights))

    def test_undirected_projection_counts(self):
        g = digraph_from_edges([(0, 1), (1, 0), (1, 2), (3, 1)])
        und = g.as_undirected()
        assert und.num_edges == 3  # {0,1}, {1,2}, {1,3}


class TestConstructionValidation:
    def test_mismatched_arc_counts_rejected(self):
        with pytest.raises(GraphError, match="arc counts"):
            DiGraph(
                2,
                np.array([0, 1, 1]),
                np.array([1], dtype=np.int32),
                np.array([0, 0, 0]),
                np.array([], dtype=np.int32),
            )

    def test_one_sided_weights_rejected(self):
        with pytest.raises(GraphError, match="both orientations"):
            DiGraph(
                2,
                np.array([0, 1, 1]),
                np.array([1], dtype=np.int32),
                np.array([0, 0, 1]),
                np.array([0], dtype=np.int32),
                out_weights=np.array([1.0]),
            )

    def test_bad_indptr_rejected(self):
        with pytest.raises(GraphError):
            DiGraph(
                2,
                np.array([0, 2, 1]),
                np.array([1, 0], dtype=np.int32),
                np.array([0, 1, 2]),
                np.array([1, 0], dtype=np.int32),
            )
