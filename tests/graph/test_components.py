"""Unit tests for connected-component analysis."""

import numpy as np

from repro.graph.builder import empty_graph, graph_from_edges, path_graph
from repro.graph.components import (
    component_sizes,
    connected_components,
    is_connected,
    largest_component,
)

from tests.conftest import random_graph


class TestConnectedComponents:
    def test_single_component(self):
        labels, count = connected_components(path_graph(6))
        assert count == 1
        assert set(labels.tolist()) == {0}

    def test_two_components(self):
        g = graph_from_edges([(0, 1), (2, 3)], n=5)
        labels, count = connected_components(g)
        assert count == 3  # {0,1}, {2,3}, {4}
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2] != labels[4]

    def test_empty_graph(self):
        labels, count = connected_components(empty_graph(0))
        assert count == 0
        assert labels.size == 0

    def test_isolated_nodes(self):
        labels, count = connected_components(empty_graph(4))
        assert count == 4

    def test_labels_dense(self):
        g = random_graph(60, 50, seed=6)
        labels, count = connected_components(g)
        assert sorted(set(labels.tolist())) == list(range(count))


class TestIsConnected:
    def test_connected(self):
        assert is_connected(path_graph(5))

    def test_disconnected(self):
        assert not is_connected(graph_from_edges([(0, 1)], n=3))

    def test_empty_is_connected(self):
        assert is_connected(empty_graph(0))


class TestLargestComponent:
    def test_extracts_largest(self):
        g = graph_from_edges([(0, 1), (1, 2), (3, 4)], n=5)
        sub, originals = largest_component(g)
        assert sub.n == 3
        assert sorted(originals.tolist()) == [0, 1, 2]
        assert is_connected(sub)

    def test_connected_graph_unchanged(self):
        g = path_graph(5)
        sub, originals = largest_component(g)
        assert sub is g
        assert originals.tolist() == list(range(5))

    def test_empty(self):
        g = empty_graph(0)
        sub, originals = largest_component(g)
        assert sub.n == 0
        assert originals.size == 0

    def test_component_sizes_sorted(self):
        g = graph_from_edges([(0, 1), (1, 2), (3, 4)], n=6)
        sizes = component_sizes(g)
        assert sizes.tolist() == [3, 2, 1]
        assert int(sizes.sum()) == g.n
