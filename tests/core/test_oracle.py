"""Online-phase (Algorithm 1) tests: exactness, methods, instrumentation."""

import numpy as np
import pytest

from repro.core.config import OracleConfig
from repro.core.oracle import METHODS, VicinityOracle
from repro.exceptions import NodeNotFoundError, QueryError, UnreachableError
from repro.graph.builder import graph_from_edges, path_graph
from repro.graph.traversal.bfs import bfs_distance, bfs_distances

from tests.conftest import random_connected_graph, random_graph


@pytest.fixture(scope="module")
def oracle():
    graph = random_connected_graph(350, 1100, seed=21)
    config = OracleConfig(alpha=4.0, seed=5, fallback="bidirectional")
    return VicinityOracle.build(graph, config=config)


class TestExactness:
    def test_all_pairs_sample_exact(self, oracle):
        graph = oracle.graph
        rng = np.random.default_rng(1)
        for _ in range(400):
            s, t = rng.integers(0, graph.n, 2)
            result = oracle.query(int(s), int(t))
            assert result.distance == bfs_distance(graph, int(s), int(t)), result.method

    def test_identical_nodes(self, oracle):
        result = oracle.query(5, 5)
        assert result.distance == 0
        assert result.method == "identical"
        assert result.probes == 0

    def test_landmark_source_condition(self, oracle):
        landmark = int(oracle.index.landmarks.ids[0])
        target = (landmark + 1) % oracle.graph.n
        result = oracle.query(landmark, target)
        assert result.method in ("landmark-source", "identical", "disconnected")
        if result.method == "landmark-source":
            assert result.distance == bfs_distance(oracle.graph, landmark, target)

    def test_landmark_target_condition(self, oracle):
        landmark = int(oracle.index.landmarks.ids[-1])
        flags = oracle.index.landmarks.is_landmark
        source = next(
            u for u in range(oracle.graph.n) if not flags[u] and u != landmark
        )
        result = oracle.query(source, landmark)
        assert result.method == "landmark-target"

    def test_methods_are_known(self, oracle):
        rng = np.random.default_rng(2)
        for _ in range(100):
            s, t = rng.integers(0, oracle.graph.n, 2)
            assert oracle.query(int(s), int(t)).method in METHODS

    def test_unknown_nodes_raise(self, oracle):
        with pytest.raises(NodeNotFoundError):
            oracle.query(-1, 0)
        with pytest.raises(NodeNotFoundError):
            oracle.query(0, oracle.graph.n)


class TestPaths:
    def test_paths_valid_and_shortest(self, oracle):
        graph = oracle.graph
        rng = np.random.default_rng(3)
        for _ in range(150):
            s, t = rng.integers(0, graph.n, 2)
            result = oracle.query(int(s), int(t), with_path=True)
            if result.distance is None:
                continue
            path = result.path
            assert path is not None
            assert path[0] == s and path[-1] == t
            assert len(path) - 1 == result.distance
            for a, b in zip(path, path[1:]):
                assert graph.has_edge(a, b)

    def test_path_method(self, oracle):
        rng = np.random.default_rng(4)
        s, t = rng.integers(0, oracle.graph.n, 2)
        path = oracle.path(int(s), int(t))
        assert path[0] == s and path[-1] == t

    def test_path_disconnected_raises(self):
        graph = graph_from_edges([(0, 1), (2, 3)], n=4)
        oracle = VicinityOracle.build(graph, config=OracleConfig(alpha=4, seed=1))
        with pytest.raises(UnreachableError):
            oracle.path(0, 3)

    def test_distance_disconnected_is_none(self):
        graph = graph_from_edges([(0, 1), (2, 3)], n=4)
        oracle = VicinityOracle.build(graph, config=OracleConfig(alpha=4, seed=1))
        result = oracle.query(0, 3)
        assert result.distance is None
        assert result.method == "disconnected"


class TestFallbackModes:
    def test_fallback_none_reports_miss(self):
        graph = random_connected_graph(300, 750, seed=22)
        config = OracleConfig(alpha=0.25, seed=2, fallback="none")
        oracle = VicinityOracle.build(graph, config=config)
        rng = np.random.default_rng(5)
        methods = set()
        for _ in range(300):
            s, t = rng.integers(0, graph.n, 2)
            result = oracle.query(int(s), int(t))
            methods.add(result.method)
            if result.distance is not None:
                assert result.distance == bfs_distance(graph, int(s), int(t))
        # At alpha=1/4 on a homogeneous-ish graph some pairs must miss.
        assert "miss" in methods

    def test_fallback_bidirectional_always_exact(self):
        graph = random_connected_graph(250, 600, seed=23)
        config = OracleConfig(alpha=0.25, seed=3, fallback="bidirectional")
        oracle = VicinityOracle.build(graph, config=config)
        rng = np.random.default_rng(6)
        for _ in range(200):
            s, t = rng.integers(0, graph.n, 2)
            result = oracle.query(int(s), int(t))
            assert result.distance == bfs_distance(graph, int(s), int(t))

    def test_landmark_tables_none_still_exact_with_fallback(self):
        graph = random_connected_graph(250, 650, seed=24)
        config = OracleConfig(
            alpha=4.0, seed=4, landmark_tables="none", fallback="bidirectional"
        )
        oracle = VicinityOracle.build(graph, config=config)
        rng = np.random.default_rng(7)
        for _ in range(200):
            s, t = rng.integers(0, graph.n, 2)
            result = oracle.query(int(s), int(t))
            assert result.distance == bfs_distance(graph, int(s), int(t))


class TestInstrumentation:
    def test_counters_accumulate(self, oracle):
        oracle.counters.reset()
        rng = np.random.default_rng(8)
        for _ in range(50):
            s, t = rng.integers(0, oracle.graph.n, 2)
            oracle.query(int(s), int(t))
        assert oracle.counters.queries == 50
        assert oracle.counters.probes > 0
        assert oracle.counters.worst_probes >= oracle.counters.mean_probes
        assert sum(oracle.counters.by_method.values()) == 50

    def test_reset(self, oracle):
        oracle.counters.reset()
        assert oracle.counters.queries == 0
        assert oracle.counters.mean_probes == 0.0

    def test_probes_reported_per_query(self, oracle):
        flags = oracle.index.landmarks.is_landmark
        s = next(u for u in range(oracle.graph.n) if not flags[u])
        t = next(
            u for u in range(oracle.graph.n - 1, -1, -1) if not flags[u] and u != s
        )
        result = oracle.query(s, t)
        assert result.probes >= 4  # at least the four condition checks


class TestKernelsAgree:
    @pytest.mark.parametrize(
        "kernel",
        ["boundary-source", "boundary-target", "boundary-smaller", "full-source", "full-smaller"],
    )
    def test_kernel_equivalence(self, kernel):
        graph = random_connected_graph(220, 660, seed=25)
        config = OracleConfig(alpha=4.0, seed=6, kernel=kernel, fallback="none")
        oracle = VicinityOracle.build(graph, config=config)
        expected = bfs_distances(graph, 0)
        for t in range(0, graph.n, 7):
            result = oracle.query(0, t)
            if result.distance is not None:
                want = None if expected[t] < 0 else int(expected[t])
                assert result.distance == want


class TestBuildApi:
    def test_shorthand_build(self):
        graph = path_graph(30)
        oracle = VicinityOracle.build(graph, alpha=2.0, seed=1)
        assert oracle.config.alpha == 2.0

    def test_config_and_overrides_conflict(self):
        graph = path_graph(10)
        with pytest.raises(QueryError):
            VicinityOracle.build(
                graph, config=OracleConfig(), fallback="none"
            )

    def test_store_paths_false_query_raises_for_path(self):
        graph = path_graph(20)
        config = OracleConfig(alpha=4, seed=1, store_paths=False, fallback="none")
        oracle = VicinityOracle.build(graph, config=config)
        with pytest.raises(QueryError):
            oracle.query(0, 5, with_path=True)

    def test_stats_and_memory_accessors(self, oracle):
        stats = oracle.stats()
        assert stats.n == oracle.graph.n
        memory = oracle.memory()
        assert memory.vicinity_entries > 0
