"""Oracle exactness on structured corner-case topologies.

The random-graph tests cover typical inputs; these pin down the
degenerate shapes where off-by-one radius or boundary errors would
hide: paths (maximum diameter), stars (radius-1 world), cycles (two
equal shortest paths), complete graphs (everything adjacent), grids
(high girth), and disconnected forests.
"""

import numpy as np
import pytest

from repro.core.config import OracleConfig
from repro.core.oracle import VicinityOracle
from repro.graph.builder import (
    complete_graph,
    cycle_graph,
    graph_from_edges,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graph.traversal.bfs import bfs_distance


def build(graph, **overrides):
    defaults = dict(alpha=4.0, seed=3, fallback="bidirectional")
    defaults.update(overrides)
    return VicinityOracle.build(graph, config=OracleConfig(**defaults))


def assert_exact_all_pairs(graph, oracle):
    for s in range(graph.n):
        for t in range(graph.n):
            result = oracle.query(s, t)
            assert result.distance == bfs_distance(graph, s, t), (s, t, result.method)


class TestToyTopologies:
    def test_path_graph(self):
        g = path_graph(25)
        assert_exact_all_pairs(g, build(g))

    def test_star_graph(self):
        g = star_graph(30)
        assert_exact_all_pairs(g, build(g))

    def test_cycle_graph(self):
        g = cycle_graph(17)
        assert_exact_all_pairs(g, build(g))

    def test_complete_graph(self):
        g = complete_graph(12)
        assert_exact_all_pairs(g, build(g))

    def test_grid_graph(self):
        g = grid_graph(5, 6)
        assert_exact_all_pairs(g, build(g))

    def test_two_node_graph(self):
        g = graph_from_edges([(0, 1)])
        oracle = build(g)
        assert oracle.query(0, 1).distance == 1
        assert oracle.query(0, 0).distance == 0

    def test_single_node(self):
        g = graph_from_edges([], n=1)
        oracle = build(g)
        assert oracle.query(0, 0).distance == 0


class TestDisconnectedInputs:
    def test_forest(self):
        g = graph_from_edges([(0, 1), (1, 2), (3, 4), (5, 6), (6, 7)], n=9)
        oracle = build(g)
        assert_exact_all_pairs(g, oracle)
        # Cross-component queries report disconnection, not miss.
        assert oracle.query(0, 3).method == "disconnected"
        assert oracle.query(8, 0).distance is None

    def test_isolated_nodes_everywhere(self):
        g = graph_from_edges([(2, 5)], n=8)
        oracle = build(g)
        assert oracle.query(2, 5).distance == 1
        assert oracle.query(0, 7).distance is None

    def test_each_component_got_a_landmark(self):
        g = graph_from_edges([(0, 1), (2, 3), (4, 5)], n=6)
        oracle = build(g)
        labels = {0: 0, 2: 1, 4: 2}
        flags = oracle.index.landmarks.is_landmark
        for start in (0, 2, 4):
            assert flags[start] or flags[start + 1]


class TestExtremeAlphas:
    @pytest.mark.parametrize("alpha", [1 / 64, 64.0])
    def test_exactness_preserved(self, alpha):
        g = grid_graph(5, 5)
        oracle = build(g, alpha=alpha)
        assert_exact_all_pairs(g, oracle)

    def test_everyone_is_a_landmark(self):
        # With a huge probability scale every node samples into L.
        g = cycle_graph(10)
        oracle = build(g, alpha=0.01, probability_scale=1e6)
        assert oracle.index.landmarks.size == g.n
        assert_exact_all_pairs(g, oracle)

    def test_single_landmark_whole_graph(self):
        from repro.core.index import VicinityIndex
        from repro.core.landmarks import landmark_set_from_ids

        g = path_graph(15)
        config = OracleConfig(alpha=4.0, probability_scale=1.0, fallback="none")
        landmarks = landmark_set_from_ids(g, [7], alpha=4.0)
        oracle = VicinityOracle(VicinityIndex.from_landmarks(g, config, landmarks))
        assert_exact_all_pairs(g, oracle)


class TestWeightedEndToEnd:
    def test_weighted_with_fallback_never_wrong_on_misses(self):
        # Weighted intersection can overestimate (documented caveat);
        # but misses must still resolve exactly through the fallback.
        from tests.conftest import random_connected_graph
        from repro.graph.traversal.dijkstra import dijkstra_distances

        g = random_connected_graph(120, 300, seed=151, weighted=True)
        oracle = build(g, alpha=0.25)
        rng = np.random.default_rng(1)
        fallback_checked = 0
        for _ in range(200):
            s, t = (int(x) for x in rng.integers(0, g.n, 2))
            result = oracle.query(s, t)
            if result.method in ("fallback", "landmark-source", "landmark-target"):
                truth = dijkstra_distances(g, s)[t]
                assert result.distance == pytest.approx(truth)
                fallback_checked += 1
        assert fallback_checked > 0
