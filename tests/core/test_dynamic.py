"""Dynamic-oracle tests: insertions must match a fresh rebuild."""

import numpy as np
import pytest

from repro.core.config import OracleConfig
from repro.core.dynamic import DynamicVicinityOracle
from repro.core.index import VicinityIndex
from repro.core.oracle import VicinityOracle
from repro.exceptions import EdgeError, IndexBuildError
from repro.graph.builder import path_graph
from repro.graph.traversal.bfs import bfs_distance

from tests.conftest import random_connected_graph


def fresh_equivalent(dynamic):
    """Rebuild a static index on the current graph with the same L."""
    index = VicinityIndex.from_landmarks(
        dynamic.graph, dynamic.index.config, dynamic.index.landmarks
    )
    return VicinityOracle(index)


class TestAddEdge:
    def test_distance_updates(self):
        oracle = DynamicVicinityOracle.build(path_graph(10), alpha=4.0, seed=1)
        assert oracle.distance(0, 9) == 9
        assert oracle.add_edge(0, 9)
        assert oracle.distance(0, 9) == 1
        assert oracle.distance(1, 8) == 3  # 1-0-9-8

    def test_duplicate_edge_noop(self):
        oracle = DynamicVicinityOracle.build(path_graph(5), alpha=4.0, seed=1)
        assert not oracle.add_edge(0, 1)
        assert oracle.edges_added == 0

    def test_self_loop_rejected(self):
        oracle = DynamicVicinityOracle.build(path_graph(5), alpha=4.0, seed=1)
        with pytest.raises(EdgeError):
            oracle.add_edge(2, 2)

    def test_weighted_rejected(self):
        graph = random_connected_graph(50, 120, seed=81, weighted=True)
        with pytest.raises(IndexBuildError):
            DynamicVicinityOracle.build(graph, alpha=4.0, seed=1)

    def test_matches_fresh_rebuild_after_insertions(self):
        graph = random_connected_graph(200, 500, seed=82)
        dynamic = DynamicVicinityOracle.build(graph, alpha=4.0, seed=2)
        rng = np.random.default_rng(3)
        added = 0
        while added < 8:
            u, v = (int(x) for x in rng.integers(0, graph.n, 2))
            if u == v or dynamic.graph.has_edge(u, v):
                continue
            assert dynamic.add_edge(u, v)
            added += 1
        static = fresh_equivalent(dynamic)
        for _ in range(250):
            s, t = (int(x) for x in rng.integers(0, dynamic.graph.n, 2))
            assert dynamic.query(s, t).distance == static.query(s, t).distance, (s, t)

    def test_landmark_tables_repaired_exactly(self):
        graph = random_connected_graph(150, 380, seed=83)
        dynamic = DynamicVicinityOracle.build(graph, alpha=4.0, seed=4)
        rng = np.random.default_rng(5)
        for _ in range(5):
            u, v = (int(x) for x in rng.integers(0, graph.n, 2))
            if u == v or dynamic.graph.has_edge(u, v):
                continue
            dynamic.add_edge(u, v)
        from repro.graph.traversal.bfs import bfs_distances

        for landmark, table in dynamic.index.tables.items():
            expected = bfs_distances(dynamic.graph, landmark)
            assert np.array_equal(table.dist, expected), landmark

    def test_queries_exact_after_updates(self):
        graph = random_connected_graph(150, 380, seed=84)
        dynamic = DynamicVicinityOracle.build(graph, alpha=4.0, seed=6)
        rng = np.random.default_rng(7)
        for _ in range(6):
            u, v = (int(x) for x in rng.integers(0, graph.n, 2))
            if u != v and not dynamic.graph.has_edge(u, v):
                dynamic.add_edge(u, v)
        for _ in range(200):
            s, t = (int(x) for x in rng.integers(0, dynamic.graph.n, 2))
            assert dynamic.query(s, t).distance == bfs_distance(dynamic.graph, s, t)

    def test_paths_valid_after_updates(self):
        graph = random_connected_graph(120, 300, seed=85)
        dynamic = DynamicVicinityOracle.build(graph, alpha=4.0, seed=8)
        rng = np.random.default_rng(9)
        for _ in range(4):
            u, v = (int(x) for x in rng.integers(0, graph.n, 2))
            if u != v and not dynamic.graph.has_edge(u, v):
                dynamic.add_edge(u, v)
        for _ in range(80):
            s, t = (int(x) for x in rng.integers(0, dynamic.graph.n, 2))
            result = dynamic.query(s, t, with_path=True)
            if result.path is None:
                continue
            for a, b in zip(result.path, result.path[1:]):
                assert dynamic.graph.has_edge(a, b)


class TestStaleness:
    def test_zero_when_untouched(self):
        graph = random_connected_graph(100, 250, seed=86)
        dynamic = DynamicVicinityOracle.build(graph, alpha=4.0, seed=10)
        assert dynamic.staleness() == pytest.approx(0.0)

    def test_grows_with_insertions(self):
        graph = random_connected_graph(100, 250, seed=87)
        dynamic = DynamicVicinityOracle.build(graph, alpha=4.0, seed=11)
        rng = np.random.default_rng(12)
        before = dynamic.staleness()
        added = 0
        while added < 10:
            u, v = (int(x) for x in rng.integers(0, graph.n, 2))
            if u != v and not dynamic.graph.has_edge(u, v):
                dynamic.add_edge(u, v)
                added += 1
        assert dynamic.staleness() > before

    def test_rebuild_resets(self):
        graph = random_connected_graph(100, 250, seed=88)
        dynamic = DynamicVicinityOracle.build(graph, alpha=4.0, seed=13)
        rng = np.random.default_rng(14)
        added = 0
        while added < 5:
            u, v = (int(x) for x in rng.integers(0, graph.n, 2))
            if u != v and not dynamic.graph.has_edge(u, v):
                dynamic.add_edge(u, v)
                added += 1
        dynamic.rebuild()
        assert dynamic.staleness() == pytest.approx(0.0)
        s, t = 0, graph.n - 1
        assert dynamic.query(s, t).distance == bfs_distance(dynamic.graph, s, t)
