"""dict↔flat parity: the engine must replicate the retired dict paths.

Property-style suites asserting identical :class:`QueryResult` fields —
distance, method, witness, probes, path — between
:class:`~repro.core.engine.FlatQueryEngine` (the canonical read path)
and :mod:`repro.core.reference` (the PR 2 dict probe paths, preserved
verbatim), across random graphs (weighted and unweighted), every
kernel, directed mode, and post-insertion dynamic repair.
"""

import numpy as np
import pytest

from repro.core.config import OracleConfig
from repro.core.dynamic import DynamicVicinityOracle
from repro.core.engine import (
    ORDER_EXACT_KERNELS,
    FlatQueryEngine,
    QueryEngine,
    ShardQueryEngine,
)
from repro.core.flat import FlatIndex, flatten_index
from repro.core.oracle import VicinityOracle
from repro.core.reference import DictReferenceOracle, directed_reference_resolve
from repro.exceptions import NodeNotFoundError, QueryError

from tests.conftest import random_connected_graph


def fields(result):
    return (
        result.source, result.target, result.distance,
        result.method, result.witness, result.probes, result.path,
    )


def assert_field_identical(got, want, *, exact_witness=True, context=None):
    if exact_witness:
        assert fields(got) == fields(want), context
    else:
        # full-* kernels scan sorted member ids instead of dict order,
        # so a distance tie may elect a different (equally minimal)
        # witness; everything order-independent must still agree.
        assert (got.distance, got.method, got.probes) == (
            want.distance, want.method, want.probes
        ), context


def random_pairs(n, count, seed):
    rng = np.random.default_rng(seed)
    return [tuple(int(x) for x in rng.integers(0, n, 2)) for _ in range(count)]


@pytest.fixture(
    scope="module", params=[False, True], ids=["unweighted", "weighted"]
)
def built(request):
    graph = random_connected_graph(220, 640, seed=33, weighted=request.param)
    oracle = VicinityOracle.build(
        graph, config=OracleConfig(alpha=4.0, seed=5, fallback="none")
    )
    return oracle.index


class TestSinglePairParity:
    @pytest.mark.parametrize(
        "kernel",
        ["boundary-source", "boundary-target", "boundary-smaller",
         "full-source", "full-smaller"],
    )
    def test_all_fields_match_reference(self, built, kernel):
        index = built
        index.config = index.config.with_updates(kernel=kernel)
        reference = DictReferenceOracle(index)
        engine = FlatQueryEngine.from_index(index)
        exact = kernel in ORDER_EXACT_KERNELS
        for s, t in random_pairs(index.n, 500, seed=9):
            got = engine.resolve(s, t, False)
            want = reference.query(s, t)
            assert_field_identical(
                got, want, exact_witness=exact, context=(kernel, s, t)
            )

    def test_paths_match_reference(self, built):
        index = built
        index.config = index.config.with_updates(kernel="boundary-smaller")
        reference = DictReferenceOracle(index)
        engine = FlatQueryEngine.from_index(index)
        for s, t in random_pairs(index.n, 250, seed=10):
            got = engine.resolve(s, t, True)
            want = reference.query(s, t, with_path=True)
            assert fields(got) == fields(want), (s, t)

    def test_oracle_query_is_engine_backed_and_identical(self, built):
        """The public oracle (fallback included) still equals the dict
        reference on every field."""
        graph = random_connected_graph(160, 380, seed=41)
        config = OracleConfig(alpha=0.5, seed=3, fallback="bidirectional")
        oracle = VicinityOracle.build(graph, config=config)
        reference = DictReferenceOracle(oracle.index)
        methods = set()
        for s, t in random_pairs(graph.n, 300, seed=11):
            got = oracle.query(s, t, with_path=True)
            want = reference.query(s, t, with_path=True)
            assert fields(got) == fields(want), (s, t)
            methods.add(got.method)
        assert "fallback" in methods  # alpha=1/2 must miss sometimes


class TestBatchParity:
    def test_batch_equals_single_resolution(self, built):
        engine = FlatQueryEngine.from_index(built)
        pairs = random_pairs(built.n, 400, seed=12)
        pairs += pairs[:100]  # duplicate tail drives the fused dedup
        batch = engine.query_batch(pairs)
        for (s, t), got in zip(pairs, batch):
            want = engine.resolve(s, t, False)
            assert fields(got) == fields(want), (s, t)

    def test_batch_with_paths_matches_dict_batch(self, built):
        index = built
        index.config = index.config.with_updates(kernel="boundary-smaller")
        reference = DictReferenceOracle(index)
        engine = FlatQueryEngine.from_index(index)
        pairs = random_pairs(index.n, 200, seed=13)
        got = engine.query_batch(pairs, with_path=True)
        want = reference.query_batch(pairs, with_path=True)
        for g, w in zip(got, want):
            assert fields(g) == fields(w)

    def test_landmark_lane_probe_constants(self, built):
        """Batch landmark lanes must report the same probe constants as
        the per-pair dispatch (2 for condition (1), 3 for (2))."""
        engine = FlatQueryEngine.from_index(built)
        landmark = int(built.landmarks.ids[0])
        flags = built.landmarks.is_landmark
        plain = next(u for u in range(built.n) if not flags[u])
        batch = engine.query_batch(
            [(landmark, plain), (plain, landmark), (landmark, landmark)]
        )
        assert [r.method for r in batch] == [
            "landmark-source", "landmark-target", "identical"
        ]
        assert [r.probes for r in batch] == [2, 3, 0]

    def test_validation_matches_oracle(self, built):
        engine = FlatQueryEngine.from_index(built)
        with pytest.raises(NodeNotFoundError):
            engine.query(0, built.n)
        with pytest.raises(NodeNotFoundError):
            engine.query_batch([(0, 1), (-3, 2)])

    def test_store_paths_false_strict(self):
        graph = random_connected_graph(80, 200, seed=4)
        config = OracleConfig(alpha=4.0, seed=2, store_paths=False, fallback="none")
        oracle = VicinityOracle.build(graph, config=config)
        engine = FlatQueryEngine.from_index(oracle.index)
        with pytest.raises(QueryError, match="store_paths"):
            engine.query_batch([(0, 1)], with_path=True)


class TestKernelTierParity:
    """The compiled tier must match the dict reference wherever the
    numpy tier does — same fields, same witness rules per kernel."""

    @pytest.fixture(
        params=["numpy", "native"], ids=["numpy", "native"]
    )
    def tier(self, request):
        from repro.core import _native

        if request.param == "native" and _native.load_library() is None:
            pytest.skip("compiled kernel extension not built")
        return request.param

    @pytest.mark.parametrize(
        "kernel",
        ["boundary-source", "boundary-target", "boundary-smaller",
         "full-source", "full-smaller"],
    )
    def test_all_fields_match_reference(self, built, tier, kernel):
        index = built
        index.config = index.config.with_updates(kernel=kernel)
        reference = DictReferenceOracle(index)
        engine = FlatQueryEngine.from_index(index, kernels=tier)
        assert engine.kernels == tier
        exact = kernel in ORDER_EXACT_KERNELS
        for s, t in random_pairs(index.n, 300, seed=9):
            got = engine.resolve(s, t, False)
            want = reference.query(s, t)
            assert_field_identical(
                got, want, exact_witness=exact, context=(tier, kernel, s, t)
            )

    def test_paths_match_reference(self, built, tier):
        index = built
        index.config = index.config.with_updates(kernel="boundary-smaller")
        reference = DictReferenceOracle(index)
        engine = FlatQueryEngine.from_index(index, kernels=tier)
        for s, t in random_pairs(index.n, 150, seed=10):
            got = engine.resolve(s, t, True)
            want = reference.query(s, t, with_path=True)
            assert fields(got) == fields(want), (tier, s, t)


class TestDirectedParity:
    @pytest.fixture(scope="class")
    def directed_oracle(self):
        from repro.core.directed import DirectedVicinityOracle
        from repro.graph.builder import digraph_from_arrays

        rng = np.random.default_rng(17)
        n, m = 150, 700
        graph = digraph_from_arrays(
            rng.integers(0, n, m), rng.integers(0, n, m), n=n
        )
        return DirectedVicinityOracle.build(graph, alpha=2.0, seed=5)

    def test_engine_matches_dict_resolve(self, directed_oracle):
        oracle = directed_oracle
        for s, t in random_pairs(oracle.graph.n, 400, seed=19):
            got = oracle.engine.resolve(s, t, False)
            want = directed_reference_resolve(oracle, s, t)
            assert fields(got) == fields(want), (s, t)

    def test_engine_paths_match_dict_resolve(self, directed_oracle):
        oracle = directed_oracle
        for s, t in random_pairs(oracle.graph.n, 200, seed=20):
            got = oracle.engine.resolve(s, t, True)
            want = directed_reference_resolve(oracle, s, t, with_path=True)
            assert fields(got) == fields(want), (s, t)

    def test_batch_matches_per_pair_query(self, directed_oracle):
        oracle = directed_oracle
        pairs = random_pairs(oracle.graph.n, 300, seed=21)
        batch = oracle.query_batch(pairs)
        for (s, t), got in zip(pairs, batch):
            want = oracle.query(s, t)
            assert fields(got) == fields(want), (s, t)


class TestDynamicRepairParity:
    def test_engine_tracks_insertions(self):
        """After every insertion the incrementally-refreshed engine must
        equal both the dict reference on the repaired index and a fresh
        full flatten."""
        graph = random_connected_graph(150, 400, seed=23)
        config = OracleConfig(alpha=4.0, seed=7, fallback="none")
        dynamic = DynamicVicinityOracle(
            VicinityOracle.build(graph, config=config).index
        )
        pairs = random_pairs(graph.n, 150, seed=24)
        dynamic.query(0, 1)  # force the engine into existence
        rng = np.random.default_rng(25)
        inserted = 0
        while inserted < 4:
            u, v = (int(x) for x in rng.integers(0, graph.n, 2))
            if u == v or not dynamic.add_edge(u, v):
                continue
            inserted += 1
            reference = DictReferenceOracle(dynamic.index)
            engine = dynamic._oracle.engine
            for s, t in pairs:
                got = engine.resolve(s, t, True)
                want = reference.query(s, t, with_path=True)
                assert fields(got) == fields(want), (u, v, s, t)

    def test_other_wrappers_of_a_mutated_index_stay_fresh(self):
        """Every oracle wrapping a mutated index must serve
        post-insertion answers — the dict path always read live state,
        and the flatten-generation counter preserves that."""
        graph = random_connected_graph(140, 360, seed=31)
        config = OracleConfig(alpha=4.0, seed=5, fallback="none")
        dynamic = DynamicVicinityOracle(
            VicinityOracle.build(graph, config=config).index
        )
        sibling = VicinityOracle(dynamic.index)
        pairs = random_pairs(graph.n, 120, seed=32)
        sibling.query_batch(pairs)  # cache an engine over the pre-edge state
        rng = np.random.default_rng(33)
        inserted = 0
        while inserted < 3:
            u, v = (int(x) for x in rng.integers(0, graph.n, 2))
            if u == v or not dynamic.add_edge(u, v):
                continue
            inserted += 1
        reference = DictReferenceOracle(dynamic.index)
        for s, t in pairs:
            got = sibling.query(s, t)
            want = reference.query(s, t)
            assert fields(got) == fields(want), (s, t)

    def test_refreshed_equals_full_reflatten(self):
        graph = random_connected_graph(130, 340, seed=26)
        config = OracleConfig(alpha=4.0, seed=9, fallback="none")
        dynamic = DynamicVicinityOracle(
            VicinityOracle.build(graph, config=config).index
        )
        dynamic.query(0, 1)
        rng = np.random.default_rng(27)
        inserted = 0
        while inserted < 3:
            u, v = (int(x) for x in rng.integers(0, graph.n, 2))
            if u == v or not dynamic.add_edge(u, v):
                continue
            inserted += 1
        incremental = dynamic._oracle.engine.out
        # A fresh full flatten, bypassing the index-level cache (which
        # holds the incrementally-refreshed object under test).
        rebuilt = FlatIndex.from_store_arrays(
            flatten_index(dynamic.index),
            n=dynamic.index.n,
            weighted=False,
            store_paths=True,
        )
        assert incremental is dynamic.index._flat_index  # cache kept fresh
        for name in incremental.arrays:
            assert np.array_equal(
                incremental.arrays[name], rebuilt.arrays[name]
            ), name


class TestQueryEngineProtocol:
    def test_every_consumer_satisfies_the_protocol(self, built):
        from repro.service import BatchExecutor, ShardedService

        engine = FlatQueryEngine.from_index(built)
        oracle = VicinityOracle(built)
        executor = BatchExecutor(oracle)
        assert isinstance(engine, QueryEngine)
        assert isinstance(oracle, QueryEngine)
        assert isinstance(executor, QueryEngine)
        with ShardedService(built, 2) as sharded:
            assert isinstance(sharded, QueryEngine)

    def test_shard_engines_share_the_flat_index(self, built):
        """Both shard backends execute the same engine class over the
        same arrays — the representations cannot drift apart."""
        from repro.core.parallel import shard_assignment

        flat = FlatIndex.from_index(built)
        assign = shard_assignment(built.n, 3, "hash")
        engine = ShardQueryEngine(flat, assign, False)
        results, local, remote, trips = engine.answer_batch(
            random_pairs(built.n, 50, seed=29), with_path=True
        )
        assert local + remote == 50
        assert all(r is not None for r in results)
