"""Vicinity records and boundary extraction."""

from repro.core.landmarks import sample_landmarks
from repro.core.vicinity import Vicinity, build_vicinity, compute_boundary
from repro.graph.builder import cycle_graph, path_graph, star_graph
from repro.graph.traversal.bounded import truncated_bfs_ball

from tests.conftest import random_connected_graph


class TestComputeBoundary:
    def test_interior_nodes_excluded(self):
        # Path 0-1-2-3-4; vicinity {0,1,2}: node 0 and 1 have all
        # neighbours inside, 2 borders 3.
        g = path_graph(5)
        members = [0, 1, 2]
        boundary = compute_boundary(members, frozenset(members), g.adjacency())
        assert boundary == [2]

    def test_whole_graph_has_empty_boundary(self):
        g = cycle_graph(6)
        members = list(range(6))
        assert compute_boundary(members, frozenset(members), g.adjacency()) == []

    def test_star_leaf_vicinity(self):
        g = star_graph(5)
        members = [1, 0]  # leaf and hub
        boundary = compute_boundary(members, frozenset(members), g.adjacency())
        assert boundary == [0]  # hub touches other leaves; leaf is interior

    def test_boundary_subset_and_order(self):
        g = random_connected_graph(100, 260, seed=3)
        ls = sample_landmarks(g, 2.0, rng=1)
        source = next(u for u in range(g.n) if not ls.is_landmark[u])
        ball = truncated_bfs_ball(g, source, ls.is_landmark)
        member_set = frozenset(ball.gamma)
        boundary = compute_boundary(ball.gamma, member_set, g.adjacency())
        assert set(boundary) <= member_set
        # Order preserved relative to gamma.
        positions = {v: i for i, v in enumerate(ball.gamma)}
        assert boundary == sorted(boundary, key=positions.get)


class TestVicinityRecord:
    def _make(self, store_paths=True):
        g = path_graph(6)
        ls_flags = bytearray(6)
        ls_flags[4] = 1
        ball = truncated_bfs_ball(g, 0, ls_flags)
        return g, build_vicinity(
            0, ball.radius, ball.dist, ball.pred, ball.gamma, g.adjacency(),
            store_paths=store_paths,
        )

    def test_membership(self):
        _g, vic = self._make()
        assert 0 in vic
        assert 4 in vic  # the landmark sits on the frontier
        assert 5 not in vic

    def test_sizes(self):
        _g, vic = self._make()
        assert vic.size == 5  # nodes 0..4
        assert vic.boundary_size >= 1

    def test_distance_to(self):
        _g, vic = self._make()
        assert vic.distance_to(3) == 3
        assert vic.distance_to(5) is None

    def test_store_paths_false_drops_pred(self):
        _g, vic = self._make(store_paths=False)
        assert vic.pred == {}

    def test_radius_recorded(self):
        _g, vic = self._make()
        assert vic.radius == 4
