"""Partitioned-oracle simulation tests."""

import numpy as np
import pytest

from repro.core.config import OracleConfig
from repro.core.index import VicinityIndex
from repro.core.oracle import VicinityOracle
from repro.core.parallel import PartitionedOracle
from repro.exceptions import QueryError

from tests.conftest import random_connected_graph


@pytest.fixture(scope="module")
def index():
    graph = random_connected_graph(300, 900, seed=71)
    return VicinityIndex.build(graph, OracleConfig(alpha=4.0, seed=11, fallback="none"))


class TestPlacement:
    def test_shard_of_in_range(self, index):
        oracle = PartitionedOracle(index, 4)
        for u in range(index.n):
            assert 0 <= oracle.shard_of(u) < 4

    def test_range_placement_contiguous(self, index):
        oracle = PartitionedOracle(index, 3, placement="range")
        shards = [oracle.shard_of(u) for u in range(index.n)]
        assert shards == sorted(shards)

    def test_invalid_args(self, index):
        with pytest.raises(QueryError):
            PartitionedOracle(index, 0)
        with pytest.raises(QueryError):
            PartitionedOracle(index, 2, placement="magic")


class TestShardReports:
    def test_entries_partition_exactly(self, index):
        oracle = PartitionedOracle(index, 5)
        reports = oracle.shard_reports()
        assert sum(r.nodes for r in reports) == index.n
        total_vic = sum(v.size for v in index.vicinities)
        assert sum(r.vicinity_entries for r in reports) == total_vic
        assert sum(r.table_entries for r in reports) == len(index.tables) * index.n

    def test_replicated_tables_multiply(self, index):
        replicated = PartitionedOracle(index, 3, replicate_tables=True)
        reports = replicated.shard_reports()
        for report in reports:
            assert report.table_entries == len(index.tables) * index.n

    def test_more_shards_less_memory_each(self, index):
        few = max(
            r.model_bytes for r in PartitionedOracle(index, 2).shard_reports()
        )
        many = max(
            r.model_bytes for r in PartitionedOracle(index, 8).shard_reports()
        )
        assert many < few

    def test_balance_summary(self, index):
        summary = PartitionedOracle(index, 4).balance_summary()
        assert summary["shards"] == 4
        assert summary["imbalance"] >= 1.0


class TestQuerySimulation:
    def test_results_match_single_machine(self, index):
        single = VicinityOracle(index)
        sharded = PartitionedOracle(index, 4)
        rng = np.random.default_rng(1)
        for _ in range(300):
            s, t = (int(x) for x in rng.integers(0, index.n, 2))
            a = single.query(s, t)
            b = sharded.query(s, t)
            assert a.distance == b.distance, (s, t, a.method, b.method)

    def test_traffic_accounted(self, index):
        sharded = PartitionedOracle(index, 4)
        rng = np.random.default_rng(2)
        for _ in range(200):
            s, t = (int(x) for x in rng.integers(0, index.n, 2))
            sharded.query(s, t)
        log = sharded.log
        assert log.local_queries + log.remote_queries == 200
        if log.remote_queries:
            assert log.messages > 0
            assert log.bytes > 0
            assert log.mean_messages < 10  # bounded rounds per query

    def test_single_shard_no_messages(self, index):
        sharded = PartitionedOracle(index, 1)
        rng = np.random.default_rng(3)
        for _ in range(100):
            s, t = (int(x) for x in rng.integers(0, index.n, 2))
            sharded.query(s, t)
        assert sharded.log.messages == 0
