"""OracleConfig validation tests."""

import pytest

from repro.core.config import FALLBACKS, KERNELS, OracleConfig
from repro.exceptions import IndexBuildError


class TestValidation:
    def test_defaults_valid(self):
        config = OracleConfig()
        assert config.alpha == 4.0
        assert config.probability_scale == "auto"

    def test_alpha_positive(self):
        with pytest.raises(IndexBuildError):
            OracleConfig(alpha=0)
        with pytest.raises(IndexBuildError):
            OracleConfig(alpha=-1)

    def test_scale_validation(self):
        OracleConfig(probability_scale=2.0)
        OracleConfig(probability_scale="auto")
        with pytest.raises(IndexBuildError):
            OracleConfig(probability_scale=0.0)
        with pytest.raises(IndexBuildError):
            OracleConfig(probability_scale="magic")

    def test_kernel_validation(self):
        for kernel in KERNELS:
            OracleConfig(kernel=kernel)
        with pytest.raises(IndexBuildError):
            OracleConfig(kernel="quantum")

    def test_fallback_validation(self):
        for fallback in FALLBACKS:
            OracleConfig(fallback=fallback)
        with pytest.raises(IndexBuildError):
            OracleConfig(fallback="magic")

    def test_landmark_tables_validation(self):
        OracleConfig(landmark_tables="none")
        with pytest.raises(IndexBuildError):
            OracleConfig(landmark_tables="some")

    def test_max_landmarks_validation(self):
        OracleConfig(max_landmarks=5)
        with pytest.raises(IndexBuildError):
            OracleConfig(max_landmarks=0)

    def test_floor_validation(self):
        OracleConfig(vicinity_floor=0.5)
        with pytest.raises(IndexBuildError):
            OracleConfig(vicinity_floor=-0.1)

    def test_frozen(self):
        config = OracleConfig()
        with pytest.raises(Exception):
            config.alpha = 8.0

    def test_with_updates(self):
        config = OracleConfig(alpha=4.0)
        updated = config.with_updates(alpha=16.0, kernel="full-source")
        assert updated.alpha == 16.0
        assert updated.kernel == "full-source"
        assert config.alpha == 4.0
