"""FlatIndex probe helpers must replicate the dict-backed code paths."""

import numpy as np
import pytest

from repro.core.config import OracleConfig
from repro.core.flat import FlatIndex, flatten_index
from repro.core.intersect import scan_and_probe
from repro.core.oracle import VicinityOracle
from repro.core.parallel import PartitionedOracle, shard_assignment
from repro.core.paths import walk_parent_array, walk_predecessors
from repro.exceptions import QueryError
from repro.io.shm import SharedArrayBundle

from tests.conftest import random_connected_graph


@pytest.fixture(scope="module", params=[False, True], ids=["unweighted", "weighted"])
def built(request):
    graph = random_connected_graph(180, 520, seed=13, weighted=request.param)
    oracle = VicinityOracle.build(
        graph, config=OracleConfig(alpha=4.0, seed=5, fallback="none")
    )
    return oracle.index


@pytest.fixture(scope="module")
def flat(built):
    return FlatIndex.from_index(built)


class TestProbes:
    def test_vicinity_probe_matches_dicts(self, built, flat):
        rng = np.random.default_rng(8)
        for u in rng.integers(0, built.n, 40).tolist():
            vic = built.vicinities[u]
            others = set(rng.integers(0, built.n, 10).tolist()) | set(
                list(vic.members)[:5]
            )
            for other in others:
                member, d = flat.vicinity_probe(u, other)
                assert member == (other in vic.members)
                if member:
                    assert d == vic.dist[other]
                    assert type(d) in (int, float)

    def test_boundary_payload_matches_dicts(self, built, flat):
        for u in range(built.n):
            vic = built.vicinities[u]
            nodes, dists = flat.boundary_payload(u)
            assert nodes.tolist() == list(vic.boundary)
            assert dists.tolist() == [vic.dist[w] for w in vic.boundary]

    def test_intersect_matches_scan_and_probe(self, built, flat):
        rng = np.random.default_rng(3)
        checked = 0
        for _ in range(400):
            s, t = (int(x) for x in rng.integers(0, built.n, 2))
            vic_s, vic_t = built.vicinities[s], built.vicinities[t]
            expected = scan_and_probe(
                vic_s.boundary, vic_s.dist, vic_t.members, vic_t.dist
            )
            nodes, dists = flat.boundary_payload(s)
            got = flat.intersect_payload(nodes, dists, t)
            assert got == expected, (s, t)
            checked += expected[0] is not None
        assert checked > 0  # the workload actually exercised hits

    def test_table_distance_matches_tables(self, built, flat):
        rng = np.random.default_rng(5)
        for landmark, table in built.tables.items():
            assert flat.has_table(landmark)
            for v in rng.integers(0, built.n, 25).tolist():
                assert flat.table_distance(landmark, v) == table.distance_to(v)

    def test_landmark_flags_match(self, built, flat):
        for u in range(built.n):
            assert flat.is_landmark(u) == bool(built.landmarks.is_landmark[u])


class TestChains:
    def test_pred_chain_matches_walk_predecessors(self, built, flat):
        rng = np.random.default_rng(11)
        walked = 0
        for u in rng.integers(0, built.n, 60).tolist():
            vic = built.vicinities[u]
            for member in list(vic.members)[:4]:
                expected = walk_predecessors(vic.pred, member, u)
                assert flat.pred_chain(u, member, u) == expected
                walked += 1
        assert walked > 0

    def test_parent_chain_matches_walk_parent_array(self, built, flat):
        rng = np.random.default_rng(12)
        for landmark, table in built.tables.items():
            for v in rng.integers(0, built.n, 10).tolist():
                if table.distance_to(v) is None:
                    continue
                expected = walk_parent_array(table.parent, v, landmark)
                assert flat.parent_chain(landmark, v) == expected

    def test_broken_chain_raises(self, built, flat):
        u = next(
            w for w in range(built.n) if built.vicinities[w].size > 0
        )
        outsider = next(
            w for w in range(built.n) if w not in built.vicinities[u].members and w != u
        )
        with pytest.raises(QueryError):
            flat.pred_chain(u, outsider, u)


class TestConstruction:
    def test_from_store_arrays_equals_from_index(self, built, flat):
        other = FlatIndex.from_store_arrays(
            flatten_index(built),
            n=built.n,
            weighted=built.graph.is_weighted,
            store_paths=built.config.store_paths,
        )
        for name, array in flat.arrays.items():
            assert np.array_equal(array, other.arrays[name]), name

    def test_missing_array_rejected(self, flat):
        arrays = dict(flat.arrays)
        arrays.pop("vic_nodes")
        with pytest.raises(QueryError, match="vic_nodes"):
            FlatIndex(arrays, n=flat.n, weighted=flat.weighted, store_paths=True)


class TestShardAssignment:
    @pytest.mark.parametrize("placement", ["hash", "range"])
    @pytest.mark.parametrize("num_shards", [1, 3, 8])
    def test_matches_shard_of(self, built, placement, num_shards):
        router = PartitionedOracle(built, num_shards, placement=placement)
        assign = shard_assignment(built.n, num_shards, placement)
        assert [router.shard_of(u) for u in range(built.n)] == assign.tolist()


class TestSharedArrayBundle:
    def test_round_trip_through_shared_memory(self, flat):
        owner = SharedArrayBundle.create(flat.arrays)
        try:
            attached = SharedArrayBundle.attach(owner.spec)
            try:
                for name, array in flat.arrays.items():
                    assert np.array_equal(attached.arrays[name], array), name
                    assert not attached.arrays[name].flags.writeable
            finally:
                attached.close()
        finally:
            owner.close()

    def test_attached_views_answer_probes(self, built, flat):
        owner = SharedArrayBundle.create(flat.arrays)
        try:
            attached = SharedArrayBundle.attach(owner.spec)
            view = FlatIndex(
                attached.arrays,
                n=flat.n,
                weighted=flat.weighted,
                store_paths=flat.store_paths,
            )
            u = next(w for w in range(built.n) if built.vicinities[w].size > 0)
            member = next(iter(built.vicinities[u].members))
            assert view.vicinity_probe(u, member) == flat.vicinity_probe(u, member)
            attached.close()
        finally:
            owner.close()

    def test_close_unlinks(self, flat):
        owner = SharedArrayBundle.create(flat.arrays)
        spec = owner.spec
        owner.close()
        owner.close()  # idempotent
        from repro.exceptions import SerializationError

        with pytest.raises(SerializationError):
            SharedArrayBundle.attach(spec)
