"""Path reconstruction helpers."""

import pytest

from repro.core.paths import (
    splice_at_witness,
    validate_path,
    walk_parent_array,
    walk_predecessors,
)
from repro.exceptions import QueryError
from repro.graph.builder import path_graph


class TestWalkPredecessors:
    def test_straight_chain(self):
        pred = {0: 0, 1: 0, 2: 1, 3: 2}
        assert walk_predecessors(pred, 3, 0) == [0, 1, 2, 3]

    def test_start_is_root(self):
        assert walk_predecessors({5: 5}, 5, 5) == [5]

    def test_broken_chain_raises(self):
        with pytest.raises(QueryError, match="broken"):
            walk_predecessors({3: 2}, 3, 0)

    def test_cycle_raises(self):
        with pytest.raises(QueryError, match="cyclic"):
            walk_predecessors({1: 2, 2: 1}, 1, 0)


class TestWalkParentArray:
    def test_chain(self):
        parent = [0, 0, 1, 2]
        assert walk_parent_array(parent, 3, 0) == [0, 1, 2, 3]

    def test_broken_raises(self):
        with pytest.raises(QueryError, match="broken"):
            walk_parent_array([-1, -1], 1, 0)

    def test_cycle_raises(self):
        with pytest.raises(QueryError, match="cyclic"):
            walk_parent_array([1, 0], 1, 2)


class TestSplice:
    def test_combines_halves(self):
        # s=0 .. w=2 .. t=5
        pred_s = {0: 0, 1: 0, 2: 1}
        pred_t = {5: 5, 4: 5, 3: 4, 2: 3}
        assert splice_at_witness(pred_s, pred_t, 0, 5, 2) == [0, 1, 2, 3, 4, 5]

    def test_witness_is_neighbor_of_both(self):
        pred_s = {0: 0, 7: 0}
        pred_t = {9: 9, 7: 9}
        assert splice_at_witness(pred_s, pred_t, 0, 9, 7) == [0, 7, 9]


class TestValidatePath:
    def test_accepts_real_path(self):
        g = path_graph(4)
        validate_path([0, 1, 2, 3], g.has_edge, 0, 3)

    def test_rejects_wrong_endpoints(self):
        g = path_graph(4)
        with pytest.raises(QueryError, match="endpoints"):
            validate_path([1, 2], g.has_edge, 0, 2)

    def test_rejects_missing_edge(self):
        g = path_graph(4)
        with pytest.raises(QueryError, match="missing edge"):
            validate_path([0, 2], g.has_edge, 0, 2)

    def test_rejects_empty(self):
        g = path_graph(2)
        with pytest.raises(QueryError, match="empty"):
            validate_path([], g.has_edge, 0, 1)
