"""Offline-phase (VicinityIndex) tests."""

import numpy as np
import pytest

from repro.core.config import OracleConfig
from repro.core.index import VicinityIndex
from repro.core.landmarks import landmark_set_from_ids
from repro.exceptions import IndexBuildError
from repro.graph.builder import empty_graph, path_graph
from repro.graph.traversal.bfs import bfs_distances

from tests.conftest import random_connected_graph


@pytest.fixture(scope="module")
def small_index():
    graph = random_connected_graph(300, 900, seed=11)
    return VicinityIndex.build(graph, OracleConfig(alpha=4.0, seed=3))


class TestBuild:
    def test_empty_graph_rejected(self):
        with pytest.raises(IndexBuildError):
            VicinityIndex.build(empty_graph(0))

    def test_landmarks_have_empty_vicinities(self, small_index):
        for landmark in small_index.landmarks.ids.tolist():
            vic = small_index.vicinity(landmark)
            assert vic.size == 0
            assert vic.radius == 0

    def test_every_landmark_has_table(self, small_index):
        for landmark in small_index.landmarks.ids.tolist():
            assert small_index.table(landmark) is not None

    def test_tables_match_bfs(self, small_index):
        graph = small_index.graph
        for landmark in small_index.landmarks.ids.tolist()[:3]:
            expected = bfs_distances(graph, landmark)
            assert np.array_equal(small_index.table(landmark).dist, expected)

    def test_vicinity_distances_exact(self, small_index):
        graph = small_index.graph
        flags = small_index.landmarks.is_landmark
        checked = 0
        for u in range(0, graph.n, 37):
            if flags[u]:
                continue
            expected = bfs_distances(graph, u)
            vic = small_index.vicinity(u)
            for v in vic.members:
                assert vic.dist[v] == expected[v]
            checked += 1
        assert checked > 0

    def test_radius_is_distance_to_landmark_set(self, small_index):
        from repro.graph.traversal.bfs import multi_source_bfs

        radii = multi_source_bfs(small_index.graph, small_index.landmarks.ids.tolist())
        flags = small_index.landmarks.is_landmark
        for u in range(small_index.n):
            if flags[u]:
                continue
            assert small_index.radius(u) == radii[u]

    def test_no_tables_mode(self):
        graph = random_connected_graph(150, 450, seed=12)
        index = VicinityIndex.build(
            graph, OracleConfig(alpha=4.0, seed=1, landmark_tables="none")
        )
        assert index.tables == {}

    def test_store_paths_false(self):
        graph = random_connected_graph(150, 450, seed=13)
        index = VicinityIndex.build(
            graph, OracleConfig(alpha=4.0, seed=1, store_paths=False)
        )
        flags = index.landmarks.is_landmark
        non_landmark = next(u for u in range(graph.n) if not flags[u])
        assert index.vicinity(non_landmark).pred == {}
        table = index.table(index.landmarks.ids[0])
        assert table.parent is None

    def test_from_landmarks_frozen_set(self):
        graph = path_graph(12)
        landmarks = landmark_set_from_ids(graph, [6], alpha=4.0)
        index = VicinityIndex.from_landmarks(
            graph, OracleConfig(alpha=4.0, probability_scale=1.0), landmarks
        )
        assert index.landmarks.ids.tolist() == [6]
        # Node 0's radius is its distance to the single landmark.
        assert index.radius(0) == 6

    def test_progress_callback_invoked(self):
        graph = random_connected_graph(120, 360, seed=14)
        stages = []
        VicinityIndex.build(
            graph,
            OracleConfig(alpha=4.0, seed=2),
            progress=lambda stage, done, total: stages.append(stage),
        )
        assert "vicinities" in stages
        assert "landmark-tables" in stages

    def test_floor_enlarges_vicinities(self):
        graph = random_connected_graph(250, 800, seed=15)
        base = VicinityIndex.build(graph, OracleConfig(alpha=1.0, seed=4))
        floored = VicinityIndex.build(
            graph, OracleConfig(alpha=1.0, seed=4, vicinity_floor=1.0)
        )
        flags = floored.landmarks.is_landmark
        min_size = int(1.0 * np.sqrt(graph.n))
        sizes = [
            floored.vicinity(u).size for u in range(graph.n) if not flags[u]
        ]
        # Every floored vicinity meets the minimum (unless it swallowed
        # its whole component).
        for u, size in zip((u for u in range(graph.n) if not flags[u]), sizes):
            assert size >= min(min_size, graph.n - 1) or floored.vicinity(u).radius is None
        base_mean = np.mean(
            [base.vicinity(u).size for u in range(graph.n) if not base.landmarks.is_landmark[u]]
        )
        assert np.mean(sizes) >= base_mean

    def test_floor_rejected_on_weighted(self):
        graph = random_connected_graph(60, 150, seed=16, weighted=True)
        with pytest.raises(IndexBuildError, match="unweighted"):
            VicinityIndex.build(
                graph, OracleConfig(alpha=4.0, seed=1, vicinity_floor=0.5)
            )

    def test_repr(self, small_index):
        text = repr(small_index)
        assert "VicinityIndex" in text
        assert "landmarks=" in text
