"""Compiled kernel tier: selection, fallback, and bit-parity pinning.

The native tier must be invisible except for speed: every suite here
pins the C kernels field-identical — distance, method, witness, probes,
path — against the numpy tier across kernels, dtype widths, mmap modes
and dynamic repair, and checks the selection surface (``kernels=``
argument, ``REPRO_KERNELS``, graceful degradation without a compiled
artifact).
"""

import ctypes
import os
import warnings

import numpy as np
import pytest

from repro.core import _native
from repro.core.config import OracleConfig
from repro.core.engine import FlatQueryEngine, ShardQueryEngine
from repro.core.flat import FlatIndex, flatten_index, widen_store
from repro.core.index import VicinityIndex
from repro.core.oracle import METHODS, VicinityOracle
from repro.core.parallel import shard_assignment
from repro.exceptions import KernelError
from repro.io.oracle_store import load_flat_index, save_index
from repro.service.wire import RequestFrame

from tests.conftest import random_connected_graph

HAVE_NATIVE = _native.load_library() is not None
needs_native = pytest.mark.skipif(
    not HAVE_NATIVE, reason="compiled kernel extension not built"
)


def _pairs(n, count, seed):
    rng = np.random.default_rng(seed)
    return [tuple(int(x) for x in rng.integers(0, n, 2)) for _ in range(count)]


def fields(result):
    return (
        result.source, result.target, result.distance,
        result.method, result.witness, result.probes, result.path,
    )


def assert_results_identical(got, want, context=None):
    for a, b in zip(got, want):
        assert fields(a) == fields(b), context


@pytest.fixture(
    scope="module", params=[False, True], ids=["unweighted", "weighted"]
)
def built(request):
    graph = random_connected_graph(220, 640, seed=33, weighted=request.param)
    oracle = VicinityOracle.build(
        graph, config=OracleConfig(alpha=4.0, seed=5, fallback="none")
    )
    return oracle.index


class TestWireConstants:
    def test_method_names_match_oracle(self):
        assert _native._METHOD_NAMES == METHODS

    def test_kernel_codes_match_engine_kernels(self):
        assert set(_native.KERNEL_CODES) == {
            "boundary-source", "boundary-target", "boundary-smaller",
            "full-source", "full-smaller",
        }
        assert sorted(_native.KERNEL_CODES.values()) == list(range(5))


class TestTierSelection:
    def test_resolve_tier_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "native")
        assert _native.resolve_tier("numpy") == "numpy"
        monkeypatch.setenv("REPRO_KERNELS", "numpy")
        assert _native.resolve_tier("native") == "native"

    def test_resolve_tier_env_fills_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        assert _native.resolve_tier(None) == "auto"
        assert _native.resolve_tier("auto") == "auto"
        monkeypatch.setenv("REPRO_KERNELS", "numpy")
        assert _native.resolve_tier(None) == "numpy"
        monkeypatch.setenv("REPRO_KERNELS", "auto")
        assert _native.resolve_tier(None) == "auto"

    def test_invalid_values_raise(self, monkeypatch):
        with pytest.raises(KernelError, match="kernels="):
            _native.resolve_tier("fortran")
        monkeypatch.setenv("REPRO_KERNELS", "cython")
        with pytest.raises(KernelError, match="REPRO_KERNELS"):
            _native.resolve_tier(None)

    def test_set_kernels_numpy_always_works(self, built):
        flat = FlatIndex.from_index(built)
        assert flat.set_kernels("numpy") == "numpy"
        assert flat.kernels == "numpy"
        assert flat._native is None

    @needs_native
    def test_auto_picks_native_when_available(self, built, monkeypatch):
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        flat = FlatIndex.from_index(built)
        assert flat.set_kernels(None) == "native"
        assert flat._native is not None

    @needs_native
    def test_env_numpy_disables_native(self, built, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "numpy")
        flat = FlatIndex.from_index(built)
        assert flat.set_kernels(None) == "numpy"
        assert flat._native is None


class TestLoaderDegradation:
    """Selection behaviour when the compiled artifact is absent/corrupt.

    Each test redirects ``library_path`` and resets the loader cache,
    restoring both afterwards so the rest of the session keeps whatever
    artifact actually exists.
    """

    @pytest.fixture(autouse=True)
    def _restore_loader(self):
        # Neutralise any forced tier (CI runs the suite under both
        # REPRO_KERNELS values): these tests exercise *auto* selection.
        # Handled by hand, not monkeypatch — this fixture's teardown
        # must run *after* the tests' own monkeypatches have restored
        # ``library_path``, and a fixture-requested monkeypatch would
        # unwind last.
        saved = os.environ.pop("REPRO_KERNELS", None)
        yield
        if saved is not None:
            os.environ["REPRO_KERNELS"] = saved
        _native._reset_loader_state()
        _native.load_library()

    def test_absent_artifact_silently_falls_back(self, monkeypatch, tmp_path):
        monkeypatch.setattr(
            _native, "library_path", lambda: tmp_path / "_kernels.so"
        )
        _native._reset_loader_state()
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any warning fails the test
            assert _native.load_library() is None
        assert "not built" in _native.load_error()

    def test_absent_artifact_forced_native_raises(
        self, built, monkeypatch, tmp_path
    ):
        monkeypatch.setattr(
            _native, "library_path", lambda: tmp_path / "_kernels.so"
        )
        _native._reset_loader_state()
        flat = FlatIndex.from_index(built)
        flat._kernels = flat._native = None  # force re-resolution
        with pytest.raises(KernelError, match="native kernels requested"):
            flat.set_kernels("native")
        # numpy stays served
        assert flat.set_kernels("numpy") == "numpy"

    def test_corrupt_artifact_warns_once_and_falls_back(
        self, built, monkeypatch, tmp_path
    ):
        bad = tmp_path / "_kernels.so"
        bad.write_bytes(b"this is not a shared object")
        monkeypatch.setattr(_native, "library_path", lambda: bad)
        _native._reset_loader_state()
        with pytest.warns(RuntimeWarning, match="falling back to the numpy tier"):
            assert _native.load_library() is None
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second load: cached, no warning
            assert _native.load_library() is None
        flat = FlatIndex.from_index(built)
        flat._kernels = flat._native = None
        assert flat.set_kernels(None) == "numpy"  # auto degrades cleanly

    def test_env_native_without_artifact_raises(
        self, built, monkeypatch, tmp_path
    ):
        monkeypatch.setattr(
            _native, "library_path", lambda: tmp_path / "_kernels.so"
        )
        monkeypatch.setenv("REPRO_KERNELS", "native")
        _native._reset_loader_state()
        flat = FlatIndex.from_index(built)
        flat._kernels = flat._native = None
        with pytest.raises(KernelError, match="native kernels requested"):
            flat.set_kernels(None)


@needs_native
class TestLayoutGating:
    def test_hand_built_unsupported_dtype_degrades(self, built, monkeypatch):
        monkeypatch.delenv("REPRO_KERNELS", raising=False)  # exercise auto
        store = dict(flatten_index(built))
        flat = FlatIndex.from_store_arrays(
            widen_store(store), n=built.n, weighted=built.graph.is_weighted
        )
        # int64 ids are the legacy layout — still supported natively.
        assert _native.view_mismatch(flat) is None
        flat.arrays["vic_nodes"] = flat.arrays["vic_nodes"].astype(np.int32)
        fresh = FlatIndex(
            flat.arrays,
            n=built.n,
            weighted=built.graph.is_weighted,
            store_paths=True,
        )
        assert "dtype" in _native.view_mismatch(fresh)
        assert fresh.set_kernels(None) == "numpy"
        with pytest.raises(KernelError, match="unavailable"):
            fresh.set_kernels("native")


@needs_native
class TestScalarParity:
    @pytest.mark.parametrize(
        "kernel",
        ["boundary-source", "boundary-target", "boundary-smaller",
         "full-source", "full-smaller"],
    )
    def test_resolve_matches_numpy_tier(self, built, kernel):
        numpy_eng = FlatQueryEngine.from_index(
            built, kernel=kernel, kernels="numpy"
        )
        native_eng = FlatQueryEngine.from_index(
            built, kernel=kernel, kernels="native"
        )
        assert native_eng._native_resolve is not None
        for s, t in _pairs(built.n, 600, seed=9):
            got = native_eng.resolve(s, t, False)
            want = numpy_eng.resolve(s, t, False)
            assert fields(got) == fields(want), (kernel, s, t)

    def test_with_path_uses_numpy_and_matches(self, built):
        numpy_eng = FlatQueryEngine.from_index(built, kernels="numpy")
        native_eng = FlatQueryEngine.from_index(built, kernels="native")
        for s, t in _pairs(built.n, 200, seed=10):
            got = native_eng.resolve(s, t, True)
            want = numpy_eng.resolve(s, t, True)
            assert fields(got) == fields(want), (s, t)

    def test_batch_matches_numpy_tier(self, built):
        pairs = _pairs(built.n, 500, seed=12)
        want = FlatQueryEngine.from_index(built, kernels="numpy").query_batch(
            pairs, with_path=True
        )
        got = FlatQueryEngine.from_index(built, kernels="native").query_batch(
            pairs, with_path=True
        )
        assert_results_identical(got, want)


@needs_native
class TestDtypeGridParity:
    """Every compact distance/id width through the same C entry points."""

    def _check(self, index):
        pairs = _pairs(index.n, 400, seed=21)
        kernel = index.config.kernel
        flat = FlatIndex.from_index(index)
        want = FlatQueryEngine(flat, kernel=kernel, kernels="numpy").query_batch(
            pairs, with_path=True
        )
        got = FlatQueryEngine(flat, kernel=kernel, kernels="native").query_batch(
            pairs, with_path=True
        )
        assert_results_identical(got, want)
        for s, t in pairs[:100]:
            a = FlatQueryEngine(flat, kernel=kernel, kernels="native").resolve(
                s, t, False
            )
            b = FlatQueryEngine(flat, kernel=kernel, kernels="numpy").resolve(
                s, t, False
            )
            assert fields(a) == fields(b), (s, t)

    def test_uint16_int32(self, built):
        self._check(built)

    def test_uint32_ids(self):
        from repro.core.landmarks import landmark_set_from_ids
        from repro.graph.builder import graph_from_arrays

        n = 70000
        src = np.arange(n, dtype=np.int64)
        graph = graph_from_arrays(src, (src + 1) % n, n=n)
        config = OracleConfig(
            alpha=4.0, seed=5, fallback="none", landmark_tables="none"
        )
        landmarks = landmark_set_from_ids(graph, list(range(0, n, 8)), config.alpha)
        index = VicinityIndex.from_landmarks(
            graph, config, landmarks, representation="flat"
        )
        assert index._flat_index.id_dtype == np.uint32
        self._check(index)

    def test_float32_dists(self):
        index = self._weighted_index(
            lambda rng, m: rng.integers(1, 16, size=m).astype(np.float64) / 4.0
        )
        assert FlatIndex.from_index(index).vic_dists.dtype == np.float32
        self._check(index)

    def test_float64_dists(self):
        index = self._weighted_index(lambda rng, m: rng.uniform(0.5, 4.0, size=m))
        assert FlatIndex.from_index(index).vic_dists.dtype == np.float64
        self._check(index)

    def test_int64_legacy_ids(self, built):
        flat = FlatIndex.from_store_arrays(
            widen_store(flatten_index(built)),
            n=built.n,
            weighted=built.graph.is_weighted,
        )
        pairs = _pairs(built.n, 400, seed=22)
        kernel = built.config.kernel
        want = FlatQueryEngine(flat, kernel=kernel, kernels="numpy").query_batch(pairs)
        got = FlatQueryEngine(flat, kernel=kernel, kernels="native").query_batch(pairs)
        assert_results_identical(got, want)

    @staticmethod
    def _weighted_index(weights_of):
        from repro.graph.builder import graph_from_arrays
        from repro.graph.components import largest_component

        rng = np.random.default_rng(23)
        n, m = 160, 460
        graph = graph_from_arrays(
            rng.integers(0, n, size=m),
            rng.integers(0, n, size=m),
            n=n,
            weights=weights_of(rng, m),
        )
        graph, _ = largest_component(graph)
        return VicinityIndex.build(
            graph, OracleConfig(alpha=4.0, seed=3, fallback="none")
        )


@needs_native
class TestSavedStoreParity:
    @pytest.mark.parametrize("mmap", [False, True], ids=["load", "mmap"])
    def test_round_trip_serves_identically_under_both_tiers(
        self, built, tmp_path, mmap
    ):
        path = tmp_path / "store.bin"
        save_index(built, path)
        pairs = _pairs(built.n, 400, seed=31)
        kernel = built.config.kernel
        want = FlatQueryEngine(
            load_flat_index(path, mmap=mmap), kernel=kernel, kernels="numpy"
        ).query_batch(pairs, with_path=True)
        got = FlatQueryEngine(
            load_flat_index(path, mmap=mmap), kernel=kernel, kernels="native"
        ).query_batch(pairs, with_path=True)
        assert_results_identical(got, want)


@needs_native
class TestDynamicRepairParity:
    def test_refreshed_index_keeps_the_tier_and_parity(self):
        from repro.core.dynamic import DynamicVicinityOracle

        graph = random_connected_graph(150, 400, seed=23)
        dynamic = DynamicVicinityOracle(
            VicinityOracle.build(
                graph, config=OracleConfig(alpha=4.0, seed=7, fallback="none")
            ).index
        )
        dynamic.query(0, 1)
        FlatIndex.from_index(dynamic.index).set_kernels("native")
        pairs = _pairs(graph.n, 150, seed=24)
        rng = np.random.default_rng(25)
        inserted = 0
        while inserted < 3:
            u, v = (int(x) for x in rng.integers(0, graph.n, 2))
            if u == v or not dynamic.add_edge(u, v):
                continue
            inserted += 1
            flat = dynamic.index._flat_index
            assert flat.kernels == "native"  # choice survives the splice
            engine = dynamic._oracle.engine
            assert engine._native_resolve is not None
            reference = FlatQueryEngine(flat, kernels="numpy")
            # the explicit numpy engine above flips the shared index's
            # tier; flip it back so the dynamic engine stays native
            flat.set_kernels("native")
            for s, t in pairs:
                got = engine.resolve(s, t, False)
                want = reference.resolve(s, t, False)
                assert fields(got) == fields(want), (u, v, s, t)


@needs_native
class TestShardEngineScratch:
    @staticmethod
    def _payload(resp, pairs, integral=True):
        # everything but the wall-clock exec_ns stamp
        return (
            resp.ok,
            resp.local,
            resp.remote,
            resp.trips.tolist(),
            [
                (r.distance, r.method, r.witness, r.probes, r.path)
                for r in resp.to_results(pairs.tolist(), integral=integral)
            ],
        )

    def test_scratch_reuse_is_byte_identical(self, built):
        flat = FlatIndex.from_index(built)
        assign = shard_assignment(built.n, 3, "hash")
        plain = ShardQueryEngine(flat, assign, False)
        reusing = ShardQueryEngine(flat, assign, False, reuse_scratch=True)
        pairs = np.asarray(_pairs(built.n, 300, seed=41), dtype=np.int64)
        for chunk in np.array_split(pairs, 5):
            a = plain.run_frame(RequestFrame(1, chunk, False))
            b = reusing.run_frame(RequestFrame(1, chunk, False))
            assert self._payload(a, chunk, flat.integral) == self._payload(b, chunk, flat.integral)

    def test_scratch_grows_to_fit(self, built):
        flat = FlatIndex.from_index(built)
        assign = shard_assignment(built.n, 2, "hash")
        engine = ShardQueryEngine(flat, assign, False, reuse_scratch=True)
        small = np.asarray(_pairs(built.n, 8, seed=42), dtype=np.int64)
        large = np.asarray(_pairs(built.n, 600, seed=43), dtype=np.int64)
        baseline = ShardQueryEngine(flat, assign, False)
        for chunk in (small, large, small):
            got = engine.run_frame(RequestFrame(1, chunk, False))
            want = baseline.run_frame(RequestFrame(1, chunk, False))
            assert self._payload(got, chunk, flat.integral) == self._payload(want, chunk, flat.integral)


@needs_native
class TestScratchThreadSafety:
    def test_callpack_is_per_thread(self, built):
        flat = FlatIndex.from_index(built)
        flat.set_kernels("native")
        nk = flat._native
        import threading

        packs = {}

        def grab(key):
            packs[key] = nk.callpack()

        threads = [
            threading.Thread(target=grab, args=(i,)) for i in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        grab("main")
        addresses = {pack[3] for pack in packs.values()}
        assert len(addresses) == len(packs)  # distinct result buffers

    def test_concurrent_resolves_match_serial(self, built):
        import threading

        engine = FlatQueryEngine.from_index(built, kernels="native")
        reference = FlatQueryEngine.from_index(built, kernels="numpy")
        pairs = _pairs(built.n, 400, seed=51)
        want = [fields(reference.resolve(s, t, False)) for s, t in pairs]
        errors = []

        def worker():
            for (s, t), expect in zip(pairs, want):
                got = fields(engine.resolve(s, t, False))
                if got != expect:
                    errors.append((s, t, got, expect))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors[:3]


@needs_native
class TestNativeBatchKernels:
    """The array-lane wrappers against their numpy twins, directly."""

    def test_member_probe_many(self, built):
        flat = FlatIndex.from_index(built)
        flat.set_kernels("native")
        rng = np.random.default_rng(61)
        owners = rng.integers(0, built.n, 500)
        others = rng.integers(0, built.n, 500)
        hit_n, dist_n = flat.member_probe_many(owners, others)
        flat.set_kernels("numpy")
        hit_p, dist_p = flat.member_probe_many(owners, others)
        assert np.array_equal(hit_n, hit_p)
        assert np.array_equal(dist_n[hit_n], dist_p[hit_p])

    def test_table_lookup_many(self, built):
        flat = FlatIndex.from_index(built)
        if not flat.has_tables:
            pytest.skip("no landmark tables on this build")
        landmarks = flat.landmark_ids
        rng = np.random.default_rng(62)
        endpoints = landmarks[rng.integers(0, len(landmarks), 300)].astype(np.int64)
        others = rng.integers(0, built.n, 300)
        flat.set_kernels("native")
        got = flat.table_lookup_many(endpoints, others)
        flat.set_kernels("numpy")
        want = flat.table_lookup_many(endpoints, others)
        assert got.dtype == np.float64
        assert np.array_equal(got, want, equal_nan=True)

    def test_intersect_payload(self, built):
        flat = FlatIndex.from_index(built)
        rng = np.random.default_rng(63)
        for _ in range(200):
            owner = int(rng.integers(0, built.n))
            target = int(rng.integers(0, built.n))
            nodes, dists = flat.boundary_payload(owner)
            flat.set_kernels("native")
            got = flat.intersect_payload(nodes, dists, target)
            flat.set_kernels("numpy")
            want = flat.intersect_payload(nodes, dists, target)
            assert got == want, (owner, target)
