"""Index statistics (Figure 2 raw material)."""

import numpy as np
import pytest

from repro.core.config import OracleConfig
from repro.core.index import VicinityIndex
from repro.core.stats import IndexStats

from tests.conftest import random_connected_graph


@pytest.fixture(scope="module")
def stats():
    graph = random_connected_graph(300, 900, seed=41)
    index = VicinityIndex.build(graph, OracleConfig(alpha=4.0, seed=9))
    return IndexStats.from_index(index)


class TestIndexStats:
    def test_covers_non_landmarks_only(self, stats):
        assert stats.vicinity_sizes.size == stats.n - stats.num_landmarks

    def test_boundary_never_exceeds_vicinity(self, stats):
        assert np.all(stats.boundary_sizes <= stats.vicinity_sizes)

    def test_radii_positive_for_non_landmarks(self, stats):
        finite = stats.radii[~np.isnan(stats.radii)]
        assert np.all(finite >= 1)

    def test_mean_accessors(self, stats):
        assert stats.mean_vicinity_size == pytest.approx(stats.vicinity_sizes.mean())
        assert stats.mean_boundary_size == pytest.approx(stats.boundary_sizes.mean())
        assert 0 < stats.max_boundary_fraction <= 1

    def test_expected_size_formula(self, stats):
        assert stats.expected_vicinity_size == pytest.approx(
            stats.alpha * np.sqrt(stats.n)
        )

    def test_boundary_cdf_monotone(self, stats):
        x, y = stats.boundary_cdf(points=50)
        assert np.all(np.diff(x) >= 0)
        assert np.all(np.diff(y) >= 0)
        assert y[-1] == pytest.approx(1.0)

    def test_boundary_cdf_small_request(self, stats):
        x, y = stats.boundary_cdf(points=5)
        assert x.size <= max(5, stats.boundary_sizes.size)

    def test_summary_renders(self, stats):
        text = stats.summary()
        assert "vicinity size" in text
        assert "radius" in text
