"""Intersection kernel unit tests."""

import pytest

from repro.core.intersect import run_kernel, scan_and_probe
from repro.core.vicinity import Vicinity


def make_vicinity(node, dist, boundary=None):
    return Vicinity(
        node=node,
        radius=2,
        dist=dict(dist),
        pred={},
        members=frozenset(dist),
        boundary=list(boundary if boundary is not None else dist),
    )


class TestScanAndProbe:
    def test_finds_minimum(self):
        best, witness, probes = scan_and_probe(
            [1, 2, 3],
            {1: 1, 2: 2, 3: 3},
            frozenset({2, 3}),
            {2: 5, 3: 1},
        )
        assert best == 4  # w=3: 3+1
        assert witness == 3
        assert probes == 3

    def test_no_intersection(self):
        best, witness, probes = scan_and_probe(
            [1, 2], {1: 1, 2: 1}, frozenset({9}), {9: 0}
        )
        assert best is None
        assert witness is None
        assert probes == 2

    def test_empty_scan(self):
        best, witness, probes = scan_and_probe([], {}, frozenset({1}), {1: 0})
        assert best is None and probes == 0

    def test_tie_keeps_first(self):
        best, witness, _ = scan_and_probe(
            [5, 6], {5: 2, 6: 2}, frozenset({5, 6}), {5: 2, 6: 2}
        )
        assert best == 4
        assert witness == 5


class TestKernels:
    def setup_method(self):
        self.vic_s = make_vicinity(
            0, {0: 0, 1: 1, 2: 2}, boundary=[2]
        )
        self.vic_t = make_vicinity(
            9, {9: 0, 8: 1, 2: 3}, boundary=[2, 8]
        )

    def test_boundary_source(self):
        best, witness, probes = run_kernel("boundary-source", self.vic_s, self.vic_t)
        assert best == 5 and witness == 2
        assert probes == 1

    def test_boundary_target(self):
        best, witness, probes = run_kernel("boundary-target", self.vic_s, self.vic_t)
        assert best == 5 and witness == 2
        assert probes == 2

    def test_boundary_smaller_picks_smaller(self):
        _b, _w, probes = run_kernel("boundary-smaller", self.vic_s, self.vic_t)
        assert probes == 1  # source boundary has 1 node vs 2

    def test_full_source(self):
        best, _w, probes = run_kernel("full-source", self.vic_s, self.vic_t)
        assert best == 5
        assert probes == 3

    def test_full_smaller(self):
        _b, _w, probes = run_kernel("full-smaller", self.vic_s, self.vic_t)
        assert probes == 3  # equal sizes -> source side

    def test_unknown_kernel(self):
        with pytest.raises(ValueError):
            run_kernel("bogus", self.vic_s, self.vic_t)

    def test_all_kernels_agree_on_distance(self):
        results = {
            kernel: run_kernel(kernel, self.vic_s, self.vic_t)[0]
            for kernel in (
                "boundary-source",
                "boundary-target",
                "boundary-smaller",
                "full-source",
                "full-smaller",
            )
        }
        assert len(set(results.values())) == 1
