"""Landmark sampling and calibration tests."""

import numpy as np
import pytest

from repro.core.landmarks import (
    LandmarkSet,
    calibrate_scale,
    landmark_set_from_ids,
    sample_landmarks,
    sampling_probabilities,
)
from repro.exceptions import IndexBuildError
from repro.graph.builder import empty_graph, graph_from_edges, star_graph

from tests.conftest import random_connected_graph, random_graph


class TestProbabilities:
    def test_formula(self):
        g = star_graph(101)  # hub degree 100, leaves degree 1
        p = sampling_probabilities(g, alpha=4.0)
        expected_leaf = 1.0 / (4.0 * np.sqrt(101))
        assert p[1] == pytest.approx(expected_leaf)
        assert p[0] == pytest.approx(min(1.0, 100 * expected_leaf))

    def test_proportional_to_degree(self):
        g = random_graph(60, 200, seed=1)
        p = sampling_probabilities(g, alpha=2.0)
        degrees = g.degrees()
        uncapped = p < 1.0
        # Among uncapped nodes the ratio p/deg must be constant.
        ratios = p[uncapped & (degrees > 0)] / degrees[uncapped & (degrees > 0)]
        assert np.allclose(ratios, ratios[0])

    def test_scale_multiplies(self):
        g = random_graph(60, 200, seed=2)
        a = sampling_probabilities(g, alpha=4.0, scale=1.0)
        b = sampling_probabilities(g, alpha=4.0, scale=2.0)
        mask = b < 1.0
        assert np.allclose(b[mask], 2 * a[mask])

    def test_invalid_args(self):
        g = star_graph(5)
        with pytest.raises(IndexBuildError):
            sampling_probabilities(g, alpha=0)
        with pytest.raises(IndexBuildError):
            sampling_probabilities(g, alpha=4, scale=0)

    def test_empty_graph(self):
        assert sampling_probabilities(empty_graph(0), alpha=4).size == 0


class TestSampling:
    def test_deterministic_under_seed(self):
        g = random_graph(100, 300, seed=3)
        a = sample_landmarks(g, 4.0, rng=11)
        b = sample_landmarks(g, 4.0, rng=11)
        assert np.array_equal(a.ids, b.ids)

    def test_flags_match_ids(self):
        g = random_graph(100, 300, seed=4)
        ls = sample_landmarks(g, 4.0, rng=5)
        for u in range(g.n):
            assert bool(ls.is_landmark[u]) == (u in ls.ids)

    def test_contains_protocol(self):
        g = random_graph(50, 150, seed=5)
        ls = sample_landmarks(g, 4.0, rng=6)
        if len(ls):
            assert int(ls.ids[0]) in ls

    def test_per_component_forcing(self):
        # Two components; tiny alpha makes natural sampling unlikely in
        # the small one, forcing must cover it anyway.
        g = graph_from_edges([(0, 1), (1, 2), (3, 4)], n=5)
        ls = sample_landmarks(g, 64.0, rng=1, per_component=True)
        covered = {0, 1, 2} & set(ls.ids.tolist())
        covered_small = {3, 4} & set(ls.ids.tolist())
        assert covered and covered_small

    def test_never_empty_without_per_component(self):
        g = random_graph(40, 100, seed=6)
        ls = sample_landmarks(g, 1e9, rng=2, per_component=False)
        assert len(ls) >= 1

    def test_max_landmarks_cap(self):
        g = random_connected_graph(200, 900, seed=7)
        ls = sample_landmarks(g, 0.25, rng=3, max_landmarks=5, per_component=False)
        assert len(ls) <= 5
        # The kept landmarks should be high degree.
        degrees = g.degrees()
        kept = degrees[ls.ids]
        assert kept.min() >= np.percentile(degrees, 50)

    def test_expected_size_close(self):
        g = random_connected_graph(400, 1600, seed=8)
        ls = sample_landmarks(g, 1.0, rng=4, per_component=False)
        expected = ls.expected_size()
        assert expected > 0
        # 5-sigma tolerance on a Poisson-binomial.
        assert abs(len(ls) - expected) < 5 * np.sqrt(expected) + 5

    def test_empty_graph_raises(self):
        with pytest.raises(IndexBuildError):
            sample_landmarks(empty_graph(0), 4.0)

    def test_from_ids(self):
        g = random_graph(30, 90, seed=9)
        ls = landmark_set_from_ids(g, [3, 1, 3], alpha=4.0)
        assert ls.ids.tolist() == [1, 3]
        assert ls.is_landmark[1] and ls.is_landmark[3]

    def test_from_ids_invalid(self):
        g = random_graph(10, 20, seed=10)
        with pytest.raises(IndexBuildError):
            landmark_set_from_ids(g, [99], alpha=4.0)


class TestCalibration:
    def test_hits_target_size(self, social_graph):
        rng = np.random.default_rng(0)
        alpha = 4.0
        scale = calibrate_scale(social_graph, alpha, rng=rng)
        ls = sample_landmarks(social_graph, alpha, rng=rng, scale=scale)
        from repro.graph.traversal.bounded import truncated_bfs_ball

        sizes = []
        probe = rng.choice(social_graph.n, 40, replace=False)
        for u in probe.tolist():
            if ls.is_landmark[u]:
                continue
            sizes.append(len(truncated_bfs_ball(social_graph, int(u), ls.is_landmark).gamma))
        target = alpha * np.sqrt(social_graph.n)
        assert 0.3 * target < np.mean(sizes) < 3.0 * target

    def test_trivial_graphs_return_one(self):
        assert calibrate_scale(empty_graph(2), 4.0, rng=0) == 1.0
        assert calibrate_scale(graph_from_edges([], n=1), 4.0, rng=0) == 1.0

    def test_deterministic(self, social_graph):
        a = calibrate_scale(social_graph, 4.0, rng=42)
        b = calibrate_scale(social_graph, 4.0, rng=42)
        assert a == b
