"""Batch query API tests."""

import numpy as np
import pytest

from repro.core.config import OracleConfig
from repro.core.oracle import VicinityOracle
from repro.graph.traversal.bfs import bfs_distances

from tests.conftest import random_connected_graph


@pytest.fixture(scope="module")
def oracle():
    graph = random_connected_graph(220, 620, seed=141)
    return VicinityOracle.build(
        graph, config=OracleConfig(alpha=4.0, seed=5, fallback="bidirectional")
    )


class TestQueryMany:
    def test_matches_single_queries(self, oracle):
        rng = np.random.default_rng(1)
        pairs = [tuple(int(x) for x in rng.integers(0, oracle.graph.n, 2)) for _ in range(60)]
        batch = oracle.query_many(pairs)
        assert len(batch) == 60
        for (s, t), result in zip(pairs, batch):
            assert result.source == s and result.target == t
            assert result.distance == oracle.query(s, t).distance

    def test_with_paths(self, oracle):
        rng = np.random.default_rng(2)
        pairs = [tuple(int(x) for x in rng.integers(0, oracle.graph.n, 2)) for _ in range(20)]
        for result in oracle.query_many(pairs, with_path=True):
            if result.path is not None:
                assert result.path[0] == result.source
                assert result.path[-1] == result.target

    def test_empty_batch(self, oracle):
        assert oracle.query_many([]) == []


class TestDistancesFrom:
    def test_matches_bfs(self, oracle):
        graph = oracle.graph
        truth = bfs_distances(graph, 3)
        targets = list(range(0, graph.n, 5))
        got = oracle.distances_from(3, targets)
        for target, distance in zip(targets, got):
            expected = None if truth[target] < 0 else int(truth[target])
            assert distance == expected

    def test_landmark_source_fast_path(self, oracle):
        landmark = int(oracle.index.landmarks.ids[0])
        graph = oracle.graph
        truth = bfs_distances(graph, landmark)
        targets = list(range(0, graph.n, 7))
        got = oracle.distances_from(landmark, targets)
        for target, distance in zip(targets, got):
            expected = None if truth[target] < 0 else int(truth[target])
            assert distance == expected

    def test_source_included_in_targets(self, oracle):
        landmark = int(oracle.index.landmarks.ids[0])
        assert oracle.distances_from(landmark, [landmark]) == [0]
        non_landmark = next(
            u for u in range(oracle.graph.n)
            if not oracle.index.landmarks.is_landmark[u]
        )
        assert oracle.distances_from(non_landmark, [non_landmark]) == [0]
