"""nearest() ranking and explain() tracing."""

import numpy as np
import pytest

from repro.core.config import OracleConfig
from repro.core.oracle import VicinityOracle
from repro.exceptions import QueryError
from repro.graph.builder import graph_from_edges, path_graph
from repro.graph.traversal.bfs import bfs_distances

from tests.conftest import random_connected_graph


@pytest.fixture(scope="module")
def oracle():
    graph = random_connected_graph(200, 560, seed=161)
    return VicinityOracle.build(
        graph, config=OracleConfig(alpha=4.0, seed=7, fallback="bidirectional")
    )


class TestNearest:
    def test_orders_by_true_distance(self, oracle):
        graph = oracle.graph
        truth = bfs_distances(graph, 0)
        candidates = list(range(1, graph.n, 4))
        ranked = oracle.nearest(0, candidates, k=len(candidates))
        distances = [d for _c, d in ranked]
        assert distances == sorted(distances)
        for candidate, distance in ranked:
            assert distance == truth[candidate]

    def test_k_limits(self, oracle):
        ranked = oracle.nearest(0, range(1, 50), k=3)
        assert len(ranked) == 3

    def test_deterministic_tie_break(self):
        g = path_graph(5)
        oracle = VicinityOracle.build(g, config=OracleConfig(alpha=4, seed=1))
        # Nodes 1 and 3 are both at distance 1 from node 2.
        ranked = oracle.nearest(2, [3, 1], k=2)
        assert ranked == [(1, 1), (3, 1)]

    def test_unreachable_excluded(self):
        g = graph_from_edges([(0, 1)], n=4)
        oracle = VicinityOracle.build(g, config=OracleConfig(alpha=4, seed=1))
        ranked = oracle.nearest(0, [1, 2, 3], k=3)
        assert ranked == [(1, 1)]

    def test_invalid_k(self, oracle):
        with pytest.raises(QueryError):
            oracle.nearest(0, [1], k=0)


class TestExplain:
    def test_mentions_method_and_distance(self, oracle):
        rng = np.random.default_rng(2)
        s, t = (int(x) for x in rng.integers(0, oracle.graph.n, 2))
        text = oracle.explain(s, t)
        result = oracle.query(s, t)
        assert f"distance {result.distance}" in text
        assert result.method in text
        assert "Gamma(s)" in text

    def test_witness_shown_for_intersection(self, oracle):
        rng = np.random.default_rng(3)
        for _ in range(300):
            s, t = (int(x) for x in rng.integers(0, oracle.graph.n, 2))
            result = oracle.query(s, t)
            if result.method == "intersection":
                text = oracle.explain(s, t)
                assert f"witness w={result.witness}" in text
                return
        pytest.skip("no intersection-resolved pair found")

    def test_identical_pair(self, oracle):
        assert "distance 0" in oracle.explain(4, 4)
