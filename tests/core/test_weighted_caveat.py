"""The weighted-graph caveat documented in DESIGN.md.

Theorem 1's "simple extension" to weighted graphs is *not*
unconditional under Definition 1 (``Gamma = B ∪ N(B)``): a heavy
frontier edge can make two vicinities intersect at an off-path node
only, so the intersection minimum strictly exceeds ``d(s, t)``.  This
module constructs that counterexample explicitly, verifies the exact
failure, and verifies the guarantees that *do* survive:

* the oracle never underestimates (triangle inequality);
* with the bidirectional fallback the final answer is exact anyway;
* intersection answers are exact whenever ``d(s,t) < r(s) + r(t)``.
"""

import pytest

from repro.core.config import OracleConfig
from repro.core.index import VicinityIndex
from repro.core.landmarks import landmark_set_from_ids
from repro.core.oracle import VicinityOracle
from repro.graph.builder import graph_from_weighted_edges
from repro.graph.traversal.dijkstra import dijkstra_distances

from tests.conftest import random_connected_graph


def counterexample_graph():
    """A long cheap chain s..t plus one heavy 'bridge' node adjacent to
    both endpoints.

    Landmarks are placed so both balls are tiny: the only intersection
    node is the bridge, whose detour is far longer than the chain.
    """
    chain = [(i, i + 1, 1.0) for i in range(10)]  # 0 .. 10, d(0,10)=10
    bridge = [(0, 11, 100.0), (10, 11, 95.0)]
    return graph_from_weighted_edges(chain + bridge)


class TestWeightedCaveat:
    def test_intersection_overestimates(self):
        graph = counterexample_graph()
        # Landmarks at 2 and 8 give r(0) = 2 and r(10) = 2: the balls
        # B(0) = {0,1}, B(10) = {9,10} and their frontiers contain the
        # bridge node 11 via the heavy edges.
        landmarks = landmark_set_from_ids(graph, [2, 8], alpha=4.0)
        config = OracleConfig(alpha=4.0, probability_scale=1.0, fallback="none")
        index = VicinityIndex.from_landmarks(graph, config, landmarks)
        vic_s = index.vicinity(0)
        vic_t = index.vicinity(10)
        # The construction holds: 11 is the only shared member.
        assert vic_s.members & vic_t.members == {11}
        oracle = VicinityOracle(index)
        result = oracle.query(0, 10)
        true_distance = dijkstra_distances(graph, 0)[10]
        assert true_distance == pytest.approx(10.0)
        assert result.method == "intersection"
        assert result.distance == pytest.approx(195.0)  # 100 + 95
        assert result.distance > true_distance  # the documented failure

    def test_never_underestimates(self):
        graph = counterexample_graph()
        landmarks = landmark_set_from_ids(graph, [2, 8], alpha=4.0)
        config = OracleConfig(alpha=4.0, probability_scale=1.0, fallback="none")
        oracle = VicinityOracle(VicinityIndex.from_landmarks(graph, config, landmarks))
        full = dijkstra_distances(graph, 0)
        for t in range(graph.n):
            result = oracle.query(0, t)
            if result.distance is not None:
                assert result.distance >= full[t] - 1e-9

    def test_fallback_would_not_catch_overestimate(self):
        # The fallback only fires on *miss*; the overestimate comes from
        # a successful intersection, so Definition-1 weighted vicinities
        # genuinely answer incorrectly.  This is the reproduction
        # finding DESIGN.md records.
        graph = counterexample_graph()
        landmarks = landmark_set_from_ids(graph, [2, 8], alpha=4.0)
        config = OracleConfig(alpha=4.0, probability_scale=1.0, fallback="bidirectional")
        oracle = VicinityOracle(VicinityIndex.from_landmarks(graph, config, landmarks))
        assert oracle.query(0, 10).distance == pytest.approx(195.0)

    def test_exact_when_radius_condition_holds(self):
        # On random weighted graphs, intersection answers with
        # d(s,t) < r(s) + r(t) must be exact (ball-cover argument).
        graph = random_connected_graph(150, 500, seed=51, weighted=True)
        config = OracleConfig(alpha=2.0, seed=3, fallback="none")
        oracle = VicinityOracle.build(graph, config=config)
        index = oracle.index
        import numpy as np

        rng = np.random.default_rng(0)
        checked = 0
        for _ in range(600):
            s, t = (int(x) for x in rng.integers(0, graph.n, 2))
            if s == t or index.is_landmark(s) or index.is_landmark(t):
                continue
            result = oracle.query(s, t)
            if result.method != "intersection":
                continue
            rs, rt = index.radius(s), index.radius(t)
            true = dijkstra_distances(graph, s)[t]
            if rs is not None and rt is not None and true < rs + rt:
                assert result.distance == pytest.approx(true)
                checked += 1
        assert checked > 0
