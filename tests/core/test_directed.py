"""Directed extension tests: exactness and the boundary lemma analogue."""

import numpy as np
import pytest

from repro.core.directed import (
    DirectedVicinityOracle,
    directed_bidirectional_bfs,
)
from repro.datasets.chung_lu import directed_chung_lu_graph, powerlaw_weights
from repro.exceptions import IndexBuildError
from repro.graph.builder import digraph_from_arrays, digraph_from_edges
from repro.graph.traversal.vectorized import digraph_bfs_tree_vectorized


def random_digraph(n, arcs, seed=0):
    rng = np.random.default_rng(seed)
    return digraph_from_arrays(
        rng.integers(0, n, arcs), rng.integers(0, n, arcs), n=n
    )


def directed_truth(graph, source):
    dist, _ = digraph_bfs_tree_vectorized(
        graph.out_indptr, graph.out_indices, graph.n, source
    )
    return dist


@pytest.fixture(scope="module")
def oracle():
    graph = random_digraph(260, 1600, seed=61)
    return DirectedVicinityOracle.build(graph, alpha=4.0, seed=3)


class TestDirectedBidirectionalBfs:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_forward_bfs(self, seed):
        graph = random_digraph(80, 400, seed=seed)
        for s in range(0, graph.n, 11):
            truth = directed_truth(graph, s)
            for t in range(0, graph.n, 7):
                got = directed_bidirectional_bfs(graph, s, t)
                if truth[t] < 0:
                    assert got is None
                else:
                    assert got[0] == truth[t], (s, t)

    def test_path_valid(self):
        graph = random_digraph(80, 420, seed=3)
        truth = directed_truth(graph, 0)
        for t in range(graph.n):
            if truth[t] < 0:
                continue
            distance, path = directed_bidirectional_bfs(graph, 0, t, with_path=True)
            assert path[0] == 0 and path[-1] == t
            assert len(path) - 1 == distance
            for a, b in zip(path, path[1:]):
                assert graph.has_arc(a, b)

    def test_asymmetry_respected(self):
        graph = digraph_from_edges([(0, 1), (1, 2)])
        assert directed_bidirectional_bfs(graph, 0, 2)[0] == 2
        assert directed_bidirectional_bfs(graph, 2, 0) is None


class TestDirectedOracle:
    def test_exactness_on_random_pairs(self, oracle):
        graph = oracle.graph
        rng = np.random.default_rng(4)
        for _ in range(300):
            s, t = (int(x) for x in rng.integers(0, graph.n, 2))
            truth = directed_truth(graph, s)[t]
            result = oracle.query(s, t)
            expected = None if truth < 0 else int(truth)
            assert result.distance == expected, (s, t, result.method)

    def test_paths_are_valid_directed_walks(self, oracle):
        graph = oracle.graph
        rng = np.random.default_rng(5)
        for _ in range(120):
            s, t = (int(x) for x in rng.integers(0, graph.n, 2))
            result = oracle.query(s, t, with_path=True)
            if result.distance is None or result.path is None:
                continue
            path = result.path
            assert path[0] == s and path[-1] == t
            assert len(path) - 1 == result.distance
            for a, b in zip(path, path[1:]):
                assert graph.has_arc(a, b)

    def test_intersection_exact_without_fallback(self):
        graph = random_digraph(220, 1400, seed=62)
        oracle = DirectedVicinityOracle.build(
            graph, alpha=4.0, seed=1, fallback="none"
        )
        rng = np.random.default_rng(6)
        intersections = 0
        for _ in range(400):
            s, t = (int(x) for x in rng.integers(0, graph.n, 2))
            result = oracle.query(s, t)
            if result.method == "intersection":
                intersections += 1
                truth = directed_truth(graph, s)[t]
                assert result.distance == int(truth)
        assert intersections > 0  # the theorem analogue was exercised

    def test_social_digraph_end_to_end(self):
        weights = powerlaw_weights(600, exponent=2.4, mean_degree=10, rng=1)
        graph = directed_chung_lu_graph(weights, reciprocity=0.4, rng=2)
        oracle = DirectedVicinityOracle.build(graph, alpha=4.0, seed=2)
        rng = np.random.default_rng(7)
        for _ in range(150):
            s, t = (int(x) for x in rng.integers(0, graph.n, 2))
            truth = directed_truth(graph, s)[t]
            expected = None if truth < 0 else int(truth)
            assert oracle.query(s, t).distance == expected

    def test_weighted_rejected(self):
        graph = digraph_from_arrays(
            np.array([0]), np.array([1]), weights=np.array([2.0])
        )
        with pytest.raises(IndexBuildError):
            DirectedVicinityOracle.build(graph)

    def test_empty_rejected(self):
        graph = digraph_from_edges([], n=0)
        with pytest.raises(IndexBuildError):
            DirectedVicinityOracle.build(graph)

    def test_vicinity_floor_improves_intersections(self):
        graph = random_digraph(300, 1500, seed=63)
        plain = DirectedVicinityOracle.build(
            graph, alpha=1.0, seed=5, fallback="none"
        )
        floored = DirectedVicinityOracle.build(
            graph, alpha=1.0, seed=5, fallback="none", vicinity_floor=1.0
        )
        rng = np.random.default_rng(8)
        pairs = [(int(a), int(b)) for a, b in rng.integers(0, graph.n, (300, 2))]
        plain_hits = sum(plain.query(s, t).distance is not None for s, t in pairs)
        floored_hits = sum(floored.query(s, t).distance is not None for s, t in pairs)
        assert floored_hits >= plain_hits

    def test_counters(self, oracle):
        oracle.counters.reset()
        oracle.query(0, 1)
        assert oracle.counters.queries == 1
