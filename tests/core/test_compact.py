"""Compact-dtype stores: boundary widths, parity, mmap, round trips.

The dtype policy (:func:`repro.core.flat.compact_store_arrays`) must
never change an answer: every suite here pins a compact (or mapped, or
legacy-loaded) index field-identical — distance, method, witness,
probes, path — against the int64 layout it replaced or the dict
reference path.
"""

import numpy as np
import pytest

from repro.core.config import OracleConfig
from repro.core.dynamic import DynamicVicinityOracle
from repro.core.engine import FlatQueryEngine
from repro.core.flat import (
    FlatIndex,
    compact_store_arrays,
    flatten_index,
    float32_exact,
    id_dtype_for,
    offset_dtype_for,
    pred_sentinel,
    store_nbytes,
    widen_store,
)
from repro.core.index import VicinityIndex
from repro.core.oracle import VicinityOracle
from repro.core.reference import DictReferenceOracle
from repro.exceptions import SerializationError
from repro.graph.builder import graph_from_arrays
from repro.io.oracle_store import (
    FLAT_STORE_ARRAYS,
    load_directed_oracle,
    load_flat_index,
    load_index,
    save_directed_oracle,
    save_index,
)

from tests.conftest import random_connected_graph


def _pairs(n, count, seed):
    rng = np.random.default_rng(seed)
    return [tuple(int(x) for x in rng.integers(0, n, 2)) for _ in range(count)]


def _tier_params():
    """Kernel tiers runnable here (native only with the built extension)."""
    from repro.core import _native

    tiers = ["numpy"]
    if _native.load_library() is not None:
        tiers.append("native")
    return tiers


def assert_results_identical(got, want):
    for a, b in zip(got, want):
        assert (a.distance, a.method, a.witness, a.probes, a.path) == (
            b.distance, b.method, b.witness, b.probes, b.path
        )


class TestDtypePolicy:
    def test_id_dtype_boundaries(self):
        assert id_dtype_for(100) == np.uint16
        assert id_dtype_for(np.iinfo(np.uint16).max) == np.uint16
        assert id_dtype_for(np.iinfo(np.uint16).max + 1) == np.uint32
        assert id_dtype_for(np.iinfo(np.uint32).max) == np.uint32
        assert id_dtype_for(np.iinfo(np.uint32).max + 1) == np.int64

    def test_offset_dtype_boundaries(self):
        assert offset_dtype_for(0) == np.uint32
        assert offset_dtype_for(np.iinfo(np.uint32).max) == np.uint32
        assert offset_dtype_for(np.iinfo(np.uint32).max + 1) == np.int64

    def test_pred_sentinel_is_wrapped_minus_one(self):
        for dtype in (np.uint16, np.uint32):
            assert np.int64(-1).astype(dtype) == pred_sentinel(dtype)
        assert pred_sentinel(np.int64) == -1

    def test_float32_exactness_probe(self):
        assert float32_exact(np.array([0.5, 2.75, np.inf]))
        assert not float32_exact(np.array([0.1]))
        assert float32_exact(np.zeros(0))  # vacuously


class TestCompactVersusInt64:
    @pytest.fixture(scope="class")
    def built(self):
        graph = random_connected_graph(220, 640, seed=17)
        return VicinityIndex.build(
            graph, OracleConfig(alpha=4.0, seed=9, fallback="none")
        )

    def test_store_is_compact_and_smaller(self, built):
        store = flatten_index(built)
        assert store["vic_nodes"].dtype == np.uint16
        assert store["vic_preds"].dtype == np.uint16
        assert store["vic_offsets"].dtype == np.uint32
        assert store["vic_dists"].dtype == np.int32
        assert store["table_parent"].dtype == np.uint16
        wide = widen_store(store)
        assert store_nbytes(wide) / store_nbytes(store) >= 1.8

    def test_widen_round_trips(self, built):
        store = flatten_index(built)
        wide = widen_store(store)
        again = compact_store_arrays(wide, built.n)
        for name in FLAT_STORE_ARRAYS:
            assert again[name].dtype == store[name].dtype, name
            assert np.array_equal(again[name], store[name], equal_nan=True), name

    @pytest.mark.parametrize("tier", _tier_params())
    def test_int64_store_answers_identically(self, built, tier):
        """A FlatIndex loaded from the widened int64 layout (the legacy
        on-disk shape) answers field-identically to the compact one and
        to the dict reference — under either kernel tier."""
        store = flatten_index(built)
        compact = FlatIndex.from_store_arrays(store, n=built.n, weighted=False)
        legacy = FlatIndex.from_store_arrays(
            widen_store(store), n=built.n, weighted=False
        )
        pairs = _pairs(built.n, 600, seed=3)
        kernel = built.config.kernel
        a = FlatQueryEngine(compact, kernel=kernel, kernels=tier).query_batch(
            pairs, with_path=True
        )
        b = FlatQueryEngine(legacy, kernel=kernel, kernels=tier).query_batch(
            pairs, with_path=True
        )
        assert_results_identical(a, b)
        c = DictReferenceOracle(built).query_batch(pairs, with_path=True)
        assert_results_identical(a, c)


class TestUint32Boundary:
    """Graphs past the uint16 id range, without building a huge oracle:
    a ring on n > 65535 nodes with a dense explicit landmark set keeps
    every ball tiny (and skips the diameter-bound table sweeps) while
    every id-width decision flips to uint32."""

    @pytest.fixture(scope="class")
    def built(self):
        from repro.core.landmarks import landmark_set_from_ids

        n = 70000
        src = np.arange(n, dtype=np.int64)
        dst = (src + 1) % n
        graph = graph_from_arrays(src, dst, n=n)
        config = OracleConfig(
            alpha=4.0, seed=5, fallback="none", landmark_tables="none"
        )
        landmarks = landmark_set_from_ids(
            graph, list(range(0, n, 8)), config.alpha
        )
        return VicinityIndex.from_landmarks(
            graph, config, landmarks, representation="flat"
        )

    def test_uint32_ids_and_query_parity(self, built, tmp_path):
        flat = built._flat_index
        assert flat.id_dtype == np.uint32
        assert flat.vic_preds.dtype == np.uint32
        pairs = _pairs(built.n, 300, seed=11)
        want = DictReferenceOracle(built).query_batch(pairs, with_path=True)
        got = FlatQueryEngine(flat, kernel=built.config.kernel).query_batch(
            pairs, with_path=True
        )
        assert_results_identical(got, want)
        path = tmp_path / "ring.bin"
        save_index(built, path)
        mm = load_flat_index(path, mmap=True)
        assert mm.id_dtype == np.uint32
        again = FlatQueryEngine(mm, kernel=built.config.kernel).query_batch(
            pairs, with_path=True
        )
        assert_results_identical(again, want)


class TestWeightedDistanceWidths:
    def _build(self, weights_of):
        rng = np.random.default_rng(23)
        n, m = 160, 460
        src = rng.integers(0, n, size=m)
        dst = rng.integers(0, n, size=m)
        graph = graph_from_arrays(src, dst, n=n, weights=weights_of(rng, m))
        from repro.graph.components import largest_component

        graph, _ = largest_component(graph)
        return VicinityIndex.build(
            graph, OracleConfig(alpha=4.0, seed=3, fallback="none")
        )

    def test_dyadic_weights_store_float32(self):
        # Multiples of 0.25: every Dijkstra sum is float32-exact.
        built = self._build(
            lambda rng, m: rng.integers(1, 16, size=m).astype(np.float64) / 4.0
        )
        store = flatten_index(built)
        assert store["vic_dists"].dtype == np.float32
        assert store["table_dist"].dtype == np.float32
        self._assert_query_parity(built, store)

    def test_lossy_weights_keep_float64(self):
        built = self._build(lambda rng, m: rng.uniform(0.5, 4.0, size=m))
        store = flatten_index(built)
        assert store["vic_dists"].dtype == np.float64
        assert store["table_dist"].dtype == np.float64
        self._assert_query_parity(built, store)

    def _assert_query_parity(self, built, store):
        pairs = _pairs(built.n, 500, seed=7)
        flat = FlatIndex.from_store_arrays(store, n=built.n, weighted=True)
        got = FlatQueryEngine(flat, kernel=built.config.kernel).query_batch(
            pairs, with_path=True
        )
        want = DictReferenceOracle(built).query_batch(pairs, with_path=True)
        assert_results_identical(got, want)


class TestMmapServing:
    @pytest.fixture(scope="class")
    def saved(self, tmp_path_factory):
        graph = random_connected_graph(240, 700, seed=31)
        index = VicinityIndex.build(
            graph, OracleConfig(alpha=4.0, seed=13, fallback="none")
        )
        path = tmp_path_factory.mktemp("store") / "oracle.bin"
        save_index(index, path)
        return index, path

    def test_mmap_views_are_file_backed(self, saved):
        import mmap as mmap_module

        _, path = saved
        flat = load_flat_index(path, mmap=True)
        base = flat.vic_nodes
        while isinstance(base, np.ndarray) and base.base is not None:
            base = base.base
        assert isinstance(base, (np.memmap, mmap_module.mmap))
        assert not flat.vic_nodes.flags.writeable

    @pytest.mark.parametrize("tier", _tier_params())
    def test_mmap_queries_identical(self, saved, tier):
        index, path = saved
        pairs = _pairs(index.n, 600, seed=19)
        kernel = index.config.kernel
        want = FlatQueryEngine(
            load_flat_index(path), kernel=kernel, kernels=tier
        ).query_batch(pairs, with_path=True)
        got = FlatQueryEngine(
            load_flat_index(path, mmap=True), kernel=kernel, kernels=tier
        ).query_batch(pairs, with_path=True)
        assert_results_identical(got, want)

    def test_mmap_rejected_for_legacy_npz(self, saved, tmp_path):
        index, _ = saved
        legacy = tmp_path / "legacy.npz"
        save_index(index, legacy, format="npz")
        with pytest.raises(SerializationError, match="memory-mapped"):
            load_flat_index(legacy, mmap=True)


class TestLegacyRoundTrips:
    def test_legacy_int64_npz_still_loads(self, tmp_path):
        """A PR 4-era archive (int64 arrays, -1 pred markers) loads
        through both readers with identical answers."""
        import json

        graph = random_connected_graph(180, 520, seed=41)
        index = VicinityIndex.build(
            graph, OracleConfig(alpha=4.0, seed=21, fallback="none")
        )
        store = widen_store(flatten_index(index))
        legacy = tmp_path / "old.npz"
        payload = {
            "magic": np.asarray("repro-oracle-v1"),
            "config": np.asarray(json.dumps(dict(index.config.__dict__))),
            "graph_n": np.asarray(graph.n, dtype=np.int64),
            "graph_indptr": graph.indptr,
            "graph_indices": graph.indices,
            **{name: store[name] for name in FLAT_STORE_ARRAYS},
        }
        np.savez_compressed(legacy, **payload)
        pairs = _pairs(graph.n, 400, seed=2)
        want = VicinityOracle(index).query_batch(pairs, with_path=True)

        flat = load_flat_index(legacy)  # upconverted to compact
        assert flat.id_dtype == id_dtype_for(graph.n)
        got = FlatQueryEngine(flat, kernel=index.config.kernel).query_batch(
            pairs, with_path=True
        )
        assert_results_identical(got, want)

        restored = VicinityOracle(load_index(legacy)).query_batch(
            pairs, with_path=True
        )
        assert_results_identical(restored, want)

    def test_npz_format_round_trip(self, tmp_path):
        graph = random_connected_graph(150, 430, seed=43)
        index = VicinityIndex.build(
            graph, OracleConfig(alpha=4.0, seed=5, fallback="none")
        )
        path = tmp_path / "archive.npz"
        save_index(index, path, format="npz")
        pairs = _pairs(graph.n, 300, seed=4)
        want = VicinityOracle(index).query_batch(pairs)
        got = VicinityOracle(load_index(path)).query_batch(pairs)
        assert_results_identical(got, want)


class TestDirectedCompact:
    @pytest.fixture(scope="class")
    def oracle(self):
        from repro.core.directed import DirectedVicinityOracle
        from repro.graph.builder import digraph_from_arrays

        rng = np.random.default_rng(53)
        n, m = 200, 900
        src = rng.integers(0, n, size=m)
        dst = rng.integers(0, n, size=m)
        graph = digraph_from_arrays(src, dst, n=n)
        return DirectedVicinityOracle.build(
            graph, alpha=3.0, seed=7, fallback="none", representation="flat"
        )

    def test_sides_are_compact(self, oracle):
        out_store, in_store = oracle.flat_side_stores()
        for store in (out_store, in_store):
            assert store["vic_nodes"].dtype == np.uint16
            assert store["vic_preds"].dtype == np.uint16
            assert store["vic_offsets"].dtype == np.uint32

    @pytest.mark.parametrize("mmap", [False, True])
    def test_round_trip_matches(self, oracle, tmp_path, mmap):
        path = tmp_path / f"directed-{mmap}.bin"
        save_directed_oracle(oracle, path)
        loaded = load_directed_oracle(path, mmap=mmap)
        pairs = _pairs(oracle.graph.n, 300, seed=6)
        for s, t in pairs:
            a = oracle.query(s, t)
            b = loaded.query(s, t)
            assert (a.distance, a.method, a.witness) == (
                b.distance, b.method, b.witness
            )


class TestDynamicRefreshKeepsCompact:
    def test_refreshed_equals_fresh_flatten(self):
        graph = random_connected_graph(150, 400, seed=61)
        config = OracleConfig(alpha=4.0, seed=19)
        index = VicinityIndex.build(graph, config)
        dynamic = DynamicVicinityOracle(index)
        dynamic.query(0, 1)  # materialise the flat cache the repair splices
        rng = np.random.default_rng(67)
        added = 0
        while added < 4:
            u, v = (int(x) for x in rng.integers(0, graph.n, 2))
            if u != v and not dynamic.graph.has_edge(u, v):
                assert dynamic.add_edge(u, v)
                added += 1
        refreshed = index._flat_index
        assert refreshed.id_dtype == np.uint16
        assert refreshed.vic_preds.dtype == np.uint16
        index._flat_index = None
        fresh = FlatIndex.from_index(index)
        for name in refreshed.arrays:
            a, b = refreshed.arrays[name], fresh.arrays[name]
            assert a.dtype == b.dtype, name
            assert np.array_equal(a, b), name
