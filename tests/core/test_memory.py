"""Memory accounting tests (§3.2 model)."""

import math

import pytest

from repro.core.config import OracleConfig
from repro.core.memory import memory_report
from repro.core.index import VicinityIndex

from tests.conftest import random_connected_graph


@pytest.fixture(scope="module")
def index():
    graph = random_connected_graph(300, 900, seed=31)
    return VicinityIndex.build(graph, OracleConfig(alpha=4.0, seed=7))


class TestMemoryReport:
    def test_entry_counts_match_structures(self, index):
        report = memory_report(index)
        expected_vic = sum(v.size for v in index.vicinities)
        expected_boundary = sum(v.boundary_size for v in index.vicinities)
        assert report.vicinity_entries == expected_vic
        assert report.boundary_entries == expected_boundary
        assert report.table_entries == len(index.tables) * index.n

    def test_apsp_entries(self, index):
        report = memory_report(index)
        assert report.apsp_entries == index.n * (index.n - 1) // 2

    def test_paper_ratio_definition(self, index):
        report = memory_report(index)
        assert report.apsp_ratio_vicinities_only == pytest.approx(
            report.apsp_entries / report.vicinity_entries
        )
        assert report.apsp_ratio_total <= report.apsp_ratio_vicinities_only

    def test_entries_per_node(self, index):
        report = memory_report(index)
        assert report.entries_per_node == pytest.approx(
            report.vicinity_entries / index.n
        )

    def test_model_bytes_positive_and_consistent(self, index):
        report = memory_report(index)
        expected = (
            (report.vicinity_entries + report.table_entries) * report.bytes_per_entry
            + report.boundary_entries * 4
        )
        assert report.model_bytes == expected

    def test_distance_only_entry_cost(self):
        graph = random_connected_graph(150, 400, seed=32)
        index = VicinityIndex.build(
            graph, OracleConfig(alpha=4.0, seed=1, store_paths=False)
        )
        report = memory_report(index)
        assert report.bytes_per_entry == 4

    def test_measured_bytes_nonzero(self, index):
        report = memory_report(index)
        assert report.measured_container_bytes > 0

    def test_summary_mentions_ratios(self, index):
        text = memory_report(index).summary()
        assert "APSP ratio" in text
        assert "entries/node" in text
