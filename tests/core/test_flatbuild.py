"""Flat-native offline build: field-identical to the dict builder.

The parity contract of PR 4: for any ``(graph, config, landmarks)``,
:func:`repro.core.parallel.build_flat_store` (batched truncated BFS,
vectorised boundary extraction, direct packing) produces exactly the
arrays that flattening the dict builder's records produces — members,
dists, preds, boundaries (in Lemma 1 scan order), radii and landmark
tables — across weighted/unweighted graphs, the vicinity floor,
``store_paths=False``, table-less indices, directed mode, and any
worker count.
"""

import numpy as np
import pytest

from repro.core.config import OracleConfig
from repro.core.dynamic import DynamicVicinityOracle
from repro.core.flat import (
    JOIN_MAX_SCAN,
    FlatIndex,
    calibrate_join_max_scan,
    flatten_index,
)
from repro.core.index import FlatVicinityList, VicinityIndex
from repro.core.landmarks import (
    flag_bytes,
    landmark_set_from_ids,
    sample_landmarks,
)
from repro.core.oracle import VicinityOracle
from repro.exceptions import IndexBuildError
from repro.graph.traversal.batched import grow_balls
from repro.graph.traversal.bounded import truncated_bfs_ball
from repro.io.oracle_store import (
    DIRECTED_SIDE_ARRAYS,
    FLAT_STORE_ARRAYS,
    load_directed_oracle,
    load_flat_index,
    save_directed_oracle,
    save_index,
)

from tests.conftest import random_connected_graph, random_graph


def assert_stores_equal(want, got, names=FLAT_STORE_ARRAYS, context=""):
    for name in names:
        a, b = want[name], got[name]
        assert a.dtype == b.dtype, f"{context}{name}: {a.dtype} != {b.dtype}"
        assert np.array_equal(a, b, equal_nan=(name == "radii")), (
            f"{context}{name} differs"
        )


def build_both(graph, config):
    """(dict store, flat store) for one frozen landmark set."""
    dict_index = VicinityIndex.build(graph, config)
    flat_index = VicinityIndex.build(graph, config, representation="flat")
    # Same seed -> same sampling draws -> identical landmark sets.
    assert np.array_equal(dict_index.landmarks.ids, flat_index.landmarks.ids)
    return dict_index, flat_index


class TestStoreParity:
    @pytest.mark.parametrize(
        "weighted,floor,store_paths,tables",
        [
            (False, 0.0, True, "full"),
            (False, 0.75, True, "full"),
            (False, 0.0, False, "full"),
            (False, 0.75, False, "none"),
            (True, 0.0, True, "full"),
            (True, 0.0, False, "none"),
        ],
    )
    def test_field_identical_across_configs(
        self, weighted, floor, store_paths, tables
    ):
        graph = random_connected_graph(230, 680, seed=17, weighted=weighted)
        config = OracleConfig(
            alpha=4.0,
            seed=11,
            fallback="none",
            vicinity_floor=floor,
            store_paths=store_paths,
            landmark_tables=tables,
        )
        dict_index, flat_index = build_both(graph, config)
        assert_stores_equal(
            flatten_index(dict_index),
            flat_index._flat_store,
            context=f"weighted={weighted} floor={floor} paths={store_paths}: ",
        )

    def test_disconnected_graph_with_landmarkless_component(self):
        # Degenerate whole-component vicinities (radius None) must pack
        # identically; disable the per-component landmark guarantee so
        # one component really has no landmark.
        graph = random_graph(120, 200, seed=3)
        config = OracleConfig(
            alpha=4.0, seed=5, fallback="none", landmark_per_component=False
        )
        dict_index, flat_index = build_both(graph, config)
        assert_stores_equal(flatten_index(dict_index), flat_index._flat_store)

    def test_flat_index_probe_surface_identical(self):
        graph = random_connected_graph(200, 600, seed=23)
        config = OracleConfig(alpha=4.0, seed=7, fallback="none")
        dict_index, flat_index = build_both(graph, config)
        want = FlatIndex.from_index(dict_index)
        got = flat_index._flat_index
        for name in ("boundary_dists", "landmark_row"):
            assert np.array_equal(want.arrays[name], got.arrays[name]), name
        assert want.join_max_scan == got.join_max_scan

    def test_workers_requires_flat(self):
        graph = random_connected_graph(60, 150, seed=1)
        with pytest.raises(IndexBuildError):
            VicinityIndex.build(graph, OracleConfig(seed=1), workers=2)
        with pytest.raises(IndexBuildError):
            VicinityIndex.build(
                graph, OracleConfig(seed=1), representation="nope"
            )


class TestMultiWorkerDeterminism:
    def test_two_workers_identical_to_one(self):
        # Small graph: the point is the spawn-pool path (shared-memory
        # CSR, chunked sources, ordered concatenation), not scale.
        graph = random_connected_graph(150, 420, seed=29)
        config = OracleConfig(alpha=4.0, seed=13, fallback="none")
        one = VicinityIndex.build(graph, config, representation="flat")
        two = VicinityIndex.build(
            graph, config, representation="flat", workers=2
        )
        assert_stores_equal(one._flat_store, two._flat_store)


class TestBatchedTraversalParity:
    @pytest.mark.parametrize("min_size", [None, 40])
    def test_matches_scalar_ball_exactly(self, min_size):
        graph = random_connected_graph(180, 520, seed=41)
        landmarks = sample_landmarks(graph, 4.0, rng=3)
        flags = np.frombuffer(landmarks.is_landmark, dtype=np.uint8)
        sources = np.flatnonzero(flags == 0).astype(np.int64)
        packed = grow_balls(
            graph.indptr, graph.indices, graph.n, sources, flags,
            min_size=min_size, batch_size=7,  # force several batches
        )
        for i, u in enumerate(sources.tolist()):
            scalar = truncated_bfs_ball(
                graph, u, landmarks.is_landmark, min_size=min_size
            )
            lo, hi = int(packed.offsets[i]), int(packed.offsets[i + 1])
            nodes = packed.nodes[lo:hi]
            assert nodes.tolist() == scalar.gamma, f"gamma order of {u}"
            assert packed.dists[lo:hi].tolist() == [
                scalar.dist[v] for v in scalar.gamma
            ]
            assert packed.preds[lo:hi].tolist() == [
                scalar.pred[v] for v in scalar.gamma
            ]
            radius = int(packed.radii[i])
            assert (None if radius < 0 else radius) == scalar.radius
            # Boundary mask reproduces compute_boundary's set and order.
            adj = graph.adjacency()
            member_set = frozenset(scalar.gamma)
            want_boundary = [
                v for v in scalar.gamma
                if any(w not in member_set for w in adj[v])
            ]
            assert nodes[packed.boundary_mask[lo:hi]].tolist() == want_boundary


class TestFlatBuiltIndexBehaviour:
    @pytest.fixture(scope="class")
    def pair(self):
        graph = random_connected_graph(240, 720, seed=53)
        config = OracleConfig(alpha=4.0, seed=19)
        return build_both(graph, config)

    def test_queries_identical_to_dict_built(self, pair):
        dict_index, flat_index = pair
        a, b = VicinityOracle(dict_index), VicinityOracle(flat_index)
        rng = np.random.default_rng(5)
        for s, t in rng.integers(0, dict_index.n, (300, 2)).tolist():
            want, got = a.query(s, t), b.query(s, t)
            assert (want.distance, want.method, want.witness, want.probes) == (
                got.distance, got.method, got.witness, got.probes
            )
        s, t = rng.integers(0, dict_index.n, 2).tolist()
        assert a.query(s, t, with_path=True).path == b.query(
            s, t, with_path=True
        ).path

    def test_lazy_records_match_dict_records(self, pair):
        dict_index, flat_index = pair
        assert isinstance(flat_index.vicinities, FlatVicinityList)
        assert len(flat_index.vicinities) == dict_index.n
        for u in range(0, dict_index.n, 7):
            want = dict_index.vicinities[u]
            got = flat_index.vicinities[u]
            assert got.node == u
            assert got.radius == want.radius
            assert got.members == want.members
            assert got.dist == want.dist
            assert got.pred == want.pred
            assert got.boundary == want.boundary  # scan order preserved

    def test_save_index_identical_and_dict_free(self, pair, tmp_path):
        from repro.io.oracle_store import load_flat_arrays

        dict_index, flat_index = pair
        a, b = tmp_path / "dict.bin", tmp_path / "flat.bin"
        save_index(dict_index, a)
        save_index(flat_index, b)
        da, _ = load_flat_arrays(a)
        db, _ = load_flat_arrays(b)
        for name in FLAT_STORE_ARRAYS:
            assert da[name].dtype == db[name].dtype, name
            assert np.array_equal(da[name], db[name], equal_nan=True), name
        loaded = load_flat_index(b)
        assert np.array_equal(
            loaded.vic_nodes, flat_index._flat_index.vic_nodes
        )

    def test_dynamic_repair_on_flat_built_index(self):
        graph = random_connected_graph(140, 380, seed=67)
        config = OracleConfig(alpha=4.0, seed=23)
        index = VicinityIndex.build(graph, config, representation="flat")
        dynamic = DynamicVicinityOracle(index)
        rng = np.random.default_rng(71)
        added = 0
        while added < 3:
            u, v = (int(x) for x in rng.integers(0, graph.n, 2))
            if u != v and not dynamic.graph.has_edge(u, v):
                assert dynamic.add_edge(u, v)
                added += 1
        # Mutation invalidates the stored arrays; queries must match a
        # fresh build on the updated graph with the same landmark set.
        assert index._flat_store is None
        fresh = VicinityIndex.from_landmarks(
            dynamic.graph,
            config,
            landmark_set_from_ids(
                dynamic.graph, index.landmarks.ids.tolist(), config.alpha
            ),
        )
        reference = VicinityOracle(fresh)
        for s, t in rng.integers(0, graph.n, (150, 2)).tolist():
            assert dynamic.distance(s, t) == reference.query(s, t).distance


class TestDirectedParity:
    @pytest.fixture(scope="class")
    def oracles(self):
        from repro.graph.builder import digraph_from_arrays

        rng = np.random.default_rng(83)
        n, arcs = 240, 1500
        graph = digraph_from_arrays(
            rng.integers(0, n, arcs), rng.integers(0, n, arcs), n=n
        )
        from repro.core.directed import DirectedVicinityOracle

        d = DirectedVicinityOracle.build(graph, alpha=4.0, seed=31)
        f = DirectedVicinityOracle.build(
            graph, alpha=4.0, seed=31, representation="flat"
        )
        return d, f

    def test_side_stores_field_identical(self, oracles):
        d, f = oracles
        assert np.array_equal(d.landmark_ids, f.landmark_ids)
        for side, (want, got) in enumerate(
            zip(d.flat_side_stores(), f.flat_side_stores())
        ):
            assert_stores_equal(
                want, got, names=DIRECTED_SIDE_ARRAYS, context=f"side {side}: "
            )

    def test_queries_identical(self, oracles):
        d, f = oracles
        rng = np.random.default_rng(7)
        for s, t in rng.integers(0, d.graph.n, (300, 2)).tolist():
            want, got = d.query(s, t), f.query(s, t)
            assert (want.distance, want.method, want.witness, want.probes) == (
                got.distance, got.method, got.witness, got.probes
            )

    def test_save_load_round_trip(self, oracles, tmp_path):
        d, f = oracles
        path = tmp_path / "directed.npz"
        save_directed_oracle(f, path)
        loaded = load_directed_oracle(path)
        # Loaded oracles hold the arrays: the engine must build with no
        # flattening pass (records stay unmaterialised).
        assert loaded._flat_sides is not None
        rng = np.random.default_rng(11)
        for s, t in rng.integers(0, d.graph.n, (200, 2)).tolist():
            want, got = d.query(s, t), loaded.query(s, t)
            assert (want.distance, want.method, want.witness) == (
                got.distance, got.method, got.witness
            )
        s, t = rng.integers(0, d.graph.n, 2).tolist()
        assert d.query(s, t, with_path=True).path == loaded.query(
            s, t, with_path=True
        ).path


class TestJoinScanCalibration:
    def test_anchor_geometry_reproduces_the_constant(self):
        assert calibrate_join_max_scan(np.zeros(0, dtype=np.int64)) == JOIN_MAX_SCAN
        # An index shaped like the one the constant was tuned on (the
        # log2 gap between total boundary mass and the median slice
        # near the anchor) calibrates back to ~the constant.
        anchor_like = np.full(9700, 300, dtype=np.int64)
        assert (
            abs(calibrate_join_max_scan(anchor_like) - JOIN_MAX_SCAN)
            <= JOIN_MAX_SCAN // 4
        )

    def test_larger_indices_tighten_and_bounds_hold(self):
        median = 300
        small = np.full(1_000, median, dtype=np.int64)
        huge = np.full(4_000_000, median, dtype=np.int64)
        assert calibrate_join_max_scan(huge) < calibrate_join_max_scan(small)
        for counts in (small, huge, np.asarray([1]), np.full(10, 10**6)):
            assert 8 <= calibrate_join_max_scan(counts) <= 4 * JOIN_MAX_SCAN

    def test_flat_index_carries_calibrated_value(self):
        graph = random_connected_graph(160, 480, seed=97)
        index = VicinityIndex.build(
            graph, OracleConfig(alpha=4.0, seed=3), representation="flat"
        )
        flat = index._flat_index
        assert 8 <= flat.join_max_scan <= 4 * JOIN_MAX_SCAN
        assert flat.join_max_scan == calibrate_join_max_scan(
            flat.boundary_counts
        )


class TestFlagBytes:
    def test_scatter_matches_loop(self):
        ids = [3, 0, 9, 3]
        flags = flag_bytes(12, np.asarray(ids))
        want = bytearray(12)
        for u in ids:
            want[u] = 1
        assert flags == want
        assert flag_bytes(5, np.zeros(0, dtype=np.int64)) == bytearray(5)
