"""Edge-list text format round trips."""

import pytest

from repro.exceptions import SerializationError
from repro.graph.builder import digraph_from_edges, graph_from_weighted_edges
from repro.io.edgelist import read_edgelist, write_edgelist

from tests.conftest import random_graph


class TestRoundTrip:
    def test_unweighted(self, tmp_path):
        g = random_graph(40, 120, seed=1)
        path = tmp_path / "g.txt"
        write_edgelist(g, path, header="test graph")
        loaded = read_edgelist(path)
        assert loaded == g

    def test_weighted(self, tmp_path):
        g = graph_from_weighted_edges([(0, 1, 2.5), (1, 2, 0.125)])
        path = tmp_path / "w.txt"
        write_edgelist(g, path)
        loaded = read_edgelist(path, weighted=True)
        assert loaded == g

    def test_directed(self, tmp_path):
        g = digraph_from_edges([(0, 1), (1, 2), (2, 0)])
        path = tmp_path / "d.txt"
        write_edgelist(g, path)
        loaded = read_edgelist(path, directed=True)
        assert loaded.num_arcs == 3
        assert loaded.has_arc(2, 0)
        assert not loaded.has_arc(0, 2)

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text("# header\n\n0 1\n# mid comment\n1 2\n")
        g = read_edgelist(path)
        assert g.num_edges == 2


class TestErrors:
    def test_short_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(SerializationError, match="expected 2 columns"):
            read_edgelist(path)

    def test_missing_weight_column(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\n")
        with pytest.raises(SerializationError, match="expected 3 columns"):
            read_edgelist(path, weighted=True)

    def test_non_integer_ids(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a b\n")
        with pytest.raises(SerializationError):
            read_edgelist(path)

    def test_unserialisable_object(self, tmp_path):
        with pytest.raises(SerializationError):
            write_edgelist("not a graph", tmp_path / "x.txt")
