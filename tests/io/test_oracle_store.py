"""Oracle persistence: queries must be identical after a round trip."""

import numpy as np
import pytest

from repro.core.config import OracleConfig
from repro.core.index import VicinityIndex
from repro.core.oracle import VicinityOracle
from repro.exceptions import SerializationError
from repro.io.oracle_store import load_index, save_index

from tests.conftest import random_connected_graph


@pytest.fixture(scope="module")
def index():
    graph = random_connected_graph(200, 560, seed=111)
    return VicinityIndex.build(
        graph, OracleConfig(alpha=4.0, seed=13, fallback="bidirectional")
    )


class TestRoundTrip:
    def test_batch_queries_identical(self, index, tmp_path):
        """save -> load -> query_batch answers match the original index.

        The `serve` command's whole contract: a persisted index must
        serve exactly the same distances the freshly built one does.
        """
        path = tmp_path / "oracle.npz"
        save_index(index, path)
        restored = VicinityOracle(load_index(path))
        original = VicinityOracle(index)
        rng = np.random.default_rng(7)
        pairs = [
            tuple(int(x) for x in rng.integers(0, index.n, 2)) for _ in range(500)
        ]
        for before, after in zip(
            original.query_batch(pairs), restored.query_batch(pairs)
        ):
            assert before.distance == after.distance
            assert before.method == after.method
            assert before.probes == after.probes

    def test_served_from_disk_through_service_stack(self, index, tmp_path):
        """save -> load -> full serving stack (cache + batching) agrees."""
        from repro.service import ServiceApp

        path = tmp_path / "oracle.npz"
        save_index(index, path)
        app = ServiceApp.from_index(load_index(path))
        original = VicinityOracle(index)
        rng = np.random.default_rng(8)
        pairs = [
            tuple(int(x) for x in rng.integers(0, index.n, 2)) for _ in range(300)
        ]
        # Repeat the workload so the second pass is cache/dedup-heavy.
        for got, (s, t) in zip(app.executor.run(pairs + pairs), pairs + pairs):
            assert got.distance == original.query(s, t).distance

    def test_queries_identical(self, index, tmp_path):
        path = tmp_path / "oracle.npz"
        save_index(index, path)
        loaded = load_index(path)
        original = VicinityOracle(index)
        restored = VicinityOracle(loaded)
        rng = np.random.default_rng(1)
        for _ in range(200):
            s, t = (int(x) for x in rng.integers(0, index.n, 2))
            a = original.query(s, t, with_path=True)
            b = restored.query(s, t, with_path=True)
            assert a.distance == b.distance
            assert a.method == b.method
            if a.path is not None:
                assert len(a.path) == len(b.path)

    def test_structures_identical(self, index, tmp_path):
        path = tmp_path / "oracle.npz"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.n == index.n
        assert np.array_equal(loaded.landmarks.ids, index.landmarks.ids)
        assert loaded.landmarks.scale == index.landmarks.scale
        assert loaded.config == index.config
        for u in range(index.n):
            a, b = index.vicinities[u], loaded.vicinities[u]
            assert a.members == b.members
            assert a.dist == b.dist
            assert a.radius == b.radius
            assert list(a.boundary) == list(b.boundary)

    def test_tables_identical(self, index, tmp_path):
        path = tmp_path / "oracle.npz"
        save_index(index, path)
        loaded = load_index(path)
        assert set(loaded.tables) == set(index.tables)
        for landmark, table in index.tables.items():
            assert np.array_equal(loaded.tables[landmark].dist, table.dist)
            assert np.array_equal(loaded.tables[landmark].parent, table.parent)

    def test_weighted_round_trip(self, tmp_path):
        graph = random_connected_graph(80, 200, seed=112, weighted=True)
        index = VicinityIndex.build(graph, OracleConfig(alpha=4.0, seed=3))
        path = tmp_path / "w.npz"
        save_index(index, path)
        loaded = load_index(path)
        original = VicinityOracle(index)
        restored = VicinityOracle(loaded)
        rng = np.random.default_rng(2)
        for _ in range(100):
            s, t = (int(x) for x in rng.integers(0, graph.n, 2))
            assert original.query(s, t).distance == pytest.approx(
                restored.query(s, t).distance
            )

    def test_no_tables_mode(self, tmp_path):
        graph = random_connected_graph(100, 260, seed=113)
        index = VicinityIndex.build(
            graph, OracleConfig(alpha=4.0, seed=5, landmark_tables="none")
        )
        path = tmp_path / "nt.npz"
        save_index(index, path)
        assert load_index(path).tables == {}

    def test_wrong_file_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, magic="nonsense")
        with pytest.raises(SerializationError):
            load_index(path)
