"""Binary snapshot round trips."""

import numpy as np
import pytest

from repro.exceptions import SerializationError
from repro.graph.builder import digraph_from_arrays
from repro.io.binary import load_digraph, load_graph, save_digraph, save_graph

from tests.conftest import random_graph


class TestGraphSnapshots:
    def test_round_trip(self, tmp_path):
        g = random_graph(60, 180, seed=1)
        path = tmp_path / "g.npz"
        save_graph(g, path)
        assert load_graph(path) == g

    def test_weighted_round_trip(self, tmp_path):
        g = random_graph(40, 120, seed=2, weighted=True)
        path = tmp_path / "w.npz"
        save_graph(g, path)
        loaded = load_graph(path)
        assert loaded == g
        assert loaded.is_weighted

    def test_wrong_magic(self, tmp_path):
        path = tmp_path / "x.npz"
        np.savez(path, magic="something-else")
        with pytest.raises(SerializationError):
            load_graph(path)


class TestDigraphSnapshots:
    def test_round_trip(self, tmp_path):
        rng = np.random.default_rng(3)
        g = digraph_from_arrays(rng.integers(0, 30, 90), rng.integers(0, 30, 90))
        path = tmp_path / "d.npz"
        save_digraph(g, path)
        loaded = load_digraph(path)
        assert loaded.num_arcs == g.num_arcs
        assert np.array_equal(loaded.out_indices, g.out_indices)
        assert np.array_equal(loaded.in_indices, g.in_indices)

    def test_graph_digraph_magic_mismatch(self, tmp_path):
        g = random_graph(10, 30, seed=4)
        path = tmp_path / "g.npz"
        save_graph(g, path)
        with pytest.raises(SerializationError):
            load_digraph(path)
