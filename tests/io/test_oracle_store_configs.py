"""Persistence across the configuration matrix.

The round-trip tests in test_oracle_store.py cover the default build;
these pin the remaining configuration corners: the vicinity floor, the
distances-only mode, alternative kernels and fallbacks — each of which
changes what must survive serialisation.
"""

import numpy as np
import pytest

from repro.core.config import OracleConfig
from repro.core.index import VicinityIndex
from repro.core.oracle import VicinityOracle
from repro.io.oracle_store import load_index, save_index

from tests.conftest import random_connected_graph


@pytest.fixture(scope="module")
def graph():
    return random_connected_graph(160, 420, seed=171)


CONFIGS = {
    "floored": OracleConfig(alpha=2.0, seed=3, vicinity_floor=0.5, fallback="none"),
    "distances-only": OracleConfig(alpha=4.0, seed=3, store_paths=False, fallback="none"),
    "full-kernel": OracleConfig(alpha=4.0, seed=3, kernel="full-smaller", fallback="none"),
    "capped-landmarks": OracleConfig(alpha=1.0, seed=3, max_landmarks=4, fallback="none"),
    "literal-scale": OracleConfig(alpha=4.0, seed=3, probability_scale=2.0, fallback="none"),
}


@pytest.mark.parametrize("label", list(CONFIGS))
def test_round_trip_preserves_queries(label, graph, tmp_path):
    config = CONFIGS[label]
    index = VicinityIndex.build(graph, config)
    path = tmp_path / f"{label}.npz"
    save_index(index, path)
    loaded = load_index(path)
    assert loaded.config == config
    original = VicinityOracle(index)
    restored = VicinityOracle(loaded)
    rng = np.random.default_rng(5)
    for _ in range(120):
        s, t = (int(x) for x in rng.integers(0, graph.n, 2))
        a = original.query(s, t)
        b = restored.query(s, t)
        assert a.distance == b.distance and a.method == b.method, (label, s, t)


def test_distances_only_round_trip_has_no_parents(graph, tmp_path):
    index = VicinityIndex.build(graph, CONFIGS["distances-only"])
    path = tmp_path / "np.npz"
    save_index(index, path)
    loaded = load_index(path)
    non_landmark = next(
        u for u in range(graph.n) if not loaded.landmarks.is_landmark[u]
    )
    assert loaded.vicinities[non_landmark].pred == {}
    table = loaded.tables[int(loaded.landmarks.ids[0])]
    assert table.parent is None


def test_floor_round_trip_preserves_radii(graph, tmp_path):
    index = VicinityIndex.build(graph, CONFIGS["floored"])
    path = tmp_path / "fl.npz"
    save_index(index, path)
    loaded = load_index(path)
    for u in range(graph.n):
        assert loaded.vicinities[u].radius == index.vicinities[u].radius
