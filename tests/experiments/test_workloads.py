"""Workload protocol tests (§2.3)."""

import numpy as np
import pytest

from repro.exceptions import QueryError
from repro.experiments.workloads import sample_pair_workload
from repro.graph.builder import path_graph


class TestPairWorkload:
    def test_pair_count(self):
        workload = sample_pair_workload(path_graph(50), 10, rng=1)
        pairs = list(workload.pairs())
        assert len(pairs) == 45
        assert workload.num_pairs == 45

    def test_nodes_distinct(self):
        workload = sample_pair_workload(path_graph(30), 20, rng=2)
        assert len(set(workload.nodes.tolist())) == 20

    def test_pairs_within_sample(self):
        workload = sample_pair_workload(path_graph(40), 8, rng=3)
        sample = set(workload.nodes.tolist())
        for s, t in workload.pairs():
            assert s in sample and t in sample and s != t

    def test_random_pairs_subsample(self):
        workload = sample_pair_workload(path_graph(40), 8, rng=4)
        picked = list(workload.random_pairs(12, rng=5))
        assert len(picked) == 12
        sample = set(workload.nodes.tolist())
        for s, t in picked:
            assert s in sample and t in sample and s != t

    def test_deterministic(self):
        a = sample_pair_workload(path_graph(40), 8, rng=9)
        b = sample_pair_workload(path_graph(40), 8, rng=9)
        assert np.array_equal(a.nodes, b.nodes)

    def test_invalid_sizes(self):
        with pytest.raises(QueryError):
            sample_pair_workload(path_graph(5), 1)
        with pytest.raises(QueryError):
            sample_pair_workload(path_graph(5), 6)
