"""End-to-end tests for the table/figure drivers (small scales)."""

import pytest

from repro.datasets.social import generate
from repro.experiments.figure2 import render_figure2, run_figure2
from repro.experiments.memory_table import render_memory_table, run_memory_for_graph
from repro.experiments.table2 import render_table2, run_table2
from repro.experiments.table3 import render_table3, run_table3_for_graph
from repro.experiments.tradeoff import render_tradeoff, run_tradeoff


@pytest.fixture(scope="module")
def graph():
    return generate("dblp", scale=0.0015, seed=42)


@pytest.mark.integration
class TestTable2:
    def test_rows_cover_datasets(self):
        rows = run_table2(["dblp", "flickr"], scale=0.0005, seed=1)
        assert [r.dataset for r in rows] == ["dblp", "flickr"]
        for row in rows:
            assert row.nodes > 0
            assert row.directed_links >= row.undirected_links
            assert 0.5 < row.density_ratio < 1.5

    def test_render(self):
        rows = run_table2(["dblp"], scale=0.0005, seed=1)
        text = render_table2(rows)
        assert "Table 2" in text
        assert "dblp" in text


@pytest.mark.integration
class TestFigure2:
    def test_curve_shape(self, graph):
        result = run_figure2(
            graph,
            dataset="dblp",
            alphas=(0.25, 4.0, 16.0),
            sample_nodes=30,
            runs=1,
            seed=3,
        )
        curve = result.curve()
        assert [alpha for alpha, *_ in curve] == [0.25, 4.0, 16.0]
        rates = [rate for _a, rate, *_ in curve]
        # Intersection fraction grows with alpha.
        assert rates[0] <= rates[1] + 0.05
        assert rates[1] <= rates[2] + 0.05
        sizes = [size for *_x, size in curve]
        assert sizes[0] < sizes[2]

    def test_boundary_cdf_collected_at_alpha_4(self, graph):
        result = run_figure2(
            graph,
            dataset="dblp",
            alphas=(4.0,),
            sample_nodes=25,
            runs=1,
            seed=4,
        )
        cdf = result.boundary_cdf()
        assert cdf
        xs, ys = zip(*cdf)
        assert ys[-1] == pytest.approx(1.0)
        assert all(0 <= x <= 1 for x in xs)

    def test_render(self, graph):
        result = run_figure2(
            graph, dataset="dblp", alphas=(4.0,), sample_nodes=20, runs=1, seed=5
        )
        text = render_figure2([result])
        assert "Figure 2" in text


@pytest.mark.integration
class TestTable3:
    def test_row_sanity(self, graph):
        row = run_table3_for_graph(
            graph,
            dataset="dblp",
            seed=6,
            sample_nodes=20,
            bfs_pairs=4,
            bidirectional_pairs=10,
        )
        assert row.n == graph.n
        assert row.avg_probes > 0
        assert row.worst_probes >= row.avg_probes
        assert row.our_time_ms > 0
        assert row.answered_fraction > 0.5
        # The headline shape: ours beats both baselines.
        assert row.speedup_vs_bfs > 1
        assert row.speedup_vs_bidirectional > 1

    def test_render(self, graph):
        row = run_table3_for_graph(
            graph, dataset="dblp", seed=7, sample_nodes=16,
            bfs_pairs=3, bidirectional_pairs=8,
        )
        text = render_table3([row])
        assert "Table 3" in text
        assert "speed-up" in text


@pytest.mark.integration
class TestMemoryTable:
    def test_row_sanity(self, graph):
        row = run_memory_for_graph(graph, dataset="dblp", seed=8)
        assert row.entries_per_node > 0
        assert row.apsp_ratio_paper > 1
        assert row.apsp_ratio_total <= row.apsp_ratio_paper
        assert row.model_bytes > 0

    def test_render(self, graph):
        row = run_memory_for_graph(graph, dataset="dblp", seed=9)
        text = render_memory_table([row])
        assert "Memory accounting" in text


@pytest.mark.integration
class TestTradeoff:
    def test_alpha_sweep_monotone_accuracy(self, graph):
        rows = run_tradeoff(
            graph, alphas=(0.25, 4.0), floors=(0.0,), seed=10, sample_nodes=16
        )
        assert len(rows) == 2
        low, high = rows
        assert low.alpha == 0.25 and high.alpha == 4.0
        assert high.answered_fraction >= low.answered_fraction - 0.05
        assert high.entries_per_node > low.entries_per_node

    def test_floor_improves_accuracy(self, graph):
        rows = run_tradeoff(
            graph, alphas=(1.0,), floors=(0.0, 1.0), seed=11, sample_nodes=16
        )
        plain, floored = rows
        assert floored.answered_fraction >= plain.answered_fraction - 0.02

    def test_render(self, graph):
        rows = run_tradeoff(graph, alphas=(4.0,), floors=(0.0,), seed=12, sample_nodes=10)
        assert "trade-off" in render_tradeoff(rows, dataset="dblp")
