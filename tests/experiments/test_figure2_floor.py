"""Figure 2 driver under the floor extension.

The floor is the lever EXPERIMENTS.md uses to explain the gap between
our synthetic intersection rates and the paper's 99.9 %; this test pins
the mechanism: with the floor on, the measured intersection fraction at
alpha = 4 rises, and mean vicinity sizes respect the floor.
"""

import numpy as np
import pytest

from repro.datasets.social import generate
from repro.experiments.figure2 import run_figure2


@pytest.fixture(scope="module")
def graph():
    return generate("livejournal", scale=0.0006, seed=42)


@pytest.mark.integration
def test_floor_raises_intersection_fraction(graph):
    plain = run_figure2(
        graph, dataset="lj", alphas=(4.0,), sample_nodes=32, runs=1, seed=9
    )
    floored = run_figure2(
        graph,
        dataset="lj",
        alphas=(4.0,),
        sample_nodes=32,
        runs=1,
        seed=9,
        vicinity_floor=1.0,
    )
    plain_rate = plain.curve()[0][1]
    floored_rate = floored.curve()[0][1]
    assert floored_rate >= plain_rate
    assert floored_rate > 0.9


@pytest.mark.integration
def test_floor_respects_minimum_size(graph):
    floored = run_figure2(
        graph,
        dataset="lj",
        alphas=(4.0,),
        sample_nodes=24,
        runs=1,
        seed=11,
        vicinity_floor=0.5,
    )
    target = 0.5 * 4.0 * np.sqrt(graph.n)
    mean_size = floored.curve()[0][3]
    assert mean_size >= target


@pytest.mark.integration
def test_multiple_runs_average(graph):
    result = run_figure2(
        graph, dataset="lj", alphas=(1.0, 4.0), sample_nodes=16, runs=3, seed=13
    )
    # 3 runs x 2 alphas = 6 points collected.
    assert len(result.points) == 6
    curve = result.curve()
    assert len(curve) == 2  # aggregated per alpha
