"""Rendering helpers."""

from repro.experiments.reporting import render_series, render_table


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table(
            ["name", "value"],
            [("alpha", 1), ("beta", 22222)],
            title="Demo",
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[2]
        assert "22,222" in text

    def test_float_formatting(self):
        text = render_table(["x"], [(0.12345,), (1234.5,)])
        assert "0.1234" in text or "0.1235" in text
        assert "1,234" in text or "1,235" in text

    def test_nan_rendered_as_dash(self):
        text = render_table(["x"], [(float("nan"),)])
        assert "-" in text.splitlines()[-1]

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text and "b" in text

    def test_series_is_table(self):
        text = render_series("alpha", ["rate"], [("4", "0.99")])
        assert "alpha" in text and "rate" in text
