"""Approximate comparators: upper-bound property and error behaviour."""

import numpy as np
import pytest

from repro.baselines.apsp import ApspOracle
from repro.baselines.landmark_estimate import LandmarkEstimateOracle
from repro.baselines.sketch import SketchOracle
from repro.exceptions import IndexBuildError
from repro.graph.builder import graph_from_edges
from repro.graph.traversal.bfs import bfs_distances

from tests.conftest import random_connected_graph, random_graph


@pytest.fixture(scope="module")
def graph():
    return random_connected_graph(200, 520, seed=101)


@pytest.fixture(scope="module")
def truth(graph):
    return {s: bfs_distances(graph, s) for s in range(0, graph.n, 13)}


class TestApsp:
    def test_exact(self, graph, truth):
        oracle = ApspOracle(graph)
        for s, dist in truth.items():
            for t in range(0, graph.n, 7):
                expected = None if dist[t] < 0 else int(dist[t])
                assert oracle.distance(s, t) == expected

    def test_disconnected(self):
        g = graph_from_edges([(0, 1)], n=3)
        assert ApspOracle(g).distance(0, 2) is None

    def test_memory_accessors(self, graph):
        oracle = ApspOracle(graph)
        assert oracle.entries == graph.n * graph.n
        assert oracle.nbytes == graph.n * graph.n * 2

    def test_size_guard(self, monkeypatch):
        import repro.baselines.apsp as apsp_module

        g = random_graph(30, 60, seed=2)
        monkeypatch.setattr(apsp_module, "MAX_NODES", 10)
        with pytest.raises(IndexBuildError, match="refusing"):
            apsp_module.ApspOracle(g)

    def test_weighted_rejected(self):
        g = random_graph(20, 50, seed=1, weighted=True)
        with pytest.raises(IndexBuildError):
            ApspOracle(g)


class TestLandmarkEstimate:
    def test_upper_bound_property(self, graph, truth):
        oracle = LandmarkEstimateOracle(graph, num_landmarks=12, rng=1)
        for s, dist in truth.items():
            for t in range(0, graph.n, 5):
                estimate = oracle.distance(s, t)
                if dist[t] < 0:
                    continue
                assert estimate is not None
                assert estimate >= dist[t]

    def test_exact_when_endpoint_is_landmark(self, graph, truth):
        oracle = LandmarkEstimateOracle(graph, num_landmarks=8, strategy="degree")
        landmark = int(oracle.landmarks[0])
        dist = bfs_distances(graph, landmark)
        for t in range(0, graph.n, 9):
            if dist[t] >= 0:
                assert oracle.distance(landmark, t) == int(dist[t])

    def test_more_landmarks_tighter(self, graph, truth):
        # Degree strategy takes the top-k prefix, so the landmark sets
        # nest and estimates can only tighten.
        few = LandmarkEstimateOracle(graph, num_landmarks=2, strategy="degree")
        many = LandmarkEstimateOracle(graph, num_landmarks=32, strategy="degree")
        worse = 0
        for s, dist in truth.items():
            for t in range(0, graph.n, 11):
                if dist[t] < 0:
                    continue
                a = few.distance(s, t)
                b = many.distance(s, t)
                if a is not None and b is not None and b > a:
                    worse += 1
        assert worse == 0  # superset of landmarks can only tighten

    def test_identical(self, graph):
        oracle = LandmarkEstimateOracle(graph, num_landmarks=4)
        assert oracle.distance(3, 3) == 0

    def test_entries(self, graph):
        oracle = LandmarkEstimateOracle(graph, num_landmarks=5)
        assert oracle.entries == 5 * graph.n

    def test_invalid_args(self, graph):
        with pytest.raises(IndexBuildError):
            LandmarkEstimateOracle(graph, num_landmarks=0)
        with pytest.raises(IndexBuildError):
            LandmarkEstimateOracle(graph, strategy="psychic")


class TestSketch:
    def test_upper_bound_property(self, graph, truth):
        oracle = SketchOracle(graph, repetitions=2, rng=2)
        for s, dist in truth.items():
            for t in range(0, graph.n, 5):
                estimate = oracle.distance(s, t)
                if estimate is None:
                    continue
                assert dist[t] >= 0
                assert estimate >= dist[t]

    def test_mostly_answerable_on_connected(self, graph):
        oracle = SketchOracle(graph, repetitions=2, rng=3)
        rng = np.random.default_rng(4)
        answered = 0
        for _ in range(200):
            s, t = (int(x) for x in rng.integers(0, graph.n, 2))
            if oracle.distance(s, t) is not None:
                answered += 1
        # The size-1 seed set gives every node a shared top seed, so
        # coverage on a connected graph should be total.
        assert answered == 200

    def test_identical(self, graph):
        oracle = SketchOracle(graph, repetitions=1, rng=5)
        assert oracle.distance(7, 7) == 0

    def test_entries_scale_with_repetitions(self, graph):
        one = SketchOracle(graph, repetitions=1, rng=6)
        three = SketchOracle(graph, repetitions=3, rng=6)
        assert three.entries > one.entries

    def test_invalid(self, graph):
        with pytest.raises(IndexBuildError):
            SketchOracle(graph, repetitions=0)
