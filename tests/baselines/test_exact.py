"""Exact baselines: correctness and instrumentation."""

import numpy as np
import pytest

from repro.baselines.exact import (
    AltBaseline,
    BFSBaseline,
    BidirectionalBaseline,
    BidirectionalDijkstraBaseline,
    DijkstraBaseline,
)
from repro.graph.builder import graph_from_edges
from repro.graph.traversal.bfs import bfs_distances
from repro.graph.traversal.dijkstra import dijkstra_distances

from tests.conftest import random_connected_graph, random_graph


@pytest.fixture(scope="module")
def unweighted():
    return random_connected_graph(150, 420, seed=91)


@pytest.fixture(scope="module")
def weighted():
    return random_connected_graph(120, 330, seed=92, weighted=True)


class TestUnweightedBaselines:
    @pytest.mark.parametrize("engine_cls", [BFSBaseline, BidirectionalBaseline])
    def test_exact(self, engine_cls, unweighted):
        engine = engine_cls(unweighted)
        truth = bfs_distances(unweighted, 0)
        for t in range(0, unweighted.n, 3):
            expected = None if truth[t] < 0 else int(truth[t])
            assert engine.distance(0, t) == expected

    def test_disconnected(self):
        g = graph_from_edges([(0, 1)], n=3)
        assert BFSBaseline(g).distance(0, 2) is None
        assert BidirectionalBaseline(g).distance(0, 2) is None

    def test_counters_grow(self, unweighted):
        engine = BFSBaseline(unweighted)
        engine.distance(0, unweighted.n - 1)
        assert engine.counters.queries == 1
        assert engine.counters.edges_scanned > 0
        assert engine.counters.mean_edges > 0

    def test_bidirectional_scans_fewer_edges(self, unweighted):
        bfs = BFSBaseline(unweighted)
        bidi = BidirectionalBaseline(unweighted)
        rng = np.random.default_rng(1)
        for _ in range(40):
            s, t = (int(x) for x in rng.integers(0, unweighted.n, 2))
            bfs.distance(s, t)
            bidi.distance(s, t)
        assert bidi.counters.edges_scanned < bfs.counters.edges_scanned


class TestWeightedBaselines:
    @pytest.mark.parametrize(
        "engine_cls", [DijkstraBaseline, BidirectionalDijkstraBaseline]
    )
    def test_exact(self, engine_cls, weighted):
        engine = engine_cls(weighted)
        truth = dijkstra_distances(weighted, 0)
        for t in range(0, weighted.n, 3):
            got = engine.distance(0, t)
            if truth[t] == np.inf:
                assert got is None
            else:
                assert got == pytest.approx(truth[t])

    def test_identical(self, weighted):
        assert DijkstraBaseline(weighted).distance(4, 4) == 0.0
        assert BidirectionalDijkstraBaseline(weighted).distance(4, 4) == 0.0


class TestAlt:
    def test_exact_on_unweighted(self, unweighted):
        engine = AltBaseline(unweighted, num_landmarks=6, seed=1)
        truth = bfs_distances(unweighted, 5)
        for t in range(0, unweighted.n, 4):
            got = engine.distance(5, t)
            if truth[t] < 0:
                assert got is None
            else:
                assert got == pytest.approx(float(truth[t]))

    def test_exact_on_weighted(self, weighted):
        # On weighted graphs the landmark vectors come from Dijkstra,
        # so triangle-inequality bounds stay admissible.
        engine = AltBaseline(weighted, num_landmarks=4, seed=2)
        truth = dijkstra_distances(weighted, 0)
        for t in range(0, weighted.n, 5):
            got = engine.distance(0, t)
            if truth[t] == np.inf:
                assert got is None
            else:
                assert got == pytest.approx(truth[t])

    def test_more_landmarks_never_hurt_exactness(self, unweighted):
        truth = bfs_distances(unweighted, 1)
        for k in (1, 3, 8):
            engine = AltBaseline(unweighted, num_landmarks=k, seed=3)
            for t in range(0, unweighted.n, 17):
                got = engine.distance(1, t)
                expected = None if truth[t] < 0 else float(truth[t])
                assert got == expected
