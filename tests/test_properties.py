"""Property-based tests (hypothesis) for the paper's core claims.

These machine-check, over arbitrary random graphs and landmark sets:

* **Theorem 1** — whenever two vicinities intersect, the minimum of
  ``d(s, w) + d(w, t)`` over the intersection equals ``d(s, t)``
  (unweighted graphs; any per-node radius, covering the floor
  extension);
* **Lemma 1** — the boundary-restricted scan finds the same minimum;
* **Definition 1 characterisation** — ``Gamma(u) = {v : d(u,v) <= r(u)}``
  on unweighted graphs;
* **oracle exactness** — every produced distance matches BFS, and every
  produced path is a real shortest path;
* **weighted upper bound** — weighted vicinity answers never
  underestimate;
* **builder canonicalisation** — CSR invariants survive arbitrary edge
  lists.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.config import OracleConfig
from repro.core.index import VicinityIndex
from repro.core.intersect import run_kernel
from repro.core.landmarks import landmark_set_from_ids
from repro.core.oracle import VicinityOracle
from repro.graph.builder import graph_from_arrays
from repro.graph.components import largest_component
from repro.graph.traversal.bfs import bfs_distance, bfs_distances
from repro.graph.traversal.bounded import truncated_bfs_ball
from repro.graph.traversal.dijkstra import dijkstra_distances


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def connected_graphs(draw, max_nodes=28, weighted=False):
    """A connected graph (largest component of a random multigraph)."""
    n = draw(st.integers(min_value=3, max_value=max_nodes))
    m = draw(st.integers(min_value=n, max_value=4 * n))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    weights = rng.uniform(0.25, 3.0, m) if weighted else None
    graph = graph_from_arrays(src, dst, n=n, weights=weights)
    graph, _ = largest_component(graph)
    return graph


@st.composite
def graphs_with_landmarks(draw, weighted=False):
    """A connected graph plus a non-empty landmark subset."""
    graph = draw(connected_graphs(weighted=weighted))
    k = draw(st.integers(min_value=1, max_value=max(1, graph.n // 3)))
    ids = draw(
        st.lists(
            st.integers(min_value=0, max_value=graph.n - 1),
            min_size=k,
            max_size=k,
            unique=True,
        )
    )
    return graph, landmark_set_from_ids(graph, ids, alpha=4.0)


# ----------------------------------------------------------------------
# Definition 1 characterisation
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(graphs_with_landmarks())
def test_gamma_equals_radius_ball(case):
    graph, landmarks = case
    flags = landmarks.is_landmark
    for u in range(graph.n):
        if flags[u]:
            continue
        ball = truncated_bfs_ball(graph, u, flags)
        dist = bfs_distances(graph, u)
        assert ball.radius == min(
            int(dist[l]) for l in landmarks.ids.tolist() if dist[l] >= 0
        )
        expected = {v for v in range(graph.n) if 0 <= dist[v] <= ball.radius}
        assert set(ball.gamma) == expected


# ----------------------------------------------------------------------
# Theorem 1 + Lemma 1
# ----------------------------------------------------------------------
def _build_index(graph, landmarks, floor=0.0):
    config = OracleConfig(
        alpha=4.0, probability_scale=1.0, fallback="none", vicinity_floor=floor
    )
    return VicinityIndex.from_landmarks(graph, config, landmarks)


@settings(max_examples=40, deadline=None)
@given(graphs_with_landmarks(), st.sampled_from([0.0, 0.5]))
def test_theorem_1_intersection_minimum_is_exact(case, floor):
    graph, landmarks = case
    index = _build_index(graph, landmarks, floor=floor)
    flags = landmarks.is_landmark
    for s in range(graph.n):
        if flags[s]:
            continue
        vic_s = index.vicinity(s)
        dist_s = bfs_distances(graph, s)
        for t in range(s + 1, graph.n):
            if flags[t]:
                continue
            vic_t = index.vicinity(t)
            common = vic_s.members & vic_t.members
            if not common:
                continue
            best = min(vic_s.dist[w] + vic_t.dist[w] for w in common)
            assert best == dist_s[t], (s, t)


@settings(max_examples=40, deadline=None)
@given(graphs_with_landmarks())
def test_lemma_1_boundary_scan_is_sufficient(case):
    graph, landmarks = case
    index = _build_index(graph, landmarks)
    flags = landmarks.is_landmark
    for s in range(graph.n):
        if flags[s]:
            continue
        vic_s = index.vicinity(s)
        for t in range(s + 1, graph.n):
            if flags[t]:
                continue
            vic_t = index.vicinity(t)
            # Lemma 1's precondition: neither endpoint inside the other.
            if t in vic_s.members or s in vic_t.members:
                continue
            full_best, _, _ = run_kernel("full-source", vic_s, vic_t)
            boundary_best, _, _ = run_kernel("boundary-source", vic_s, vic_t)
            assert boundary_best == full_best, (s, t)


# ----------------------------------------------------------------------
# Oracle end-to-end exactness
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(
    connected_graphs(),
    st.integers(min_value=0, max_value=2**31 - 1),
    st.sampled_from(["none", "bidirectional"]),
)
def test_oracle_distance_matches_bfs(graph, seed, fallback):
    config = OracleConfig(alpha=2.0, seed=seed, fallback=fallback)
    oracle = VicinityOracle.build(graph, config=config)
    for s in range(0, graph.n, max(1, graph.n // 6)):
        truth = bfs_distances(graph, s)
        for t in range(graph.n):
            result = oracle.query(s, t)
            if result.distance is not None:
                assert result.distance == truth[t]
            elif fallback == "bidirectional":
                assert truth[t] < 0  # only disconnection may go unanswered


@settings(max_examples=25, deadline=None)
@given(connected_graphs(), st.integers(min_value=0, max_value=2**31 - 1))
def test_oracle_paths_are_shortest_walks(graph, seed):
    config = OracleConfig(alpha=2.0, seed=seed, fallback="bidirectional")
    oracle = VicinityOracle.build(graph, config=config)
    rng = np.random.default_rng(seed)
    for _ in range(15):
        s, t = (int(x) for x in rng.integers(0, graph.n, 2))
        result = oracle.query(s, t, with_path=True)
        if result.path is None:
            continue
        assert result.path[0] == s and result.path[-1] == t
        assert len(result.path) - 1 == result.distance
        for a, b in zip(result.path, result.path[1:]):
            assert graph.has_edge(a, b)
        assert result.distance == bfs_distance(graph, s, t)


# ----------------------------------------------------------------------
# Weighted graphs: the surviving guarantee
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(graphs_with_landmarks(weighted=True))
def test_weighted_intersection_never_underestimates(case):
    graph, landmarks = case
    config = OracleConfig(alpha=4.0, probability_scale=1.0, fallback="none")
    index = VicinityIndex.from_landmarks(graph, config, landmarks)
    oracle = VicinityOracle(index)
    for s in range(0, graph.n, max(1, graph.n // 5)):
        truth = dijkstra_distances(graph, s)
        for t in range(graph.n):
            result = oracle.query(s, t)
            if result.distance is not None:
                assert result.distance >= truth[t] - 1e-9


# ----------------------------------------------------------------------
# Builder canonicalisation
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=1, max_value=40),
    st.lists(st.tuples(st.integers(0, 39), st.integers(0, 39)), max_size=120),
)
def test_builder_invariants(n, edges):
    edges = [(u % n, v % n) for u, v in edges]
    graph = graph_from_arrays(
        np.asarray([u for u, _ in edges], dtype=np.int64),
        np.asarray([v for _, v in edges], dtype=np.int64),
        n=n,
    )
    graph.validate()  # symmetry, sortedness, no loops, no duplicates
    simple = {(min(u, v), max(u, v)) for u, v in edges if u != v}
    assert graph.num_edges == len(simple)


@settings(max_examples=40, deadline=None)
@given(connected_graphs(weighted=True))
def test_weighted_ball_distances_are_true_distances(graph):
    from repro.graph.traversal.bounded import truncated_dijkstra_ball

    flags = bytearray(graph.n)
    flags[graph.n - 1] = 1
    source = 0
    if flags[source]:
        return
    ball = truncated_dijkstra_ball(graph, source, flags)
    truth = dijkstra_distances(graph, source)
    for v, d in ball.dist.items():
        assert abs(d - truth[v]) < 1e-9
