"""Synthetic-generator tests: parameter validation and structural laws."""

import numpy as np
import pytest

from repro.datasets.barabasi_albert import barabasi_albert_graph
from repro.datasets.chung_lu import (
    chung_lu_graph,
    directed_chung_lu_graph,
    powerlaw_weights,
)
from repro.datasets.erdos_renyi import erdos_renyi_graph
from repro.datasets.forest_fire import forest_fire_graph
from repro.datasets.rmat import rmat_graph
from repro.datasets.watts_strogatz import watts_strogatz_graph
from repro.exceptions import DatasetError
from repro.graph.degree import average_degree, max_degree


class TestPowerlawWeights:
    def test_mean_matches_target(self):
        w = powerlaw_weights(5000, exponent=2.5, mean_degree=12, rng=0)
        assert np.mean(w) == pytest.approx(12, rel=0.05)

    def test_truncation_respected(self):
        w = powerlaw_weights(2000, exponent=2.2, mean_degree=10, max_degree=50, rng=1)
        assert w.max() <= 50 + 1e-9

    def test_heavier_tail_for_smaller_exponent(self):
        light = powerlaw_weights(5000, exponent=3.2, mean_degree=10, rng=2)
        heavy = powerlaw_weights(5000, exponent=2.1, mean_degree=10, rng=2)
        # Both may hit the truncation cap; the body of the tail is the
        # robust signal.
        assert np.percentile(heavy, 99) > 1.5 * np.percentile(light, 99)

    def test_deterministic(self):
        a = powerlaw_weights(100, exponent=2.5, mean_degree=5, rng=7)
        b = powerlaw_weights(100, exponent=2.5, mean_degree=5, rng=7)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n": 0},
            {"n": 10, "exponent": 1.0},
            {"n": 10, "mean_degree": 0},
            {"n": 10, "mean_degree": 20},
        ],
    )
    def test_invalid_args(self, kwargs):
        args = {"n": 10, "exponent": 2.5, "mean_degree": 3.0}
        args.update(kwargs)
        with pytest.raises(DatasetError):
            powerlaw_weights(args.pop("n"), **args)


class TestChungLu:
    def test_edge_count_close_to_half_weight_sum(self):
        w = powerlaw_weights(3000, exponent=2.5, mean_degree=10, rng=3)
        g = chung_lu_graph(w, rng=4)
        target = w.sum() / 2
        assert 0.75 * target < g.num_edges <= target

    def test_degrees_correlate_with_weights(self):
        w = powerlaw_weights(3000, exponent=2.5, mean_degree=12, rng=5)
        g = chung_lu_graph(w, rng=6)
        corr = np.corrcoef(w, g.degrees())[0, 1]
        assert corr > 0.8

    def test_invalid_weights(self):
        with pytest.raises(DatasetError):
            chung_lu_graph(np.array([]))
        with pytest.raises(DatasetError):
            chung_lu_graph(np.array([1.0, -1.0]))

    def test_deterministic(self):
        w = powerlaw_weights(500, exponent=2.5, mean_degree=8, rng=7)
        assert chung_lu_graph(w, rng=8) == chung_lu_graph(w, rng=8)


class TestDirectedChungLu:
    def test_reciprocity_extremes(self):
        w = powerlaw_weights(1500, exponent=2.5, mean_degree=10, rng=9)
        mutual = directed_chung_lu_graph(w, reciprocity=1.0, rng=10)
        # Fully reciprocal: arcs ~ 2x distinct pairs.
        und = mutual.as_undirected()
        assert mutual.num_arcs == pytest.approx(2 * und.num_edges, rel=0.01)
        oneway = directed_chung_lu_graph(w, reciprocity=0.0, rng=11)
        und1 = oneway.as_undirected()
        # Almost no mutual pairs (random collisions only).
        assert oneway.num_arcs <= 1.05 * und1.num_edges

    def test_invalid_reciprocity(self):
        w = powerlaw_weights(100, exponent=2.5, mean_degree=5, rng=12)
        with pytest.raises(DatasetError):
            directed_chung_lu_graph(w, reciprocity=1.5)


class TestBarabasiAlbert:
    def test_edge_count(self):
        g = barabasi_albert_graph(500, 3, rng=1)
        # k seed edges + k per arrival.
        assert g.num_edges <= 3 + 3 * (500 - 4)
        assert g.num_edges >= 3 * (500 - 4) * 0.95

    def test_hub_emerges(self):
        g = barabasi_albert_graph(800, 2, rng=2)
        assert max_degree(g) > 10 * average_degree(g) / 2

    def test_connected(self):
        from repro.graph.components import is_connected

        assert is_connected(barabasi_albert_graph(300, 2, rng=3))

    def test_invalid(self):
        with pytest.raises(DatasetError):
            barabasi_albert_graph(5, 0)
        with pytest.raises(DatasetError):
            barabasi_albert_graph(3, 3)


class TestWattsStrogatz:
    def test_no_rewiring_is_lattice(self):
        g = watts_strogatz_graph(50, 3, 0.0, rng=1)
        assert g.num_edges == 150
        assert all(g.degree(u) == 6 for u in range(50))

    def test_rewiring_changes_edges(self):
        lattice = watts_strogatz_graph(100, 2, 0.0, rng=2)
        rewired = watts_strogatz_graph(100, 2, 0.5, rng=2)
        assert rewired != lattice

    def test_invalid(self):
        with pytest.raises(DatasetError):
            watts_strogatz_graph(5, 3, 0.1)
        with pytest.raises(DatasetError):
            watts_strogatz_graph(50, 2, 1.5)


class TestErdosRenyi:
    def test_edge_count_close(self):
        g = erdos_renyi_graph(500, 2000, rng=1)
        assert 1800 <= g.num_edges <= 2000

    def test_too_many_edges_rejected(self):
        with pytest.raises(DatasetError):
            erdos_renyi_graph(4, 100)

    def test_degenerate(self):
        with pytest.raises(DatasetError):
            erdos_renyi_graph(1, 0)


class TestRmat:
    def test_size(self):
        g = rmat_graph(8, edge_factor=8, rng=1)
        assert g.n == 256
        assert g.num_edges <= 256 * 8

    def test_skew(self):
        g = rmat_graph(10, edge_factor=8, rng=2)
        degrees = np.sort(g.degrees())[::-1]
        top_share = degrees[: g.n // 100].sum() / degrees.sum()
        assert top_share > 0.05  # heavy head

    def test_invalid(self):
        with pytest.raises(DatasetError):
            rmat_graph(0)
        with pytest.raises(DatasetError):
            rmat_graph(5, a=0.9, b=0.2, c=0.2)


class TestForestFire:
    def test_grows_connected(self):
        from repro.graph.components import is_connected

        g = forest_fire_graph(300, 0.3, rng=1)
        assert g.n == 300
        assert is_connected(g)

    def test_higher_burn_gives_denser(self):
        sparse = forest_fire_graph(300, 0.1, rng=2)
        dense = forest_fire_graph(300, 0.45, rng=2)
        assert average_degree(dense) > average_degree(sparse)

    def test_invalid(self):
        with pytest.raises(DatasetError):
            forest_fire_graph(1, 0.3)
        with pytest.raises(DatasetError):
            forest_fire_graph(10, 1.0)
