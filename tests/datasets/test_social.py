"""Calibrated dataset registry tests (Table 2 stand-ins)."""

import pytest

from repro.datasets.social import DATASETS, available, generate, generate_directed, spec
from repro.exceptions import DatasetError
from repro.graph.components import is_connected
from repro.graph.degree import average_degree


class TestRegistry:
    def test_all_four_paper_datasets(self):
        assert available() == ["dblp", "flickr", "orkut", "livejournal"]

    def test_spec_lookup(self):
        dataset = spec("orkut")
        assert dataset.paper_nodes == 3_070_000
        assert dataset.mean_degree == pytest.approx(76.3, abs=0.5)

    def test_unknown_name(self):
        with pytest.raises(DatasetError, match="unknown dataset"):
            spec("myspace")

    def test_reciprocity_derivation(self):
        # DBLP is symmetric: arcs == undirected pairs -> reciprocity 0
        # under the (A - U) / U convention (no extra mutual arcs).
        assert spec("dblp").reciprocity == pytest.approx(0.0)
        flickr = spec("flickr")
        expected = (22_610_000 - 15_560_000) / 15_560_000
        assert flickr.reciprocity == pytest.approx(expected)

    def test_nodes_at_scale(self):
        dataset = spec("dblp")
        assert dataset.nodes_at_scale(0.01) == 7100
        assert dataset.nodes_at_scale(1e-9) == 64  # floor
        with pytest.raises(DatasetError):
            dataset.nodes_at_scale(0)
        with pytest.raises(DatasetError):
            dataset.nodes_at_scale(1.5)


class TestGeneration:
    @pytest.mark.parametrize("name", list(DATASETS))
    def test_density_calibration(self, name):
        graph = generate(name, scale=0.001, seed=42)
        target = spec(name).mean_degree
        # Largest-component extraction raises density slightly; the
        # generator itself undershoots slightly; allow 25%.
        assert average_degree(graph) == pytest.approx(target, rel=0.25)

    def test_connected_by_default(self):
        graph = generate("dblp", scale=0.002, seed=1)
        assert is_connected(graph)

    def test_unconnected_option(self):
        graph = generate("dblp", scale=0.002, seed=1, connected=False)
        # The raw Chung-Lu sample essentially always has isolated nodes.
        assert not is_connected(graph)

    def test_deterministic(self):
        a = generate("flickr", scale=0.001, seed=9)
        b = generate("flickr", scale=0.001, seed=9)
        assert a == b

    def test_directed_variant(self):
        digraph = generate_directed("flickr", scale=0.001, seed=3)
        target = spec("flickr")
        ratio = digraph.num_arcs / digraph.as_undirected().num_edges
        expected = target.paper_directed_links / target.paper_undirected_links
        assert ratio == pytest.approx(expected, rel=0.1)
