"""Utility module tests (rng, timer, formatting)."""

import time

import numpy as np
import pytest

from repro.utils.format import format_bytes, format_count, format_duration, format_ratio
from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.timer import Timer, time_callable


class TestRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_is_deterministic(self):
        assert ensure_rng(7).random() == ensure_rng(7).random()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert ensure_rng(gen) is gen

    def test_bad_type(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")

    def test_spawn_independent_streams(self):
        a, b = spawn_rng(3, streams=2)
        assert a.random() != b.random()

    def test_spawn_deterministic(self):
        a1, _ = spawn_rng(3, streams=2)
        a2, _ = spawn_rng(3, streams=2)
        assert a1.random() == a2.random()

    def test_spawn_negative(self):
        with pytest.raises(ValueError):
            spawn_rng(1, streams=-1)


class TestTimer:
    def test_accumulates(self):
        timer = Timer()
        with timer:
            time.sleep(0.002)
        with timer:
            time.sleep(0.002)
        assert timer.count == 2
        assert timer.elapsed >= 0.004
        assert timer.mean >= 0.002
        assert timer.max >= timer.mean

    def test_empty(self):
        timer = Timer()
        assert timer.mean == 0.0
        assert timer.max == 0.0

    def test_time_callable(self):
        elapsed, value = time_callable(lambda: 41 + 1)
        assert value == 42
        assert elapsed >= 0.0


class TestFormat:
    def test_duration_units(self):
        assert format_duration(2.5) == "2.500 s"
        assert format_duration(0.0025).endswith("ms")
        assert format_duration(2.5e-6).endswith("us")
        assert format_duration(3e-10).endswith("ns")

    def test_duration_negative(self):
        with pytest.raises(ValueError):
            format_duration(-1)

    def test_bytes_units(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2.00 KiB"
        assert "MiB" in format_bytes(5 * 1024**2)
        assert "TiB" in format_bytes(3 * 1024**4)

    def test_ratio_precision(self):
        assert format_ratio(431.2) == "431x"
        assert format_ratio(43.12) == "43.1x"
        assert format_ratio(4.312) == "4.31x"

    def test_count(self):
        assert format_count(68990000) == "68,990,000"
        assert format_count(12.5) == "12.50"
