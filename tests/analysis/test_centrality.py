"""Closeness-centrality estimation tests."""

import networkx as nx
import numpy as np
import pytest

from repro.analysis.centrality import estimate_closeness, rank_by_closeness
from repro.baselines.apsp import ApspOracle
from repro.exceptions import QueryError
from repro.graph.builder import path_graph, star_graph

from tests.conftest import random_connected_graph


class TestEstimateCloseness:
    def test_star_center_most_central(self):
        g = star_graph(20)
        oracle = ApspOracle(g)
        center = estimate_closeness(oracle, g, 0, num_targets=19, rng=1)
        leaf = estimate_closeness(oracle, g, 5, num_targets=19, rng=1)
        assert center > leaf
        assert center == pytest.approx(1.0)  # all targets at distance 1

    def test_matches_networkx_on_full_sample(self):
        g = random_connected_graph(80, 220, seed=131)
        oracle = ApspOracle(g)
        nxg = nx.Graph()
        nxg.add_nodes_from(range(g.n))
        nxg.add_edges_from(g.edges())
        expected = nx.closeness_centrality(nxg)
        for node in range(0, g.n, 9):
            ours = estimate_closeness(oracle, g, node, num_targets=g.n, rng=2)
            # Sampled estimator with the full population = exact
            # inverse-mean; NetworkX additionally multiplies by the
            # reachable fraction, which is 1 on a connected graph.
            assert ours == pytest.approx(expected[node], rel=0.02)

    def test_isolated_node_zero(self):
        from repro.graph.builder import graph_from_edges

        g = graph_from_edges([(0, 1)], n=3)
        oracle = ApspOracle(g)
        assert estimate_closeness(oracle, g, 2, num_targets=2, rng=3) == 0.0


class TestRanking:
    def test_star_ranking(self):
        g = star_graph(15)
        oracle = ApspOracle(g)
        ranked = rank_by_closeness(oracle, g, num_targets=14, rng=4)
        assert ranked[0][0] == 0  # the hub wins

    def test_subset_ranking(self):
        g = path_graph(9)
        oracle = ApspOracle(g)
        ranked = rank_by_closeness(oracle, g, nodes=[0, 4, 8], num_targets=8, rng=5)
        assert ranked[0][0] == 4  # the middle of a path is most central

    def test_empty_rejected(self):
        g = path_graph(3)
        with pytest.raises(QueryError):
            rank_by_closeness(ApspOracle(g), g, nodes=[])
