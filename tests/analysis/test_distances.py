"""Distance-distribution analysis tests."""

import numpy as np
import pytest

from repro.analysis.distances import (
    DistanceDistribution,
    estimate_distance_distribution,
    mean_separation,
)
from repro.baselines.apsp import ApspOracle
from repro.core.config import OracleConfig
from repro.core.oracle import VicinityOracle
from repro.exceptions import QueryError
from repro.experiments.workloads import sample_pair_workload
from repro.graph.builder import graph_from_edges, path_graph

from tests.conftest import random_connected_graph


@pytest.fixture(scope="module")
def graph():
    return random_connected_graph(250, 700, seed=121)


@pytest.fixture(scope="module")
def oracle(graph):
    return VicinityOracle.build(
        graph, config=OracleConfig(alpha=4.0, seed=3, fallback="bidirectional")
    )


class TestDistributionObject:
    def test_record_and_moments(self):
        dist = DistanceDistribution()
        for d in (1, 2, 2, 3, None):
            dist.record(d)
        assert dist.answered == 4
        assert dist.unanswered == 1
        assert dist.coverage == pytest.approx(0.8)
        assert dist.mean == pytest.approx(2.0)
        assert dist.median == 2.0
        assert dist.p99 == 3.0

    def test_empty(self):
        dist = DistanceDistribution()
        assert dist.mean == 0.0
        assert dist.median == 0.0
        assert dist.p99 == 0.0
        assert dist.pmf() == {}
        assert dist.coverage == 0.0

    def test_pmf_sums_to_one(self):
        dist = DistanceDistribution()
        for d in (1, 1, 2, 5):
            dist.record(d)
        assert sum(dist.pmf().values()) == pytest.approx(1.0)

    def test_total_variation_zero_for_identical(self):
        a = DistanceDistribution()
        b = DistanceDistribution()
        for d in (1, 2, 3):
            a.record(d)
            b.record(d)
        assert a.total_variation(b) == pytest.approx(0.0)

    def test_total_variation_disjoint(self):
        a = DistanceDistribution()
        b = DistanceDistribution()
        a.record(1)
        b.record(9)
        assert a.total_variation(b) == pytest.approx(1.0)


class TestEstimation:
    def test_oracle_matches_exact_distribution(self, graph, oracle):
        workload = sample_pair_workload(graph, 40, rng=5)
        ours = estimate_distance_distribution(oracle, graph, workload=workload)
        exact = estimate_distance_distribution(
            ApspOracle(graph), graph, workload=workload
        )
        # The oracle with fallback answers everything, exactly.
        assert ours.coverage == pytest.approx(1.0)
        assert ours.total_variation(exact) == pytest.approx(0.0)

    def test_path_graph_distribution(self):
        g = path_graph(6)
        dist = estimate_distance_distribution(
            ApspOracle(g), g, num_nodes=6, rng=1
        )
        # All 15 pairs of the path; distances 1..5.
        assert dist.answered == 15
        assert dist.histogram[1] == 5
        assert dist.histogram[5] == 1

    def test_mean_separation(self, graph, oracle):
        separation = mean_separation(oracle, graph, num_nodes=30, rng=7)
        assert 1.0 < separation < 10.0

    def test_mean_separation_unanswerable(self):
        g = graph_from_edges([], n=4)  # no edges at all

        class NoAnswer:
            def distance(self, s, t):
                return None

        with pytest.raises(QueryError):
            mean_separation(NoAnswer(), g, num_nodes=3, rng=1)
