"""Shared fixtures and graph factories for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import OracleConfig
from repro.core.oracle import VicinityOracle
from repro.datasets.social import generate
from repro.graph.builder import (
    complete_graph,
    cycle_graph,
    graph_from_arrays,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graph.components import largest_component


def random_graph(n: int, m: int, seed: int = 0, *, weighted: bool = False):
    """A reproducible random multigraph input canonicalised to CSR."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    weights = rng.uniform(0.5, 4.0, size=m) if weighted else None
    return graph_from_arrays(src, dst, n=n, weights=weights)


def random_connected_graph(n: int, m: int, seed: int = 0, *, weighted: bool = False):
    """Largest component of :func:`random_graph` (paper's setting)."""
    graph, _ = largest_component(random_graph(n, m, seed, weighted=weighted))
    return graph


@pytest.fixture(scope="session")
def social_graph():
    """A small LiveJournal stand-in shared by the heavier tests."""
    return generate("livejournal", scale=0.0004, seed=42)


@pytest.fixture(scope="session")
def social_oracle(social_graph):
    """A built oracle (paper-exact profile) on the social graph."""
    config = OracleConfig(alpha=4.0, seed=7, fallback="bidirectional")
    return VicinityOracle.build(social_graph, config=config)


@pytest.fixture(
    params=["path", "cycle", "star", "grid", "complete"], scope="module"
)
def toy_graph(request):
    """A parametrised family of deterministic toy graphs."""
    return {
        "path": path_graph(12),
        "cycle": cycle_graph(9),
        "star": star_graph(10),
        "grid": grid_graph(4, 5),
        "complete": complete_graph(7),
    }[request.param]
