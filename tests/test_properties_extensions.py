"""Property-based tests for the §5 extensions (hypothesis).

* directed Theorem-1 analogue: intersection answers on unweighted
  digraphs are exact;
* dynamic oracle: any insertion sequence leaves queries identical to a
  frozen-landmark rebuild on the final graph;
* partitioned oracle: sharding never changes a distance;
* persistence: save/load is the identity on query behaviour.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import OracleConfig
from repro.core.directed import DirectedVicinityOracle
from repro.core.dynamic import DynamicVicinityOracle
from repro.core.index import VicinityIndex
from repro.core.oracle import VicinityOracle
from repro.core.parallel import PartitionedOracle
from repro.graph.builder import digraph_from_arrays, graph_from_arrays
from repro.graph.components import largest_component
from repro.graph.traversal.bfs import bfs_distance
from repro.graph.traversal.vectorized import digraph_bfs_tree_vectorized


@st.composite
def small_digraphs(draw):
    n = draw(st.integers(min_value=4, max_value=24))
    arcs = draw(st.integers(min_value=n, max_value=4 * n))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    return digraph_from_arrays(
        rng.integers(0, n, arcs), rng.integers(0, n, arcs), n=n
    )


@st.composite
def small_graphs(draw):
    n = draw(st.integers(min_value=4, max_value=24))
    m = draw(st.integers(min_value=n, max_value=4 * n))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    graph = graph_from_arrays(rng.integers(0, n, m), rng.integers(0, n, m), n=n)
    graph, _ = largest_component(graph)
    return graph


@settings(max_examples=25, deadline=None)
@given(small_digraphs(), st.integers(min_value=0, max_value=2**31 - 1))
def test_directed_answers_are_exact(graph, seed):
    oracle = DirectedVicinityOracle.build(graph, alpha=2.0, seed=seed, fallback="none")
    for s in range(graph.n):
        truth, _ = digraph_bfs_tree_vectorized(
            graph.out_indptr, graph.out_indices, graph.n, s
        )
        for t in range(graph.n):
            result = oracle.query(s, t)
            if result.distance is not None:
                assert result.distance == int(truth[t]), (s, t, result.method)


@settings(max_examples=15, deadline=None)
@given(
    small_graphs(),
    st.integers(min_value=0, max_value=2**31 - 1),
    st.lists(
        st.tuples(st.integers(0, 23), st.integers(0, 23)), min_size=1, max_size=6
    ),
)
def test_dynamic_matches_frozen_rebuild(graph, seed, raw_edges):
    dynamic = DynamicVicinityOracle.build(graph, alpha=2.0, seed=seed)
    for a, b in raw_edges:
        u, v = a % graph.n, b % graph.n
        if u != v and not dynamic.graph.has_edge(u, v):
            dynamic.add_edge(u, v)
    static = VicinityOracle(
        VicinityIndex.from_landmarks(
            dynamic.graph, dynamic.index.config, dynamic.index.landmarks
        )
    )
    for s in range(graph.n):
        for t in range(graph.n):
            assert (
                dynamic.query(s, t).distance == static.query(s, t).distance
            ), (s, t)


@settings(max_examples=20, deadline=None)
@given(
    small_graphs(),
    st.integers(min_value=0, max_value=2**31 - 1),
    st.integers(min_value=1, max_value=6),
    st.sampled_from(["hash", "range"]),
)
def test_sharding_is_transparent(graph, seed, shards, placement):
    config = OracleConfig(alpha=2.0, seed=seed, fallback="none")
    index = VicinityIndex.build(graph, config)
    single = VicinityOracle(index)
    sharded = PartitionedOracle(index, shards, placement=placement)
    for s in range(graph.n):
        for t in range(graph.n):
            assert single.query(s, t).distance == sharded.query(s, t).distance


@settings(max_examples=12, deadline=None)
@given(small_graphs(), st.integers(min_value=0, max_value=2**31 - 1))
def test_persistence_is_identity(tmp_path_factory, graph, seed):
    from repro.io.oracle_store import load_index, save_index

    config = OracleConfig(alpha=2.0, seed=seed, fallback="none")
    index = VicinityIndex.build(graph, config)
    path = tmp_path_factory.mktemp("oracle") / "o.npz"
    save_index(index, path)
    restored = VicinityOracle(load_index(path))
    original = VicinityOracle(index)
    for s in range(graph.n):
        for t in range(graph.n):
            a = original.query(s, t)
            b = restored.query(s, t)
            assert a.distance == b.distance and a.method == b.method
