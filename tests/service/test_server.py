"""The JSON-lines front end and the self-driving benchmark."""

import io
import json

import pytest

from repro.core.config import OracleConfig
from repro.core.oracle import METHODS, VicinityOracle
from repro.service import ServiceApp, handle_request, run_bench, serve_stdio
from repro.service.server import render_bench_report

from tests.conftest import random_connected_graph


@pytest.fixture(scope="module")
def index():
    graph = random_connected_graph(240, 700, seed=31)
    oracle = VicinityOracle.build(
        graph, config=OracleConfig(alpha=4.0, seed=3, fallback="bidirectional")
    )
    return oracle.index


@pytest.fixture()
def app(index):
    service = ServiceApp.from_index(index)
    yield service
    service.close()


class TestHandleRequest:
    def test_single_query(self, app, index):
        response, keep = handle_request(app, {"s": 0, "t": 5})
        assert keep
        assert response["distance"] == VicinityOracle(index).query(0, 5).distance
        assert response["method"] in METHODS

    def test_query_with_path(self, app):
        response, _ = handle_request(app, {"s": 0, "t": 5, "path": True})
        path = response["path"]
        assert path[0] == 0 and path[-1] == 5
        assert len(path) == response["distance"] + 1

    def test_batch(self, app):
        response, keep = handle_request(app, {"pairs": [[0, 5], [5, 0], [3, 3]]})
        assert keep
        results = response["results"]
        assert len(results) == 3
        assert results[0]["distance"] == results[1]["distance"]
        assert results[2]["distance"] == 0

    def test_stats_and_reset(self, app):
        handle_request(app, {"s": 0, "t": 5})
        snapshot, _ = handle_request(app, {"cmd": "stats"})
        assert snapshot["queries"] == 1
        assert "latency" in snapshot and "batching" in snapshot
        handle_request(app, {"cmd": "reset"})
        snapshot, _ = handle_request(app, {"cmd": "stats"})
        assert snapshot["queries"] == 0
        # Reset covers every layer, not just telemetry.
        assert snapshot["batching"]["pairs_in"] == 0
        assert snapshot["cache"]["lookups"] == 0

    def test_reset_clears_shard_log(self, index):
        service = ServiceApp.from_index(index, shards=3)
        try:
            service.executor.run([(0, 5), (6, 9), (1, 8)])
            assert service.snapshot()["shards"]["messages"] >= 0
            service.reset()
            shards = service.snapshot()["shards"]
            assert shards["messages"] == 0
            assert shards["local_queries"] + shards["remote_queries"] == 0
        finally:
            service.close()

    def test_quit(self, app):
        response, keep = handle_request(app, {"cmd": "quit"})
        assert response == {"ok": True}
        assert not keep

    def test_errors(self, app, index):
        assert "error" in handle_request(app, {"cmd": "nope"})[0]
        assert "error" in handle_request(app, {"wat": 1})[0]
        assert "error" in handle_request(app, [1, 2])[0]
        response, keep = handle_request(app, {"s": 0, "t": index.n + 10})
        assert "error" in response and keep


class TestServeStdio:
    def test_loop_round_trip(self, app):
        requests = "\n".join([
            json.dumps({"s": 0, "t": 5}),
            "",                      # blank lines ignored
            "garbage",               # bad JSON answered with an error
            json.dumps({"pairs": [[1, 4]]}),
            json.dumps({"cmd": "quit"}),
            json.dumps({"s": 9, "t": 9}),   # after quit: never served
        ])
        sink = io.StringIO()
        served = serve_stdio(
            app, input_stream=io.StringIO(requests), output_stream=sink
        )
        lines = [json.loads(line) for line in sink.getvalue().splitlines()]
        assert served == 4
        assert len(lines) == 4
        assert lines[0]["distance"] is not None
        assert "error" in lines[1]
        assert lines[2]["results"][0]["s"] == 1
        assert lines[3] == {"ok": True}

    def test_eof_terminates(self, app):
        sink = io.StringIO()
        served = serve_stdio(
            app, input_stream=io.StringIO('{"s": 0, "t": 1}\n'), output_stream=sink
        )
        assert served == 1


class TestServiceApp:
    def test_snapshot_includes_all_layers(self, app):
        app.executor.run([(0, 5), (5, 0)])
        snap = app.snapshot()
        assert snap["queries"] == 2
        assert snap["cache"]["capacity"] > 0
        assert snap["batching"]["pairs_in"] == 2
        assert "shards" not in snap

    def test_cache_disabled(self, index):
        service = ServiceApp.from_index(index, cache_size=0)
        try:
            assert service.cache is None
            service.executor.run([(0, 5)])
            assert "cache" not in service.snapshot()
        finally:
            service.close()

    def test_sharded_app(self, index):
        service = ServiceApp.from_index(index, shards=3)
        try:
            results = service.executor.run([(0, 5), (6, 9)])
            assert len(results) == 2
            snap = service.snapshot()
            assert "shards" in snap
        finally:
            service.close()


class TestRunBench:
    def test_bench_report_and_acceptance_fields(self, app):
        report = run_bench(app, queries=1500, batch_size=128, seed=5)
        assert report["workload"]["queries"] == 1500
        assert report["batched"]["qps"] > 0
        assert report["single"]["qps"] > 0
        assert report["speedup"] > 0
        snapshot = report["snapshot"]
        for key in ("p50_ms", "p95_ms", "p99_ms"):
            assert key in snapshot["latency"]
        assert "hit_rate" in snapshot["cache"]
        assert snapshot["by_method"]
        text = render_bench_report(report)
        assert "speedup" in text and "p99" in text

    def test_bench_sharded_baseline_is_sharded_loop(self, index):
        """Sharded speedup must compare fallback-free against fallback-free."""
        service = ServiceApp.from_index(index, shards=2)
        try:
            report = run_bench(service, queries=300, batch_size=64, seed=5)
            assert report["single"]["mode"] == "sharded-loop"
            # Snapshot is taken before the baseline: shard traffic in it
            # reflects only the batched pass.
            shards = report["snapshot"]["shards"]
            assert shards["local_queries"] + shards["remote_queries"] <= 300
            assert "sharded-query loop" in render_bench_report(report)
        finally:
            service.close()

    def test_bench_single_machine_baseline_mode(self, app):
        report = run_bench(app, queries=200, batch_size=64, seed=5)
        assert report["single"]["mode"] == "oracle-loop"

    def test_bench_without_baseline(self, app):
        report = run_bench(app, queries=200, batch_size=64, seed=5, baseline=False)
        assert "single" not in report and "speedup" not in report

    def test_bench_validation(self, app):
        from repro.exceptions import QueryError

        with pytest.raises(QueryError):
            run_bench(app, queries=0)
