"""Unit tests for the supervision plane — no worker processes needed.

The fast half of the fault-tolerance suite: configuration validation,
the circuit-breaker state machine and restart budget (driven by an
injectable clock), failover-aware replica routing, the coordinator-side
landmark estimates, wire-frame size validation, fault-plan parsing,
and the network front end's retry-after floor.  The slow half — real
worker processes dying under injected faults — lives in
``test_faults.py``.
"""

import numpy as np
import pytest

from repro.core.config import OracleConfig
from repro.core.oracle import CHEAP_METHODS, EXPENSIVE_METHODS, METHODS, VicinityOracle
from repro.exceptions import (
    QueryError,
    SerializationError,
    WorkerDied,
    WorkerFault,
    WorkerTimeout,
)
from repro.service import (
    FaultPlan,
    ReplicaRouter,
    RequestFrame,
    ShardedService,
    SupervisorConfig,
    WorkerFaults,
    WorkerSupervisor,
    shard_estimates,
)
from repro.service.supervisor import BREAKER_CLOSED, BREAKER_HALF_OPEN, BREAKER_OPEN
from repro.service.wire import ResponseFrame

from tests.conftest import random_connected_graph


@pytest.fixture(scope="module")
def index():
    graph = random_connected_graph(180, 520, seed=23)
    oracle = VicinityOracle.build(
        graph, config=OracleConfig(alpha=4.0, seed=5, fallback="none")
    )
    return oracle.index


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestConfig:
    def test_defaults_are_sane(self):
        config = SupervisorConfig()
        assert config.deadline_s == 5.0
        assert config.retries == 3
        assert config.restart

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline_s": 0.0},
            {"deadline_s": -1.0},
            {"retries": 0},
            {"backoff_base_s": -0.1},
            {"breaker_failures": 0},
            {"max_restarts": -1},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(QueryError):
            SupervisorConfig(**kwargs)

    def test_backoff_doubles_then_caps(self):
        config = SupervisorConfig(backoff_base_s=0.01, backoff_max_s=0.05)
        assert config.backoff_s(0) == 0.0
        assert config.backoff_s(1) == pytest.approx(0.01)
        assert config.backoff_s(2) == pytest.approx(0.02)
        assert config.backoff_s(3) == pytest.approx(0.04)
        assert config.backoff_s(4) == pytest.approx(0.05)
        assert config.backoff_s(10) == pytest.approx(0.05)


class TestBreaker:
    def sup(self, clock, **kwargs):
        config = SupervisorConfig(
            breaker_failures=2, breaker_reset_s=10.0, **kwargs
        )
        return WorkerSupervisor(2, 1, config, clock=clock)

    def test_opens_after_threshold_and_half_opens_after_reset(self):
        clock = FakeClock()
        sup = self.sup(clock)
        assert sup.admit(0)
        sup.breaker_failure(0)
        assert sup.breaker_state(0) == BREAKER_CLOSED
        sup.breaker_failure(0)
        assert sup.breaker_state(0) == BREAKER_OPEN
        assert not sup.admit(0)
        assert sup.admit(1), "other shards unaffected"
        clock.advance(9.9)
        assert not sup.admit(0)
        clock.advance(0.2)
        assert sup.admit(0), "reset window elapsed: one probe admitted"
        assert sup.breaker_state(0) == BREAKER_HALF_OPEN

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        sup = self.sup(clock)
        sup.breaker_failure(0)
        sup.breaker_failure(0)
        clock.advance(11)
        assert sup.admit(0)
        sup.breaker_failure(0)
        assert sup.breaker_state(0) == BREAKER_OPEN
        assert not sup.admit(0), "straight back open, no second probe"

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        sup = self.sup(clock)
        sup.breaker_failure(0)
        sup.breaker_failure(0)
        clock.advance(11)
        assert sup.admit(0)
        sup.breaker_success(0)
        assert sup.breaker_state(0) == BREAKER_CLOSED
        assert sup.admit(0)

    def test_success_resets_failure_count(self):
        clock = FakeClock()
        sup = self.sup(clock)
        sup.breaker_failure(0)
        sup.breaker_success(0)
        sup.breaker_failure(0)
        assert sup.breaker_state(0) == BREAKER_CLOSED

    def test_opens_counted_in_snapshot(self):
        clock = FakeClock()
        sup = self.sup(clock)
        sup.breaker_failure(0)
        sup.breaker_failure(0)
        snap = sup.snapshot()
        assert snap["breaker_opens"] == 1
        assert snap["breakers"][0]["state"] == BREAKER_OPEN
        assert snap["breakers"][1]["state"] == BREAKER_CLOSED


class TestRestartBudget:
    def test_budget_exhaustion_within_window(self):
        clock = FakeClock()
        config = SupervisorConfig(max_restarts=2, restart_window_s=60.0)
        sup = WorkerSupervisor(1, 1, config, clock=clock)
        assert sup.allow_restart(0)
        sup.note_restart(0)
        assert sup.allow_restart(0)
        sup.note_restart(0)
        assert not sup.allow_restart(0), "budget spent inside the window"

    def test_budget_recovers_after_window(self):
        clock = FakeClock()
        config = SupervisorConfig(max_restarts=2, restart_window_s=60.0)
        sup = WorkerSupervisor(1, 1, config, clock=clock)
        sup.note_restart(0)
        sup.note_restart(0)
        clock.advance(61)
        assert sup.allow_restart(0), "old restarts aged out of the window"

    def test_quarantine_is_sticky(self):
        sup = WorkerSupervisor(2, 2, SupervisorConfig())
        assert not sup.is_quarantined(1)
        sup.quarantine(1)
        assert sup.is_quarantined(1)
        assert not sup.allow_restart(1)
        snap = sup.snapshot()
        assert snap["workers"][1]["quarantined"]

    def test_restart_disabled_by_config(self):
        sup = WorkerSupervisor(1, 1, SupervisorConfig(restart=False))
        assert not sup.allow_restart(0)


class TestCounters:
    def test_faults_classified_and_snapshot_totals(self):
        sup = WorkerSupervisor(2, 1, SupervisorConfig())
        sup.note_fault(0, WorkerDied(0))
        sup.note_fault(1, WorkerTimeout(1, 0.5))
        sup.note_retry()
        sup.note_failover()
        sup.note_degraded(7)
        sup.note_restart(0)
        snap = sup.snapshot()
        assert snap["worker_deaths"] == 1
        assert snap["timeouts"] == 1
        assert snap["retries"] == 1
        assert snap["failovers"] == 1
        assert snap["degraded_pairs"] == 7
        assert snap["restarts"] == 1
        assert snap["workers"][0]["restarts"] == 1


class TestRouterExclude:
    def test_pick_skips_excluded_replicas(self):
        router = ReplicaRouter(1, 3)
        for _ in range(6):
            assert router.pick(0, exclude={1}) != 1

    def test_pick_prefers_least_depth_among_candidates(self):
        router = ReplicaRouter(1, 2)
        router.dispatched(0, 0, 50, 0)
        assert router.pick(0, exclude=()) == 1

    def test_all_excluded_falls_back_to_depth(self):
        router = ReplicaRouter(1, 2)
        assert router.pick(0, exclude={0, 1}) in (0, 1)


class TestShardEstimates:
    def test_matches_net_front_end_estimator(self, index):
        from repro.service import ServiceApp
        from repro.service.net import landmark_estimator

        app = ServiceApp.from_index(VicinityOracle(index).index)
        estimate = landmark_estimator(app)
        assert estimate is not None
        flat = app.oracle.engine.out
        rng = np.random.default_rng(11)
        pairs = rng.integers(0, index.n, size=(64, 2))
        results = shard_estimates(flat, pairs)
        for (s, t), result in zip(pairs.tolist(), results):
            distance, probes = estimate(s, t)
            assert result.method == "estimate"
            assert result.distance == distance
            assert result.probes == probes

    def test_self_pair_is_zero(self, index):
        flat = VicinityOracle(index).engine.out
        (result,) = shard_estimates(flat, [(4, 4)])
        assert result.distance == 0
        assert result.probes == 0

    def test_estimate_method_registered_but_never_cached(self):
        assert "estimate" in METHODS
        assert METHODS[-1] == "estimate", "appended last: stage codes frozen"
        assert "estimate" not in CHEAP_METHODS
        assert "estimate" not in EXPENSIVE_METHODS


class TestWireValidation:
    def test_truncated_request_rejected(self):
        frame = RequestFrame(
            seq=3, with_path=False, pairs=np.array([[1, 2], [3, 4]], dtype=np.int64)
        )
        buf = frame.to_bytes()
        with pytest.raises(SerializationError):
            RequestFrame.from_bytes(buf[: len(buf) // 2])

    def test_roundtrip_still_exact(self):
        frame = RequestFrame(
            seq=9, with_path=True, pairs=np.array([[7, 8]], dtype=np.int64)
        )
        back = RequestFrame.from_bytes(frame.to_bytes())
        assert back.seq == 9 and back.with_path
        assert np.array_equal(back.pairs, frame.pairs)

    def test_truncated_response_rejected(self, index):
        from repro.core.engine import ShardQueryEngine
        from repro.core.parallel import shard_assignment

        flat = VicinityOracle(index).engine.out
        engine = ShardQueryEngine(flat, shard_assignment(index.n, 2, "hash"), False)
        req = RequestFrame(
            seq=1, with_path=False, pairs=np.array([[0, 5]], dtype=np.int64)
        )
        buf = engine.run_frame(req).to_bytes()
        with pytest.raises(SerializationError):
            ResponseFrame.from_bytes(buf[: len(buf) - 3])
        with pytest.raises(SerializationError):
            ResponseFrame.from_bytes(buf[:16])


class TestFrameParking:
    """The stream transports' stale-vs-outstanding frame rule."""

    @staticmethod
    def _scripted(frames):
        from types import SimpleNamespace

        from repro.service.shardbase import FrameStreamTransport

        class Scripted(FrameStreamTransport):
            def __init__(self):
                super().__init__(1)
                self.stream = [SimpleNamespace(seq=s) for s in frames]

            def _recv_raw(self, worker, timeout=None):
                return self.stream.pop(0)

        return Scripted()

    def test_failover_recv_parks_earlier_outstanding_exchanges(self):
        # A failover recv awaits the newest seq while older exchanges
        # on the same worker are still in flight; their answers arrive
        # first and must be parked for later collection, not discarded
        # as stale — discarding them turns every outstanding exchange
        # on a *healthy* worker into a deadline burn.
        transport = self._scripted([1, 2, 9])
        for seq in (1, 2, 9):
            transport.note_sent(0, seq)
        assert transport.recv(0, 9).seq == 9
        assert transport.recv(0, 1).seq == 1
        assert transport.recv(0, 2).seq == 2

    def test_abandoned_exchange_discarded(self):
        # seq 4 was never recorded via note_sent (an aborted exchange's
        # late answer): it must be skipped, never parked.
        transport = self._scripted([4, 7])
        transport.note_sent(0, 7)
        assert transport.recv(0, 7).seq == 7
        assert transport._pending[0] == {}

    def test_clear_pending_forgets_expectations(self):
        transport = self._scripted([3, 5])
        transport.note_sent(0, 3)
        transport.clear_pending(0)  # worker reset: 3 is now abandoned
        transport.note_sent(0, 5)
        assert transport.recv(0, 5).seq == 5
        assert transport._pending[0] == {}


class TestFaultPlan:
    def test_spec_roundtrip(self):
        plan = FaultPlan(
            {0: WorkerFaults(kill_after_frames=3), "*": {"slow_s": 0.001}},
            seed=42,
        )
        back = FaultPlan.from_spec(plan.spec())
        assert back.seed == 42
        assert back.rule_for(0).kill_after_frames == 3
        assert back.rule_for(7).slow_s == 0.001

    def test_exact_key_beats_wildcard(self):
        plan = FaultPlan({1: {"stall_s": 9.0}, "*": {"slow_s": 0.5}})
        assert plan.rule_for(1).stall_s == 9.0
        assert plan.rule_for(0).slow_s == 0.5

    def test_generation_scoping(self):
        once = WorkerFaults(kill_after_frames=1)
        always = WorkerFaults(kill_after_frames=1, every_generation=True)
        assert once.active(0) and not once.active(1)
        assert always.active(0) and always.active(3)

    def test_unknown_fields_rejected(self):
        with pytest.raises(QueryError, match="unknown fault fields"):
            FaultPlan({0: {"explode_at": 5}})

    @pytest.mark.parametrize(
        "text,worker,expect",
        [
            ("churn", "*", {"kill_after_frames": 20, "every_generation": True}),
            ("churn:5", "*", {"kill_after_frames": 5, "every_generation": True}),
            ("kill:2", "2", {"kill_after_frames": 1, "every_generation": False}),
            ("dark:0:3", "0", {"kill_after_frames": 3, "every_generation": True}),
            ("stall:1:2:0.5", "1", {"stall_at_frame": 2, "stall_s": 0.5}),
        ],
    )
    def test_presets(self, text, worker, expect):
        plan = FaultPlan.parse(text)
        rule = plan.rules[worker]
        for field, value in expect.items():
            assert getattr(rule, field) == value

    def test_json_spec(self):
        plan = FaultPlan.parse('{"0": {"kill_after_frames": 2}}')
        assert plan.rule_for(0).kill_after_frames == 2

    @pytest.mark.parametrize("text", ["bogus", "kill", "stall:x", "{not json"])
    def test_bad_specs_rejected(self, text):
        with pytest.raises(QueryError):
            FaultPlan.parse(text)


class TestRetryAfterFloor:
    def _coalescer(self, **kwargs):
        from repro.service.net import Coalescer

        return Coalescer(lambda pairs, with_path: [], **kwargs)

    def test_cold_estimate_floored(self):
        from repro.service.net import RETRY_AFTER_FLOOR_MS

        coalescer = self._coalescer(window_us=100.0)
        assert coalescer.retry_after_ms() == RETRY_AFTER_FLOOR_MS

    def test_warm_estimate_floored(self):
        from repro.service.net import RETRY_AFTER_FLOOR_MS

        coalescer = self._coalescer()
        coalescer._ewma_item_s = 1e-7  # 0.1 us/item: rounds to ~0 ms
        assert coalescer.retry_after_ms() == RETRY_AFTER_FLOOR_MS

    def test_warm_estimate_still_tracks_queue(self):
        coalescer = self._coalescer()
        coalescer._ewma_item_s = 0.010
        coalescer._pending.extend([None] * 20)  # depth 20 @ 10 ms/item
        assert coalescer.retry_after_ms() == 200

    def test_cap_unchanged(self):
        coalescer = self._coalescer()
        coalescer._ewma_item_s = 10.0
        coalescer._pending.extend([None] * 100)
        assert coalescer.retry_after_ms() == 5000


class TestSupervisedThreadsParity:
    def test_supervision_is_invisible_on_healthy_workers(self, index):
        rng = np.random.default_rng(3)
        pairs = [
            tuple(int(x) for x in rng.integers(0, index.n, 2)) for _ in range(120)
        ]
        with ShardedService(index, 3) as plain:
            expected = plain.query_batch(pairs)
            expected_log = (plain.log.messages, plain.log.bytes)
        with ShardedService(index, 3, replicas=2, supervise=True) as supervised:
            got = supervised.query_batch(pairs)
            got_log = (supervised.log.messages, supervised.log.bytes)
            stats = supervised.transport_stats()["supervisor"]
        assert got == expected
        assert got_log == expected_log
        assert stats["restarts"] == 0
        assert stats["retries"] == 0
        assert all(b["state"] == BREAKER_CLOSED for b in stats["breakers"])

    def test_snapshot_shape(self, index):
        with ShardedService(index, 2, supervise=True) as service:
            snap = service.transport_stats()["supervisor"]
        for key in (
            "deadline_s", "retry_budget", "restart", "restarts", "retries",
            "failovers", "timeouts", "worker_deaths", "degraded_pairs",
            "breaker_opens", "workers", "breakers",
        ):
            assert key in snap

    def test_unsupervised_has_no_supervisor_block(self, index):
        with ShardedService(index, 2) as service:
            assert "supervisor" not in service.transport_stats()

    def test_encode_result_flags_estimates(self, index):
        from repro.service import encode_result

        flat = VicinityOracle(index).engine.out
        (result,) = shard_estimates(flat, [(0, 9)])
        body = encode_result(result, False)
        assert body["degraded"] is True
        assert body["method"] == "estimate"
        exact = encode_result(
            VicinityOracle(index).query(0, 9), False
        )
        assert "degraded" not in exact
