"""Memory-mapped serving: zero-copy startup, byte-identical answers."""

import numpy as np
import pytest

from repro.core.config import OracleConfig
from repro.core.index import VicinityIndex
from repro.core.oracle import VicinityOracle
from repro.io.oracle_store import save_index
from repro.service import ServiceApp
from repro.service.procpool import ProcessShardedService
from repro.service.sharded import ShardedService

from tests.conftest import random_connected_graph


@pytest.fixture(scope="module")
def saved(tmp_path_factory):
    graph = random_connected_graph(260, 760, seed=73)
    index = VicinityIndex.build(
        graph, OracleConfig(alpha=4.0, seed=11, fallback="none")
    )
    path = tmp_path_factory.mktemp("mmap") / "oracle.bin"
    save_index(index, path)
    rng = np.random.default_rng(5)
    pairs = [tuple(int(x) for x in rng.integers(0, graph.n, 2)) for _ in range(400)]
    return index, path, pairs


class TestShardBackendsMmap:
    def test_threads_backend_identical(self, saved):
        _, path, pairs = saved
        with ShardedService.from_saved(path, 3) as copy_svc:
            want = copy_svc.query_batch(pairs, with_path=True)
            want_log = (copy_svc.log.messages, copy_svc.log.bytes)
        with ShardedService.from_saved(path, 3, mmap=True) as mmap_svc:
            got = mmap_svc.query_batch(pairs, with_path=True)
            got_log = (mmap_svc.log.messages, mmap_svc.log.bytes)
        assert got == want
        assert got_log == want_log

    def test_procpool_backend_identical(self, saved):
        _, path, pairs = saved
        with ProcessShardedService.from_saved(path, 2) as copy_svc:
            want = copy_svc.query_batch(pairs, with_path=True)
            want_log = (copy_svc.log.messages, copy_svc.log.bytes)
        with ProcessShardedService.from_saved(path, 2, mmap=True) as mmap_svc:
            assert mmap_svc._bundle is None  # no shared-memory copy made
            got = mmap_svc.query_batch(pairs, with_path=True)
            got_log = (mmap_svc.log.messages, mmap_svc.log.bytes)
        assert got == want
        assert got_log == want_log


class TestServiceAppMmap:
    def test_unsharded_mmap_app_matches_oracle(self, saved):
        index, path, pairs = saved
        app = ServiceApp.from_saved(path, mmap=True)
        try:
            assert app.oracle is None and app.sharded is None
            assert app.engine is not None
            assert app.n == index.n
            got = app.executor.run(pairs)
            reference = VicinityOracle(index)
            for (s, t), result in zip(pairs, got):
                assert result.distance == reference.query(s, t).distance
        finally:
            app.close()

    def test_sharded_mmap_app_matches_copy_app(self, saved):
        _, path, pairs = saved
        apps = [
            ServiceApp.from_saved(path, shards=2, backend="threads", mmap=m)
            for m in (False, True)
        ]
        try:
            results = [app.executor.run(pairs) for app in apps]
            assert results[0] == results[1]
        finally:
            for app in apps:
                app.close()

    def test_cli_serve_mmap_bench(self, saved, capsys):
        from repro.cli import main

        _, path, _ = saved
        code = main(
            [
                "serve", str(path), "--mmap", "--bench",
                "--queries", "200", "--batch-size", "64",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out
