"""Thread/process shard-backend parity: same index, identical serving.

The acceptance bar for the process-pool backend is *byte-identical*
behaviour: the same saved index and query set must produce equal
``QueryResult``s (distance, method, witness, probes, path) and equal
``MessageLog`` round-trip/byte totals on both backends.
"""

import numpy as np
import pytest

from repro.core.config import OracleConfig
from repro.core.oracle import VicinityOracle
from repro.exceptions import NodeNotFoundError, QueryError
from repro.io.oracle_store import save_index
from repro.service import (
    BatchExecutor,
    ProcessShardedService,
    ResultCache,
    ShardedService,
    create_shard_backend,
)

from tests.conftest import random_connected_graph


def log_totals(service):
    log = service.log
    return (log.messages, log.bytes, log.local_queries, log.remote_queries)


@pytest.fixture(scope="module")
def index():
    graph = random_connected_graph(260, 760, seed=51)
    oracle = VicinityOracle.build(
        graph, config=OracleConfig(alpha=4.0, seed=9, fallback="none")
    )
    return oracle.index


@pytest.fixture(scope="module")
def saved_index(index, tmp_path_factory):
    path = tmp_path_factory.mktemp("procpool") / "oracle.npz"
    save_index(index, path)
    return path


@pytest.fixture(scope="module")
def pairs(index):
    rng = np.random.default_rng(4)
    return [tuple(int(x) for x in rng.integers(0, index.n, 2)) for _ in range(300)]


@pytest.fixture(scope="module")
def procpool(index):
    with ProcessShardedService(index, 4) as service:
        yield service


class TestParity:
    def test_results_and_log_identical_to_thread_backend(self, index, pairs, procpool):
        with ShardedService(index, 4) as threads:
            expected = threads.query_batch(pairs)
            expected_log = log_totals(threads)
        got = procpool.query_batch(pairs)
        assert got == expected
        assert log_totals(procpool) == expected_log

    def test_with_path_parity(self, index, pairs):
        with ShardedService(index, 4) as threads:
            expected = threads.query_batch(pairs, with_path=True)
            expected_log = log_totals(threads)
        with ProcessShardedService(index, 4) as procs:
            got = procs.query_batch(pairs, with_path=True)
            got_log = log_totals(procs)
        assert got == expected
        assert got_log == expected_log

    def test_from_saved_matches_in_memory(self, saved_index, pairs, procpool):
        expected = procpool.query_batch(pairs)
        with ProcessShardedService.from_saved(saved_index, 4) as service:
            assert service.query_batch(pairs) == expected

    def test_single_shard_parity(self, index, pairs):
        sample = pairs[:60]
        with ShardedService(index, 1) as threads:
            expected = threads.query_batch(sample)
            expected_log = log_totals(threads)
        with ProcessShardedService(index, 1) as procs:
            assert procs.query_batch(sample) == expected
            assert log_totals(procs) == expected_log

    def test_replicated_tables_parity(self, index, pairs):
        sample = pairs[:60]
        with ShardedService(index, 3, replicate_tables=True) as threads:
            expected = threads.query_batch(sample)
            expected_log = log_totals(threads)
        with ProcessShardedService(index, 3, replicate_tables=True) as procs:
            assert procs.query_batch(sample) == expected
            assert log_totals(procs) == expected_log

    def test_matches_single_machine_distances(self, index, pairs, procpool):
        reference = VicinityOracle(index)
        for (s, t), got in zip(pairs, procpool.query_batch(pairs)):
            expected = reference.query(s, t)
            if expected.method == "fallback":
                assert got.method == "miss"
            else:
                assert got.distance == expected.distance


class TestAccounting:
    def test_shard_of_and_reports_match_thread_backend(self, index, procpool):
        with ShardedService(index, 4) as threads:
            assert [procpool.shard_of(u) for u in range(index.n)] == [
                threads.shard_of(u) for u in range(index.n)
            ]
            assert procpool.shard_reports() == threads.shard_reports()
            assert procpool.balance_summary() == threads.balance_summary()

    def test_replicated_reports(self, index):
        with ProcessShardedService(index, 2, replicate_tables=True) as service:
            for report in service.shard_reports():
                assert report.table_entries == len(index.tables) * index.n


class TestEdgeCases:
    def test_empty_batch(self, procpool):
        assert procpool.query_batch([]) == []

    def test_single_query_routes_through_worker(self, procpool, index, pairs):
        reference = VicinityOracle(index)
        s, t = pairs[0]
        got = procpool.query(s, t)
        expected = reference.query(s, t)
        if expected.method != "fallback":
            assert got.distance == expected.distance

    def test_unknown_node_rejected(self, procpool, index):
        with pytest.raises(NodeNotFoundError):
            procpool.query_batch([(0, index.n)])

    def test_store_paths_false_raises(self):
        graph = random_connected_graph(120, 340, seed=3)
        oracle = VicinityOracle.build(
            graph,
            config=OracleConfig(alpha=4.0, seed=9, fallback="none", store_paths=False),
        )
        with ProcessShardedService(oracle.index, 2) as service:
            with pytest.raises(QueryError, match="store_paths"):
                service.query_batch([(0, 1)], with_path=True)

    def test_query_after_close_raises(self, index):
        service = ProcessShardedService(index, 2)
        service.close()
        service.close()  # idempotent
        with pytest.raises(QueryError):
            service.query(0, 1)

    def test_requires_index_or_flat(self):
        with pytest.raises(QueryError):
            ProcessShardedService(None, 2)

    @pytest.mark.parametrize("transport", ["pipe", "ring"])
    def test_stale_replies_do_not_misalign_later_batches(
        self, index, pairs, transport
    ):
        """Regression: a worker frame from an aborted exchange must not
        be mistaken for a later batch's answer."""
        from repro.service.wire import RequestFrame

        sample = pairs[:40]
        with ProcessShardedService(index, 2, transport=transport) as service:
            expected = service.query_batch(sample)
            # Inject a foreign exchange: the worker answers this frame
            # with a stale sequence number no batch will ever collect.
            service._transport.send(0, RequestFrame(-1, [(0, 1)], False))
            assert service.query_batch(sample) == expected
            assert service.query_batch(sample, with_path=True) == service.query_batch(
                sample, with_path=True
            )


class TestComposition:
    def test_factory_builds_both_backends(self, index):
        thread_backend = create_shard_backend(index, 2, backend="threads")
        thread_backend.close()
        proc_backend = create_shard_backend(index, 2, backend="procpool")
        proc_backend.close()
        with pytest.raises(QueryError, match="unknown shard backend"):
            create_shard_backend(index, 2, backend="gpu")

    def test_composes_with_batch_executor(self, index, pairs, procpool):
        reference = VicinityOracle(index)
        executor = BatchExecutor(procpool, cache=ResultCache(512))
        results = executor.run(pairs + pairs)  # heavy repetition
        for (s, t), got in zip(pairs, results):
            expected = reference.query(s, t)
            if expected.method != "fallback":
                assert got.distance == expected.distance

    def test_service_app_from_saved_is_dict_free(self, saved_index, index, pairs):
        """A procpool ServiceApp from a saved index carries no oracle."""
        from repro.service import ServiceApp
        from repro.service.server import handle_request

        app = ServiceApp.from_saved(saved_index, shards=2, backend="procpool")
        try:
            assert app.oracle is None
            assert app.n == index.n
            reference = VicinityOracle(index)
            s, t = pairs[0]
            response, keep = handle_request(app, {"s": s, "t": t})
            assert keep
            expected = reference.query(s, t)
            if expected.method != "fallback":
                assert response["distance"] == expected.distance
            snapshot, _ = handle_request(app, {"cmd": "stats"})
            assert snapshot["shards"]["local_queries"] + snapshot["shards"][
                "remote_queries"
            ] == 1
        finally:
            app.close()

    def test_service_app_from_saved_threads_is_dict_free_too(self, saved_index, index):
        from repro.service import ServiceApp

        app = ServiceApp.from_saved(saved_index, shards=2, backend="threads")
        try:
            assert app.oracle is None  # both backends serve dict-free
            assert app.sharded is not None
            assert app.n == index.n
            reference = VicinityOracle(index)
            got = app.executor.query(0, 5)
            expected = reference.query(0, 5)
            if expected.method != "fallback":
                assert got.distance == expected.distance
        finally:
            app.close()


class TestWorkerCache:
    def test_cached_answers_identical_and_trips_saved(self, index, pairs):
        """A worker-side cache must not change a single answer, and a
        repeated batch must stop paying modelled round trips."""
        repeated = pairs[:80] + pairs[:80]
        with ProcessShardedService(index, 2) as plain:
            expected = plain.query_batch(repeated)
        with ProcessShardedService(index, 2, worker_cache_size=4096) as cached:
            first = cached.query_batch(pairs[:80])
            bytes_after_first = cached.log.bytes
            second = cached.query_batch(pairs[:80])
            bytes_delta = cached.log.bytes - bytes_after_first
            stats = cached.worker_cache_stats()
        # Value-identical answers; a cache hit may report probes=0
        # (mirrored orientation), exactly like the coordinator cache.
        for got, want in zip(first + second, expected):
            assert (got.source, got.target, got.distance, got.method) == (
                want.source, want.target, want.distance, want.method
            )
            assert got.path == want.path
            assert got.probes in (want.probes, 0)
        assert stats is not None and stats["hits"] > 0
        # The second pass re-pays only cheap-method lookups, never the
        # expensive cached tail.
        assert bytes_delta < bytes_after_first

    def test_stats_disabled_without_cache(self, procpool):
        assert procpool.worker_cache_stats() is None

    def test_worker_cache_rejected_off_procpool(self, index, saved_index):
        from repro.service import ServiceApp

        with pytest.raises(QueryError, match="procpool"):
            ServiceApp.from_index(
                index, shards=2, backend="threads", worker_cache_size=64
            )
        with pytest.raises(QueryError, match="procpool"):
            ServiceApp.from_saved(saved_index, worker_cache_size=64)

    def test_snapshot_embeds_worker_cache(self, index, pairs):
        from repro.service import ServiceApp

        app = ServiceApp.from_index(
            index, cache_size=0, shards=2, backend="procpool",
            worker_cache_size=1024,
        )
        try:
            app.executor.run(pairs[:50])
            app.executor.run(pairs[:50])
            snap = app.snapshot()
            assert snap["worker_cache"]["workers"] == 2
            assert snap["worker_cache"]["lookups"] > 0
            assert snap["engine"] == "flat"
            assert snap["backend"] == "procpool"
        finally:
            app.close()
