"""Latency histograms and service telemetry."""

import threading

import pytest

from repro.core.oracle import QueryResult
from repro.service.telemetry import LatencyHistogram, Telemetry, render_snapshot


def _result(method="intersection", distance=3):
    return QueryResult(1, 2, distance, None, method, None, 5)


class TestLatencyHistogram:
    def test_empty(self):
        histogram = LatencyHistogram()
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.percentile(50) == 0.0

    def test_percentiles_exact_small_sample(self):
        histogram = LatencyHistogram()
        for ms in range(1, 101):  # 1..100 ms
            histogram.observe(ms / 1000.0)
        assert histogram.percentile(50) == pytest.approx(0.050)
        assert histogram.percentile(95) == pytest.approx(0.095)
        assert histogram.percentile(99) == pytest.approx(0.099)
        assert histogram.percentile(100) == pytest.approx(0.100)
        assert histogram.min == pytest.approx(0.001)
        assert histogram.max == pytest.approx(0.100)

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(101)

    def test_reservoir_bounded(self):
        histogram = LatencyHistogram(reservoir=10)
        for i in range(100):
            histogram.observe(i / 1000.0)
        assert histogram.count == 100
        assert len(histogram._samples) == 10
        # Percentiles reflect the most recent window.
        assert histogram.percentile(50) >= 0.090

    def test_buckets_monotonic_assignment(self):
        histogram = LatencyHistogram()
        histogram.observe(0.0)      # below floor
        histogram.observe(1e-6)
        histogram.observe(1e-3)
        histogram.observe(100.0)    # clamps to last bucket
        assert sum(histogram.buckets) == 4

    def test_snapshot_units(self):
        histogram = LatencyHistogram()
        histogram.observe(0.002)
        snap = histogram.snapshot()
        assert snap["count"] == 1
        assert snap["p50_ms"] == pytest.approx(2.0)
        assert snap["mean_ms"] == pytest.approx(2.0)


class TestTelemetry:
    def test_observe_query_counts_methods(self):
        telemetry = Telemetry()
        telemetry.observe_query("intersection", 0.001)
        telemetry.observe_query("landmark-source", 0.0005)
        telemetry.observe_result(QueryResult(1, 2, None, None, "miss", None, 3), 0.002)
        snap = telemetry.snapshot()
        assert snap["queries"] == 3
        assert snap["unanswered"] == 1
        assert snap["by_method"] == {
            "landmark-source": 1, "intersection": 1, "miss": 1
        }

    def test_observe_batch_amortises_latency(self):
        telemetry = Telemetry()
        telemetry.observe_batch([_result(), _result(), _result(), _result()], 0.004)
        snap = telemetry.snapshot()
        assert snap["queries"] == 4
        assert snap["batches"] == 1
        assert snap["latency"]["p50_ms"] == pytest.approx(1.0)
        assert snap["batch_latency"]["p50_ms"] == pytest.approx(4.0)

    def test_timed_batch_context(self):
        telemetry = Telemetry()
        with telemetry.timed_batch() as sink:
            sink.extend([_result(), _result()])
        assert telemetry.queries == 2
        assert telemetry.batches == 1

    def test_snapshot_embeds_cache_and_message_log(self):
        from repro.core.parallel import MessageLog
        from repro.service.cache import ResultCache

        telemetry = Telemetry()
        cache = ResultCache(4)
        log = MessageLog()
        log.local_queries = 3
        log.record_round_trip(64)
        log.remote_queries = 1
        snap = telemetry.snapshot(cache=cache, message_log=log)
        assert snap["cache"]["capacity"] == 4
        assert snap["shards"]["messages"] == 2
        assert snap["shards"]["mean_messages"] == pytest.approx(0.5)

    def test_reset(self):
        telemetry = Telemetry()
        telemetry.observe_query("intersection", 0.001)
        telemetry.reset()
        snap = telemetry.snapshot()
        assert snap["queries"] == 0
        assert snap["by_method"] == {}

    def test_engine_and_backend_labels(self):
        """Snapshots are self-describing: engine + backend ride along."""
        telemetry = Telemetry(engine="flat", backend="procpool")
        snap = telemetry.snapshot()
        assert snap["engine"] == "flat"
        assert snap["backend"] == "procpool"
        telemetry.set_context(backend="threads")
        assert telemetry.snapshot()["backend"] == "threads"
        telemetry.reset()  # labels describe the config, not the epoch
        assert telemetry.snapshot()["engine"] == "flat"
        text = render_snapshot(telemetry.snapshot())
        assert "engine=flat" in text and "backend=threads" in text

    def test_snapshot_embeds_worker_cache(self):
        telemetry = Telemetry()
        stats = {"workers": 2, "hits": 5, "lookups": 8, "hit_rate": 0.625}
        snap = telemetry.snapshot(worker_cache=stats)
        assert snap["worker_cache"] == stats
        assert "worker caches" in render_snapshot(snap)

    def test_thread_safety_under_contention(self):
        telemetry = Telemetry()

        def hammer():
            for _ in range(500):
                telemetry.observe_query("intersection", 0.0001)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert telemetry.queries == 2000
        assert telemetry.query_latency.count == 2000


class TestRendering:
    def test_render_snapshot_mentions_percentiles(self):
        telemetry = Telemetry()
        telemetry.observe_query("intersection", 0.0015)
        text = render_snapshot(telemetry.snapshot())
        assert "p50" in text and "p95" in text and "p99" in text
        assert "intersection" in text

    def test_render_includes_cache_and_shards(self):
        from repro.core.parallel import MessageLog
        from repro.service.cache import ResultCache

        telemetry = Telemetry()
        telemetry.observe_query("fallback", 0.01)
        log = MessageLog()
        log.local_queries = 1
        text = render_snapshot(
            telemetry.snapshot(cache=ResultCache(8), message_log=log)
        )
        assert "cache" in text
        assert "shard traffic" in text
