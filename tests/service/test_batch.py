"""Batch execution: query_batch equivalence, dedup, symmetry, caching.

Includes the acceptance check: ``query_batch()`` over 10k+ random pairs
must return distances identical to per-pair ``query()``.
"""

import numpy as np
import pytest

from repro.core.config import OracleConfig
from repro.core.oracle import VicinityOracle
from repro.service import BatchExecutor, ResultCache, Telemetry

from tests.conftest import random_connected_graph


@pytest.fixture(scope="module")
def oracle():
    graph = random_connected_graph(300, 900, seed=77)
    return VicinityOracle.build(
        graph, config=OracleConfig(alpha=4.0, seed=5, fallback="bidirectional")
    )


class TestQueryBatchAPI:
    def test_ten_thousand_pairs_match_single_queries(self, oracle):
        """Acceptance: >=10k random pairs, distances identical to query()."""
        rng = np.random.default_rng(42)
        n = oracle.graph.n
        pairs = [tuple(int(x) for x in rng.integers(0, n, 2)) for _ in range(10500)]
        batch = oracle.query_batch(pairs)
        reference = VicinityOracle(oracle.index)
        assert len(batch) == len(pairs)
        for (s, t), got in zip(pairs, batch):
            expected = reference.query(s, t)
            assert got.source == s and got.target == t
            assert got.distance == expected.distance
            assert got.method == expected.method
            assert got.probes == expected.probes

    def test_counters_recorded_per_pair(self, oracle):
        fresh = VicinityOracle(oracle.index)
        pairs = [(0, 1), (1, 2), (2, 2)]
        fresh.query_batch(pairs)
        assert fresh.counters.queries == 3
        assert fresh.counters.by_method["identical"] == 1

    def test_empty_batch(self, oracle):
        assert oracle.query_batch([]) == []

    def test_landmark_lanes_match_resolve(self, oracle):
        landmark = int(oracle.index.landmarks.ids[0])
        non_landmark = next(
            u for u in range(oracle.graph.n)
            if not oracle.index.landmarks.is_landmark[u]
        )
        reference = VicinityOracle(oracle.index)
        for s, t in [(landmark, non_landmark), (non_landmark, landmark),
                     (landmark, landmark)]:
            got = oracle.query_batch([(s, t)])[0]
            expected = reference.query(s, t)
            assert (got.distance, got.method, got.probes) == (
                expected.distance, expected.method, expected.probes
            )

    def test_with_paths(self, oracle):
        rng = np.random.default_rng(3)
        n = oracle.graph.n
        pairs = [tuple(int(x) for x in rng.integers(0, n, 2)) for _ in range(50)]
        for (s, t), result in zip(pairs, oracle.query_batch(pairs, with_path=True)):
            if result.path is not None:
                assert result.path[0] == s and result.path[-1] == t
                assert len(result.path) == result.distance + 1

    def test_invalid_node_raises(self, oracle):
        from repro.exceptions import NodeNotFoundError

        with pytest.raises(NodeNotFoundError):
            oracle.query_batch([(0, oracle.graph.n + 5)])


class TestBatchExecutor:
    def test_results_in_input_order_and_orientation(self, oracle):
        executor = BatchExecutor(oracle, cache=ResultCache(64))
        pairs = [(4, 9), (9, 4), (4, 9), (7, 7)]
        results = executor.run(pairs)
        for (s, t), result in zip(pairs, results):
            assert result.source == s and result.target == t
        assert results[0].distance == results[1].distance == results[2].distance
        assert results[3].distance == 0

    def test_dedup_and_symmetry_hit_backend_once(self, oracle):
        backend = VicinityOracle(oracle.index)
        executor = BatchExecutor(backend)
        pairs = [(4, 9), (9, 4)] * 10
        executor.run(pairs)
        # One canonical pair -> one backend query.
        assert backend.counters.queries == 1
        assert executor.stats.pairs_in == 20
        assert executor.stats.unique_pairs == 1
        assert executor.stats.duplicates == 19

    def test_cache_spans_batches(self, oracle):
        cache = ResultCache(128)
        executor = BatchExecutor(VicinityOracle(oracle.index), cache=cache)
        # Pick a pair the oracle resolves expensively so it is cached.
        rng = np.random.default_rng(8)
        n = oracle.graph.n
        pair = next(
            (int(s), int(t))
            for s, t in rng.integers(0, n, size=(500, 2))
            if executor.run([(int(s), int(t))])[0].method == "intersection"
        )
        before = executor.stats.backend_pairs
        executor.run([pair])
        assert executor.stats.backend_pairs == before  # served from cache
        assert cache.hits >= 1

    def test_cheap_methods_not_cached(self, oracle):
        cache = ResultCache(128)
        executor = BatchExecutor(VicinityOracle(oracle.index), cache=cache)
        landmark = int(oracle.index.landmarks.ids[0])
        executor.run([(landmark, 5)])
        executor.run([(landmark, 5)])
        assert cache.hits == 0
        assert executor.stats.backend_pairs == 2

    def test_distances_identical_through_full_stack(self, oracle):
        """Dedup + symmetry + cache must never change an answer."""
        executor = BatchExecutor(
            VicinityOracle(oracle.index),
            cache=ResultCache(256),
            telemetry=Telemetry(),
        )
        rng = np.random.default_rng(13)
        n = oracle.graph.n
        pool = [tuple(int(x) for x in rng.integers(0, n, 2)) for _ in range(150)]
        picks = rng.integers(0, len(pool), size=2000)
        pairs = [pool[i] for i in picks]
        reference = VicinityOracle(oracle.index)
        for chunk_start in range(0, len(pairs), 256):
            chunk = pairs[chunk_start:chunk_start + 256]
            for (s, t), got in zip(chunk, executor.run(chunk)):
                assert got.distance == reference.query(s, t).distance

    def test_telemetry_receives_batches(self, oracle):
        telemetry = Telemetry()
        executor = BatchExecutor(VicinityOracle(oracle.index), telemetry=telemetry)
        executor.run([(1, 2), (3, 4)])
        snap = telemetry.snapshot()
        assert snap["queries"] == 2
        assert snap["batches"] == 1

    def test_directed_backend_end_to_end(self):
        """The documented directed configuration actually serves."""
        import numpy as np

        from repro.core.directed import DirectedVicinityOracle
        from repro.graph.builder import digraph_from_arrays

        rng = np.random.default_rng(6)
        n, m = 60, 240
        graph = digraph_from_arrays(
            rng.integers(0, n, m), rng.integers(0, n, m), n=n
        )
        oracle = DirectedVicinityOracle.build(graph, alpha=2.0, seed=3)
        executor = BatchExecutor(
            oracle, cache=ResultCache(128, symmetric=False), symmetry=False
        )
        pairs = [tuple(int(x) for x in rng.integers(0, n, 2)) for _ in range(200)]
        results = executor.run(pairs + pairs)  # repetition drives the cache
        for (s, t), got in zip(pairs, results):
            assert got.source == s and got.target == t
            assert got.distance == oracle.query(s, t).distance
        # Orientations must never be folded for a directed backend.
        asym = next(
            ((s, t) for s, t in pairs
             if oracle.query(s, t).distance != oracle.query(t, s).distance),
            None,
        )
        if asym is not None:
            s, t = asym
            forward = executor.run([(s, t)])[0]
            backward = executor.run([(t, s)])[0]
            assert forward.distance == oracle.query(s, t).distance
            assert backward.distance == oracle.query(t, s).distance

    def test_executor_is_a_backend(self, oracle):
        """Executors compose: an executor can front another executor."""
        inner = BatchExecutor(VicinityOracle(oracle.index), cache=ResultCache(64))
        outer = BatchExecutor(inner)
        result = outer.query(2, 8)
        assert result.distance == VicinityOracle(oracle.index).query(2, 8).distance
