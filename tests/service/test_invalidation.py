"""Cache staleness under dynamic edge insertions.

Regression suite for the serving-layer staleness bug: ``ResultCache``
had no invalidation hook, so a ``BatchExecutor`` fronting a
``DynamicVicinityOracle`` kept serving pre-insertion distances after
``add_edge`` shortened them.  ``attach_cache`` wires the oracle's exact
through-the-new-edge predicate to the cache.
"""

import pytest

from repro.core.config import OracleConfig
from repro.core.dynamic import DynamicVicinityOracle
from repro.core.oracle import EXPENSIVE_METHODS
from repro.service import BatchExecutor, ResultCache

from tests.conftest import random_connected_graph


def build_dynamic(seed=21):
    graph = random_connected_graph(150, 420, seed=seed)
    return DynamicVicinityOracle.build(
        graph, config=OracleConfig(alpha=4.0, seed=9, fallback="bidirectional")
    )


def find_cacheable_pair(oracle, min_distance=3):
    """A pair the cache will hold whose distance a direct edge shortens."""
    n = oracle.graph.n
    for s in range(n):
        for t in range(s + 1, n):
            result = oracle.query(s, t)
            if (
                result.method in EXPENSIVE_METHODS
                and result.distance is not None
                and result.distance >= min_distance
            ):
                return s, t, result.distance
    raise AssertionError("workload has no cacheable pair; grow the graph")


class TestStaleHit:
    def test_unattached_cache_serves_stale_distance(self):
        """The bug, demonstrated: without the hook the hit goes stale."""
        oracle = build_dynamic()
        cache = ResultCache(256)
        executor = BatchExecutor(oracle, cache=cache)
        s, t, old_distance = find_cacheable_pair(oracle)

        assert executor.run([(s, t)])[0].distance == old_distance
        oracle.add_edge(s, t)  # true distance is now 1
        assert oracle.query(s, t).distance == 1
        stale = executor.run([(s, t)])[0]
        assert stale.distance == old_distance  # served from cache: stale!

    def test_attached_cache_evicts_stale_entry(self):
        """The fix: an attached cache drops exactly the shortened pair."""
        oracle = build_dynamic()
        cache = ResultCache(256)
        executor = BatchExecutor(oracle, cache=cache)
        oracle.attach_cache(cache)
        s, t, old_distance = find_cacheable_pair(oracle)

        assert executor.run([(s, t)])[0].distance == old_distance
        oracle.insert_edge(s, t)  # the serving-layer alias of add_edge
        assert cache.invalidated >= 1
        fresh = executor.run([(s, t)])[0]
        assert fresh.distance == 1
        assert fresh.distance == oracle.query(s, t).distance

    def test_invalidation_is_selective(self):
        """Pairs the new edge cannot shorten stay cached."""
        oracle = build_dynamic()
        cache = ResultCache(256)
        executor = BatchExecutor(oracle, cache=cache)
        oracle.attach_cache(cache)
        s, t, _ = find_cacheable_pair(oracle)

        # Prime the cache with every answerable expensive pair.
        pairs = [
            (a, b)
            for a in range(0, oracle.graph.n, 7)
            for b in range(1, oracle.graph.n, 11)
            if a != b
        ]
        executor.run(pairs)
        held_before = {
            key: entry.distance for key, entry in cache._entries.items()
        }
        oracle.add_edge(s, t)
        # Everything still cached must still be exact.
        for (a, b), cached_distance in held_before.items():
            if (a, b) in cache:
                assert oracle.query(a, b).distance == cached_distance, (a, b)
        # And everything evicted genuinely changed resolution is allowed;
        # at minimum the shortened pair itself must be gone.
        assert (min(s, t), max(s, t)) not in cache

    def test_detach_cache_stops_invalidation(self):
        oracle = build_dynamic()
        cache = ResultCache(256)
        oracle.attach_cache(cache)
        oracle.attach_cache(cache)  # idempotent
        oracle.detach_cache(cache)
        executor = BatchExecutor(oracle, cache=cache)
        s, t, old_distance = find_cacheable_pair(oracle)
        executor.run([(s, t)])
        oracle.add_edge(s, t)
        assert cache.invalidated == 0
        assert executor.run([(s, t)])[0].distance == old_distance

    def test_newly_connected_pair_is_evicted(self):
        """A cached unanswerable pair goes stale when the edge connects it."""
        import numpy as np

        from repro.graph.builder import graph_from_arrays

        # Two disjoint 4-cycles: 0-1-2-3 and 4-5-6-7.
        src = np.array([0, 1, 2, 3, 4, 5, 6, 7])
        dst = np.array([1, 2, 3, 0, 5, 6, 7, 4])
        graph = graph_from_arrays(src, dst, n=8)
        oracle = DynamicVicinityOracle.build(
            graph, config=OracleConfig(alpha=4.0, seed=3, fallback="bidirectional")
        )
        cache = ResultCache(64, cacheable=EXPENSIVE_METHODS)
        executor = BatchExecutor(oracle, cache=cache)
        oracle.attach_cache(cache)
        first = executor.run([(0, 5)])[0]
        assert first.distance is None  # disconnected, and cached as such
        assert (0, 5) in cache
        oracle.add_edge(3, 4)
        assert (0, 5) not in cache
        fresh = executor.run([(0, 5)])[0]
        assert fresh.distance == oracle.query(0, 5).distance is not None
