"""The asyncio network front end: coalescing, backpressure, reload.

No pytest-asyncio here: every test is a plain function running its
coroutine through ``asyncio.run`` (wrapped in a watchdog timeout so a
deadlock fails instead of hanging the suite).  Determinism comes from
the coalescer's *manual* mode — ``coalesce_us=None`` disables the
automatic window entirely, so tests decide exactly when a flush
happens and what has accumulated by then.
"""

import asyncio
import json

import pytest

from repro.core.config import OracleConfig
from repro.core.engine import FlatQueryEngine
from repro.core.oracle import VicinityOracle
from repro.io.oracle_store import save_index
from repro.service import NetServer, ServiceApp
from repro.service.net import Coalescer, NetStats, landmark_estimator
from repro.service.telemetry import render_snapshot

from tests.conftest import random_connected_graph


@pytest.fixture(scope="module")
def index():
    graph = random_connected_graph(240, 700, seed=31)
    oracle = VicinityOracle.build(
        graph, config=OracleConfig(alpha=4.0, seed=3, fallback="bidirectional")
    )
    return oracle.index


@pytest.fixture(scope="module")
def engine(index):
    return FlatQueryEngine.from_index(index)


@pytest.fixture()
def app(index):
    service = ServiceApp.from_index(index)
    yield service
    service.close()


def sync(coro, timeout=30.0):
    """Run one test coroutine with a watchdog: deadlocks fail, not hang."""
    return asyncio.run(asyncio.wait_for(coro, timeout))


async def eventually(predicate, timeout=5.0):
    """Poll ``predicate`` until true (the watchdog bounds the wait)."""
    while not predicate():
        await asyncio.sleep(0.001)


async def send(writer, obj):
    writer.write(json.dumps(obj).encode() + b"\n")
    await writer.drain()


async def recv(reader):
    line = await reader.readline()
    assert line, "connection closed while awaiting a response"
    return json.loads(line)


class _ManualServer:
    """A started NetServer in manual-flush mode plus client plumbing."""

    def __init__(self, app, **kwargs):
        kwargs.setdefault("coalesce_us", None)
        self.server = NetServer(app, port=0, **kwargs)
        self._conns = []

    async def __aenter__(self):
        await self.server.start()
        return self

    async def __aexit__(self, *exc):
        await self.server.drain()
        for _, writer in self._conns:
            writer.close()

    async def connect(self):
        reader, writer = await asyncio.open_connection(
            self.server.host, self.server.port
        )
        self._conns.append((reader, writer))
        return reader, writer


# ----------------------------------------------------------------------
# the coalescer in isolation
# ----------------------------------------------------------------------
class TestCoalescer:
    def test_cross_client_folding_single_executor_call(self, app):
        """Pairs from different connections land in ONE backend batch."""
        calls = []

        def runner(pairs, with_path):
            calls.append(list(pairs))
            return app.executor.run(pairs, with_path=with_path)

        async def scenario():
            stats = NetStats()
            coalescer = Coalescer(runner, window_us=None, stats=stats)
            conn_a, conn_b = object(), object()
            f1 = coalescer.offer(0, 5, conn=conn_a)
            f2 = coalescer.offer(5, 0, conn=conn_b)  # mirrored cross-client
            f3 = coalescer.offer(3, 9, conn=conn_b)
            assert coalescer.depth == 3
            await coalescer.flush()
            results = [f.result() for f in (f1, f2, f3)]
            await coalescer.close()
            return calls, results, stats

        calls, results, stats = sync(scenario())
        assert len(calls) == 1 and len(calls[0]) == 3
        assert stats.flushes == 1 and stats.cross_client_flushes == 1
        # Symmetry folding happened inside the single executor call.
        assert app.executor.stats.batches == 1
        assert app.executor.stats.unique_pairs == 2
        assert results[0].distance == results[1].distance
        assert (results[1].source, results[1].target) == (5, 0)

    def test_flush_chunks_to_max_batch(self, app):
        sizes = []

        def runner(pairs, with_path):
            sizes.append(len(pairs))
            return app.executor.run(pairs, with_path=with_path)

        async def scenario():
            coalescer = Coalescer(runner, window_us=None, max_batch=2)
            futures = coalescer.offer_many([(0, i) for i in range(1, 6)])
            answered = await coalescer.flush()
            await coalescer.close()
            return answered, [f.result().distance for f in futures]

        answered, distances = sync(scenario())
        assert answered == 5
        assert sizes == [2, 2, 1]
        assert all(d is not None for d in distances)

    def test_path_lanes_are_separate_executor_calls(self, app):
        lanes = []

        def runner(pairs, with_path):
            lanes.append((len(pairs), with_path))
            return app.executor.run(pairs, with_path=with_path)

        async def scenario():
            coalescer = Coalescer(runner, window_us=None)
            plain = coalescer.offer(0, 5)
            pathy = coalescer.offer(0, 9, with_path=True)
            await coalescer.flush()
            await coalescer.close()
            return plain.result(), pathy.result()

        plain, pathy = sync(scenario())
        assert lanes == [(1, False), (1, True)]
        assert plain.path is None
        assert pathy.path is not None and pathy.path[0] == 0

    def test_soft_limit_rejects_and_batch_admission_is_atomic(self):
        async def scenario():
            coalescer = Coalescer(
                lambda pairs, wp: [], window_us=None, soft_limit=2
            )
            assert coalescer.offer(0, 1) is not None
            # Admitting this 2-pair batch would overflow: all-or-nothing.
            assert coalescer.offer_many([(0, 2), (0, 3)]) is None
            assert coalescer.offer(0, 2) is not None
            assert coalescer.offer(0, 3) is None
            assert coalescer.depth == 2
            assert coalescer.retry_after_ms() >= 1
            await coalescer.close()

        sync(scenario())

    def test_hard_limit_gate_blocks_until_flush(self, app):
        async def scenario():
            coalescer = Coalescer(
                lambda pairs, wp: app.executor.run(pairs, with_path=wp),
                window_us=None,
                soft_limit=4,
                hard_limit=4,
            )
            futures = coalescer.offer_many([(0, i) for i in range(1, 5)])
            waiter = asyncio.create_task(coalescer.wait_admittable())
            await asyncio.sleep(0.01)
            assert not waiter.done()  # at the hard limit: reads blocked
            await coalescer.flush()
            await asyncio.wait_for(waiter, 5)  # flush reopened the gate
            await asyncio.gather(*futures)
            await coalescer.close()

        sync(scenario())

    def test_runner_exception_answers_every_request(self):
        def runner(pairs, with_path):
            raise RuntimeError("backend down")

        async def scenario():
            coalescer = Coalescer(runner, window_us=None)
            futures = coalescer.offer_many([(0, 1), (0, 2)])
            await coalescer.flush()
            await coalescer.close()
            return [f.result() for f in futures]

        markers = sync(scenario())
        assert all(str(m.exc) == "backend down" for m in markers)

    def test_auto_window_flushes_without_manual_drive(self, app):
        async def scenario():
            coalescer = Coalescer(
                lambda pairs, wp: app.executor.run(pairs, with_path=wp),
                window_us=500.0,
            )
            future = coalescer.offer(0, 5)
            result = await asyncio.wait_for(future, 5)
            await coalescer.close()
            return result

        assert sync(scenario()).distance is not None


# ----------------------------------------------------------------------
# the TCP JSON-lines transport
# ----------------------------------------------------------------------
class TestTcpServing:
    def test_single_batch_and_path_in_request_order(self, index, app):
        oracle = VicinityOracle(index)

        async def scenario():
            async with _ManualServer(app, coalesce_us=250.0) as harness:
                reader, writer = await harness.connect()
                await send(writer, {"s": 0, "t": 5})
                await send(writer, {"pairs": [[0, 5], [5, 0], [3, 3]]})
                await send(writer, {"s": 0, "t": 9, "path": True})
                single = await recv(reader)
                batch = await recv(reader)
                pathy = await recv(reader)
                await send(writer, {"cmd": "quit"})
                quit_ack = await recv(reader)
                assert await reader.readline() == b""  # server closed
            return single, batch, pathy, quit_ack

        single, batch, pathy, quit_ack = sync(scenario())
        assert single["distance"] == oracle.query(0, 5).distance
        results = batch["results"]
        assert [r["distance"] for r in results[:2]] == [single["distance"]] * 2
        assert results[2]["distance"] == 0
        path = pathy["path"]
        assert path[0] == 0 and path[-1] == 9
        assert len(path) == pathy["distance"] + 1
        assert quit_ack == {"ok": True}

    def test_cross_client_requests_fold_into_one_batch(self, app):
        async def scenario():
            async with _ManualServer(app) as harness:
                r1, w1 = await harness.connect()
                r2, w2 = await harness.connect()
                await send(w1, {"s": 0, "t": 5})
                await send(w2, {"s": 5, "t": 0})
                await send(w2, {"s": 3, "t": 9})
                await eventually(lambda: harness.server.coalescer.depth == 3)
                await harness.server.coalescer.flush()
                a = await recv(r1)
                b, c = await recv(r2), await recv(r2)
                stats = harness.server.stats
                assert stats.flushes == 1 and stats.cross_client_flushes == 1
            return a, b, c

        a, b, c = sync(scenario())
        assert a["distance"] == b["distance"]
        assert (b["s"], b["t"]) == (5, 0)  # demux kept the orientation
        assert "distance" in c
        assert app.executor.stats.batches == 1
        assert app.executor.stats.unique_pairs == 2

    def test_per_connection_response_order_with_interleaved_commands(self, app):
        async def scenario():
            async with _ManualServer(app) as harness:
                reader, writer = await harness.connect()
                await send(writer, {"s": 0, "t": 5})
                await send(writer, {"cmd": "stats"})
                await send(writer, {"s": 0, "t": 9})
                await eventually(lambda: harness.server.coalescer.depth == 2)
                await harness.server.coalescer.flush()
                first = await recv(reader)
                snap = await recv(reader)
                second = await recv(reader)
            return first, snap, second

        first, snap, second = sync(scenario())
        # The stats view is computed *between* the two answers: the
        # writer resolves payloads strictly in request order.
        assert "distance" in first and "distance" in second
        assert snap["net"]["requests"]["accepted"] >= 1

    def test_malformed_requests_answer_errors_and_keep_serving(self, app):
        async def scenario():
            async with _ManualServer(app, coalesce_us=250.0) as harness:
                reader, writer = await harness.connect()
                writer.write(b"this is not json\n")
                await send(writer, {"cmd": "no-such-command"})
                await send(writer, {"wrong": "shape"})
                await send(writer, {"s": 0, "t": 10**9})  # out of range
                await send(writer, {"s": 0, "t": 5})  # still alive
                responses = [await recv(reader) for _ in range(5)]
            return responses

        responses = sync(scenario())
        assert all("error" in r for r in responses[:4])
        assert "not in the graph" in responses[3]["error"]
        assert responses[4]["distance"] is not None
        # A bad pair is rejected before admission: it cannot poison a
        # coalesced batch carrying other clients' requests.
        assert app.executor.stats.pairs_in == 1

    def test_soft_limit_overload_response_carries_retry_hint(self, app):
        async def scenario():
            async with _ManualServer(app, max_pending=1) as harness:
                reader, writer = await harness.connect()
                await send(writer, {"s": 0, "t": 5})
                await eventually(lambda: harness.server.coalescer.depth == 1)
                await send(writer, {"s": 0, "t": 9})
                await eventually(
                    lambda: harness.server.stats.overloaded == 1
                )
                await harness.server.coalescer.flush()
                answered = await recv(reader)
                overload = await recv(reader)
            return answered, overload

        answered, overload = sync(scenario())
        assert answered["distance"] is not None
        assert overload["error"] == "overloaded"
        assert overload["retry_after_ms"] >= 1

    def test_hard_limit_stops_reading_the_socket(self, app):
        async def scenario():
            async with _ManualServer(
                app, max_pending=2, hard_pending=2
            ) as harness:
                reader, writer = await harness.connect()
                await send(writer, {"s": 0, "t": 5})
                await send(writer, {"s": 0, "t": 9})
                await eventually(lambda: harness.server.coalescer.depth == 2)
                await send(writer, {"s": 0, "t": 11})
                await asyncio.sleep(0.05)
                conn = next(iter(harness.server.stats._active.values()))
                # Past the hard limit the reader never picked request 3
                # up — no overload response, just an unread socket.
                assert conn.requests == 2
                assert harness.server.stats.overloaded == 0
                await harness.server.coalescer.flush()
                await eventually(lambda: conn.requests == 3)
                await harness.server.coalescer.flush()
                responses = [await recv(reader) for _ in range(3)]
            return responses

        responses = sync(scenario())
        assert all("distance" in r for r in responses)

    def test_degrade_mode_estimates_instead_of_erroring(self, index, app):
        oracle = VicinityOracle(index)

        async def scenario():
            async with _ManualServer(
                app, max_pending=1, degrade=True
            ) as harness:
                reader, writer = await harness.connect()
                await send(writer, {"s": 0, "t": 5})
                await eventually(lambda: harness.server.coalescer.depth == 1)
                await send(writer, {"s": 0, "t": 9})
                await eventually(lambda: harness.server.stats.degraded == 1)
                await harness.server.coalescer.flush()
                exact = await recv(reader)
                estimate = await recv(reader)
            return exact, estimate

        exact, estimate = sync(scenario())
        assert exact["distance"] == oracle.query(0, 5).distance
        assert estimate["method"] == "estimate"
        assert estimate["degraded"] is True
        # Triangulation through a landmark is an upper bound.
        assert estimate["distance"] >= oracle.query(0, 9).distance

    def test_drain_answers_everything_admitted_then_closes(self, app):
        async def scenario():
            async with _ManualServer(app) as harness:
                reader, writer = await harness.connect()
                await send(writer, {"s": 0, "t": 5})
                await send(writer, {"s": 0, "t": 9})
                await eventually(lambda: harness.server.coalescer.depth == 2)
                drain = asyncio.create_task(harness.server.drain())
                first = await recv(reader)
                second = await recv(reader)
                assert await reader.readline() == b""  # then EOF
                await drain
            return first, second

        first, second = sync(scenario())
        assert first["distance"] is not None and second["distance"] is not None


class TestEstimator:
    def test_estimator_upper_bounds_and_identity(self, index, app):
        oracle = VicinityOracle(index)
        estimate = landmark_estimator(app)
        assert estimate is not None
        assert estimate(7, 7) == (0, 0)
        for s, t in [(0, 5), (3, 9), (10, 200)]:
            value, probes = estimate(s, t)
            assert probes > 0
            assert value >= oracle.query(s, t).distance


# ----------------------------------------------------------------------
# hot reload
# ----------------------------------------------------------------------
class TestReload:
    def test_queued_requests_survive_a_reload_with_zero_drops(
        self, index, engine, tmp_path
    ):
        path = str(tmp_path / "store.flat")
        save_index(index, path)
        pairs = [(0, 5), (5, 0), (3, 9), (10, 200), (4, 4), (7, 99)]
        expected = [r.distance for r in engine.query_batch(pairs)]

        async def scenario():
            app = ServiceApp.from_saved(path, mmap=True)
            async with _ManualServer(app) as harness:
                r1, w1 = await harness.connect()
                r2, w2 = await harness.connect()
                for s, t in pairs[:3]:
                    await send(w1, {"s": s, "t": t})
                for s, t in pairs[3:]:
                    await send(w2, {"s": s, "t": t})
                await eventually(
                    lambda: harness.server.coalescer.depth == len(pairs)
                )
                before = harness.server.app

                control_r, control_w = await harness.connect()
                await send(control_w, {"cmd": "reload", "path": path})
                ack = await recv(control_r)

                assert harness.server.app is not before
                assert harness.server.stats.reloads == 1
                # Everything admitted before the swap is still queued —
                # the flush answers it all through the NEW app.
                await harness.server.coalescer.flush()
                got = [await recv(r1) for _ in range(3)]
                got += [await recv(r2) for _ in range(3)]
                final_app = harness.server.app
            final_app.close()
            return ack, got

        ack, got = sync(scenario())
        assert ack["ok"] is True and ack["n"] == engine.n
        assert all("error" not in r for r in got)
        assert [r["distance"] for r in got] == expected

    def test_failed_reload_keeps_the_old_app_serving(self, index, tmp_path):
        path = str(tmp_path / "store.flat")
        save_index(index, path)

        async def scenario():
            app = ServiceApp.from_saved(path, mmap=True)
            async with _ManualServer(app, coalesce_us=250.0) as harness:
                reader, writer = await harness.connect()
                await send(
                    writer, {"cmd": "reload", "path": str(tmp_path / "nope")}
                )
                failure = await recv(reader)
                assert harness.server.app is app
                assert harness.server.stats.reloads == 0
                await send(writer, {"s": 0, "t": 5})
                answer = await recv(reader)
            app.close()
            return failure, answer

        failure, answer = sync(scenario())
        assert "reload failed" in failure["error"]
        assert answer["distance"] is not None

    def test_reload_requires_a_path(self, app):
        async def scenario():
            async with _ManualServer(app, coalesce_us=250.0) as harness:
                reader, writer = await harness.connect()
                await send(writer, {"cmd": "reload"})
                return await recv(reader)

        assert "path" in sync(scenario())["error"]


# ----------------------------------------------------------------------
# the HTTP facade
# ----------------------------------------------------------------------
async def _http_exchange(reader, writer, method, target, body=None, headers=()):
    payload = b"" if body is None else json.dumps(body).encode()
    head = [f"{method} {target} HTTP/1.1", "Host: test"]
    if payload:
        head.append(f"Content-Length: {len(payload)}")
    head.extend(headers)
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + payload)
    await writer.drain()
    status_line = await reader.readline()
    assert status_line, "connection closed before the status line"
    status = int(status_line.split()[1])
    response_headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        response_headers[name.strip().lower()] = value.strip()
    length = int(response_headers.get("content-length", 0))
    body = json.loads(await reader.readexactly(length)) if length else None
    return status, response_headers, body


class TestHttpServing:
    def test_post_query_get_stats_and_keep_alive(self, index, app):
        oracle = VicinityOracle(index)

        async def scenario():
            # coalesce_us=0 flushes every event-loop turn: HTTP is
            # sequential per connection, so nothing would drive a
            # manual flush between exchanges.
            async with _ManualServer(
                app, transport="http", coalesce_us=0.0
            ) as harness:
                reader, writer = await harness.connect()
                exchanges = [
                    await _http_exchange(
                        reader, writer, "POST", "/query", {"s": 0, "t": 5}
                    ),
                    await _http_exchange(
                        reader, writer, "POST", "/query",
                        {"pairs": [[0, 5], [3, 3]]},
                    ),
                    await _http_exchange(reader, writer, "GET", "/stats"),
                ]
            return exchanges

        (s1, _, single), (s2, _, batch), (s3, _, stats) = sync(scenario())
        assert (s1, s2, s3) == (200, 200, 200)
        assert single["distance"] == oracle.query(0, 5).distance
        assert [r["distance"] for r in batch["results"]] == [
            single["distance"], 0,
        ]
        assert stats["net"]["connections"]["total"] == 1
        assert stats["queries"] == 3

    def test_routing_and_error_statuses(self, app):
        async def scenario():
            async with _ManualServer(
                app, transport="http", coalesce_us=0.0
            ) as harness:
                reader, writer = await harness.connect()
                exchanges = [
                    await _http_exchange(reader, writer, "GET", "/nope"),
                    await _http_exchange(reader, writer, "GET", "/query"),
                    await _http_exchange(
                        reader, writer, "POST", "/query", {"wrong": 1}
                    ),
                    await _http_exchange(
                        reader, writer, "POST", "/query", {"s": 0, "t": 10**9}
                    ),
                ]
            return exchanges

        statuses = [status for status, _, _ in sync(scenario())]
        assert statuses == [404, 405, 400, 400]

    def test_connection_close_is_honoured(self, app):
        async def scenario():
            async with _ManualServer(
                app, transport="http", coalesce_us=0.0
            ) as harness:
                reader, writer = await harness.connect()
                status, headers, body = await _http_exchange(
                    reader, writer, "POST", "/query", {"s": 0, "t": 5},
                    headers=("Connection: close",),
                )
                assert await reader.read() == b""  # server hung up
            return status, headers, body

        status, headers, body = sync(scenario())
        assert status == 200
        assert headers["connection"] == "close"
        assert body["distance"] is not None

    def test_overload_maps_to_503_with_retry_after(self, app):
        async def scenario():
            async with _ManualServer(
                app, transport="http", max_pending=1
            ) as harness:
                # Manual mode: occupy the whole admission budget through
                # a raw offer, then watch HTTP turn the overload into 503.
                assert harness.server.coalescer.offer(0, 5) is not None
                reader, writer = await harness.connect()
                status, headers, body = await _http_exchange(
                    reader, writer, "POST", "/query", {"s": 0, "t": 9}
                )
                await harness.server.coalescer.flush()
            return status, headers, body

        status, headers, body = sync(scenario())
        assert status == 503
        assert body["error"] == "overloaded"
        assert int(headers["retry-after"]) >= 1


# ----------------------------------------------------------------------
# snapshot shape (the satellite regression guard)
# ----------------------------------------------------------------------
#: Keys every pre-net consumer of ``ServiceApp.snapshot()`` relies on.
_LEGACY_SNAPSHOT_KEYS = {
    "engine", "backend", "uptime_s", "queries", "batches", "unanswered",
    "throughput_qps", "latency", "batch_latency", "by_method", "batching",
}


class TestSnapshotShape:
    def test_plain_app_snapshot_keeps_legacy_keys_and_gains_no_net(self, app):
        app.executor.query(0, 5)
        snap = app.snapshot()
        assert _LEGACY_SNAPSHOT_KEYS <= set(snap)
        assert "net" not in snap
        assert "cache" in snap  # from_index defaults to a cache

    def test_net_snapshot_is_purely_additive(self, app):
        async def scenario():
            async with _ManualServer(app, coalesce_us=250.0) as harness:
                reader, writer = await harness.connect()
                await send(writer, {"s": 0, "t": 5})
                await recv(reader)
                return harness.server.snapshot()

        snap = sync(scenario())
        assert _LEGACY_SNAPSHOT_KEYS <= set(snap)
        net = snap["net"]
        assert set(net) == {
            "queue", "requests", "flushes", "queue_wait", "service_time",
            "connections", "reloads", "slo",
        }
        assert net["queue"]["soft_limit"] > 0
        assert net["requests"]["accepted"] == 1
        assert net["connections"]["total"] == 1
        client = net["connections"]["clients"][0]
        assert client["requests"] == 1 and client["pairs"] == 1
        assert client["bytes_in"] > 0

    def test_render_snapshot_with_and_without_net(self, app):
        async def scenario():
            async with _ManualServer(app, coalesce_us=250.0) as harness:
                reader, writer = await harness.connect()
                await send(writer, {"s": 0, "t": 5})
                await recv(reader)
                return harness.server.snapshot()

        with_net = render_snapshot(sync(scenario()))
        assert "net queue" in with_net and "net clients" in with_net
        without_net = render_snapshot(app.snapshot())
        assert "net queue" not in without_net
        assert "queries" in without_net
