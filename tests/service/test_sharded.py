"""The in-process sharded executor must match the §5 simulation."""

import numpy as np
import pytest

from repro.core.config import OracleConfig
from repro.core.oracle import VicinityOracle
from repro.core.parallel import PartitionedOracle
from repro.exceptions import QueryError
from repro.service import BatchExecutor, ResultCache, ShardedService

from tests.conftest import random_connected_graph


@pytest.fixture(scope="module")
def index():
    graph = random_connected_graph(260, 760, seed=51)
    oracle = VicinityOracle.build(
        graph, config=OracleConfig(alpha=4.0, seed=9, fallback="none")
    )
    return oracle.index


@pytest.fixture(scope="module")
def pairs(index):
    rng = np.random.default_rng(4)
    return [tuple(int(x) for x in rng.integers(0, index.n, 2)) for _ in range(300)]


class TestEquivalence:
    @pytest.mark.parametrize("num_shards", [1, 3, 8])
    def test_matches_simulation(self, index, pairs, num_shards):
        simulation = PartitionedOracle(index, num_shards)
        with ShardedService(index, num_shards) as service:
            for s, t in pairs:
                got = service.query(s, t)
                expected = simulation.query(s, t)
                assert (got.distance, got.method, got.probes) == (
                    expected.distance, expected.method, expected.probes
                ), (s, t)

    def test_matches_single_machine_distances(self, index, pairs):
        reference = VicinityOracle(index)
        with ShardedService(index, 4) as service:
            for (s, t), got in zip(pairs, service.query_batch(pairs)):
                expected = reference.query(s, t)
                if expected.method == "fallback":
                    assert got.method == "miss"
                else:
                    assert got.distance == expected.distance

    def test_replicated_tables(self, index, pairs):
        simulation = PartitionedOracle(index, 4, replicate_tables=True)
        with ShardedService(index, 4, replicate_tables=True) as service:
            for s, t in pairs:
                got, expected = service.query(s, t), simulation.query(s, t)
                assert (got.distance, got.method) == (expected.distance, expected.method)


class TestPartitioning:
    def test_each_node_on_exactly_one_shard(self, index):
        with ShardedService(index, 5) as service:
            owners = [service.shard_of(u) for u in range(index.n)]
            assert all(0 <= shard < 5 for shard in owners)
            reports = service.shard_reports()
            assert sum(r.nodes for r in reports) == index.n
            # Flat accounting must match the dict index exactly.
            per_shard = [0] * 5
            for u, vic in enumerate(index.vicinities):
                per_shard[owners[u]] += vic.size
            assert [r.vicinity_entries for r in reports] == per_shard

    def test_tables_on_owner_shard_only(self, index):
        with ShardedService(index, 5) as service:
            expected = [0] * 5
            for landmark in index.tables:
                expected[service.shard_of(landmark)] += index.n
            assert [r.table_entries for r in service.shard_reports()] == expected

    def test_replication_puts_tables_everywhere(self, index):
        with ShardedService(index, 3, replicate_tables=True) as service:
            for report in service.shard_reports():
                assert report.table_entries == len(index.tables) * index.n

    def test_reports_match_simulation(self, index):
        simulation = PartitionedOracle(index, 4)
        with ShardedService(index, 4) as service:
            assert service.shard_reports() == simulation.shard_reports()
            assert service.balance_summary() == simulation.balance_summary()


class TestTraffic:
    def test_message_log_matches_simulation(self, index, pairs):
        simulation = PartitionedOracle(index, 4)
        with ShardedService(index, 4) as service:
            for s, t in pairs:
                service.query(s, t)
                simulation.query(s, t)
            assert service.log.messages == simulation.log.messages
            assert service.log.bytes == simulation.log.bytes
            assert service.log.remote_queries == simulation.log.remote_queries
            assert service.log.local_queries == simulation.log.local_queries

    def test_concurrent_batch_logs_every_query(self, index, pairs):
        with ShardedService(index, 4) as service:
            service.query_batch(pairs)
            log = service.log
            assert log.local_queries + log.remote_queries == len(pairs)


class TestPaths:
    """Sharded ``with_path``: the witness-side chain ships in-response."""

    def test_paths_match_single_machine_exactly(self, pairs):
        """Under the paper's boundary-source kernel the sharded scheme
        scans the same boundary in the same order, so distances,
        witnesses, probes *and spliced paths* must all be identical."""
        graph = random_connected_graph(260, 760, seed=51)
        oracle = VicinityOracle.build(
            graph,
            config=OracleConfig(
                alpha=4.0, seed=9, fallback="none", kernel="boundary-source"
            ),
        )
        reference = VicinityOracle(oracle.index)
        with ShardedService(oracle.index, 4) as service:
            got = service.query_batch(pairs, with_path=True)
        for (s, t), result in zip(pairs, got):
            expected = reference.query(s, t, with_path=True)
            assert result == expected, (s, t)

    def test_paths_are_valid_walks_under_default_kernel(self, index, pairs):
        """The default kernel may pick a different witness, but every
        spliced path must still be a real shortest walk."""
        graph = index.graph
        with ShardedService(index, 4) as service:
            for (s, t), result in zip(pairs, service.query_batch(pairs, with_path=True)):
                if result.distance is None:
                    assert result.path is None
                    continue
                path = result.path
                assert path[0] == s and path[-1] == t
                assert len(path) - 1 == result.distance
                assert all(graph.has_edge(a, b) for a, b in zip(path, path[1:]))

    def test_with_path_logs_chain_bytes(self, index, pairs):
        """A path query ships strictly more bytes, never more messages."""
        with ShardedService(index, 4) as plain:
            plain.query_batch(pairs)
        with ShardedService(index, 4) as pathful:
            pathful.query_batch(pairs, with_path=True)
        assert pathful.log.messages == plain.log.messages
        assert pathful.log.bytes >= plain.log.bytes

    def test_store_paths_false_raises(self):
        graph = random_connected_graph(120, 340, seed=3)
        oracle = VicinityOracle.build(
            graph,
            config=OracleConfig(
                alpha=4.0, seed=9, fallback="none", store_paths=False
            ),
        )
        with ShardedService(oracle.index, 2) as service:
            with pytest.raises(QueryError, match="store_paths"):
                service.query_batch([(0, 1)], with_path=True)


class TestLifecycle:
    def test_query_after_close_raises(self, index):
        service = ShardedService(index, 2)
        service.close()
        with pytest.raises(QueryError):
            service.query(0, 1)

    def test_close_is_idempotent(self, index):
        service = ShardedService(index, 2)
        service.close()
        service.close()

    def test_empty_batch(self, index):
        with ShardedService(index, 2) as service:
            assert service.query_batch([]) == []

    def test_composes_with_batch_executor(self, index, pairs):
        """A cache + dedup front end over the sharded backend."""
        reference = VicinityOracle(index)
        with ShardedService(index, 4) as backend:
            executor = BatchExecutor(backend, cache=ResultCache(512))
            results = executor.run(pairs + pairs)  # heavy repetition
            for (s, t), got in zip(pairs, results):
                expected = reference.query(s, t)
                if expected.method != "fallback":
                    assert got.distance == expected.distance
