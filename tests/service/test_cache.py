"""Landmark-aware LRU result cache."""

import pytest

from repro.core.oracle import CHEAP_METHODS, EXPENSIVE_METHODS, QueryResult
from repro.exceptions import QueryError
from repro.service.cache import ResultCache


def _result(s, t, d, method="intersection", path=None, witness=None):
    return QueryResult(s, t, d, path, method, witness, probes=17)


class TestPolicy:
    def test_caches_expensive_methods_only(self):
        cache = ResultCache(16)
        for method in EXPENSIVE_METHODS:
            assert cache.put(_result(1, 2, 3, method=method))
        for method in CHEAP_METHODS:
            assert not cache.put(_result(3, 4, 1, method=method))
        assert cache.rejected == len(CHEAP_METHODS)

    def test_capacity_validation(self):
        with pytest.raises(QueryError):
            ResultCache(0)

    def test_custom_cacheable_set(self):
        cache = ResultCache(4, cacheable=("fallback",))
        assert not cache.put(_result(1, 2, 3, method="intersection"))
        assert cache.put(_result(1, 2, 3, method="fallback"))


class TestLookup:
    def test_hit_both_orientations(self):
        cache = ResultCache(8)
        cache.put(_result(5, 2, 4, witness=9))
        forward = cache.get(2, 5)
        assert forward.distance == 4 and forward.source == 2 and forward.target == 5
        backward = cache.get(5, 2)
        assert backward.distance == 4 and backward.source == 5 and backward.target == 2
        assert cache.hits == 2 and cache.misses == 0

    def test_mirror_preserves_method_and_reverses_path(self):
        cache = ResultCache(8)
        cache.put(_result(2, 7, 2, path=[2, 4, 7]))
        mirrored = cache.get(7, 2)
        assert mirrored.path == [7, 4, 2]
        assert mirrored.method == "intersection"
        assert mirrored.probes == 0

    def test_need_path_misses_pathless_entries(self):
        cache = ResultCache(8)
        cache.put(_result(1, 2, 3))
        assert cache.get(1, 2, need_path=True) is None
        assert cache.misses == 1
        cache.put(_result(1, 2, 3, path=[1, 9, 2]))
        assert cache.get(1, 2, need_path=True).path == [1, 9, 2]

    def test_miss_counts(self):
        cache = ResultCache(8)
        assert cache.get(1, 2) is None
        assert cache.misses == 1 and cache.hit_rate == 0.0


class TestAsymmetric:
    def test_orientations_are_distinct_entries(self):
        cache = ResultCache(8, symmetric=False)
        cache.put(_result(2, 7, 2))   # directed: d(2,7)=2 ...
        cache.put(_result(7, 2, 5))   # ... but d(7,2)=5
        assert cache.get(2, 7).distance == 2
        assert cache.get(7, 2).distance == 5
        assert len(cache) == 2
        assert (2, 7) in cache and (7, 2) in cache

    def test_no_mirror_answers(self):
        cache = ResultCache(8, symmetric=False)
        cache.put(_result(5, 2, 4))
        assert cache.get(2, 5) is None
        assert cache.misses == 1

    def test_executor_rejects_mismatched_symmetry(self):
        from repro.service.batch import BatchExecutor

        with pytest.raises(QueryError):
            BatchExecutor(object(), cache=ResultCache(8), symmetry=False)
        with pytest.raises(QueryError):
            BatchExecutor(object(), cache=ResultCache(8, symmetric=False))
        BatchExecutor(object(), cache=ResultCache(8, symmetric=False), symmetry=False)


class TestEviction:
    def test_lru_evicts_oldest(self):
        cache = ResultCache(2)
        cache.put(_result(1, 2, 1))
        cache.put(_result(3, 4, 1))
        cache.get(1, 2)  # refresh (1, 2)
        cache.put(_result(5, 6, 1))  # evicts (3, 4)
        assert cache.get(1, 2) is not None
        assert cache.get(3, 4) is None
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_refresh_does_not_grow(self):
        cache = ResultCache(4)
        cache.put(_result(1, 2, 3))
        cache.put(_result(2, 1, 3))  # same canonical pair
        assert len(cache) == 1
        assert cache.insertions == 1


class TestPathPreservation:
    """A path-less re-answer must never downgrade a path-carrying entry.

    Regression: ``put`` used to overwrite unconditionally, so one
    distance-only query turned every later ``need_path=True`` lookup
    for the pair into a permanent miss.
    """

    def test_pathless_put_keeps_stored_path(self):
        cache = ResultCache(8)
        cache.put(_result(2, 7, 2, path=[2, 4, 7]))
        assert cache.put(_result(2, 7, 2))  # distance-only re-answer
        hit = cache.get(2, 7, need_path=True)
        assert hit is not None and hit.path == [2, 4, 7]
        assert cache.path_preserved == 1

    def test_pathless_put_refreshes_lru_position(self):
        cache = ResultCache(2)
        cache.put(_result(1, 2, 3, path=[1, 9, 2]))
        cache.put(_result(3, 4, 1))
        cache.put(_result(1, 2, 3))  # preserved, but must refresh LRU
        cache.put(_result(5, 6, 1))  # evicts (3, 4), not (1, 2)
        assert cache.get(1, 2, need_path=True).path == [1, 9, 2]
        assert cache.get(3, 4) is None

    def test_mirrored_pathless_put_keeps_stored_path(self):
        cache = ResultCache(8)
        cache.put(_result(2, 7, 2, path=[2, 4, 7]))
        assert cache.put(_result(7, 2, 2))  # other orientation, no path
        assert cache.get(2, 7, need_path=True).path == [2, 4, 7]

    def test_changed_distance_replaces_entry(self):
        # Fresher data (a graph change) must win even without a path.
        cache = ResultCache(8)
        cache.put(_result(2, 7, 4, path=[2, 3, 5, 6, 7]))
        cache.put(_result(2, 7, 2))
        assert cache.get(2, 7).distance == 2
        assert cache.get(2, 7, need_path=True) is None

    def test_path_put_upgrades_pathless_entry(self):
        cache = ResultCache(8)
        cache.put(_result(2, 7, 2))
        cache.put(_result(2, 7, 2, path=[2, 4, 7]))
        assert cache.get(2, 7, need_path=True).path == [2, 4, 7]


class TestInvalidation:
    def test_invalidate_single_pair(self):
        cache = ResultCache(8)
        cache.put(_result(1, 2, 3))
        assert cache.invalidate(2, 1)  # either orientation
        assert cache.get(1, 2) is None
        assert not cache.invalidate(1, 2)
        assert cache.invalidated == 1

    def test_invalidate_where_is_selective(self):
        cache = ResultCache(8)
        cache.put(_result(1, 2, 3))
        cache.put(_result(3, 4, 9))
        evicted = cache.invalidate_where(lambda entry: entry.distance > 5)
        assert evicted == 1
        assert cache.get(1, 2) is not None
        assert cache.get(3, 4) is None
        assert cache.snapshot()["invalidated"] == 1

    def test_clear_resets_invalidation_counters(self):
        cache = ResultCache(8)
        cache.put(_result(1, 2, 3))
        cache.invalidate(1, 2)
        cache.clear()
        assert cache.invalidated == 0 and cache.path_preserved == 0


class TestSnapshot:
    def test_snapshot_fields(self):
        cache = ResultCache(4)
        cache.put(_result(1, 2, 3))
        cache.get(1, 2)
        cache.get(8, 9)
        snap = cache.snapshot()
        assert snap["size"] == 1
        assert snap["hits"] == 1 and snap["misses"] == 1
        assert snap["hit_rate"] == 0.5
        assert (1, 2) in cache and (2, 1) in cache


class Test2QAdmission:
    def test_admission_validation(self):
        with pytest.raises(QueryError):
            ResultCache(8, admission="lfu")

    def test_first_touch_lands_on_probation(self):
        cache = ResultCache(8, admission="2q")
        cache.put(_result(1, 2, 3))
        assert (1, 2) in cache
        assert len(cache) == 1
        snap = cache.snapshot()
        assert snap["probation_size"] == 1
        assert snap["promotions"] == 0

    def test_second_put_promotes(self):
        cache = ResultCache(8, admission="2q")
        cache.put(_result(1, 2, 3))
        cache.put(_result(1, 2, 3))
        snap = cache.snapshot()
        assert snap["probation_size"] == 0
        assert snap["promotions"] == 1
        assert cache.get(1, 2).distance == 3

    def test_probation_hit_promotes(self):
        cache = ResultCache(8, admission="2q")
        cache.put(_result(1, 2, 3))
        assert cache.get(1, 2).distance == 3  # promote on touch
        assert cache.snapshot()["promotions"] == 1
        # One-hit wonders can now flood the FIFO without evicting it.
        for k in range(100):
            cache.put(_result(10 + k, 500 + k, 7))
        assert cache.get(1, 2) is not None

    def test_one_hit_wonders_never_reach_protected(self):
        cache = ResultCache(16, admission="2q")
        for k in range(64):
            cache.put(_result(k, 1000 + k, 5))
        snap = cache.snapshot()
        assert snap["promotions"] == 0
        assert snap["probation_size"] <= cache.probation_capacity

    def test_probation_promotion_keeps_richer_path(self):
        cache = ResultCache(8, admission="2q")
        cache.put(_result(1, 2, 3, path=[1, 5, 2]))
        cache.put(_result(1, 2, 3))  # path-less second offer promotes
        hit = cache.get(1, 2, need_path=True)
        assert hit is not None and hit.path == [1, 5, 2]
        assert cache.path_preserved == 1

    def test_invalidate_covers_probation(self):
        cache = ResultCache(8, admission="2q")
        cache.put(_result(1, 2, 3))
        assert cache.invalidate(2, 1)
        assert (1, 2) not in cache

    def test_invalidate_where_covers_probation(self):
        cache = ResultCache(8, admission="2q")
        cache.put(_result(1, 2, 3))
        cache.put(_result(3, 4, 9))
        cache.put(_result(3, 4, 9))  # promoted
        evicted = cache.invalidate_where(lambda r: r.distance == 3)
        assert evicted == 1
        assert (3, 4) in cache and (1, 2) not in cache

    def test_mirrored_orientation_promotes(self):
        cache = ResultCache(8, admission="2q")
        cache.put(_result(2, 1, 3))
        hit = cache.get(1, 2)
        assert hit is not None and (hit.source, hit.target) == (1, 2)

    def test_clear_resets_probation(self):
        cache = ResultCache(8, admission="2q")
        cache.put(_result(1, 2, 3))
        cache.put(_result(1, 2, 3))
        cache.clear()
        assert len(cache) == 0
        assert cache.snapshot()["promotions"] == 0


class TestTTL:
    def _clocked(self, **kwargs):
        now = [0.0]
        cache = ResultCache(8, clock=lambda: now[0], **kwargs)
        return cache, now

    def test_entry_expires_lazily_at_deadline(self):
        cache, now = self._clocked(ttl=10.0)
        cache.put(_result(1, 2, 3))
        now[0] = 9.99
        assert cache.get(1, 2) is not None
        now[0] = 10.0
        assert cache.get(1, 2) is None
        assert cache.expired == 1
        assert cache.snapshot()["expired"] == 1
        assert len(cache) == 0

    def test_per_method_ttl_overrides_default(self):
        cache, now = self._clocked(
            cacheable=("intersection", "fallback:bfs"),
            ttl=100.0,
            ttls={"fallback:bfs": 5.0},
        )
        cache.put(_result(1, 2, 3, method="fallback:bfs"))
        cache.put(_result(3, 4, 2, method="intersection"))
        now[0] = 6.0
        assert cache.get(1, 2) is None  # short-lived fallback expired
        assert cache.get(3, 4) is not None  # intersection still live
        now[0] = 101.0
        assert cache.get(3, 4) is None

    def test_no_ttl_never_expires(self):
        cache, now = self._clocked()
        cache.put(_result(1, 2, 3))
        now[0] = 1e9
        assert cache.get(1, 2) is not None
        assert cache.expired == 0

    def test_reput_restamps_the_deadline(self):
        cache, now = self._clocked(ttl=10.0)
        cache.put(_result(1, 2, 3))
        now[0] = 8.0
        cache.put(_result(1, 2, 3))  # refresh restarts the clock
        now[0] = 15.0
        assert cache.get(1, 2) is not None
        now[0] = 18.0
        assert cache.get(1, 2) is None

    def test_expired_slot_accepts_a_fresh_insert(self):
        cache, now = self._clocked(ttl=10.0)
        cache.put(_result(1, 2, 3))
        now[0] = 20.0
        cache.put(_result(1, 2, 4))
        assert cache.get(1, 2).distance == 4
        assert cache.expired == 1

    def test_ttl_covers_probation_stage(self):
        now = [0.0]
        cache = ResultCache(8, admission="2q", ttl=10.0, clock=lambda: now[0])
        cache.put(_result(1, 2, 3))  # lands on probation
        now[0] = 11.0
        assert cache.get(1, 2) is None
        assert cache.expired == 1
        assert cache.snapshot()["probation_size"] == 0

    def test_invalid_ttl_values_rejected(self):
        with pytest.raises(QueryError):
            ResultCache(8, ttl=0.0)
        with pytest.raises(QueryError):
            ResultCache(8, ttls={"intersection": -1.0})

    def test_clear_drops_deadlines(self):
        cache, now = self._clocked(ttl=10.0)
        cache.put(_result(1, 2, 3))
        cache.clear()
        assert len(cache._expiry) == 0


class TestTinyLFU:
    def test_one_hit_wonder_is_denied_at_capacity(self):
        cache = ResultCache(2, admission="tinylfu")
        cache.put(_result(1, 2, 3))
        cache.put(_result(3, 4, 5))
        for _ in range(3):
            assert cache.get(1, 2) is not None
            assert cache.get(3, 4) is not None
        # A pair seen once cannot out-count either incumbent.
        assert not cache.put(_result(5, 6, 7))
        assert cache.denied == 1
        assert (5, 6) not in cache
        assert cache.get(1, 2) is not None and cache.get(3, 4) is not None
        assert cache.snapshot()["denied"] == 1

    def test_frequent_newcomer_displaces_the_lru_victim(self):
        cache = ResultCache(2, admission="tinylfu")
        cache.put(_result(1, 2, 3))
        cache.put(_result(3, 4, 5))
        cache.get(3, 4)  # (3,4) touched again; (1,2) is the LRU victim
        for _ in range(4):
            cache.get(5, 6)  # misses still feed the sketch: demand seen
        assert cache.put(_result(5, 6, 7))
        assert (5, 6) in cache and (3, 4) in cache
        assert (1, 2) not in cache
        assert cache.denied == 0

    def test_update_of_resident_key_bypasses_the_gate(self):
        cache = ResultCache(2, admission="tinylfu")
        cache.put(_result(1, 2, 3))
        cache.put(_result(3, 4, 5))
        assert cache.put(_result(1, 2, 9))  # refresh, not admission
        assert cache.get(1, 2).distance == 9
        assert cache.denied == 0

    def test_below_capacity_everything_is_admitted(self):
        cache = ResultCache(8, admission="tinylfu")
        for i in range(8):
            assert cache.put(_result(i, i + 100, 1))
        assert cache.denied == 0 and len(cache) == 8

    def test_sketch_counters_saturate_and_age(self):
        from repro.service.cache import _FrequencySketch

        sketch = _FrequencySketch(4)
        for _ in range(100):
            sketch.touch((1, 2))
        assert sketch.estimate((1, 2)) == 15  # saturating 4-bit counters
        before = sketch.estimate((1, 2))
        for i in range(sketch._sample_limit):
            sketch.touch((i, i))  # force an aging halving
        assert sketch.estimate((1, 2)) <= before // 2 + 1

    def test_clear_resets_sketch_and_denied(self):
        cache = ResultCache(2, admission="tinylfu")
        cache.put(_result(1, 2, 3))
        cache.put(_result(3, 4, 5))
        for _ in range(3):
            cache.get(1, 2), cache.get(3, 4)
        cache.put(_result(5, 6, 7))
        assert cache.denied == 1
        cache.clear()
        assert cache.denied == 0
        # The aged-out sketch no longer remembers the old incumbents.
        assert cache._sketch.estimate((1, 2)) == 0

    def test_validation_rejects_unknown_admission(self):
        with pytest.raises(QueryError):
            ResultCache(8, admission="clock")

    def test_snapshot_omits_denied_for_plain_lru(self):
        assert "denied" not in ResultCache(8).snapshot()
        assert "denied" in ResultCache(8, admission="tinylfu").snapshot()
