"""Chaos tests: real worker processes dying under injected faults.

The acceptance bar for the supervision plane, exercised end to end on
the process backend with deterministic fault plans
(:mod:`repro.service.faults`):

* with ``replicas=2``, SIGKILL-ing a worker per shard mid-workload
  loses *zero* admitted queries and the surviving answers are
  bit-identical to an undisturbed run — failover is correctness-
  preserving, not best-effort;
* with ``replicas=1`` and a worker that dies in every generation, the
  shard's circuit breaker opens and queries come back as
  ``method="estimate"`` degraded answers instead of errors;
* a wedged worker can never hang the coordinator past the configured
  deadline — it surfaces as a typed :class:`WorkerTimeout`;
* a worker killed *mid-frame* (request consumed, no response ever
  produced) recovers on both transport planes, with and without
  ``with_path`` payloads.

``fork`` is used throughout for startup speed; the plans are
frame-indexed, so every scenario reproduces exactly.
"""

import time

import numpy as np
import pytest

from repro.core.config import OracleConfig
from repro.core.oracle import VicinityOracle
from repro.exceptions import QueryError, WorkerTimeout
from repro.service import ProcessShardedService, SupervisorConfig

from tests.conftest import random_connected_graph

pytestmark = pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="chaos suite uses the fork start method",
)


@pytest.fixture(scope="module")
def index():
    graph = random_connected_graph(200, 600, seed=51)
    oracle = VicinityOracle.build(
        graph, config=OracleConfig(alpha=4.0, seed=9, fallback="none")
    )
    return oracle.index


@pytest.fixture(scope="module")
def pairs(index):
    rng = np.random.default_rng(4)
    return [tuple(int(x) for x in rng.integers(0, index.n, 2)) for _ in range(200)]


@pytest.fixture(scope="module")
def expected(index, pairs):
    with ProcessShardedService(
        index, 2, start_method="fork", sub_batch=16
    ) as clean:
        plain = clean.query_batch(pairs)
        with_path = clean.query_batch(pairs, with_path=True)
    return {"plain": plain, "with_path": with_path}


def chaos_service(index, **kwargs):
    kwargs.setdefault("start_method", "fork")
    kwargs.setdefault("sub_batch", 16)
    return ProcessShardedService(index, 2, **kwargs)


class TestFailover:
    def test_one_kill_per_shard_loses_nothing(self, index, pairs, expected):
        # Workers 0 and 2 are replica 0 of shards 0 and 1; both die upon
        # receiving their first frame — mid-frame, the harshest case.
        with chaos_service(
            index,
            replicas=2,
            supervise=True,
            faults={
                0: {"kill_after_frames": 1},
                2: {"kill_after_frames": 1},
            },
        ) as svc:
            got = svc.query_batch(pairs)
            stats = svc.transport_stats()["supervisor"]
        assert all(r is not None for r in got), "no admitted query unanswered"
        assert got == expected["plain"], "failover answers must be bit-identical"
        assert stats["worker_deaths"] >= 2
        assert stats["failovers"] >= 2
        assert stats["restarts"] >= 2, "every killed worker restarted"
        assert stats["degraded_pairs"] == 0, "replicas cover: nothing degraded"
        # No collateral damage: the healthy replicas (workers 1 and 3)
        # must never be faulted, and nothing may burn a deadline — a
        # failover recv drains the surviving worker's queue out of
        # dispatch order, and those parked answers must stay usable.
        assert stats["timeouts"] == 0
        assert stats["workers"][1]["faults"] == 0
        assert stats["workers"][3]["faults"] == 0

    def test_restarted_workers_serve_the_next_batch(self, index, pairs, expected):
        with chaos_service(
            index,
            replicas=2,
            supervise=True,
            faults={0: {"kill_after_frames": 1}},
        ) as svc:
            first = svc.query_batch(pairs)
            second = svc.query_batch(pairs)
            stats = svc.transport_stats()["supervisor"]
        assert first == expected["plain"]
        assert second == expected["plain"]
        assert stats["workers"][0]["restarts"] >= 1
        assert all(b["state"] == "closed" for b in stats["breakers"])

    @pytest.mark.parametrize("plane", ["ring", "pipe"])
    @pytest.mark.parametrize("kill_at", [1, 2])
    def test_kill_mid_with_path_frame_both_planes(
        self, index, pairs, expected, plane, kill_at
    ):
        # kill_at=1: dies on its very first frame (mid-frame, nothing
        # ever answered); kill_at=2: answers one frame, dies between
        # sub-batches.  Path payloads make the response frames fat
        # enough to exercise the ring reset path.
        with chaos_service(
            index,
            transport=plane,
            replicas=2,
            supervise=True,
            faults={1: {"kill_after_frames": kill_at}},
        ) as svc:
            got = svc.query_batch(pairs, with_path=True)
            stats = svc.transport_stats()["supervisor"]
        assert got == expected["with_path"]
        assert stats["restarts"] >= 1

    def test_sustained_churn_still_exact(self, index, pairs, expected):
        # Every worker re-kills itself after every restart ("churn"
        # preset semantics) — answers must still be exact as long as
        # the restart budget holds.
        with chaos_service(
            index,
            replicas=2,
            supervise=SupervisorConfig(max_restarts=50),
            faults={"*": {"kill_after_frames": 2, "every_generation": True}},
        ) as svc:
            for _ in range(3):
                assert svc.query_batch(pairs) == expected["plain"]
            stats = svc.transport_stats()["supervisor"]
        assert stats["restarts"] >= 2


class TestDegrade:
    def test_dark_shard_answers_from_estimate(self, index, pairs):
        # replicas=1 and a worker that dies in every generation: once
        # the restart budget is spent the shard is dark, its breaker
        # opens, and queries homed there come back as degraded
        # estimates instead of errors.
        with chaos_service(
            index,
            supervise=SupervisorConfig(
                retries=2, max_restarts=1, breaker_failures=1
            ),
            faults={0: {"kill_after_frames": 1, "every_generation": True}},
        ) as svc:
            got = svc.query_batch(pairs)
            stats = svc.transport_stats()["supervisor"]
            shard_of = svc.shard_of
        assert all(r is not None for r in got)
        estimates = [r for r in got if r.method == "estimate"]
        exact = [r for r in got if r.method != "estimate"]
        assert estimates, "dark-shard queries must be answered degraded"
        assert exact, "the healthy shard keeps answering exactly"
        assert all(shard_of(r.source) == 0 for r in estimates)
        assert all(shard_of(r.source) == 1 for r in exact)
        assert stats["breakers"][0]["state"] == "open"
        assert stats["degraded_pairs"] == len(estimates)
        assert stats["workers"][0]["quarantined"]

    def test_estimate_is_upper_bound_of_exact(self, index, pairs, expected):
        with chaos_service(
            index,
            supervise=SupervisorConfig(
                retries=2, max_restarts=1, breaker_failures=1
            ),
            faults={0: {"kill_after_frames": 1, "every_generation": True}},
        ) as svc:
            got = svc.query_batch(pairs)
        for degraded, truth in zip(got, expected["plain"]):
            if degraded.method != "estimate" or degraded.distance is None:
                continue
            if truth.distance is not None:
                assert degraded.distance >= truth.distance

    def test_degrade_off_turns_dark_shard_into_errors(self, index, pairs):
        with chaos_service(
            index,
            supervise=SupervisorConfig(
                retries=2, max_restarts=1, breaker_failures=1, degrade=False,
            ),
            faults={0: {"kill_after_frames": 1, "every_generation": True}},
        ) as svc:
            with pytest.raises(QueryError):
                svc.query_batch(pairs)


class TestDeadlines:
    def test_stalled_worker_raises_typed_timeout(self, index, pairs):
        # Unsupervised but with a recv deadline: the wedged worker
        # surfaces as a typed WorkerTimeout instead of hanging forever.
        with chaos_service(
            index,
            recv_deadline_s=0.5,
            faults={0: {"stall_at_frame": 1, "stall_s": 60.0}},
        ) as svc:
            start = time.monotonic()
            with pytest.raises(QueryError, match="missed the"):
                svc.query_batch(pairs)
            elapsed = time.monotonic() - start
            # The stalled worker would hold its 60 s sleep through
            # close(); put it down so teardown stays fast.
            svc.kill_worker(0)
        assert elapsed < 10.0, "coordinator must not block past the deadline"

    def test_supervised_stall_fails_over(self, index, pairs, expected):
        with chaos_service(
            index,
            replicas=2,
            supervise=SupervisorConfig(deadline_s=0.5),
            faults={0: {"stall_at_frame": 1, "stall_s": 60.0}},
        ) as svc:
            got = svc.query_batch(pairs)
            stats = svc.transport_stats()["supervisor"]
        assert got == expected["plain"]
        assert stats["timeouts"] >= 1
        assert stats["restarts"] >= 1, "a poisoned worker is put down"


class TestWireFaults:
    def test_corrupt_frame_recovered_by_retry(self, index, pairs, expected):
        # The worker truncates one response on the wire; the size check
        # turns it into a typed fault, the worker is treated as
        # poisoned and the sub-batch retried after restart.
        with chaos_service(
            index,
            supervise=True,
            faults={0: {"corrupt_at_frame": 1}},
        ) as svc:
            got = svc.query_batch(pairs)
            stats = svc.transport_stats()["supervisor"]
        assert got == expected["plain"]
        assert stats["retries"] >= 1

    def test_stale_duplicate_discarded_without_supervision(
        self, index, pairs, expected
    ):
        # A duplicate response wearing seq 0 precedes the real frame;
        # the stream transport's stale rule must discard it even with
        # no supervisor attached.
        with chaos_service(
            index,
            faults={0: {"stale_at_frame": 1}},
        ) as svc:
            got = svc.query_batch(pairs)
            again = svc.query_batch(pairs)
        assert got == expected["plain"]
        assert again == expected["plain"]

    def test_slow_replica_does_not_change_answers(self, index, pairs, expected):
        with chaos_service(
            index,
            replicas=2,
            supervise=True,
            faults={0: {"slow_s": 0.002}},
        ) as svc:
            got = svc.query_batch(pairs)
        assert got == expected["plain"]


class TestServiceAppIntegration:
    def test_snapshot_carries_supervisor_block(self, index, pairs):
        from repro.service import ServiceApp, render_snapshot

        app = ServiceApp.from_index(
            index,
            shards=2,
            backend="procpool",
            start_method="fork",
            sub_batch=16,
            replicas=2,
            supervise=True,
            faults={0: {"kill_after_frames": 1}},
        )
        try:
            app.executor.run(pairs)
            snap = app.snapshot()
        finally:
            app.close()
        sup = snap["shards"]["supervisor"]
        assert sup["restarts"] >= 1
        text = render_snapshot(snap)
        assert "shard supervisor" in text
