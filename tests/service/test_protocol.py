"""Pure wire-framing codecs: JSON lines and minimal HTTP/1.1."""

import json

import pytest

from repro.service.protocol import (
    MAX_BODY_BYTES,
    MAX_DEADLINE_MS,
    MAX_HEAD_BYTES,
    ProtocolError,
    decode_json_line,
    http_response,
    json_line,
    parse_http_head,
    validate_deadline_ms,
)


class TestJsonLines:
    def test_round_trip(self):
        obj = {"s": 3, "t": 17, "path": True}
        line = json_line(obj)
        assert line.endswith(b"\n")
        assert decode_json_line(line) == obj

    def test_compact_encoding(self):
        assert json_line({"a": 1, "b": 2}) == b'{"a":1,"b":2}\n'

    def test_bad_json_raises_protocol_error(self):
        with pytest.raises(ProtocolError) as err:
            decode_json_line(b"{nope\n")
        assert err.value.status == 400

    def test_undecodable_bytes_raise(self):
        with pytest.raises(ProtocolError):
            decode_json_line(b"\xff\xfe\n")


class TestParseHttpHead:
    def test_request_line_and_headers(self):
        head = (
            b"POST /query HTTP/1.1\r\n"
            b"Host: localhost\r\n"
            b"Content-Length: 12\r\n\r\n"
        )
        request = parse_http_head(head)
        assert request.method == "POST"
        assert request.target == "/query"
        assert request.version == "HTTP/1.1"
        assert request.headers["host"] == "localhost"
        assert request.content_length == 12

    def test_header_names_lowercased_values_stripped(self):
        request = parse_http_head(b"GET /stats HTTP/1.1\r\nX-Custom:  v  \r\n\r\n")
        assert request.headers["x-custom"] == "v"

    def test_missing_length_means_empty_body(self):
        assert parse_http_head(b"GET /stats HTTP/1.1\r\n\r\n").content_length == 0

    def test_bad_request_line(self):
        with pytest.raises(ProtocolError):
            parse_http_head(b"GET /stats\r\n\r\n")

    def test_unsupported_version(self):
        with pytest.raises(ProtocolError):
            parse_http_head(b"GET /stats HTTP/2\r\n\r\n")

    def test_malformed_header(self):
        with pytest.raises(ProtocolError):
            parse_http_head(b"GET /stats HTTP/1.1\r\nno-colon-here\r\n\r\n")

    def test_empty_head(self):
        with pytest.raises(ProtocolError):
            parse_http_head(b"\r\n\r\n")

    def test_oversized_head_is_413(self):
        head = b"GET /stats HTTP/1.1\r\nX-Pad: " + b"x" * MAX_HEAD_BYTES
        with pytest.raises(ProtocolError) as err:
            parse_http_head(head)
        assert err.value.status == 413

    def test_bad_content_length_values(self):
        for raw in ("abc", "-1"):
            request = parse_http_head(
                f"POST /query HTTP/1.1\r\nContent-Length: {raw}\r\n\r\n".encode()
            )
            with pytest.raises(ProtocolError):
                request.content_length

    def test_oversized_body_is_413(self):
        request = parse_http_head(
            f"POST /query HTTP/1.1\r\nContent-Length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode()
        )
        with pytest.raises(ProtocolError) as err:
            request.content_length
        assert err.value.status == 413


class TestKeepAlive:
    def test_http11_defaults_to_keep_alive(self):
        assert parse_http_head(b"GET /stats HTTP/1.1\r\n\r\n").keep_alive

    def test_http11_close_opts_out(self):
        head = b"GET /stats HTTP/1.1\r\nConnection: Close\r\n\r\n"
        assert not parse_http_head(head).keep_alive

    def test_http10_defaults_to_close(self):
        assert not parse_http_head(b"GET /stats HTTP/1.0\r\n\r\n").keep_alive

    def test_http10_keep_alive_opts_in(self):
        head = b"GET /stats HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"
        assert parse_http_head(head).keep_alive


class TestHttpResponse:
    def test_frame_shape(self):
        frame = http_response({"ok": True})
        head, _, payload = frame.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        assert lines[0] == "HTTP/1.1 200 OK"
        assert "Content-Type: application/json" in lines
        assert f"Content-Length: {len(payload)}" in lines
        assert "Connection: keep-alive" in lines
        assert json.loads(payload) == {"ok": True}

    def test_close_and_extra_headers(self):
        frame = http_response(
            {"error": "overloaded"},
            status=503,
            keep_alive=False,
            extra_headers=(("Retry-After", "2"),),
        )
        head = frame.partition(b"\r\n\r\n")[0].decode("latin-1")
        assert head.startswith("HTTP/1.1 503 Service Unavailable")
        assert "Connection: close" in head
        assert "Retry-After: 2" in head

    def test_response_parses_back_through_head_parser(self):
        # A response frame is not a request, but the header block is the
        # same grammar — the declared length must match the payload.
        frame = http_response({"distance": 4, "s": 0, "t": 5})
        head, _, payload = frame.partition(b"\r\n\r\n")
        headers = dict(
            line.split(": ", 1) for line in head.decode().split("\r\n")[1:]
        )
        assert int(headers["Content-Length"]) == len(payload)


# ----------------------------------------------------------------------
# adversarial inputs: every hostile frame is a typed ProtocolError
# ----------------------------------------------------------------------
#: Hostile JSONL request lines.  None of these may escape as a raw
#: traceback (json's ValueError, int's digit-limit ValueError,
#: UnicodeDecodeError, RecursionError) — the server turns a typed
#: ProtocolError into an error response and keeps the connection.
_HOSTILE_LINES = [
    pytest.param(b"{nope\n", id="invalid-json"),
    pytest.param(b"\xff\xfe\xfd\n", id="non-utf8-bytes"),
    pytest.param(b'{"s": NaN, "t": 1}\n', id="nan-literal"),
    pytest.param(b'{"s": Infinity, "t": 1}\n', id="infinity-literal"),
    pytest.param(b'{"s": -Infinity, "t": 1}\n', id="neg-infinity-literal"),
    pytest.param(
        b'{"s": ' + b"9" * 5000 + b', "t": 1}\n', id="oversized-int-literal"
    ),
    pytest.param(b"[" * 10000 + b"]" * 10000 + b"\n", id="deep-nesting"),
    pytest.param(b'"just a string"extra\n', id="trailing-garbage"),
]

#: Hostile HTTP request heads (as read up to the blank line).
_HOSTILE_HEADS = [
    pytest.param(b"\r\n\r\n", id="empty-head"),
    pytest.param(b"POST /query\r\n\r\n", id="truncated-request-line"),
    pytest.param(b"POST\r\n\r\n", id="method-only"),
    pytest.param(b"POST /query SMTP/1.0\r\n\r\n", id="wrong-protocol"),
    pytest.param(b"POST /query HTTP/2.0\r\n\r\n", id="unsupported-version"),
    pytest.param(
        b"POST /query HTTP/1.1\r\nno-colon-here\r\n\r\n", id="malformed-header"
    ),
    pytest.param(
        b"POST /query HTTP/1.1\r\n: empty-name\r\n\r\n", id="empty-header-name"
    ),
    pytest.param(b"A" * (MAX_HEAD_BYTES + 1), id="oversized-head"),
]

#: Hostile deadline_ms values (decoded JSON values, not wire bytes).
_HOSTILE_DEADLINES = [
    pytest.param("100", id="string-number"),
    pytest.param(True, id="boolean"),
    pytest.param([100], id="list"),
    pytest.param(0, id="zero"),
    pytest.param(-5, id="negative"),
    pytest.param(MAX_DEADLINE_MS + 1, id="past-the-cap"),
    pytest.param(10**400, id="overflows-float"),
    pytest.param(float("nan"), id="nan-value"),
    pytest.param(float("inf"), id="infinite-value"),
]


class TestAdversarialInputs:
    @pytest.mark.parametrize("line", _HOSTILE_LINES)
    def test_hostile_jsonl_is_a_typed_protocol_error(self, line):
        with pytest.raises(ProtocolError) as err:
            decode_json_line(line)
        assert err.value.status == 400
        str(err.value)  # the message renders without raising

    @pytest.mark.parametrize("head", _HOSTILE_HEADS)
    def test_hostile_http_head_is_a_typed_protocol_error(self, head):
        with pytest.raises(ProtocolError) as err:
            parse_http_head(head)
        assert err.value.status in (400, 413)

    @pytest.mark.parametrize("value", _HOSTILE_DEADLINES)
    def test_hostile_deadline_ms_is_a_typed_protocol_error(self, value):
        with pytest.raises(ProtocolError):
            validate_deadline_ms(value)

    @pytest.mark.parametrize(
        "value, expected",
        [(None, None), (250, 250.0), (0.5, 0.5), (MAX_DEADLINE_MS, float(MAX_DEADLINE_MS))],
    )
    def test_sane_deadline_ms_passes(self, value, expected):
        assert validate_deadline_ms(value) == expected

    def test_deadline_header_is_validated(self):
        head = b"POST /query HTTP/1.1\r\nX-Deadline-Ms: bogus\r\n\r\n"
        with pytest.raises(ProtocolError):
            parse_http_head(head).deadline_ms
        head = b"POST /query HTTP/1.1\r\nX-Deadline-Ms: 250\r\n\r\n"
        assert parse_http_head(head).deadline_ms == 250.0
        assert parse_http_head(b"GET /stats HTTP/1.1\r\n\r\n").deadline_ms is None
