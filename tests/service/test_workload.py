"""Workload generators: determinism, skew, batching."""

import pytest

from repro.exceptions import QueryError
from repro.service.workload import in_batches, uniform_pairs, zipf_pairs


class TestUniform:
    def test_shape_and_range(self):
        pairs = uniform_pairs(50, 200, seed=1)
        assert len(pairs) == 200
        assert all(0 <= s < 50 and 0 <= t < 50 for s, t in pairs)

    def test_deterministic(self):
        assert uniform_pairs(50, 100, seed=3) == uniform_pairs(50, 100, seed=3)

    def test_validation(self):
        with pytest.raises(QueryError):
            uniform_pairs(0, 5)


class TestZipf:
    def test_draws_from_bounded_pool(self):
        pairs = zipf_pairs(100, 1000, pool=20, seed=2)
        assert len(pairs) == 1000
        assert len(set(pairs)) <= 20

    def test_skew_concentrates_mass(self):
        pairs = zipf_pairs(100, 4000, exponent=1.5, pool=100, seed=5)
        from collections import Counter

        top = Counter(pairs).most_common(10)
        top_mass = sum(count for _, count in top)
        assert top_mass > 4000 * 0.4  # head-heavy by construction

    def test_zero_exponent_is_uniform_over_pool(self):
        pairs = zipf_pairs(100, 3000, exponent=0.0, pool=10, seed=6)
        from collections import Counter

        counts = Counter(pairs)
        assert max(counts.values()) < 3000 * 0.2

    def test_deterministic(self):
        assert zipf_pairs(80, 500, seed=9) == zipf_pairs(80, 500, seed=9)

    def test_default_pool_is_fraction_of_count(self):
        pairs = zipf_pairs(1000, 800, seed=4)
        assert len(set(pairs)) <= 100  # count // 8

    def test_validation(self):
        with pytest.raises(QueryError):
            zipf_pairs(10, 10, exponent=-1)
        with pytest.raises(QueryError):
            zipf_pairs(10, 10, pool=0)


class TestBatches:
    def test_chunks_and_remainder(self):
        chunks = list(in_batches(range(10), 4))
        assert [len(c) for c in chunks] == [4, 4, 2]
        assert [x for chunk in chunks for x in chunk] == list(range(10))

    def test_exact_multiple(self):
        assert [len(c) for c in in_batches(range(8), 4)] == [4, 4]

    def test_validation(self):
        with pytest.raises(QueryError):
            list(in_batches(range(5), 0))
