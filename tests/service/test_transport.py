"""Transport-plane parity and plumbing: inline vs pipe-frame vs ring.

The refactor invariant pinned here: the *same* saved-index semantics —
results (distance, method, witness, probes, path) and MessageLog
wire-byte accounting — must be byte-identical no matter which transport
moved the frames, including under sub-batch chunking and replica
routing.  Plus the failure-mode contracts: stale frames are discarded,
dead workers surface as ``QueryError`` (never a hang), and a ring left
mid-handshake by a dead producer must not hang ``drain()``.
"""

import struct
import threading

import numpy as np
import pytest

from repro.core.config import OracleConfig
from repro.core.oracle import QueryResult, VicinityOracle
from repro.exceptions import QueryError
from repro.io.shm import RingBuffer
from repro.service import (
    ProcessShardedService,
    ReplicaRouter,
    RequestFrame,
    ResponseFrame,
    ShardedService,
    create_shard_backend,
)

from tests.conftest import random_connected_graph

SHARDS = 3

#: Every transport configuration that must agree byte-for-byte.
CONFIGS = [
    ("threads", {}),
    ("threads", {"sub_batch": 17, "replicas": 2}),
    ("procpool", {"transport": "pipe"}),
    ("procpool", {"transport": "ring"}),
    ("procpool", {"transport": "ring", "sub_batch": 23, "replicas": 2}),
]


@pytest.fixture(scope="module")
def index():
    graph = random_connected_graph(240, 700, seed=23)
    oracle = VicinityOracle.build(
        graph, config=OracleConfig(alpha=4.0, seed=5, fallback="none")
    )
    return oracle.index


@pytest.fixture(scope="module")
def pairs(index):
    rng = np.random.default_rng(11)
    return [
        (int(rng.integers(0, index.n)), int(rng.integers(0, index.n)))
        for _ in range(300)
    ]


def log_totals(service):
    log = service.log
    return (log.messages, log.bytes, log.local_queries, log.remote_queries)


class TestTransportParity:
    def test_results_and_accounting_identical_across_transports(self, index, pairs):
        reference = None
        for backend, kwargs in CONFIGS:
            service = create_shard_backend(index, SHARDS, backend=backend, **kwargs)
            try:
                flat = service.query_batch(pairs)
                pathy = service.query_batch(pairs[:80], with_path=True)
                single = service.query(*pairs[0], with_path=True)
                totals = log_totals(service)
            finally:
                service.close()
            outcome = (flat, pathy, single, totals)
            if reference is None:
                reference = outcome
                continue
            label = f"{backend} {kwargs}"
            assert flat == reference[0], label
            assert pathy == reference[1], label
            assert single == reference[2], label
            assert totals == reference[3], label

    def test_transport_stats_report_the_plane(self, index, pairs):
        with ShardedService(index, SHARDS) as threads:
            threads.query_batch(pairs[:60])
            stats = threads.transport_stats()
            assert stats["transport"] == "inline"
            assert stats["replicas"] == 1
            # One request frame per involved shard: 32-byte header plus
            # 16 bytes per pair, exactly what RequestFrame.nbytes says.
            per_shard = {row["shard"]: row for row in stats["per_shard"]}
            by_home = {}
            for s, _ in pairs[:60]:
                by_home[threads.shard_of(s)] = by_home.get(threads.shard_of(s), 0) + 1
            for shard_id, count in by_home.items():
                row = per_shard[shard_id]
                assert row["pairs"] == count
                assert row["req_frame_bytes"] == 32 + 16 * count
                assert row["resp_frame_bytes"] > 0
                assert row["depth"] == [0]
            assert stats["execute_s"] > 0.0

    def test_ring_stats_expose_occupancy(self, index, pairs):
        with ProcessShardedService(index, 2, transport="ring") as service:
            service.query_batch(pairs[:40])
            stats = service.transport_stats()
            assert stats["transport"] == "ring"
            assert stats["ring_capacity"] > 0
            assert len(stats["ring_occupancy"]) == 2
            for occupancy in stats["ring_occupancy"]:
                assert occupancy == {"requests": 0, "responses": 0}

    def test_replicas_fan_out_workers(self, index, pairs):
        with ProcessShardedService(
            index, 2, transport="ring", replicas=2, sub_batch=8
        ) as service:
            expected = None
            for _ in range(3):
                got = service.query_batch(pairs[:120])
                expected = got if expected is None else expected
                assert got == expected
            assert len(service._procs) == 4
            stats = service.transport_stats()
            assert stats["replicas"] == 2
            for row in stats["per_shard"]:
                assert row["depth"] == [0, 0]


class TestWireFrames:
    def test_request_frame_round_trip(self):
        frame = RequestFrame(41, [(3, 9), (0, 7), (5, 5)], True)
        clone = RequestFrame.from_bytes(frame.to_bytes())
        assert clone.seq == 41
        assert clone.with_path is True
        assert clone.pair_list() == [(3, 9), (0, 7), (5, 5)]
        assert frame.nbytes == len(frame.to_bytes()) == 32 + 3 * 16

    def test_response_frame_round_trip(self):
        results = [
            QueryResult(0, 0, 0, [0], "identical", None, 0),
            QueryResult(1, 2, 3.5, [1, 4, 2], "intersection", 4, 7),
            QueryResult(2, 9, None, None, "miss", None, 5),
        ]
        frame = ResponseFrame.from_results(
            7, results, 2, 1, [16, 24],
            cache_stats={"size": 1, "lookups": 4, "hits": 2, "misses": 2,
                         "insertions": 1, "evictions": 0},
            exec_ns=12345,
        )
        clone = ResponseFrame.from_bytes(frame.to_bytes())
        assert clone.ok and clone.seq == 7
        assert (clone.local, clone.remote, clone.exec_ns) == (2, 1, 12345)
        assert clone.trips.tolist() == [16, 24]
        assert clone.cache_stats == frame.cache_stats
        decoded = clone.to_results([(0, 0), (1, 2), (2, 9)], integral=False)
        assert decoded == results
        # Integral stores decode to exact ints.
        int_frame = ResponseFrame.from_results(
            1, [QueryResult(1, 2, 3, None, "intersection", 4, 7)], 0, 1, []
        )
        back = ResponseFrame.from_bytes(int_frame.to_bytes())
        (res,) = back.to_results([(1, 2)], integral=True)
        assert res.distance == 3 and isinstance(res.distance, int)

    def test_error_frame_round_trip(self):
        frame = ResponseFrame.error_frame(9, "KeyError: 'boom'")
        clone = ResponseFrame.from_bytes(frame.to_bytes())
        assert not clone.ok
        assert clone.seq == 9
        assert clone.error == "KeyError: 'boom'"
        with pytest.raises(Exception, match="error frame"):
            clone.to_results([], integral=True)


class TestRingBuffer:
    def _ring(self, capacity=256):
        buf = bytearray(RingBuffer.region_bytes(capacity))
        ring = RingBuffer(buf, 0, capacity)
        ring.reset()
        return ring

    def test_round_trip_and_wraparound(self):
        ring = self._ring(96)
        for i in range(50):  # cycles the ring many times over
            payload = bytes([i % 251]) * (i % 60)
            ring.push(payload)
            assert ring.pop() == payload
        assert not ring.poll()

    def test_frame_larger_than_capacity_streams(self):
        ring = self._ring(64)
        payload = bytes(range(256)) * 8  # 2 KiB through a 64-byte ring
        got = {}

        def consume():
            got["frame"] = ring.pop(timeout=5.0)

        thread = threading.Thread(target=consume)
        thread.start()
        ring.push(payload, timeout=5.0)
        thread.join(timeout=5.0)
        assert got["frame"] == payload

    def test_drain_mid_handshake_does_not_hang(self):
        """A dead producer can publish a length prefix and nothing else;
        drain() must give up on the partial frame, not wait for it."""
        ring = self._ring(128)
        ring.push(b"whole frame")
        prefix = np.frombuffer(struct.pack("<Q", 100), dtype=np.uint8)
        head = int(ring._head[0])
        pos = head % ring.capacity
        ring._data[pos:pos + 8] = prefix
        ring._head[0] = head + 8
        assert ring.drain(timeout=0.05) == 1  # the whole frame only
        with pytest.raises(TimeoutError):
            ring.pop(timeout=0.05)

    def test_pop_timeout_on_empty(self):
        ring = self._ring()
        with pytest.raises(TimeoutError):
            ring.pop(timeout=0.05)


class TestWorkerFailure:
    @pytest.mark.parametrize("transport", ["pipe", "ring"])
    def test_dead_worker_raises_instead_of_hanging(self, index, pairs, transport):
        service = ProcessShardedService(index, 2, transport=transport)
        try:
            baseline = service.query_batch(pairs[:20])
            assert baseline
            victim = service._procs[0]
            victim.kill()
            victim.join(timeout=5)
            with pytest.raises(QueryError, match="died"):
                for _ in range(5):  # every shard must eventually touch worker 0
                    service.query_batch(pairs[:40])
        finally:
            service.close()  # must return promptly despite the corpse

    def test_inline_unknown_seq_raises(self, index):
        with ShardedService(index, 2) as service:
            with pytest.raises(QueryError, match="no in-flight frame"):
                service._transport.recv(0, 999)


class TestReplicaRouter:
    def test_picks_least_loaded_replica(self):
        router = ReplicaRouter(1, 3)
        first = router.pick(0)
        router.dispatched(0, first, 100, 0)
        second = router.pick(0)
        assert second != first
        router.dispatched(0, second, 10, 0)
        assert router.pick(0) not in (first,)  # 100-deep replica never chosen
        router.completed(0, first, 100, 0)
        snapshot = router.snapshot()
        assert snapshot["per_shard"][0]["pairs"] == 110
        assert sum(snapshot["per_shard"][0]["depth"]) == 10

    def test_round_robin_on_ties(self):
        router = ReplicaRouter(1, 2)
        seen = {router.pick(0) for _ in range(4)}
        assert seen == {0, 1}
