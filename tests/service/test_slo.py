"""Deadline-aware serving: budgets, the degrade ladder, adaptive limits.

The deterministic core (deadlines, the completion predictor, the AIMD
limiter, the ladder walk) runs against a fake clock — no sleeps, no
timing races.  The network-level tests reuse the manual-flush idiom of
``test_net.py``: ``coalesce_us=None`` disables the window so the test
decides exactly when dispatch happens.

The regression guard at the bottom pins the tentpole's compatibility
contract: a request that carries no deadline — on a server given no
deadline configuration — takes byte-for-byte the same response path it
took before this layer existed.
"""

import asyncio
import json

import pytest

from repro.core.config import OracleConfig
from repro.core.oracle import VicinityOracle
from repro.exceptions import QueryError
from repro.service import NetServer, ServiceApp, ShardedService
from repro.service.net import Coalescer, _DeadlineMiss
from repro.service.server import encode_result
from repro.service.slo import (
    AIMDLimiter,
    CompletionPredictor,
    Deadline,
    SloConfig,
    SloController,
    parse_ladder,
)
from repro.service.supervisor import SupervisorConfig

from tests.conftest import random_connected_graph


@pytest.fixture(scope="module")
def index():
    graph = random_connected_graph(240, 700, seed=31)
    oracle = VicinityOracle.build(
        graph, config=OracleConfig(alpha=4.0, seed=3, fallback="bidirectional")
    )
    return oracle.index


@pytest.fixture()
def app(index):
    service = ServiceApp.from_index(index)
    yield service
    service.close()


def sync(coro, timeout=30.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


async def send(writer, obj):
    writer.write(json.dumps(obj).encode() + b"\n")
    await writer.drain()


async def recv(reader):
    line = await reader.readline()
    assert line, "connection closed while awaiting a response"
    return json.loads(line)


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class _Server:
    """A started NetServer in manual-flush mode plus client plumbing."""

    def __init__(self, app, **kwargs):
        kwargs.setdefault("coalesce_us", None)
        self.server = NetServer(app, port=0, **kwargs)
        self._conns = []

    async def __aenter__(self):
        await self.server.start()
        return self

    async def __aexit__(self, *exc):
        await self.server.drain()
        for _, writer in self._conns:
            writer.close()

    async def connect(self):
        reader, writer = await asyncio.open_connection(
            self.server.host, self.server.port
        )
        self._conns.append((reader, writer))
        return reader, writer


# ----------------------------------------------------------------------
# the pure pieces
# ----------------------------------------------------------------------
class TestParseLadder:
    def test_default_ladder(self):
        assert parse_ladder("exact,estimate,shed") == ("exact", "estimate", "shed")

    def test_whitespace_and_sequences(self):
        assert parse_ladder(" exact , shed ") == ("exact", "shed")
        assert parse_ladder(("exact", "estimate")) == ("exact", "estimate")

    @pytest.mark.parametrize(
        "bad",
        ["", "estimate,exact", "exact,exact", "exact,turbo", "shed"],
    )
    def test_rejects_bad_ladders(self, bad):
        with pytest.raises(QueryError):
            parse_ladder(bad)


class TestDeadline:
    def test_budget_accounting(self):
        clock = FakeClock()
        deadline = Deadline(0.5, clock=clock)
        assert deadline.remaining() == pytest.approx(0.5)
        assert not deadline.expired
        clock.advance(0.2)
        assert deadline.remaining() == pytest.approx(0.3)
        assert deadline.elapsed() == pytest.approx(0.2)
        clock.advance(0.4)
        assert deadline.expired
        assert deadline.remaining() == pytest.approx(-0.1)

    def test_clamp_takes_the_tighter_bound(self):
        clock = FakeClock()
        deadline = Deadline(0.1, clock=clock)
        assert deadline.clamp(5.0) == pytest.approx(0.1)
        assert deadline.clamp(0.02) == pytest.approx(0.02)
        assert deadline.clamp(None) == pytest.approx(0.1)
        clock.advance(1.0)  # expired: the floor keeps waits positive
        assert deadline.clamp(5.0) == pytest.approx(1e-3)


class TestPredictor:
    def test_cold_model_admits_everything(self):
        predictor = CompletionPredictor()
        assert predictor.predict_s(depth=10_000) == 0.0

    def test_prediction_scales_with_depth(self):
        predictor = CompletionPredictor()
        for _ in range(20):
            predictor.observe_execute(0.010, items=10)  # 1 ms per item
        flat = predictor.predict_s(depth=0)
        deep = predictor.predict_s(depth=100)
        assert deep > flat
        assert deep - flat == pytest.approx(100 * predictor.ewma_item_s)
        assert predictor.execute_tail_s() >= 0.010 * 0.99


class TestAIMDLimiter:
    def test_additive_increase_multiplicative_decrease(self):
        clock = FakeClock()
        limiter = AIMDLimiter(initial=100, floor=4, cooldown_s=0.05, clock=clock)
        assert limiter.limit == 100
        for _ in range(250):
            limiter.on_ok()
        grown = limiter.limit
        assert grown > 100
        clock.advance(1.0)
        limiter.on_miss()
        assert limiter.limit == pytest.approx(grown * 0.5, abs=1)

    def test_cooldown_folds_a_burst_of_misses_into_one_cut(self):
        clock = FakeClock()
        limiter = AIMDLimiter(initial=128, floor=4, cooldown_s=0.05, clock=clock)
        limiter.on_miss()
        limiter.on_miss()  # same congestion event: inside the cooldown
        assert limiter.limit == 64
        clock.advance(0.1)
        limiter.on_miss()
        assert limiter.limit == 32
        assert limiter.decreases == 2

    def test_floor_and_ceiling(self):
        clock = FakeClock()
        limiter = AIMDLimiter(
            initial=8, floor=4, ceiling=16, cooldown_s=0.0, clock=clock
        )
        for _ in range(500):
            clock.advance(1.0)
            limiter.on_miss()
        assert limiter.limit == 4
        for _ in range(5000):
            limiter.on_ok()
        assert limiter.limit == 16

    def test_validation(self):
        with pytest.raises(QueryError):
            AIMDLimiter(initial=10, floor=0)
        with pytest.raises(QueryError):
            AIMDLimiter(initial=10, decrease=1.5)
        with pytest.raises(QueryError):
            AIMDLimiter(initial=10, increase=0)
        with pytest.raises(QueryError):
            AIMDLimiter(initial=10, floor=8, ceiling=2)


class TestController:
    def _controller(self, clock, **config):
        return SloController(
            SloConfig(**config), soft_limit=64, hard_limit=256, clock=clock
        )

    def test_request_deadline_beats_the_default(self):
        clock = FakeClock()
        ctl = self._controller(clock, default_deadline_ms=100.0)
        assert ctl.deadline_for(None).budget_s == pytest.approx(0.1)
        assert ctl.deadline_for(25.0).budget_s == pytest.approx(0.025)
        ctl = self._controller(clock)
        assert ctl.deadline_for(None) is None

    def test_admit_degrades_when_the_queue_blows_the_budget(self):
        clock = FakeClock()
        ctl = self._controller(clock)
        for _ in range(20):
            ctl.predictor.observe_execute(0.010, items=10)  # ~1 ms/item
        # 5 ms budget behind a 100-deep queue (~100 ms drain): degrade.
        tight = Deadline(0.005, clock=clock)
        assert ctl.admit(tight, depth=100) == "estimate"
        assert ctl.stage_misses["queue"] == 1
        # The same queue with a 1 s budget admits.
        loose = Deadline(1.0, clock=clock)
        assert ctl.admit(loose, depth=100) == "exact"

    def test_probe_escapes_a_poisoned_predictor(self):
        # One catastrophic execute sample makes the predictor degrade
        # everything at admission; without probes nothing dispatches,
        # so no fresh sample ever corrects it.  Every probe_every-th
        # consecutive miss must be admitted anyway.
        clock = FakeClock()
        ctl = self._controller(clock, probe_every=4)
        ctl.predictor.observe_execute(10.0, items=1)
        rungs = [
            ctl.admit(Deadline(0.05, clock=clock), depth=0) for _ in range(8)
        ]
        assert rungs == ["estimate"] * 3 + ["exact"] + ["estimate"] * 3 + ["exact"]
        assert ctl.probes == 2
        assert ctl.snapshot()["predictor"]["probes"] == 2
        # A fitting prediction resets the streak.
        ctl.predictor = CompletionPredictor()  # cold model admits
        assert ctl.admit(Deadline(0.05, clock=clock), depth=0) == "exact"
        assert ctl._miss_streak == 0

    def test_probing_can_be_disabled(self):
        clock = FakeClock()
        ctl = self._controller(clock, probe_every=0)
        ctl.predictor.observe_execute(10.0, items=1)
        rungs = [
            ctl.admit(Deadline(0.05, clock=clock), depth=0) for _ in range(64)
        ]
        assert set(rungs) == {"estimate"}
        assert ctl.probes == 0
        with pytest.raises(QueryError):
            SloConfig(probe_every=-1)

    def test_ladder_walk_is_config_driven(self):
        clock = FakeClock()
        ctl = self._controller(clock, ladder="exact,shed")
        assert ctl.rung_after("exact") == "shed"
        ctl = self._controller(clock)
        assert ctl.rung_after("exact") == "estimate"
        assert ctl.rung_after("estimate") == "shed"
        assert ctl.rung_after("shed") == "shed"

    def test_completion_feeds_hits_misses_and_limiter(self):
        clock = FakeClock()
        ctl = self._controller(clock, adaptive_limit=True, slo_p99_ms=50.0)
        before = ctl.limiter.limit
        met = Deadline(1.0, clock=clock)
        clock.advance(0.01)
        assert ctl.note_completion(met) is True
        assert ctl.deadline_hits == 1 and ctl.limiter.limit >= before
        late = Deadline(0.005, clock=clock)
        clock.advance(0.02)
        assert ctl.note_completion(late) is False
        assert ctl.deadline_misses == 1
        assert ctl.limiter.decreases == 1

    def test_slo_target_counts_as_congestion_even_when_deadline_met(self):
        clock = FakeClock()
        ctl = self._controller(clock, adaptive_limit=True, slo_p99_ms=10.0)
        deadline = Deadline(1.0, clock=clock)
        clock.advance(0.5)  # met its own deadline, blew the p99 target
        assert ctl.note_completion(deadline) is True
        assert ctl.limiter.decreases == 1

    def test_adaptive_soft_limit_reaches_the_coalescer(self, app):
        async def scenario():
            clock = FakeClock()
            ctl = SloController(
                SloConfig(adaptive_limit=True, limit_floor=4),
                soft_limit=100, hard_limit=400, clock=clock,
            )
            coalescer = Coalescer(
                lambda pairs, with_path: [], window_us=None,
                soft_limit=100, hard_limit=400, slo=ctl,
            )
            assert coalescer.soft_limit_now() == 100
            ctl.limiter.on_miss()
            assert coalescer.soft_limit_now() == 50
            # The static soft limit is untouched — the hard limit and
            # its TCP backpressure semantics stay where they were.
            assert coalescer.soft_limit == 100
            assert coalescer.hard_limit == 400

        sync(scenario())


# ----------------------------------------------------------------------
# deadline propagation through the coalescer
# ----------------------------------------------------------------------
class TestCoalescerDeadlines:
    def test_expired_request_never_reaches_the_backend(self):
        async def scenario():
            clock = FakeClock()
            ctl = SloController(SloConfig(), clock=clock)
            calls = []

            def runner(pairs, with_path, budget_s=None):
                calls.append(list(pairs))
                return [None] * len(pairs)

            coalescer = Coalescer(runner, window_us=None, slo=ctl, clock=clock)
            deadline = Deadline(0.010, clock=clock)
            future = coalescer.offer(0, 1, deadline=deadline)
            live = coalescer.offer(2, 3)  # no deadline: must still run
            clock.advance(0.050)  # the 10 ms budget dies in the queue
            await coalescer.flush()
            await coalescer.close()
            return calls, future.result(), live.result()

        calls, expired, alive = sync(scenario())
        assert calls == [[(2, 3)]]
        assert isinstance(expired, _DeadlineMiss) and expired.stage == "dispatch"
        assert alive is None  # the stub runner's answer, delivered

    def test_deadline_lane_carries_budget_and_others_do_not(self):
        async def scenario():
            clock = FakeClock()
            ctl = SloController(SloConfig(), clock=clock)
            budgets = []

            def runner(pairs, with_path, budget_s=None):
                budgets.append((list(pairs), budget_s))
                return [None] * len(pairs)

            coalescer = Coalescer(runner, window_us=None, slo=ctl, clock=clock)
            coalescer.offer(0, 1, deadline=Deadline(0.250, clock=clock))
            coalescer.offer(2, 3, deadline=Deadline(0.900, clock=clock))
            coalescer.offer(4, 5)
            await coalescer.flush()
            await coalescer.close()
            return budgets

        budgets = sync(scenario())
        by_budget = {budget: pairs for pairs, budget in budgets}
        # The unbounded lane must dispatch with no budget at all.
        assert by_budget[None] == [(4, 5)]
        (bounded,) = [b for b in by_budget if b is not None]
        # The bounded lane runs under its tightest member's residual.
        assert bounded == pytest.approx(0.250)
        assert sorted(by_budget[bounded]) == [(0, 1), (2, 3)]

    def test_tight_deadline_flushes_before_the_window(self, app):
        async def scenario():
            # A 0.5 s window would sit on a 20 ms deadline for half a
            # second; the deadline burst must dispatch long before that.
            server = NetServer(
                app, port=0, coalesce_us=500_000.0,
            )
            await server.start()
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            await send(writer, {"s": 0, "t": 5, "deadline_ms": 20.0})
            response = await asyncio.wait_for(recv(reader), 0.4)
            snap = server.snapshot()["net"]["slo"]
            writer.close()
            await server.drain()
            return response, snap

        response, snap = sync(scenario())
        assert "distance" in response
        assert snap["ladder"]["early_flushes"] >= 1


# ----------------------------------------------------------------------
# the degrade ladder at the network edge
# ----------------------------------------------------------------------
class TestLadderResponses:
    def test_hopeless_deadline_degrades_to_estimate(self, app):
        async def scenario():
            async with _Server(app, coalesce_us=250.0) as harness:
                reader, writer = await harness.connect()
                # 1 µs of budget is spent before admission even runs.
                await send(writer, {"s": 0, "t": 5, "deadline_ms": 0.001})
                response = await recv(reader)
                return response, harness.server.snapshot()["net"]["slo"]

        response, snap = sync(scenario())
        assert response["method"] == "estimate"
        assert response["degraded"] is True
        assert response["s"] == 0 and response["t"] == 5
        assert snap["ladder"]["taken"]["estimate"] == 1
        assert snap["deadline"]["requests"] == 1

    def test_ladder_without_estimate_sheds_with_retry_hint(self, app):
        async def scenario():
            async with _Server(
                app, coalesce_us=250.0, slo=SloConfig(ladder="exact,shed")
            ) as harness:
                reader, writer = await harness.connect()
                await send(writer, {"s": 0, "t": 5, "deadline_ms": 0.001})
                response = await recv(reader)
                return response, harness.server.snapshot()["net"]["slo"]

        response, snap = sync(scenario())
        assert response["error"] == "deadline"
        assert response["retry_after_ms"] >= 1
        assert snap["ladder"]["taken"]["shed"] == 1

    def test_batch_degrades_whole_not_mixed(self, app):
        async def scenario():
            async with _Server(app, coalesce_us=250.0) as harness:
                reader, writer = await harness.connect()
                await send(
                    writer,
                    {"pairs": [[0, 5], [3, 9]], "deadline_ms": 0.001},
                )
                response = await recv(reader)
                return response

        response = sync(scenario())
        assert len(response["results"]) == 2
        assert all(r["method"] == "estimate" for r in response["results"])
        assert all(r["degraded"] is True for r in response["results"])

    def test_late_exact_answer_is_degraded_not_returned(self, app):
        """Mid-execute expiry: the exact result exists but arrived late."""

        async def scenario():
            server = NetServer(app, coalesce_us=None, port=0)
            conn = server.stats.connect("test", "jsonl")
            clock = FakeClock()
            deadline = Deadline(0.005, clock=clock)
            future = asyncio.get_running_loop().create_future()
            future.set_result(app.executor.query(0, 5))
            clock.advance(0.050)  # the batch took 50 ms against a 5 ms budget
            response = await server._await_single(
                future, False, conn=conn, pair=(0, 5), deadline=deadline
            )
            return response, server.slo.snapshot()

        response, snap = sync(scenario())
        assert response["method"] == "estimate"
        assert response["degraded"] is True
        assert snap["deadline"]["misses"] == 1
        assert snap["deadline"]["misses_by_stage"]["execute"] == 1

    def test_default_deadline_applies_to_bare_requests(self, app):
        async def scenario():
            async with _Server(
                app, coalesce_us=250.0, slo=SloConfig(default_deadline_ms=0.001)
            ) as harness:
                reader, writer = await harness.connect()
                await send(writer, {"s": 0, "t": 5})  # no deadline_ms
                response = await recv(reader)
                return response

        response = sync(scenario())
        assert response["degraded"] is True and response["method"] == "estimate"

    def test_http_deadline_header_and_503_shed(self, app):
        async def scenario():
            async with _Server(
                app, transport="http", coalesce_us=250.0,
                slo=SloConfig(ladder="exact,shed"),
            ) as harness:
                reader, writer = await harness.connect()
                payload = json.dumps({"s": 0, "t": 5}).encode()
                head = (
                    f"POST /query HTTP/1.1\r\nHost: t\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    f"X-Deadline-Ms: 0.001\r\n\r\n"
                ).encode()
                writer.write(head + payload)
                await writer.drain()
                status_line = await reader.readline()
                status = int(status_line.split()[1])
                headers = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b""):
                        break
                    name, _, value = line.decode().partition(":")
                    headers[name.strip().lower()] = value.strip()
                body = json.loads(
                    await reader.readexactly(int(headers["content-length"]))
                )
                return status, headers, body

        status, headers, body = sync(scenario())
        assert status == 503
        assert body["error"] == "deadline"
        assert int(headers["retry-after"]) >= 1


# ----------------------------------------------------------------------
# budget propagation into the shard coordinator
# ----------------------------------------------------------------------
class TestShardBudget:
    def test_exhausted_budget_degrades_to_estimates(self, index):
        pairs = [(0, 9), (40, 130), (7, 201)]
        with ShardedService(index, 2) as service:
            exact = service.query_batch(pairs)
            answers = service.query_batch(pairs, budget_s=0.0)
            stats = service.transport_stats()["slo"]
        assert all(r.method == "estimate" for r in answers)
        # The estimate is the Potamias upper bound: never below exact.
        for estimate, truth in zip(answers, exact):
            assert estimate.distance >= truth.distance
        assert stats["budget_batches"] == 1
        assert stats["expired_pairs"] == len(pairs)
        assert stats["degraded_pairs"] == len(pairs)

    def test_generous_budget_answers_exactly(self, index):
        pairs = [(0, 9), (40, 130)]
        with ShardedService(index, 2) as service:
            unbudgeted = service.query_batch(pairs)
            budgeted = service.query_batch(pairs, budget_s=30.0)
            stats = service.transport_stats()["slo"]
        assert budgeted == unbudgeted
        assert stats["expired_pairs"] == 0
        assert stats["budget_batches"] == 1

    def test_slo_counters_always_present(self, index):
        with ShardedService(index, 2) as service:
            stats = service.transport_stats()["slo"]
        assert set(stats) == {
            "budget_batches", "clamped_waits", "expired_pairs",
            "degraded_pairs", "skipped_retries",
        }

    def test_budget_miss_trips_no_breaker(self, index):
        with ShardedService(index, 2, supervise=True) as service:
            service.query_batch([(0, 9), (40, 130)], budget_s=0.0)
            sup = service.transport_stats()["supervisor"]
        assert all(b["state"] == "closed" for b in sup["breakers"])
        assert sup["restarts"] == 0 and sup["worker_deaths"] == 0


class TestRetryFits:
    def test_unbounded_residual_always_fits(self):
        config = SupervisorConfig()
        assert config.retry_fits(1, None) is True

    def test_residual_must_cover_backoff_plus_floor(self):
        config = SupervisorConfig(backoff_base_s=0.01, backoff_max_s=0.25)
        # attempt 1 backs off 10 ms: 50 ms of residual fits, 15 ms does not.
        assert config.retry_fits(1, 0.050) is True
        assert config.retry_fits(1, 0.015) is False
        # attempt 3 backs off 40 ms: the bar rises with the attempt.
        assert config.retry_fits(3, 0.045) is False
        assert config.retry_fits(3, 0.060) is True


# ----------------------------------------------------------------------
# retry jitter and the idle timeout
# ----------------------------------------------------------------------
class TestRetryJitter:
    def test_jitter_spreads_within_the_band(self, app):
        async def scenario():
            server = NetServer(app, coalesce_us=None, port=0)
            base = server.coalescer.retry_after_ms()
            samples = {server._retry_after_ms() for _ in range(200)}
            return base, samples

        base, samples = sync(scenario())
        assert all(
            base * 0.75 - 1 <= sample <= base * 1.25 + 1 for sample in samples
        )
        assert len(samples) > 1  # it actually jitters

    def test_zero_jitter_is_the_raw_estimate(self, app):
        async def scenario():
            server = NetServer(app, coalesce_us=None, port=0, retry_jitter=0.0)
            return server.coalescer.retry_after_ms(), server._retry_after_ms()

        base, jittered = sync(scenario())
        assert jittered == base

    def test_jitter_validation(self, app):
        async def scenario():
            with pytest.raises(QueryError):
                NetServer(app, port=0, retry_jitter=1.5)

        sync(scenario())


class TestIdleTimeout:
    def test_silent_jsonl_client_gets_error_frame_then_eof(self, app):
        async def scenario():
            async with _Server(app, idle_timeout_s=0.05) as harness:
                reader, writer = await harness.connect()
                response = await asyncio.wait_for(recv(reader), 5.0)
                eof = await asyncio.wait_for(reader.readline(), 5.0)
                return response, eof, harness.server.stats.idle_closed

        response, eof, closed = sync(scenario())
        assert response["error"] == "idle timeout"
        assert response["idle_timeout_s"] == pytest.approx(0.05)
        assert eof == b""
        assert closed == 1

    def test_silent_http_client_gets_408(self, app):
        async def scenario():
            async with _Server(
                app, transport="http", idle_timeout_s=0.05
            ) as harness:
                reader, writer = await harness.connect()
                status_line = await asyncio.wait_for(reader.readline(), 5.0)
                return int(status_line.split()[1])

        assert sync(scenario()) == 408

    def test_active_client_is_left_alone(self, app):
        async def scenario():
            async with _Server(
                app, coalesce_us=250.0, idle_timeout_s=0.2
            ) as harness:
                reader, writer = await harness.connect()
                for _ in range(3):
                    await asyncio.sleep(0.05)  # always inside the timeout
                    await send(writer, {"s": 0, "t": 5})
                    response = await recv(reader)
                    assert "distance" in response
                return harness.server.stats.idle_closed

        assert sync(scenario()) == 0

    def test_validation(self, app):
        async def scenario():
            with pytest.raises(QueryError):
                NetServer(app, port=0, idle_timeout_s=0.0)

        sync(scenario())


# ----------------------------------------------------------------------
# the compatibility pin: no deadline, no difference
# ----------------------------------------------------------------------
class TestNoDeadlineRegression:
    def test_single_response_bytes_match_the_direct_encoding(self, app):
        """The deadline-free path answers exactly what PR 4..9 answered."""

        async def scenario():
            async with _Server(app, coalesce_us=250.0) as harness:
                reader, writer = await harness.connect()
                await send(writer, {"s": 0, "t": 5})
                return await recv(reader)

        response = sync(scenario())
        expected = encode_result(app.executor.query(0, 5), False)
        assert response == json.loads(json.dumps(expected))

    def test_batch_and_path_responses_match(self, app):
        async def scenario():
            async with _Server(app, coalesce_us=250.0) as harness:
                reader, writer = await harness.connect()
                await send(writer, {"pairs": [[0, 5], [3, 9]]})
                batch = await recv(reader)
                await send(writer, {"s": 0, "t": 9, "path": True})
                withpath = await recv(reader)
                return batch, withpath

        batch, withpath = sync(scenario())
        expected = [
            encode_result(r, False)
            for r in app.executor.run([(0, 5), (3, 9)])
        ]
        assert batch == json.loads(json.dumps({"results": expected}))
        assert withpath["path"] == encode_result(
            app.executor.query(0, 9, with_path=True), True
        )["path"]

    def test_deadline_free_traffic_records_no_slo_activity(self, app):
        async def scenario():
            async with _Server(app, coalesce_us=250.0) as harness:
                reader, writer = await harness.connect()
                await send(writer, {"s": 0, "t": 5})
                await recv(reader)
                return harness.server.snapshot()["net"]["slo"]

        snap = sync(scenario())
        assert snap["deadline"]["requests"] == 0
        assert snap["deadline"]["hits"] == 0 and snap["deadline"]["misses"] == 0
        assert all(count == 0 for count in snap["ladder"]["taken"].values())
        assert "limiter" not in snap  # adaptive limiter defaults off

    def test_backend_sees_no_budget_keyword_without_deadlines(self, app):
        async def scenario():
            seen = []
            original = app.executor.run

            def spy(pairs, *, with_path=False, budget_s=None):
                seen.append(budget_s)
                return original(pairs, with_path=with_path, budget_s=budget_s)

            app.executor.run = spy
            try:
                async with _Server(app, coalesce_us=250.0) as harness:
                    reader, writer = await harness.connect()
                    await send(writer, {"s": 0, "t": 5})
                    await recv(reader)
            finally:
                app.executor.run = original
            return seen

        assert sync(scenario()) == [None]


# ----------------------------------------------------------------------
# deterministic latency fault presets (the SLO drill's fault plans)
# ----------------------------------------------------------------------
class TestLatencyFaults:
    def test_delay_preset_is_a_persistent_slow_replica(self):
        from repro.service.faults import FaultPlan

        plan = FaultPlan.parse("delay:1:5")
        rule = plan.rule_for(1)
        assert rule.slow_s == pytest.approx(0.005)
        assert rule.every_generation is True
        assert plan.rule_for(0) is None
        wild = FaultPlan.parse("delay:*")  # all workers, default 1 ms
        assert wild.rule_for(7).slow_s == pytest.approx(0.001)

    def test_jitter_preset_round_trips_through_the_spec(self):
        from repro.service.faults import FaultPlan

        plan = FaultPlan.parse("jitter:*:4")
        rule = plan.rule_for(3)
        assert rule.jitter_s == pytest.approx(0.004)
        assert rule.slow_s == 0.0
        # The spec rides in the worker meta dict: it must survive the trip.
        again = FaultPlan.from_spec(plan.spec())
        assert again.rule_for(3).jitter_s == pytest.approx(0.004)

    def test_bad_presets_are_typed_errors(self):
        from repro.service.faults import FaultPlan

        for bad in ("delay", "delay:x", "jitter:0:x", "turbo:1"):
            with pytest.raises(QueryError):
                FaultPlan.parse(bad)

    def test_jitter_fraction_is_deterministic_and_bounded(self):
        from repro.service.faults import jitter_fraction

        samples = [jitter_fraction(w, i) for w in range(4) for i in range(64)]
        assert all(0.0 <= s < 1.0 for s in samples)
        assert samples == [
            jitter_fraction(w, i) for w in range(4) for i in range(64)
        ]
        # It actually spreads: not all frames sleep the same fraction.
        assert max(samples) - min(samples) > 0.5
