#!/usr/bin/env python3
"""Directed follow-graphs (§5, research challenge 2).

Twitter-style networks are directed: "who can reach whom, and through
which retweet chain?" is an asymmetric question.  This example builds
the directed oracle on a reciprocity-calibrated follow graph and shows
forward versus backward reachability for the same user pair.

Run:  python examples/directed_follow_graph.py
"""

import numpy as np

from repro.core.directed import DirectedVicinityOracle
from repro.datasets.social import generate_directed


def main() -> None:
    graph = generate_directed("flickr", scale=0.001, seed=31)
    print(f"follow graph: {graph.n:,} users, {graph.num_arcs:,} follows")
    reciprocal = 2 * (graph.num_arcs - graph.as_undirected().num_edges)
    print(f"reciprocated follow pairs: ~{reciprocal // 2:,}\n")

    oracle = DirectedVicinityOracle.build(graph, alpha=4.0, seed=37,
                                          vicinity_floor=0.5)
    print(f"directed index ready ({oracle.landmark_ids.size} landmarks)\n")

    rng = np.random.default_rng(2)
    shown = 0
    while shown < 5:
        a, b = (int(x) for x in rng.integers(0, graph.n, 2))
        forward = oracle.query(a, b, with_path=True)
        backward = oracle.query(b, a)
        if forward.distance is None and backward.distance is None:
            continue
        shown += 1
        print(f"u{a} -> u{b}: {forward.distance} hop(s)"
              f"   |   u{b} -> u{a}: {backward.distance} hop(s)")
        if forward.path:
            print("    forward chain: " + " -> ".join(f"u{v}" for v in forward.path))
        if forward.distance != backward.distance:
            print("    (asymmetric, as directed reachability should be)")
        print()


if __name__ == "__main__":
    main()
