#!/usr/bin/env python3
"""Unbiased distance-distribution estimation (§1's research use-case).

"To generate unbiased samples for distance-based graph analysis
experiments, it is often desirable to obtain the shortest distance
between each pair of nodes in a randomly sampled set" — exactly the
workload the paper's own evaluation uses (§2.3).  This example compares
the oracle-driven estimate of the distance distribution against exact
BFS ground truth, and reports the speed difference.

Run:  python examples/research_sampling.py
"""

import time
from collections import Counter

import numpy as np

from repro import VicinityOracle, datasets
from repro.experiments.workloads import sample_pair_workload
from repro.graph.traversal.bfs import bfs_distances


def main() -> None:
    graph = datasets.generate("flickr", scale=0.002, seed=21)
    print(f"network: {graph!r}")

    oracle = VicinityOracle.build(graph, alpha=4.0, seed=23)
    workload = sample_pair_workload(graph, 60, rng=29)
    print(f"workload: {workload.num_pairs:,} unbiased pairs "
          f"from {workload.nodes.size} sampled nodes\n")

    # Oracle pass.
    started = time.perf_counter()
    histogram: Counter = Counter()
    for s, t in workload.pairs():
        distance = oracle.distance(s, t)
        if distance is not None:
            histogram[int(distance)] += 1
    oracle_seconds = time.perf_counter() - started

    # Exact pass (one BFS per sampled source — the classic approach).
    started = time.perf_counter()
    exact: Counter = Counter()
    nodes = workload.nodes.tolist()
    for i, s in enumerate(nodes):
        dist = bfs_distances(graph, s)
        for t in nodes[i + 1:]:
            if dist[t] >= 0:
                exact[int(dist[t])] += 1
    bfs_seconds = time.perf_counter() - started

    total = sum(histogram.values())
    total_exact = sum(exact.values())
    print("hop  oracle-estimate  exact")
    for hop in sorted(set(histogram) | set(exact)):
        ours = histogram.get(hop, 0) / total
        ref = exact.get(hop, 0) / total_exact
        bar = "#" * int(40 * ref)
        print(f"{hop:3d}  {ours:14.4f}  {ref:.4f}  {bar}")

    mean_ours = sum(h * c for h, c in histogram.items()) / total
    mean_exact = sum(h * c for h, c in exact.items()) / total_exact
    print(f"\nmean distance: oracle {mean_ours:.3f} vs exact {mean_exact:.3f}")
    print(f"coverage: {total / workload.num_pairs:.2%} of pairs answered by the index")
    print(f"time: oracle {oracle_seconds:.2f}s vs per-source BFS {bfs_seconds:.2f}s "
          f"({bfs_seconds / oracle_seconds:.1f}x)")


if __name__ == "__main__":
    main()
