#!/usr/bin/env python3
"""Referral paths in a professional network (the paper's §1 motivation).

"In professional networks like LinkedIn, it is desirable to find a
short path from a job seeker to a potential employer."  This example
builds a labelled professional network, indexes it once, and serves
referral-chain lookups: who should introduce whom, through whom, and
how long the chain is.

Run:  python examples/social_referrals.py
"""

import numpy as np

from repro import VicinityOracle
from repro.datasets.chung_lu import chung_lu_graph, powerlaw_weights
from repro.exceptions import UnreachableError
from repro.graph.components import largest_component
from repro.graph.labels import LabelEncoder


def build_professional_network(num_people: int = 4000, seed: int = 3):
    """A power-law contact graph with human-readable member names."""
    rng = np.random.default_rng(seed)
    weights = powerlaw_weights(num_people, exponent=2.4, mean_degree=14, rng=rng)
    graph = chung_lu_graph(weights, rng=rng)
    graph, originals = largest_component(graph)
    encoder = LabelEncoder()
    for new_id in range(graph.n):
        encoder.encode(f"member-{int(originals[new_id]):05d}")
    return graph, encoder


def main() -> None:
    graph, people = build_professional_network()
    print(f"professional network: {graph.n:,} members, {graph.num_edges:,} ties")

    oracle = VicinityOracle.build(graph, alpha=4.0, seed=11)
    print(f"index ready ({oracle.index.landmarks.size} landmarks)\n")

    rng = np.random.default_rng(1)
    for _ in range(4):
        seeker_id, employer_id = (int(x) for x in rng.integers(0, graph.n, 2))
        seeker = people.decode(seeker_id)
        employer = people.decode(employer_id)
        try:
            chain = oracle.path(seeker_id, employer_id)
        except UnreachableError:
            print(f"{seeker} has no route to {employer}")
            continue
        degrees = len(chain) - 1
        names = " -> ".join(people.decode_many(chain))
        print(f"{seeker} is {degrees} introduction(s) away from {employer}:")
        print(f"    {names}")
        if degrees >= 2:
            first_intro = people.decode(chain[1])
            print(f"    ask {first_intro} for the first introduction\n")
        else:
            print("    direct contact - no introduction needed\n")

    # Batch screening: rank candidate employers by referral distance.
    seeker_id = int(rng.integers(0, graph.n))
    candidates = [int(x) for x in rng.integers(0, graph.n, 12)]
    ranked = sorted(
        (oracle.distance(seeker_id, c) or float("inf"), c) for c in candidates
    )
    print(f"closest opportunities for {people.decode(seeker_id)}:")
    for distance, candidate in ranked[:5]:
        print(f"    {people.decode(candidate)}: {distance} hop(s)")


if __name__ == "__main__":
    main()
