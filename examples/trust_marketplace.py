#!/usr/bin/env python3
"""Distance-based seller trust in a social marketplace (§1, ref [15]).

"In social auction sites, distance and paths can be used to identify
more trustworthy sellers."  This example scores marketplace sellers by
their social distance to the buyer (closer = more accountable), shows
the trust chain, and — because listings change constantly — uses the
dynamic oracle to absorb new friendships without rebuilding.

Run:  python examples/trust_marketplace.py
"""

import numpy as np

from repro.core.dynamic import DynamicVicinityOracle
from repro.datasets.chung_lu import chung_lu_graph, powerlaw_weights
from repro.graph.components import largest_component

#: Trust model: direct friends are fully trusted; each extra hop halves
#: trust (a standard social-decay model).
def trust_score(distance):
    if distance is None:
        return 0.0
    return 0.5 ** max(distance - 1, 0)


def main() -> None:
    rng = np.random.default_rng(5)
    weights = powerlaw_weights(3000, exponent=2.5, mean_degree=12, rng=rng)
    graph, _ = largest_component(chung_lu_graph(weights, rng=rng))
    print(f"marketplace social graph: {graph.n:,} users, {graph.num_edges:,} ties")

    oracle = DynamicVicinityOracle.build(graph, alpha=4.0, seed=13)
    print("trust index ready\n")

    buyer = int(rng.integers(0, graph.n))
    sellers = [int(x) for x in rng.integers(0, graph.n, 10)]

    print(f"buyer u{buyer}: ranking {len(sellers)} sellers by social trust")
    scored = []
    for seller in sellers:
        result = oracle.query(buyer, seller, with_path=True)
        scored.append((trust_score(result.distance), result, seller))
    scored.sort(reverse=True, key=lambda item: item[0])
    for score, result, seller in scored[:5]:
        chain = (
            " -> ".join(f"u{v}" for v in result.path) if result.path else "(no chain)"
        )
        print(f"    u{seller}: trust={score:.3f} (distance {result.distance})")
        print(f"        vouching chain: {chain}")

    # A new friendship forms mid-session; absorb it incrementally and
    # watch a seller's trust improve.
    _score, best_result, best_seller = scored[0]
    if best_result.distance and best_result.distance > 1:
        print(f"\nbuyer u{buyer} befriends u{best_seller} directly ...")
        oracle.add_edge(buyer, best_seller)
        updated = oracle.query(buyer, best_seller)
        print(
            f"    distance {best_result.distance} -> {updated.distance}; "
            f"trust now {trust_score(updated.distance):.3f}"
        )
    print(f"\nindex staleness after updates: {oracle.staleness():.4f} "
          "(re-sample when this approaches 1)")


if __name__ == "__main__":
    main()
