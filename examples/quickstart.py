#!/usr/bin/env python3
"""Quickstart: build a vicinity oracle and answer shortest-path queries.

Generates a LiveJournal-like synthetic social network, runs the offline
phase (landmark sampling + vicinity construction, §2.2), then answers
point-to-point queries with Algorithm 1 (§3.1) — exact distances and
paths in microseconds, from ~4*sqrt(n) entries per node.

Run:  python examples/quickstart.py
"""

import time

import numpy as np

from repro import VicinityOracle, datasets


def main() -> None:
    # 1. A social network.  Swap in your own edge list with
    #    repro.graph.graph_from_edges or repro.io.read_edgelist.
    graph = datasets.generate("livejournal", scale=0.001, seed=42)
    print(f"network: {graph!r}")

    # 2. Offline phase: alpha = 4 is the paper's operating point.
    started = time.perf_counter()
    oracle = VicinityOracle.build(graph, alpha=4.0, seed=7)
    print(f"offline phase: {time.perf_counter() - started:.1f}s "
          f"({oracle.index.landmarks.size} landmarks)")
    print(oracle.stats().summary())
    print()

    # 3. Online phase: exact distances and paths.
    rng = np.random.default_rng(0)
    print("sample queries:")
    for _ in range(5):
        s, t = (int(x) for x in rng.integers(0, graph.n, 2))
        started = time.perf_counter()
        result = oracle.query(s, t, with_path=True)
        micros = (time.perf_counter() - started) * 1e6
        path = " -> ".join(map(str, result.path)) if result.path else "-"
        print(f"  d({s}, {t}) = {result.distance}  [{result.method}, "
              f"{result.probes} probes, {micros:.0f} us]  path: {path}")

    # 4. The trade-off the paper reports (§3.2).
    print()
    print(oracle.memory().summary())


if __name__ == "__main__":
    main()
