#!/usr/bin/env python3
"""Weighted networks: tie-strength as edge cost.

Social analyses often weight ties (1 / interaction count, so frequent
contacts are "closer").  The library supports weighted graphs with the
guarantees that survive Theorem 1's weighted caveat (see README):
answers are never underestimates, exact under the radius condition, and
the bidirectional-Dijkstra fallback covers every miss exactly.  This
example quantifies how often the pure intersection answer is exact on a
weighted social graph.

Run:  python examples/weighted_tie_strength.py
"""

import numpy as np

from repro import VicinityOracle
from repro.core.config import OracleConfig
from repro.datasets.chung_lu import chung_lu_graph, powerlaw_weights
from repro.graph.builder import graph_from_arrays
from repro.graph.components import largest_component
from repro.graph.traversal.dijkstra import dijkstra_distances


def build_weighted_social_graph(n: int = 2000, seed: int = 51):
    """Power-law topology with interaction-frequency edge costs."""
    rng = np.random.default_rng(seed)
    weights = powerlaw_weights(n, exponent=2.5, mean_degree=12, rng=rng)
    base, _ = largest_component(chung_lu_graph(weights, rng=rng))
    src, dst, _ = base.edge_arrays()
    # Tie cost = 1 / interactions; interactions ~ Zipf-ish.
    interactions = rng.zipf(2.0, size=src.size).astype(np.float64)
    costs = 1.0 / np.minimum(interactions, 50.0)
    return graph_from_arrays(src, dst, n=base.n, weights=costs)


def main() -> None:
    graph = build_weighted_social_graph()
    print(f"weighted network: {graph!r}")

    oracle = VicinityOracle.build(
        graph,
        config=OracleConfig(alpha=4.0, seed=53, fallback="bidirectional"),
    )
    print(f"index ready ({oracle.index.landmarks.size} landmarks)\n")

    rng = np.random.default_rng(3)
    sources = [int(x) for x in rng.integers(0, graph.n, 6)]
    exact = inexact = 0
    for s in sources:
        truth = dijkstra_distances(graph, s)
        for t in (int(x) for x in rng.integers(0, graph.n, 40)):
            result = oracle.query(s, t)
            if result.distance is None:
                continue
            if abs(result.distance - truth[t]) < 1e-9:
                exact += 1
            else:
                inexact += 1

    print(f"checked {exact + inexact} weighted queries:")
    print(f"    exact      : {exact}")
    print(f"    overshoots : {inexact}  (weighted Theorem-1 caveat; "
          "never underestimates)")

    s, t = sources[0], (sources[0] + graph.n // 2) % graph.n
    result = oracle.query(s, t, with_path=True)
    if result.path:
        cost = sum(
            graph.edge_weight(a, b) for a, b in zip(result.path, result.path[1:])
        )
        print(f"\nexample strongest-tie route u{s} -> u{t}: "
              f"{len(result.path) - 1} hops, total cost {cost:.3f}")
        print("    " + " -> ".join(f"u{v}" for v in result.path))


if __name__ == "__main__":
    main()
