#!/usr/bin/env python3
"""Serving the oracle from multiple machines (§5, research challenge 3).

The paper asks whether vicinity intersection can be parallelised
without replicating the data structure.  This example partitions a
built index across simulated machines, shows the per-machine memory
budget shrinking with the shard count, and measures the network traffic
a query actually needs (ship one boundary list, get one answer).

Run:  python examples/sharded_service.py
"""

import numpy as np

from repro import VicinityOracle, datasets
from repro.core.parallel import PartitionedOracle
from repro.utils.format import format_bytes


def main() -> None:
    graph = datasets.generate("livejournal", scale=0.001, seed=41)
    oracle = VicinityOracle.build(graph, alpha=4.0, seed=43, fallback="none")
    print(f"single-machine index over {graph.n:,} nodes built\n")

    print("machines  max memory/machine  imbalance")
    for shards in (1, 2, 4, 8, 16):
        summary = PartitionedOracle(oracle.index, shards).balance_summary()
        print(f"{shards:8d}  {format_bytes(summary['max_bytes']):>18s}  "
              f"{summary['imbalance']:.2f}")

    sharded = PartitionedOracle(oracle.index, 8)
    rng = np.random.default_rng(3)
    answered = 0
    for _ in range(400):
        s, t = (int(x) for x in rng.integers(0, graph.n, 2))
        if sharded.query(s, t).distance is not None:
            answered += 1
    log = sharded.log
    total = log.local_queries + log.remote_queries
    print(f"\nserved {total} queries on 8 machines:")
    print(f"    answered            : {answered / total:.1%}")
    print(f"    cross-shard queries : {log.remote_queries}")
    print(f"    messages/query      : {log.mean_messages:.2f}")
    print(f"    bytes/query         : {format_bytes(log.bytes / total)}")
    print("\nno machine ever held the input graph or another shard's "
          "vicinities - the property the paper's challenge asks for.")


if __name__ == "__main__":
    main()
