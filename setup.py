"""Legacy setup shim.

All metadata lives in ``pyproject.toml``; this file only exists so that
``pip install -e .`` works on environments whose setuptools predates
PEP 660 editable installs (e.g. offline boxes without ``wheel``), and
to give installs a best-effort compile of the optional C kernel tier
(``repro.core._native``) — a plain ctypes shared object, no Python.h.
A missing compiler degrades the install to the numpy tier; it never
fails it.
"""

import sys
from pathlib import Path

from setuptools import setup
from setuptools.command.build_py import build_py


class build_py_with_kernels(build_py):
    """Standard build_py plus a best-effort native kernel compile."""

    def run(self):
        super().run()
        src = Path(__file__).parent / "src"
        sys.path.insert(0, str(src))
        try:
            from repro.core._native import build as native_build

            target = native_build.build(verbose=True)
        except RuntimeError as exc:
            print(f"native kernels skipped (numpy tier still works): {exc}")
            return
        finally:
            sys.path.remove(str(src))
        if self.build_lib:  # ship the artifact with the built package
            dest = Path(self.build_lib) / "repro" / "core" / "_native"
            if dest.is_dir():
                self.copy_file(str(target), str(dest / target.name))


setup(cmdclass={"build_py": build_py_with_kernels})
