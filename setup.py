"""Legacy setup shim.

All metadata lives in ``pyproject.toml``; this file only exists so that
``pip install -e .`` works on environments whose setuptools predates
PEP 660 editable installs (e.g. offline boxes without ``wheel``).
"""

from setuptools import setup

setup()
