"""Connected-component analysis for undirected CSR graphs.

The paper assumes a connected network (Table 1).  Crawled and synthetic
graphs are rarely connected, so the standard preprocessing step — also
used by our dataset registry — is to extract the largest component.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graph.csr import CSRGraph


def connected_components(graph: CSRGraph) -> Tuple[np.ndarray, int]:
    """Label the connected components of ``graph``.

    Returns:
        ``(labels, count)`` where ``labels[u]`` is the component id of
        node ``u`` (ids are dense, assigned in order of the smallest
        node in each component) and ``count`` is the number of
        components.
    """
    adj = graph.adjacency()
    labels = [-1] * graph.n
    count = 0
    for start in range(graph.n):
        if labels[start] >= 0:
            continue
        labels[start] = count
        frontier = [start]
        while frontier:
            next_frontier = []
            for u in frontier:
                for v in adj[u]:
                    if labels[v] < 0:
                        labels[v] = count
                        next_frontier.append(v)
            frontier = next_frontier
        count += 1
    return np.asarray(labels, dtype=np.int64), count


def is_connected(graph: CSRGraph) -> bool:
    """Return whether ``graph`` is connected (the empty graph is)."""
    if graph.n == 0:
        return True
    _, count = connected_components(graph)
    return count == 1


def largest_component(graph: CSRGraph) -> Tuple[CSRGraph, np.ndarray]:
    """Extract the largest connected component as its own graph.

    Returns:
        ``(sub, originals)`` as produced by :meth:`CSRGraph.subgraph`;
        ``originals[i]`` maps new node ``i`` back to its original id.
        For the empty graph, returns the graph unchanged with an empty
        mapping.
    """
    if graph.n == 0:
        return graph, np.zeros(0, dtype=np.int64)
    labels, count = connected_components(graph)
    if count == 1:
        return graph, np.arange(graph.n, dtype=np.int64)
    sizes = np.bincount(labels, minlength=count)
    keep = np.flatnonzero(labels == int(np.argmax(sizes)))
    return graph.subgraph(keep)


def component_sizes(graph: CSRGraph) -> np.ndarray:
    """Return the sizes of all components, largest first."""
    if graph.n == 0:
        return np.zeros(0, dtype=np.int64)
    labels, count = connected_components(graph)
    sizes = np.bincount(labels, minlength=count)
    return np.sort(sizes)[::-1]
