"""Batched truncated traversals: grow many balls per wave (§2.2, offline).

:func:`repro.graph.traversal.bounded.truncated_bfs_ball` grows one ball
with a per-node Python queue loop — fine for one query-time fallback,
but the offline phase runs it once per node, which makes *construction*
the scalability bottleneck after PR 3 moved every read path onto flat
arrays.  This module is the batched counterpart: a level-synchronous
engine that advances the frontiers of a whole batch of sources in one
numpy wave over the raw CSR ``indptr/indices`` arrays, with per-source
stopping (each ball freezes at its own radius) and the same ``min_size``
vicinity floor the scalar engine supports.

Parity contract (pinned by ``tests/core/test_flatbuild.py``): for every
source the packed slice equals the scalar traversal exactly — same
members, same hop distances, same predecessor choices, in the same
discovery order.  The predecessor equality holds because each wave's
candidate list enumerates ``(frontier node, CSR neighbour)`` pairs in
exactly the scalar loop's iteration order and keeps the *first*
discovery of each node (a reversed scatter, not a sort), and the wave's
new nodes re-enter the next frontier in that same discovery order.

Boundary extraction rides along wave-side because two facts make it
nearly free there and expensive anywhere else:

* in the BFS metric a member with ``d(u, v) < r`` has every neighbour
  within ``r`` — only *rim* members (``d == r``) can be on the
  boundary, and a ball no landmark bounded has no boundary at all
  (its vicinity is a whole closed component);
* while the batch's dense visited bitmap is alive, each membership
  test is one gather, and a slot-wise sweep that retires a member at
  its first outside neighbour reproduces the scalar loop's early exit
  — the average rim member settles in one or two slots.

The engine works on raw CSR arrays rather than a graph object so the
undirected builder, the directed builder (either orientation) and
shared-memory worker processes can all drive it without materialising
adjacency lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

#: Soft cap on the per-batch working set (visited bitmap + first-seen
#: slots, ~5 bytes per (ball, node) pair); batches shrink on large
#: graphs so memory stays flat.  The cap of 128 balls per wave is
#: empirical: beyond it the bitmap outgrows cache and the random
#: membership gathers dominate, costing more than the saved per-wave
#: fixed overhead.
_BATCH_BUDGET = 64 << 20

#: ``radii`` sentinel for a ball no landmark bounded (the scalar
#: engine's ``radius=None`` — the vicinity degenerated to the whole
#: reachable set).
NO_RADIUS = -1


@dataclass
class PackedBalls:
    """Truncated-traversal results for a batch of sources, packed.

    Attributes:
        sources: the ball centres, in input order.
        offsets: ``int64`` array of length ``len(sources) + 1``; ball
            ``i``'s entries occupy ``[offsets[i], offsets[i + 1])`` of
            the entry arrays.
        nodes: member ids per ball, in discovery order (the scalar
            engine's dict-insertion order) — ``nodes[offsets[i]]`` is
            always ``sources[i]`` itself.  Emitted at the requested
            ``id_dtype`` (``int64`` by default).
        dists: ``int32`` hop counts aligned with ``nodes``.
        preds: predecessor toward the source aligned with ``nodes``
            (``pred == source`` at the source), same dtype as
            ``nodes``.
        radii: ``int32`` effective radius per ball; :data:`NO_RADIUS`
            where no landmark bounded the traversal.
        boundary_mask: boolean per entry — whether the member has at
            least one neighbour outside its ball (Lemma 1's boundary
            predicate, in the stored scan order).
    """

    sources: np.ndarray
    offsets: np.ndarray
    nodes: np.ndarray
    dists: np.ndarray
    preds: np.ndarray
    radii: np.ndarray
    boundary_mask: np.ndarray


def default_batch_size(n: int) -> int:
    """Sources per wave batch keeping the working set in budget."""
    return int(max(16, min(128, _BATCH_BUDGET // (5 * max(n, 1)))))


def grow_balls(
    indptr: np.ndarray,
    indices: np.ndarray,
    n: int,
    sources: np.ndarray,
    landmark_flags: np.ndarray,
    *,
    min_size: Optional[int] = None,
    batch_size: Optional[int] = None,
    id_dtype=None,
) -> PackedBalls:
    """Grow a truncated ball from every source, many balls per wave.

    Args:
        indptr / indices: the CSR adjacency to traverse (undirected
            rows, or one orientation of a digraph).
        n: number of nodes.
        sources: ball centres; must not be landmarks (landmark balls
            are empty by Definition 1 — the builders emit their empty
            slices directly).
        landmark_flags: per-node ``uint8`` flags of the landmark set.
        min_size: optional vicinity floor — keep absorbing whole levels
            past the nearest landmark until the ball holds this many
            nodes (the scalar engine's ``min_size``).
        batch_size: balls grown concurrently; defaults to a size that
            keeps the per-batch visited bitmap and dedup slots around
            64 MB.
        id_dtype: dtype of the packed ``nodes``/``preds`` columns
            (default ``int64``).  The flat-native builder passes the
            index's compact id width so the offline pipeline never
            holds an int64 copy of the entry columns — only the
            per-batch wave scratch (bounded by ``batch_size`` balls)
            stays at int64 for the combined-key arithmetic.

    Returns:
        The :class:`PackedBalls`, slice ``i`` matching
        ``truncated_bfs_ball(graph, sources[i], flags)`` field for
        field (``gamma`` in discovery order, distances, predecessors,
        radius, boundary membership).
    """
    sources = np.ascontiguousarray(sources, dtype=np.int64)
    indptr = np.asarray(indptr)
    indices = np.asarray(indices)
    flags = np.asarray(landmark_flags, dtype=np.uint8)
    if batch_size is None:
        batch_size = default_batch_size(n)
    if id_dtype is None:
        id_dtype = np.int64
    id_dtype = np.dtype(id_dtype)

    counts = np.zeros(sources.size, dtype=np.int64)
    radii = np.full(sources.size, NO_RADIUS, dtype=np.int32)
    node_parts: list[np.ndarray] = []
    dist_parts: list[np.ndarray] = []
    pred_parts: list[np.ndarray] = []
    boundary_parts: list[np.ndarray] = []

    for lo in range(0, sources.size, batch_size):
        batch = sources[lo:lo + batch_size]
        b_nodes, b_dists, b_preds, b_boundary, b_counts, b_radii = _grow_batch(
            indptr, indices, n, batch, flags, min_size
        )
        node_parts.append(b_nodes.astype(id_dtype, copy=False))
        dist_parts.append(b_dists)
        pred_parts.append(b_preds.astype(id_dtype, copy=False))
        boundary_parts.append(b_boundary)
        counts[lo:lo + batch.size] = b_counts
        radii[lo:lo + batch.size] = b_radii

    offsets = np.zeros(sources.size + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    empty = np.zeros(0, dtype=id_dtype)
    return PackedBalls(
        sources=sources,
        offsets=offsets,
        nodes=np.concatenate(node_parts) if node_parts else empty,
        dists=(
            np.concatenate(dist_parts)
            if dist_parts
            else np.zeros(0, dtype=np.int32)
        ),
        preds=np.concatenate(pred_parts) if pred_parts else empty,
        radii=radii,
        boundary_mask=(
            np.concatenate(boundary_parts)
            if boundary_parts
            else np.zeros(0, dtype=bool)
        ),
    )


def gather_csr_rows(indptr, indices, rows):
    """Concatenated CSR slices of ``rows`` plus per-row sizes.

    The vectorised multi-row gather shared by the wave engine and
    :func:`repro.core.vicinity.boundary_mask_packed`: element order is
    row order × within-row order, exactly the scalar loops' visit
    order.
    """
    starts = indptr[rows]
    degs = indptr[rows + 1] - starts
    total = int(degs.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64), degs
    prefix = np.cumsum(degs) - degs
    gidx = (
        np.arange(total, dtype=np.int64)
        - np.repeat(prefix, degs)
        + np.repeat(starts, degs)
    )
    return indices[gidx].astype(np.int64, copy=False), degs


def _grow_batch(
    indptr: np.ndarray,
    indices: np.ndarray,
    n: int,
    batch: np.ndarray,
    flags: np.ndarray,
    min_size: Optional[int],
):
    """One batch of balls to completion; returns per-ball packed parts."""
    size = batch.size
    n64 = np.int64(n)
    # Flat (ball, node) visited bitmap plus a first-seen slot array for
    # the in-wave dedup; both are reused across waves (a key can only
    # be fresh in one wave, so stale slots are never consulted).  The
    # bitmap is the only randomly-indexed memory in the engine, which
    # is why the default batch size keeps it small enough to cache.
    visited = np.zeros(size * n, dtype=bool)
    first_seen = np.empty(size * n, dtype=np.int32)
    ball_ids = np.arange(size, dtype=np.int64)
    visited[ball_ids * n64 + batch] = True

    # Wave records: (ball, node, pred) triples plus the wave's level.
    rec_balls = [ball_ids]
    rec_nodes = [batch]
    rec_preds = [batch]
    rec_levels = [0]

    counts = np.ones(size, dtype=np.int64)
    radii = np.full(size, NO_RADIUS, dtype=np.int32)
    landmark_seen = np.zeros(size, dtype=bool)
    frontier_b = ball_ids
    frontier_n = batch
    level = 0

    while frontier_b.size:
        level += 1
        cand_n, degs = gather_csr_rows(indptr, indices, frontier_n)
        if cand_n.size == 0:
            break
        cand_b = np.repeat(frontier_b, degs)
        key = cand_b * n64 + cand_n
        fresh = ~visited[key]
        if not fresh.any():
            break
        key = key[fresh]
        cand_b = cand_b[fresh]
        cand_n = cand_n[fresh]
        cand_p = np.repeat(frontier_n, degs)[fresh]
        # Keep each (ball, node)'s first discovery without sorting: a
        # reversed scatter leaves the first occurrence's index in the
        # slot, and comparing each candidate against its slot elects
        # the winners in candidate order — the scalar engine's
        # predecessor choice and dict-insertion order in O(wave).
        idx = np.arange(key.size, dtype=np.int32)
        first_seen[key[::-1]] = idx[::-1]
        winners = first_seen[key] == idx
        new_b = cand_b[winners]
        new_n = cand_n[winners]
        new_p = cand_p[winners]

        visited[key[winners]] = True
        rec_balls.append(new_b)
        rec_nodes.append(new_n)
        rec_preds.append(new_p)
        rec_levels.append(level)
        grew = np.bincount(new_b, minlength=size)
        counts += grew
        hit = flags[new_n].view(bool)
        if hit.any():
            landmark_seen[new_b[hit]] = True

        # Per-source stopping: a ball that absorbed this level freezes
        # once it has seen a landmark (and met the floor); a ball whose
        # frontier produced nothing simply leaves the wave (no landmark
        # bounded it — the scalar engine's radius=None outcome).
        stop = (grew > 0) & landmark_seen
        if min_size is not None:
            stop &= counts >= min_size
        radii[stop] = level
        keep = ~stop[new_b]
        frontier_b = new_b[keep]
        frontier_n = new_n[keep]

    balls = np.concatenate(rec_balls)
    nodes = np.concatenate(rec_nodes)
    preds = np.concatenate(rec_preds)
    dists = np.concatenate(
        [
            np.full(part.size, lvl, dtype=np.int32)
            for part, lvl in zip(rec_nodes, rec_levels)
        ]
    )
    # Group per ball; the stable sort preserves wave order (and within
    # a wave, discovery order) inside each ball's run.
    order = np.argsort(balls, kind="stable")
    balls = balls[order]
    nodes = nodes[order]
    dists = dists[order]
    boundary = _boundary_against_visited(
        indptr, indices, visited, n64, balls, nodes, dists, radii
    )
    return nodes, dists, preds[order], boundary, counts, radii


def _boundary_against_visited(
    indptr: np.ndarray,
    indices: np.ndarray,
    visited: np.ndarray,
    n64: np.int64,
    balls: np.ndarray,
    nodes: np.ndarray,
    dists: np.ndarray,
    radii: np.ndarray,
) -> np.ndarray:
    """Per-entry boundary mask while the visited bitmap is still dense.

    Only rim members (``d == radius``) are candidates — an interior
    member's neighbours all sit within the radius, and a radius-less
    ball covers its whole (closed) component.  Candidates are swept
    slot by slot with compression: each sweep tests every still-
    undecided member's next neighbour in one gather, members retire at
    their first outside neighbour, and the handful whose neighbourhood
    is entirely inside fall off when their slots run out — the scalar
    loop's early exit, vectorised.
    """
    boundary = np.zeros(nodes.size, dtype=bool)
    undecided = np.flatnonzero(dists == radii[balls])
    if undecided.size == 0:
        return boundary
    base = balls[undecided] * n64
    cursor = indptr[nodes[undecided]].copy()
    ends = indptr[nodes[undecided] + 1]
    # Degree-zero members can slip in only as isolated sources.
    alive = cursor < ends
    if not alive.all():
        undecided, base, cursor, ends = (
            undecided[alive], base[alive], cursor[alive], ends[alive]
        )
    while undecided.size:
        outside = ~visited[base + indices[cursor]]
        if outside.any():
            boundary[undecided[outside]] = True
        cursor += 1
        # One fused compression: members that found an outside
        # neighbour retire decided, members out of slots retire
        # interior; everyone else advances to the next slot.
        keep = ~outside & (cursor < ends)
        if not keep.all():
            undecided = undecided[keep]
            base = base[keep]
            cursor = cursor[keep]
            ends = ends[keep]
    return boundary
