"""Truncated traversals: grow a ball until the nearest landmark.

This is the "modified shortest path algorithm [16]" of §2.2.  Starting
from ``u`` it explores outward and stops once every node at distance
``d(u, l(u))`` or less has been visited, where ``l(u)`` is the nearest
member of the landmark set ``L``.  Following Definition 1:

* ``ball(u)   = { v : d(u, v) <  d(u, l(u)) }``
* ``gamma(u)  = ball(u) ∪ N(ball(u))`` — the vicinity.

For unweighted graphs ``gamma(u)`` is exactly the set of nodes within
``d(u, l(u))`` hops, which is what the level-synchronous engine below
collects.  For weighted graphs the frontier ring ``N(ball) \\ ball`` can
sit at arbitrary distances beyond the radius, so the Dijkstra engine
keeps settling until every frontier member has an exact label — the
stored distances are always true graph distances.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple, Union

from repro.graph.csr import CSRGraph


@dataclass
class BallResult:
    """The outcome of one truncated traversal from ``source``.

    Attributes:
        source: the ball centre.
        radius: ``d(source, nearest landmark)`` — ``None`` when the
            component contains no landmark (the traversal then exhausts
            the component and ``gamma`` is the whole component).
        dist: exact distances from ``source``; covers at least every
            vicinity member (for weighted graphs it may cover a few
            extra settled nodes, which path reconstruction exploits).
        pred: predecessor (parent) pointers toward ``source`` for every
            node in ``dist``; ``pred[source] == source``.
        ball: nodes strictly inside the radius, in discovery order.
        gamma: vicinity members (``ball`` plus the frontier ring).
    """

    source: int
    radius: Optional[Union[int, float]]
    dist: dict[int, Union[int, float]] = field(default_factory=dict)
    pred: dict[int, int] = field(default_factory=dict)
    ball: list[int] = field(default_factory=list)
    gamma: list[int] = field(default_factory=list)

    @property
    def found_landmark(self) -> bool:
        """Whether a landmark bounded the traversal."""
        return self.radius is not None


def truncated_bfs_ball(
    graph: CSRGraph,
    source: int,
    is_landmark: Sequence[int],
    *,
    max_size: Optional[int] = None,
    min_size: Optional[int] = None,
) -> BallResult:
    """Grow an unweighted ball from ``source`` until the nearest landmark.

    Args:
        graph: the (unweighted) graph.
        source: ball centre.
        is_landmark: truthy-per-node flags, indexable by node id
            (a ``bytearray`` is the fast choice).
        max_size: optional safety cap on the number of visited nodes;
            when exceeded the traversal aborts and returns a truncated
            result with ``radius=None`` (used by the sampling-scale
            calibration, which only needs "too big").
        min_size: optional floor on the vicinity size: keep absorbing
            whole levels past the nearest landmark until at least this
            many nodes are inside.  For unweighted graphs Theorem 1
            holds for *any* per-node radius (the proof only needs
            ``Gamma(u) = {v : d(u, v) <= R_u}``), so the floor
            preserves exactness while eliminating the degenerate tiny
            vicinities that dominate intersection misses (ablation A4).
            The returned ``radius`` is then the *effective* radius (the
            last absorbed level), not ``d(u, l(u))``.

    Returns:
        The :class:`BallResult`; if ``source`` is itself a landmark the
        radius is 0 and both ``ball`` and ``gamma`` are empty, matching
        Definition 1 (landmarks rely on their full tables instead).
    """
    graph.check_node(source)
    if is_landmark[source]:
        return BallResult(source=source, radius=0, dist={source: 0}, pred={source: source})
    adj = graph.adjacency()
    dist: dict[int, int] = {source: 0}
    pred: dict[int, int] = {source: source}
    levels: list[list[int]] = [[source]]
    frontier = [source]
    level = 0
    radius: Optional[int] = None
    landmark_seen = False
    while frontier:
        if max_size is not None and len(dist) > max_size:
            gamma = [v for lvl in levels for v in lvl]
            return BallResult(source, None, dist, pred, ball=list(gamma), gamma=gamma)
        level += 1
        next_frontier = []
        for u in frontier:
            for v in adj[u]:
                if v not in dist:
                    dist[v] = level
                    pred[v] = u
                    next_frontier.append(v)
                    if is_landmark[v]:
                        landmark_seen = True
        if not next_frontier:
            break
        levels.append(next_frontier)
        frontier = next_frontier
        if landmark_seen and (min_size is None or len(dist) >= min_size):
            radius = level
            break
    if radius is None:
        # No landmark in this component: the vicinity degenerates to the
        # whole component (callers normally prevent this by forcing one
        # landmark per component).
        gamma = [v for lvl in levels for v in lvl]
        return BallResult(source, None, dist, pred, ball=list(gamma), gamma=gamma)
    ball = [v for lvl in levels[:radius] for v in lvl]
    gamma = ball + levels[radius]
    return BallResult(source, radius, dist, pred, ball=ball, gamma=gamma)


def truncated_dijkstra_ball(
    graph: CSRGraph, source: int, is_landmark: Sequence[int]
) -> BallResult:
    """Grow a weighted ball from ``source`` until the nearest landmark.

    Phase 1 settles nodes in distance order until the first landmark
    fixes the radius ``r`` and every node with ``d < r`` is settled
    (the ball).  Phase 2 keeps the same Dijkstra running until every
    frontier neighbour of the ball is settled, so all reported
    distances are exact even when shortest paths to frontier nodes
    leave the ball.
    """
    graph.check_node(source)
    if is_landmark[source]:
        return BallResult(source=source, radius=0, dist={source: 0.0}, pred={source: source})
    adj = graph.weighted_adjacency()
    dist: dict[int, float] = {source: 0.0}
    pred: dict[int, int] = {source: source}
    settled: dict[int, float] = {}
    heap: list[Tuple[float, int]] = [(0.0, source)]
    radius: Optional[float] = None

    # Phase 1: settle until the first landmark, then flush labels < radius.
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        if radius is not None and d >= radius:
            heapq.heappush(heap, (d, u))  # put back for phase 2
            break
        settled[u] = d
        if radius is None and is_landmark[u]:
            radius = d
        # Landmarks relax their edges like any settled node: shortest
        # paths to frontier members may run through the landmark itself.
        for v, w in adj[u]:
            nd = d + w
            if nd < dist.get(v, float("inf")):
                dist[v] = nd
                pred[v] = u
                heapq.heappush(heap, (nd, v))

    if radius is None:
        # Component without a landmark: everything reachable was settled.
        ball = list(settled)
        return BallResult(source, None, dict(settled), pred, ball=ball, gamma=list(ball))

    ball = [u for u, d in settled.items() if d < radius]
    ball_set = set(ball)
    frontier = {
        v for u in ball for v, _w in adj[u] if v not in ball_set
    }

    # Phase 2: keep settling until every frontier node has an exact label.
    pending = {v for v in frontier if v not in settled}
    while heap and pending:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled[u] = d
        pending.discard(u)
        for v, w in adj[u]:
            nd = d + w
            if nd < dist.get(v, float("inf")):
                dist[v] = nd
                pred[v] = u
                heapq.heappush(heap, (nd, v))
    # Anything still pending is unreachable except through the ball,
    # which cannot happen in a connected graph; guard anyway.
    frontier = {v for v in frontier if v in settled}

    gamma = ball + sorted(frontier - ball_set)
    exact = {u: settled[u] for u in settled}
    return BallResult(source, radius, exact, pred, ball=ball, gamma=gamma)
