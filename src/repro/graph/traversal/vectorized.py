"""NumPy-vectorised BFS for bulk single-source sweeps.

Building one full table per landmark is the offline-phase bottleneck:
``|L|`` complete BFS runs.  A per-edge Python loop costs ~1 us/edge;
the level-synchronous formulation below moves the whole frontier
expansion into NumPy gathers, costing a handful of array operations per
level instead.  It produces bit-identical distances to
:func:`repro.graph.traversal.bfs.bfs_tree` (tested) at 20-100x the
speed on social-network-sized inputs.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph

#: Sentinel for unreachable nodes, matching the scalar BFS engines.
UNREACHED = -1


def _next_frontier(dist: np.ndarray, new_nodes: np.ndarray, level: int) -> np.ndarray:
    """Deduplicated next frontier, avoiding a sort on dense waves.

    ``np.unique(new_nodes)`` and ``np.flatnonzero(dist == level)`` are
    the same (sorted, unique) array once ``dist[new_nodes] = level`` is
    in — but the label scan is branch-free and sort-free, which makes
    it several times faster on the dense waves of a social graph.  The
    scan is linear in ``n`` per level, so narrow waves (high-diameter
    graphs, sparse tails) keep the ``unique`` path.
    """
    if new_nodes.size >= dist.size >> 5:
        return np.flatnonzero(dist == level)
    return np.unique(new_nodes).astype(np.int64, copy=False)


def _gather_neighbors(
    indptr: np.ndarray, indices: np.ndarray, frontier: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Return the concatenated neighbours of ``frontier`` and their sources.

    Vectorised multi-slice gather: for frontier nodes ``f1..fk`` with
    CSR rows ``[s_i, e_i)``, builds the index vector
    ``s_1, s_1+1, .., e_1-1, s_2, ..`` without a Python-level loop.
    """
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=indices.dtype), np.zeros(0, dtype=frontier.dtype)
    cumulative = np.cumsum(counts)
    offsets = np.repeat(cumulative - counts, counts)
    flat = np.arange(total, dtype=np.int64) - offsets + np.repeat(starts, counts)
    return indices[flat], np.repeat(frontier, counts)


def bfs_tree_vectorized(
    graph: CSRGraph, source: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(dist, parent)`` for a BFS tree rooted at ``source``.

    Semantically identical to :func:`repro.graph.traversal.bfs.bfs_tree`
    (distances are unique; parents may differ among equally valid BFS
    trees).  Unreachable nodes carry ``UNREACHED`` / parent ``-1``.
    """
    graph.check_node(source)
    indptr, indices = graph.indptr, graph.indices
    dist = np.full(graph.n, UNREACHED, dtype=np.int32)
    parent = np.full(graph.n, -1, dtype=np.int32)
    dist[source] = 0
    parent[source] = source
    frontier = np.asarray([source], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        neighbors, sources = _gather_neighbors(indptr, indices, frontier)
        if neighbors.size == 0:
            break
        fresh = dist[neighbors] == UNREACHED
        if not fresh.any():
            break
        new_nodes = neighbors[fresh]
        # Duplicate discoveries within a level are fine: every candidate
        # parent sits at the previous level, so last-write-wins is valid.
        dist[new_nodes] = level
        parent[new_nodes] = sources[fresh]
        frontier = _next_frontier(dist, new_nodes, level)
    return dist, parent


def bfs_distances_vectorized(graph: CSRGraph, source: int) -> np.ndarray:
    """Return only the distance array of :func:`bfs_tree_vectorized`."""
    dist, _parent = bfs_tree_vectorized(graph, source)
    return dist


def multi_source_bfs_vectorized(
    graph: CSRGraph, sources: Iterable[int]
) -> np.ndarray:
    """Return per-node distance to the nearest of ``sources``.

    The vectorised counterpart of
    :func:`repro.graph.traversal.bfs.multi_source_bfs`; used to compute
    every vicinity radius ``r(u) = d(u, L)`` in one sweep (Figure 2c).
    """
    indptr, indices = graph.indptr, graph.indices
    dist = np.full(graph.n, UNREACHED, dtype=np.int32)
    frontier = np.unique(np.fromiter((int(s) for s in sources), dtype=np.int64))
    for s in frontier:
        graph.check_node(int(s))
    if frontier.size == 0:
        return dist
    dist[frontier] = 0
    level = 0
    while frontier.size:
        level += 1
        neighbors, _sources = _gather_neighbors(indptr, indices, frontier)
        if neighbors.size == 0:
            break
        fresh = neighbors[dist[neighbors] == UNREACHED]
        if fresh.size == 0:
            break
        dist[fresh] = level
        frontier = _next_frontier(dist, fresh, level)
    return dist


def digraph_bfs_tree_vectorized(
    indptr: np.ndarray, indices: np.ndarray, n: int, source: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Directed variant operating on raw CSR arrays.

    Works for either orientation: pass ``(out_indptr, out_indices)`` for
    forward distances from ``source`` or ``(in_indptr, in_indices)`` for
    distances *to* ``source``.  Returns ``(dist, parent)`` where
    ``parent`` is the tree predecessor in the traversal direction.
    """
    dist = np.full(n, UNREACHED, dtype=np.int32)
    parent = np.full(n, -1, dtype=np.int32)
    dist[source] = 0
    parent[source] = source
    frontier = np.asarray([source], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        neighbors, sources = _gather_neighbors(indptr, indices, frontier)
        if neighbors.size == 0:
            break
        fresh = dist[neighbors] == UNREACHED
        if not fresh.any():
            break
        new_nodes = neighbors[fresh]
        dist[new_nodes] = level
        parent[new_nodes] = sources[fresh]
        frontier = _next_frontier(dist, new_nodes, level)
    return dist, parent
