"""A* search with pluggable admissible heuristics.

The paper cites A* ("A* meets graph theory" [3] and "Reach for A*" [4])
as the query-time state of the art it outperforms.  This module provides
the generic engine; the ALT (A*, Landmarks, Triangle inequality)
heuristic that makes it competitive lives in
:mod:`repro.baselines.alt`, which owns landmark selection and the
preprocessing tables.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional, Tuple

from repro.exceptions import UnreachableError
from repro.graph.csr import CSRGraph

INF = float("inf")

#: An admissible heuristic: lower bound on the distance to the target.
Heuristic = Callable[[int], float]


def astar_distance(
    graph: CSRGraph, source: int, target: int, heuristic: Heuristic
) -> Optional[float]:
    """Return the distance from ``source`` to ``target`` under A*.

    Args:
        graph: weighted or unweighted graph (unit weights if unweighted).
        source: start node.
        target: goal node.
        heuristic: admissible lower bound ``h(v) <= d(v, target)``;
            correctness requires admissibility (consistency additionally
            guarantees each node is settled once, which the lazy
            formulation here does not rely on).

    Returns:
        The exact distance, or ``None`` when disconnected.
    """
    graph.check_node(source)
    graph.check_node(target)
    if source == target:
        return 0.0
    adj = graph.weighted_adjacency()
    g_score: dict[int, float] = {source: 0.0}
    heap: list[Tuple[float, int]] = [(heuristic(source), source)]
    settled: set[int] = set()
    while heap:
        f, u = heapq.heappop(heap)
        if u in settled:
            continue
        if u == target:
            return g_score[u]
        settled.add(u)
        gu = g_score[u]
        for v, w in adj[u]:
            ng = gu + w
            if ng < g_score.get(v, INF):
                g_score[v] = ng
                heapq.heappush(heap, (ng + heuristic(v), v))
    return None


def astar_path(
    graph: CSRGraph, source: int, target: int, heuristic: Heuristic
) -> list[int]:
    """Return one shortest path from ``source`` to ``target`` under A*.

    Raises:
        UnreachableError: if no path exists.
    """
    graph.check_node(source)
    graph.check_node(target)
    if source == target:
        return [source]
    adj = graph.weighted_adjacency()
    g_score: dict[int, float] = {source: 0.0}
    parent: dict[int, int] = {source: source}
    heap: list[Tuple[float, int]] = [(heuristic(source), source)]
    settled: set[int] = set()
    while heap:
        _f, u = heapq.heappop(heap)
        if u in settled:
            continue
        if u == target:
            path = [target]
            node = target
            while node != source:
                node = parent[node]
                path.append(node)
            path.reverse()
            return path
        settled.add(u)
        gu = g_score[u]
        for v, w in adj[u]:
            ng = gu + w
            if ng < g_score.get(v, INF):
                g_score[v] = ng
                parent[v] = u
                heapq.heappush(heap, (ng + heuristic(v), v))
    raise UnreachableError(source, target)
