"""Dijkstra's algorithm for weighted graphs.

Lazy-deletion binary-heap formulation (``heapq`` with stale-entry
skipping), which is the standard CPython idiom.  Used as the weighted
ground truth in tests and as the weighted baseline in benchmarks; the
core library's truncated variant lives in :mod:`.bounded`.
"""

from __future__ import annotations

import heapq
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import UnreachableError
from repro.graph.csr import CSRGraph

#: Distance assigned to unreachable nodes in dense outputs.
INF = float("inf")


def dijkstra_distances(graph: CSRGraph, source: int) -> np.ndarray:
    """Return weighted distances from ``source`` to every node.

    Unreachable nodes get ``inf``.  Unweighted graphs are handled with
    implicit unit weights, so this agrees with BFS there.
    """
    graph.check_node(source)
    adj = graph.weighted_adjacency()
    dist = [INF] * graph.n
    dist[source] = 0.0
    heap: list[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for v, w in adj[u]:
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return np.asarray(dist, dtype=np.float64)


def dijkstra_tree(graph: CSRGraph, source: int) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(dist, parent)`` for a shortest-path tree from ``source``.

    ``parent[source] == source``; unreachable nodes have ``inf`` / -1.
    """
    graph.check_node(source)
    adj = graph.weighted_adjacency()
    dist = [INF] * graph.n
    parent = [-1] * graph.n
    dist[source] = 0.0
    parent[source] = source
    heap: list[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for v, w in adj[u]:
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    return np.asarray(dist, dtype=np.float64), np.asarray(parent, dtype=np.int64)


def dijkstra_distance(graph: CSRGraph, source: int, target: int) -> Optional[float]:
    """Return the weighted distance from ``source`` to ``target``.

    Early-exits when ``target`` is settled; returns ``None`` when
    disconnected.
    """
    graph.check_node(source)
    graph.check_node(target)
    if source == target:
        return 0.0
    adj = graph.weighted_adjacency()
    dist: dict[int, float] = {source: 0.0}
    settled = set()
    heap: list[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        if u == target:
            return d
        settled.add(u)
        for v, w in adj[u]:
            nd = d + w
            if nd < dist.get(v, INF):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return None


def dijkstra_path(graph: CSRGraph, source: int, target: int) -> list[int]:
    """Return one weighted shortest path from ``source`` to ``target``.

    Raises:
        UnreachableError: if no path exists.
    """
    graph.check_node(source)
    graph.check_node(target)
    if source == target:
        return [source]
    adj = graph.weighted_adjacency()
    dist: dict[int, float] = {source: 0.0}
    parent: dict[int, int] = {source: source}
    settled = set()
    heap: list[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        if u == target:
            path = [target]
            node = target
            while node != source:
                node = parent[node]
                path.append(node)
            path.reverse()
            return path
        for v, w in adj[u]:
            nd = d + w
            if nd < dist.get(v, INF):
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    raise UnreachableError(source, target)
