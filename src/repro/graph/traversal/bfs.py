"""Breadth-first search engines for unweighted graphs.

These are deliberately plain, array-based implementations: frontier
lists of Python ints over the cached adjacency view, which is the
fastest portable formulation in CPython.  ``bfs_distance`` (point to
point, early exit) is the paper's "standard shortest path algorithm"
column in Table 3.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from repro.exceptions import UnreachableError
from repro.graph.csr import CSRGraph

#: Sentinel stored in distance arrays for unreachable nodes.
UNREACHED = -1


def bfs_distances(graph: CSRGraph, source: int) -> np.ndarray:
    """Return hop distances from ``source`` to every node.

    Unreachable nodes get :data:`UNREACHED` (-1).
    """
    graph.check_node(source)
    adj = graph.adjacency()
    dist = [UNREACHED] * graph.n
    dist[source] = 0
    frontier = [source]
    level = 0
    while frontier:
        level += 1
        next_frontier = []
        for u in frontier:
            for v in adj[u]:
                if dist[v] < 0:
                    dist[v] = level
                    next_frontier.append(v)
        frontier = next_frontier
    return np.asarray(dist, dtype=np.int32)


def bfs_tree(graph: CSRGraph, source: int) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(dist, parent)`` for a BFS tree rooted at ``source``.

    ``parent[source] == source``; unreachable nodes have distance
    :data:`UNREACHED` and parent -1.
    """
    graph.check_node(source)
    adj = graph.adjacency()
    dist = [UNREACHED] * graph.n
    parent = [UNREACHED] * graph.n
    dist[source] = 0
    parent[source] = source
    frontier = [source]
    level = 0
    while frontier:
        level += 1
        next_frontier = []
        for u in frontier:
            for v in adj[u]:
                if dist[v] < 0:
                    dist[v] = level
                    parent[v] = u
                    next_frontier.append(v)
        frontier = next_frontier
    return np.asarray(dist, dtype=np.int32), np.asarray(parent, dtype=np.int64)


def bfs_distance(graph: CSRGraph, source: int, target: int) -> Optional[int]:
    """Return the hop distance from ``source`` to ``target``.

    Runs BFS with early exit on reaching ``target``; returns ``None``
    when the nodes are disconnected.
    """
    graph.check_node(source)
    graph.check_node(target)
    if source == target:
        return 0
    adj = graph.adjacency()
    seen = bytearray(graph.n)
    seen[source] = 1
    frontier = [source]
    level = 0
    while frontier:
        level += 1
        next_frontier = []
        for u in frontier:
            for v in adj[u]:
                if not seen[v]:
                    if v == target:
                        return level
                    seen[v] = 1
                    next_frontier.append(v)
        frontier = next_frontier
    return None


def bfs_path(graph: CSRGraph, source: int, target: int) -> list[int]:
    """Return one shortest path from ``source`` to ``target`` inclusive.

    Raises:
        UnreachableError: if no path exists.
    """
    graph.check_node(source)
    graph.check_node(target)
    if source == target:
        return [source]
    adj = graph.adjacency()
    parent = [UNREACHED] * graph.n
    parent[source] = source
    frontier = [source]
    while frontier:
        next_frontier = []
        for u in frontier:
            for v in adj[u]:
                if parent[v] < 0:
                    parent[v] = u
                    if v == target:
                        return _walk_parents(parent, source, target)
                    next_frontier.append(v)
        frontier = next_frontier
    raise UnreachableError(source, target)


def _walk_parents(parent: list[int], source: int, target: int) -> list[int]:
    """Reconstruct the path by walking parent pointers back from target."""
    path = [target]
    node = target
    while node != source:
        node = parent[node]
        path.append(node)
    path.reverse()
    return path


def multi_source_bfs(graph: CSRGraph, sources: Iterable[int]) -> np.ndarray:
    """Return, for every node, the hop distance to the nearest source.

    This is the fast way to compute every vicinity radius
    ``r(u) = d(u, L)`` in one O(m) sweep, used to cross-check the
    per-node truncated traversals.
    """
    adj = graph.adjacency()
    dist = [UNREACHED] * graph.n
    frontier = []
    for s in sources:
        graph.check_node(s)
        if dist[s] != 0:
            dist[s] = 0
            frontier.append(s)
    level = 0
    while frontier:
        level += 1
        next_frontier = []
        for u in frontier:
            for v in adj[u]:
                if dist[v] < 0:
                    dist[v] = level
                    next_frontier.append(v)
        frontier = next_frontier
    return np.asarray(dist, dtype=np.int32)


def eccentricity(graph: CSRGraph, source: int) -> int:
    """Return the largest finite hop distance from ``source``."""
    dist = bfs_distances(graph, source)
    reachable = dist[dist >= 0]
    return int(reachable.max()) if reachable.size else 0
