"""Bidirectional shortest-path search.

Bidirectional BFS is the paper's "state-of-the-art shortest path
algorithm [4]" comparator in Table 3, so this implementation is tuned
the way a careful C++ implementation would be: level-synchronous
expansion of whichever side currently has the smaller frontier, with
the standard termination proof.

Termination rule (unweighted): after the forward side has completed
depth ``ls`` and the backward side depth ``lt``, every undiscovered
path has length at least ``ls + lt + 1``; therefore the best meeting
value ``mu`` is final as soon as ``mu <= ls + lt``.
"""

from __future__ import annotations

import heapq
from typing import Optional, Tuple

from repro.exceptions import UnreachableError
from repro.graph.csr import CSRGraph

INF = float("inf")


def bidirectional_bfs(graph: CSRGraph, source: int, target: int) -> Optional[int]:
    """Return the hop distance between ``source`` and ``target``.

    Returns ``None`` when the nodes are disconnected.
    """
    distance, _meet, _ps, _pt = _bidirectional_bfs_full(graph, source, target)
    return distance


def bidirectional_bfs_path(graph: CSRGraph, source: int, target: int) -> list[int]:
    """Return one shortest path between ``source`` and ``target``.

    Raises:
        UnreachableError: if no path exists.
    """
    distance, meet, parent_s, parent_t = _bidirectional_bfs_full(graph, source, target)
    if distance is None or meet is None:
        raise UnreachableError(source, target)
    forward = [meet]
    node = meet
    while node != source:
        node = parent_s[node]
        forward.append(node)
    forward.reverse()
    node = meet
    while node != target:
        node = parent_t[node]
        forward.append(node)
    return forward


def _bidirectional_bfs_full(
    graph: CSRGraph, source: int, target: int
) -> Tuple[Optional[int], Optional[int], dict[int, int], dict[int, int]]:
    """Shared engine returning ``(distance, meeting node, parents_s, parents_t)``."""
    graph.check_node(source)
    graph.check_node(target)
    if source == target:
        return 0, source, {source: source}, {target: target}
    adj = graph.adjacency()
    dist_s: dict[int, int] = {source: 0}
    dist_t: dict[int, int] = {target: 0}
    parent_s: dict[int, int] = {source: source}
    parent_t: dict[int, int] = {target: target}
    frontier_s = [source]
    frontier_t = [target]
    level_s = 0
    level_t = 0
    mu = INF
    meet: Optional[int] = None

    while frontier_s and frontier_t:
        if mu <= level_s + level_t:
            break
        # Expand whichever side currently has the smaller frontier; this
        # is the optimisation that makes bidirectional search competitive
        # on skewed social-network degree distributions.
        if len(frontier_s) <= len(frontier_t):
            frontier, dist_mine, dist_other = frontier_s, dist_s, dist_t
            parent_mine = parent_s
            level_s += 1
            level = level_s
        else:
            frontier, dist_mine, dist_other = frontier_t, dist_t, dist_s
            parent_mine = parent_t
            level_t += 1
            level = level_t
        next_frontier = []
        for u in frontier:
            for v in adj[u]:
                if v not in dist_mine:
                    dist_mine[v] = level
                    parent_mine[v] = u
                    next_frontier.append(v)
                    other = dist_other.get(v)
                    if other is not None and level + other < mu:
                        mu = level + other
                        meet = v
        if dist_mine is dist_s:
            frontier_s = next_frontier
        else:
            frontier_t = next_frontier

    if meet is None:
        return None, None, parent_s, parent_t
    return int(mu), meet, parent_s, parent_t


def bidirectional_dijkstra(
    graph: CSRGraph, source: int, target: int
) -> Optional[float]:
    """Return the weighted distance between ``source`` and ``target``.

    Standard alternating bidirectional Dijkstra with the
    ``top_f + top_b >= mu`` stopping rule.  Returns ``None`` when
    disconnected.  Unweighted graphs use implicit unit weights.
    """
    graph.check_node(source)
    graph.check_node(target)
    if source == target:
        return 0.0
    adj = graph.weighted_adjacency()
    dist_f: dict[int, float] = {source: 0.0}
    dist_b: dict[int, float] = {target: 0.0}
    settled_f: set[int] = set()
    settled_b: set[int] = set()
    heap_f: list[Tuple[float, int]] = [(0.0, source)]
    heap_b: list[Tuple[float, int]] = [(0.0, target)]
    mu = INF

    while heap_f and heap_b:
        if heap_f[0][0] + heap_b[0][0] >= mu:
            break
        # Settle on the side with the smaller tentative top.
        if heap_f[0][0] <= heap_b[0][0]:
            heap, dist_mine, dist_other, settled = heap_f, dist_f, dist_b, settled_f
        else:
            heap, dist_mine, dist_other, settled = heap_b, dist_b, dist_f, settled_b
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        for v, w in adj[u]:
            nd = d + w
            if nd < dist_mine.get(v, INF):
                dist_mine[v] = nd
                heapq.heappush(heap, (nd, v))
            other = dist_other.get(v)
            if other is not None and d + w + other < mu:
                mu = d + w + other
    return None if mu == INF else float(mu)
