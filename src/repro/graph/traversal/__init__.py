"""Traversal engines over the CSR substrate.

Four families, mirroring what the paper needs:

* plain single-source / point-to-point BFS (:mod:`.bfs`) — the
  "standard shortest path algorithm" baseline of Table 3;
* Dijkstra variants (:mod:`.dijkstra`) for weighted graphs;
* bidirectional search (:mod:`.bidirectional`) — the "state-of-the-art"
  comparator [4] of Table 3;
* truncated traversals (:mod:`.bounded`) — the "modified shortest path
  algorithm [16]" of §2.2 that grows a ball until the nearest landmark
  and one extra frontier ring;
* batched truncated traversals (:mod:`.batched`) — the offline-phase
  engine that grows whole batches of balls per numpy wave, with
  boundary extraction riding along against the dense visited bitmap.
"""

from repro.graph.traversal.bfs import (
    bfs_distance,
    bfs_distances,
    bfs_path,
    bfs_tree,
    eccentricity,
    multi_source_bfs,
)
from repro.graph.traversal.dijkstra import (
    dijkstra_distance,
    dijkstra_distances,
    dijkstra_path,
    dijkstra_tree,
)
from repro.graph.traversal.bidirectional import (
    bidirectional_bfs,
    bidirectional_bfs_path,
    bidirectional_dijkstra,
)
from repro.graph.traversal.bounded import (
    BallResult,
    truncated_bfs_ball,
    truncated_dijkstra_ball,
)
from repro.graph.traversal.batched import PackedBalls, grow_balls
from repro.graph.traversal.astar import astar_distance, astar_path

__all__ = [
    "bfs_distances",
    "bfs_tree",
    "bfs_distance",
    "bfs_path",
    "multi_source_bfs",
    "eccentricity",
    "dijkstra_distances",
    "dijkstra_tree",
    "dijkstra_distance",
    "dijkstra_path",
    "bidirectional_bfs",
    "bidirectional_bfs_path",
    "bidirectional_dijkstra",
    "BallResult",
    "truncated_bfs_ball",
    "truncated_dijkstra_ball",
    "PackedBalls",
    "grow_balls",
    "astar_distance",
    "astar_path",
]
