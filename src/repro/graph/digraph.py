"""Directed graphs with both out- and in-adjacency in CSR form.

The paper's §5 poses extending vicinity intersection to directed social
networks (Twitter-style follow graphs) as a research challenge.  The
directed oracle in :mod:`repro.core.directed` needs forward balls around
sources and *reverse* balls around targets, so this structure keeps both
orientations of the arc set.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.exceptions import GraphError, NodeNotFoundError


class DiGraph:
    """An immutable directed graph with dual (out/in) CSR adjacency.

    Attributes:
        n: number of nodes.
        out_indptr / out_indices: CSR of outgoing arcs, rows sorted.
        in_indptr / in_indices: CSR of incoming arcs, rows sorted.
        out_weights / in_weights: optional aligned ``float64`` weights.
    """

    __slots__ = (
        "n",
        "out_indptr",
        "out_indices",
        "in_indptr",
        "in_indices",
        "out_weights",
        "in_weights",
        "_out_adj",
        "_in_adj",
    )

    def __init__(
        self,
        n: int,
        out_indptr: np.ndarray,
        out_indices: np.ndarray,
        in_indptr: np.ndarray,
        in_indices: np.ndarray,
        out_weights: Optional[np.ndarray] = None,
        in_weights: Optional[np.ndarray] = None,
    ) -> None:
        self.n = int(n)
        self.out_indptr = np.ascontiguousarray(out_indptr, dtype=np.int64)
        self.out_indices = np.ascontiguousarray(out_indices, dtype=np.int32)
        self.in_indptr = np.ascontiguousarray(in_indptr, dtype=np.int64)
        self.in_indices = np.ascontiguousarray(in_indices, dtype=np.int32)
        self.out_weights = (
            None if out_weights is None else np.ascontiguousarray(out_weights, np.float64)
        )
        self.in_weights = (
            None if in_weights is None else np.ascontiguousarray(in_weights, np.float64)
        )
        self._out_adj: Optional[list[list[int]]] = None
        self._in_adj: Optional[list[list[int]]] = None
        self._check_shape()

    def _check_shape(self) -> None:
        if self.n < 0:
            raise GraphError("node count must be non-negative")
        for name, indptr, indices in (
            ("out", self.out_indptr, self.out_indices),
            ("in", self.in_indptr, self.in_indices),
        ):
            if indptr.shape != (self.n + 1,):
                raise GraphError(f"{name}_indptr must have length n + 1")
            if self.n and (indptr[0] != 0 or indptr[-1] != indices.size):
                raise GraphError(f"{name}_indptr endpoints are inconsistent")
            if np.any(np.diff(indptr) < 0):
                raise GraphError(f"{name}_indptr must be non-decreasing")
            if indices.size and (indices.min() < 0 or indices.max() >= self.n):
                raise GraphError(f"{name}_indices reference unknown nodes")
        if self.out_indices.size != self.in_indices.size:
            raise GraphError("out and in arc counts differ")
        if (self.out_weights is None) != (self.in_weights is None):
            raise GraphError("weights must be present on both orientations or neither")

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def num_arcs(self) -> int:
        """Number of directed arcs."""
        return int(self.out_indices.size)

    @property
    def is_weighted(self) -> bool:
        """Whether the graph carries explicit arc weights."""
        return self.out_weights is not None

    def check_node(self, u: int) -> None:
        """Raise :class:`NodeNotFoundError` unless ``u`` is a valid node id."""
        if not 0 <= u < self.n:
            raise NodeNotFoundError(u, self.n)

    def out_degree(self, u: int) -> int:
        """Return the out-degree of ``u``."""
        self.check_node(u)
        return int(self.out_indptr[u + 1] - self.out_indptr[u])

    def in_degree(self, u: int) -> int:
        """Return the in-degree of ``u``."""
        self.check_node(u)
        return int(self.in_indptr[u + 1] - self.in_indptr[u])

    def out_degrees(self) -> np.ndarray:
        """Return all out-degrees."""
        return np.diff(self.out_indptr)

    def in_degrees(self) -> np.ndarray:
        """Return all in-degrees."""
        return np.diff(self.in_indptr)

    def total_degrees(self) -> np.ndarray:
        """Return ``out_degree + in_degree`` per node (the sampling weight)."""
        return self.out_degrees() + self.in_degrees()

    def successors(self, u: int) -> np.ndarray:
        """Return a sorted view of nodes reachable from ``u`` in one hop."""
        self.check_node(u)
        return self.out_indices[self.out_indptr[u]:self.out_indptr[u + 1]]

    def predecessors(self, u: int) -> np.ndarray:
        """Return a sorted view of nodes with an arc into ``u``."""
        self.check_node(u)
        return self.in_indices[self.in_indptr[u]:self.in_indptr[u + 1]]

    def has_arc(self, u: int, v: int) -> bool:
        """Return whether the arc ``u -> v`` exists."""
        row = self.successors(u)
        self.check_node(v)
        pos = int(np.searchsorted(row, v))
        return pos < row.size and int(row[pos]) == v

    # ------------------------------------------------------------------
    # adjacency views
    # ------------------------------------------------------------------
    def out_adjacency(self) -> list[list[int]]:
        """Return (and cache) a list-of-list view of outgoing arcs."""
        if self._out_adj is None:
            flat = self.out_indices.tolist()
            bounds = self.out_indptr.tolist()
            self._out_adj = [flat[bounds[u]:bounds[u + 1]] for u in range(self.n)]
        return self._out_adj

    def in_adjacency(self) -> list[list[int]]:
        """Return (and cache) a list-of-list view of incoming arcs."""
        if self._in_adj is None:
            flat = self.in_indices.tolist()
            bounds = self.in_indptr.tolist()
            self._in_adj = [flat[bounds[u]:bounds[u + 1]] for u in range(self.n)]
        return self._in_adj

    def reverse(self) -> "DiGraph":
        """Return the graph with every arc reversed (shares arrays)."""
        return DiGraph(
            self.n,
            self.in_indptr,
            self.in_indices,
            self.out_indptr,
            self.out_indices,
            self.in_weights,
            self.out_weights,
        )

    def as_undirected(self) -> "object":
        """Return the undirected projection (arc orientation discarded)."""
        from repro.graph.builder import graph_from_arrays

        src = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(self.out_indptr))
        return graph_from_arrays(src, self.out_indices.astype(np.int64), n=self.n)

    def arcs(self) -> Iterator[Tuple[int, int]]:
        """Yield every arc as ``(u, v)``."""
        indptr, indices = self.out_indptr, self.out_indices
        for u in range(self.n):
            for idx in range(int(indptr[u]), int(indptr[u + 1])):
                yield u, int(indices[idx])

    def __repr__(self) -> str:
        kind = "weighted" if self.is_weighted else "unweighted"
        return f"DiGraph(n={self.n}, arcs={self.num_arcs}, {kind})"
