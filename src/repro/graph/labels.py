"""Mapping between arbitrary node labels and dense integer ids.

The library's graphs use dense integer ids for compactness, but real
social-network data identifies users by screen names, URLs or opaque
keys.  :class:`LabelEncoder` provides the bridge, and
:func:`labeled_graph_from_edges` builds a graph directly from labelled
edge pairs (used by the example applications).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence, Tuple

from repro.exceptions import GraphError
from repro.graph.builder import graph_from_edges
from repro.graph.csr import CSRGraph


class LabelEncoder:
    """A bijection between hashable labels and ids ``0 .. n-1``.

    Ids are assigned in first-seen order, so encoding the same label
    stream twice yields identical ids — important for reproducibility.
    """

    def __init__(self) -> None:
        self._to_id: dict[Hashable, int] = {}
        self._to_label: list[Hashable] = []

    def __len__(self) -> int:
        return len(self._to_label)

    def __contains__(self, label: Hashable) -> bool:
        return label in self._to_id

    def encode(self, label: Hashable) -> int:
        """Return the id for ``label``, assigning a fresh one if unseen."""
        existing = self._to_id.get(label)
        if existing is not None:
            return existing
        new_id = len(self._to_label)
        self._to_id[label] = new_id
        self._to_label.append(label)
        return new_id

    def encode_many(self, labels: Iterable[Hashable]) -> list[int]:
        """Encode an iterable of labels, assigning fresh ids as needed."""
        return [self.encode(label) for label in labels]

    def lookup(self, label: Hashable) -> int:
        """Return the id for a known ``label``.

        Raises:
            GraphError: if the label has never been encoded.
        """
        existing = self._to_id.get(label)
        if existing is None:
            raise GraphError(f"unknown label: {label!r}")
        return existing

    def decode(self, node_id: int) -> Hashable:
        """Return the label for ``node_id``."""
        if not 0 <= node_id < len(self._to_label):
            raise GraphError(f"unknown node id: {node_id}")
        return self._to_label[node_id]

    def decode_many(self, node_ids: Iterable[int]) -> list[Hashable]:
        """Decode an iterable of node ids back to their labels."""
        return [self.decode(node_id) for node_id in node_ids]

    @property
    def labels(self) -> Sequence[Hashable]:
        """All labels, indexed by id."""
        return tuple(self._to_label)


def labeled_graph_from_edges(
    edges: Iterable[Tuple[Hashable, Hashable]],
) -> Tuple[CSRGraph, LabelEncoder]:
    """Build an undirected graph from labelled edge pairs.

    Returns:
        ``(graph, encoder)`` — query the graph with
        ``encoder.lookup(label)`` and translate paths back with
        ``encoder.decode_many(path)``.
    """
    encoder = LabelEncoder()
    pairs = [(encoder.encode(a), encoder.encode(b)) for a, b in edges]
    graph = graph_from_edges(pairs, n=len(encoder))
    return graph, encoder
