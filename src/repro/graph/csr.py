"""Immutable undirected graphs in compressed sparse row (CSR) form.

CSR keeps the whole network in three flat arrays — exactly the kind of
compact, cache-friendly representation the paper assumes when it talks
about holding multi-million-node social networks in memory.  Rows
(per-node neighbour lists) are kept sorted so membership tests are
binary searches, and a Python ``list``-of-``list`` adjacency view is
materialised lazily for the traversal hot loops, where iterating boxed
NumPy scalars would dominate the running time.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import GraphError, NodeNotFoundError


class CSRGraph:
    """An immutable, undirected, optionally weighted graph.

    Nodes are the dense integers ``0 .. n-1``.  Both directions of every
    undirected edge are stored, so ``indices`` has ``2 m`` entries for a
    graph with ``m`` undirected edges.  Instances should normally be
    created through the builders in :mod:`repro.graph.builder`, which
    canonicalise arbitrary edge lists; the constructor validates shape
    invariants but (for speed) not symmetry — call :meth:`validate` for
    the full check.

    Attributes:
        n: number of nodes.
        indptr: ``int64`` array of length ``n + 1``; row ``u`` occupies
            ``indices[indptr[u]:indptr[u + 1]]``.
        indices: ``int32`` array of neighbour ids, sorted within each row.
        weights: optional ``float64`` array aligned with ``indices``.
    """

    __slots__ = ("n", "indptr", "indices", "weights", "_adj", "_wadj", "_degrees")

    def __init__(
        self,
        n: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> None:
        self.n = int(n)
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int32)
        self.weights = (
            None if weights is None else np.ascontiguousarray(weights, dtype=np.float64)
        )
        self._adj: Optional[list[list[int]]] = None
        self._wadj: Optional[list[list[Tuple[int, float]]]] = None
        self._degrees: Optional[np.ndarray] = None
        self._check_shape()

    # ------------------------------------------------------------------
    # construction-time checks
    # ------------------------------------------------------------------
    def _check_shape(self) -> None:
        if self.n < 0:
            raise GraphError("node count must be non-negative")
        if self.indptr.shape != (self.n + 1,):
            raise GraphError(
                f"indptr must have length n + 1 = {self.n + 1}, got {self.indptr.shape}"
            )
        if self.n and self.indptr[0] != 0:
            raise GraphError("indptr[0] must be 0")
        if self.n == 0:
            if self.indices.size or self.indptr[0] != 0:
                raise GraphError("empty graph must have empty indices")
            return
        if self.indptr[-1] != self.indices.size:
            raise GraphError("indptr[-1] must equal len(indices)")
        if np.any(np.diff(self.indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        if self.indices.size:
            lo, hi = int(self.indices.min()), int(self.indices.max())
            if lo < 0 or hi >= self.n:
                raise GraphError("indices reference nodes outside range(n)")
        if self.weights is not None:
            if self.weights.shape != self.indices.shape:
                raise GraphError("weights must align with indices")
            if self.weights.size and float(self.weights.min()) < 0:
                raise GraphError("edge weights must be non-negative")

    def validate(self) -> None:
        """Run the full (O(m log m)) invariant check.

        Verifies everything the constructor checks plus: rows sorted,
        no self-loops, no duplicate edges, and symmetry (``(u, v)``
        present iff ``(v, u)`` present, with equal weights).

        Raises:
            GraphError: if any invariant is violated.
        """
        self._check_shape()
        for u in range(self.n):
            row = self.indices[self.indptr[u]:self.indptr[u + 1]]
            if row.size:
                if np.any(np.diff(row) <= 0):
                    raise GraphError(f"row {u} is not strictly sorted")
                if np.any(row == u):
                    raise GraphError(f"self-loop at node {u}")
        # Symmetry: the multiset of (min, max) pairs must pair up exactly.
        src = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(self.indptr))
        dst = self.indices.astype(np.int64)
        forward = src * self.n + dst
        backward = dst * self.n + src
        if not np.array_equal(np.sort(forward), np.sort(backward)):
            raise GraphError("adjacency is not symmetric")
        if self.weights is not None:
            order_f = np.argsort(forward, kind="stable")
            order_b = np.argsort(backward, kind="stable")
            if not np.allclose(self.weights[order_f], self.weights[order_b]):
                raise GraphError("weights are not symmetric")

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m``."""
        return self.indices.size // 2

    @property
    def num_directed_entries(self) -> int:
        """Number of stored directed adjacency entries (``2 m``)."""
        return int(self.indices.size)

    @property
    def is_weighted(self) -> bool:
        """Whether the graph carries explicit edge weights."""
        return self.weights is not None

    def check_node(self, u: int) -> None:
        """Raise :class:`NodeNotFoundError` unless ``u`` is a valid node id."""
        if not 0 <= u < self.n:
            raise NodeNotFoundError(u, self.n)

    def degree(self, u: int) -> int:
        """Return the degree of node ``u``."""
        self.check_node(u)
        return int(self.indptr[u + 1] - self.indptr[u])

    def degrees(self) -> np.ndarray:
        """Return the degree of every node as an ``int64`` array (cached)."""
        if self._degrees is None:
            self._degrees = np.diff(self.indptr)
        return self._degrees

    def neighbors(self, u: int) -> np.ndarray:
        """Return a read-only view of ``u``'s sorted neighbour ids."""
        self.check_node(u)
        return self.indices[self.indptr[u]:self.indptr[u + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Return whether the undirected edge ``{u, v}`` exists."""
        self.check_node(u)
        self.check_node(v)
        row = self.indices[self.indptr[u]:self.indptr[u + 1]]
        pos = int(np.searchsorted(row, v))
        return pos < row.size and int(row[pos]) == v

    def edge_weight(self, u: int, v: int) -> float:
        """Return the weight of edge ``{u, v}`` (1.0 for unweighted graphs).

        Raises:
            GraphError: if the edge does not exist.
        """
        self.check_node(u)
        self.check_node(v)
        start, stop = int(self.indptr[u]), int(self.indptr[u + 1])
        row = self.indices[start:stop]
        pos = int(np.searchsorted(row, v))
        if pos >= row.size or int(row[pos]) != v:
            raise GraphError(f"edge ({u}, {v}) does not exist")
        if self.weights is None:
            return 1.0
        return float(self.weights[start + pos])

    # ------------------------------------------------------------------
    # adjacency views for traversal hot loops
    # ------------------------------------------------------------------
    def adjacency(self) -> list[list[int]]:
        """Return (and cache) a ``list``-of-``list`` adjacency view.

        Traversals iterate neighbours billions of times; plain Python
        ``int`` lists iterate several times faster than NumPy rows, so
        every traversal engine in this library starts by grabbing this
        view.  The view is cached; callers must not mutate it.
        """
        if self._adj is None:
            flat = self.indices.tolist()
            bounds = self.indptr.tolist()
            self._adj = [flat[bounds[u]:bounds[u + 1]] for u in range(self.n)]
        return self._adj

    def weighted_adjacency(self) -> list[list[Tuple[int, float]]]:
        """Return (and cache) adjacency as ``(neighbor, weight)`` pairs.

        For unweighted graphs every weight is ``1.0``, which lets the
        Dijkstra-family engines treat both cases uniformly.
        """
        if self._wadj is None:
            flat = self.indices.tolist()
            bounds = self.indptr.tolist()
            if self.weights is None:
                wflat = [1.0] * len(flat)
            else:
                wflat = self.weights.tolist()
            self._wadj = [
                list(zip(flat[bounds[u]:bounds[u + 1]], wflat[bounds[u]:bounds[u + 1]]))
                for u in range(self.n)
            ]
        return self._wadj

    # ------------------------------------------------------------------
    # iteration and export
    # ------------------------------------------------------------------
    def edges(self) -> Iterator[Tuple[int, int]]:
        """Yield each undirected edge once as ``(u, v)`` with ``u < v``."""
        indptr, indices = self.indptr, self.indices
        for u in range(self.n):
            for idx in range(int(indptr[u]), int(indptr[u + 1])):
                v = int(indices[idx])
                if u < v:
                    yield u, v

    def weighted_edges(self) -> Iterator[Tuple[int, int, float]]:
        """Yield each undirected edge once as ``(u, v, weight)``."""
        indptr, indices = self.indptr, self.indices
        for u in range(self.n):
            for idx in range(int(indptr[u]), int(indptr[u + 1])):
                v = int(indices[idx])
                if u < v:
                    w = 1.0 if self.weights is None else float(self.weights[idx])
                    yield u, v, w

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Return ``(src, dst, weights)`` arrays with each edge once (src < dst)."""
        src = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(self.indptr))
        dst = self.indices.astype(np.int64)
        mask = src < dst
        weights = None if self.weights is None else self.weights[mask]
        return src[mask], dst[mask], weights

    def subgraph(self, nodes: Sequence[int]) -> Tuple["CSRGraph", np.ndarray]:
        """Return the induced subgraph on ``nodes`` plus the id mapping.

        Args:
            nodes: node ids to keep (need not be sorted; duplicates are
                an error because the mapping would be ambiguous).

        Returns:
            ``(sub, originals)`` where ``sub`` is the induced subgraph
            with nodes relabelled ``0 .. len(nodes) - 1`` following the
            order of ``nodes``, and ``originals[i]`` is the original id
            of new node ``i``.
        """
        keep = np.asarray(nodes, dtype=np.int64)
        if keep.size != np.unique(keep).size:
            raise GraphError("subgraph node list contains duplicates")
        if keep.size and (keep.min() < 0 or keep.max() >= self.n):
            raise GraphError("subgraph node list references unknown nodes")
        new_id = np.full(self.n, -1, dtype=np.int64)
        new_id[keep] = np.arange(keep.size, dtype=np.int64)
        src, dst, weights = self.edge_arrays()
        mask = (new_id[src] >= 0) & (new_id[dst] >= 0)
        # Local import: builder depends on this module, so import lazily
        # to keep the module graph acyclic at import time.
        from repro.graph.builder import graph_from_arrays

        sub = graph_from_arrays(
            new_id[src[mask]],
            new_id[dst[mask]],
            n=keep.size,
            weights=None if weights is None else weights[mask],
        )
        return sub, keep

    def __repr__(self) -> str:
        kind = "weighted" if self.is_weighted else "unweighted"
        return f"CSRGraph(n={self.n}, m={self.num_edges}, {kind})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        if self.n != other.n or not np.array_equal(self.indptr, other.indptr):
            return False
        if not np.array_equal(self.indices, other.indices):
            return False
        if (self.weights is None) != (other.weights is None):
            return False
        if self.weights is not None and not np.array_equal(self.weights, other.weights):
            return False
        return True

    def __hash__(self) -> int:  # pragma: no cover - identity hashing only
        return id(self)
