"""Graph substrate: compact in-memory graphs and traversal engines.

The paper's technique operates on large, sparse, mostly-unweighted social
networks held entirely in memory.  This package provides that substrate:

* :class:`~repro.graph.csr.CSRGraph` — immutable undirected graph in
  compressed sparse row (CSR) form, optionally weighted;
* :class:`~repro.graph.digraph.DiGraph` — directed variant with both
  out- and in-adjacency (needed by the directed extension, §5);
* builders that clean arbitrary edge lists (dedupe, drop self-loops,
  symmetrise) into canonical CSR form;
* deterministic toy graphs for tests and documentation;
* traversal engines under :mod:`repro.graph.traversal` (BFS, Dijkstra,
  truncated/ball variants, bidirectional search, A*).
"""

from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.graph.builder import (
    complete_graph,
    cycle_graph,
    digraph_from_arrays,
    digraph_from_edges,
    empty_graph,
    graph_from_arrays,
    graph_from_edges,
    graph_from_weighted_edges,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graph.components import (
    connected_components,
    is_connected,
    largest_component,
)
from repro.graph.labels import LabelEncoder, labeled_graph_from_edges
from repro.graph.degree import (
    average_degree,
    degree_histogram,
    estimate_powerlaw_exponent,
)

__all__ = [
    "CSRGraph",
    "DiGraph",
    "graph_from_edges",
    "graph_from_weighted_edges",
    "graph_from_arrays",
    "digraph_from_edges",
    "digraph_from_arrays",
    "empty_graph",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "grid_graph",
    "connected_components",
    "largest_component",
    "is_connected",
    "LabelEncoder",
    "labeled_graph_from_edges",
    "degree_histogram",
    "average_degree",
    "estimate_powerlaw_exponent",
]
