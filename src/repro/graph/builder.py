"""Builders that canonicalise edge lists into CSR graphs.

Real edge lists — crawls, generator output, user input — arrive with
duplicates, self-loops and only one direction of each undirected edge.
The builders here normalise all of that: self-loops are dropped, parallel
edges are collapsed (keeping the minimum weight, as a shortest-path
library must), and undirected graphs are symmetrised.  All heavy lifting
is vectorised NumPy so multi-million-edge lists build in seconds.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from repro.exceptions import EdgeError, GraphError
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.types import EdgeIterable, WeightedEdgeIterable


def _as_endpoint_arrays(
    src: np.ndarray, dst: np.ndarray, n: Optional[int]
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Validate endpoint arrays and infer the node count when absent."""
    src = np.asarray(src, dtype=np.int64).ravel()
    dst = np.asarray(dst, dtype=np.int64).ravel()
    if src.shape != dst.shape:
        raise EdgeError("src and dst arrays must have the same length")
    if src.size and (src.min() < 0 or dst.min() < 0):
        raise EdgeError("node ids must be non-negative")
    inferred = 0 if src.size == 0 else int(max(src.max(), dst.max())) + 1
    if n is None:
        n = inferred
    elif n < inferred:
        raise EdgeError(f"edge list references node {inferred - 1} but n={n}")
    return src, dst, int(n)


def _dedupe_directed(
    src: np.ndarray, dst: np.ndarray, n: int, weights: Optional[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Drop self-loops and collapse parallel arcs (keeping minimum weight)."""
    keep = src != dst
    src, dst = src[keep], dst[keep]
    if weights is not None:
        weights = weights[keep]
    if src.size == 0:
        return src, dst, weights
    key = src * n + dst
    if weights is None:
        key = np.unique(key)
        return key // n, key % n, None
    # Sort by (key, weight) so the first row of each key carries the
    # minimum weight, then keep exactly those first rows.
    order = np.lexsort((weights, key))
    key, weights = key[order], weights[order]
    first = np.empty(key.size, dtype=bool)
    first[0] = True
    np.not_equal(key[1:], key[:-1], out=first[1:])
    key, weights = key[first], weights[first]
    return key // n, key % n, weights


def _csr_from_sorted(
    src: np.ndarray, dst: np.ndarray, n: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Build ``(indptr, indices)`` from arcs already sorted by ``(src, dst)``."""
    counts = np.bincount(src, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, dst.astype(np.int32)


def graph_from_arrays(
    src: np.ndarray,
    dst: np.ndarray,
    *,
    n: Optional[int] = None,
    weights: Optional[np.ndarray] = None,
) -> CSRGraph:
    """Build an undirected :class:`CSRGraph` from endpoint arrays.

    This is the fast path used by the synthetic generators.  Each input
    pair is treated as one undirected edge regardless of orientation;
    duplicates (in either orientation) collapse to a single edge with
    the minimum supplied weight, and self-loops are dropped.

    Args:
        src: source endpoints.
        dst: destination endpoints, same length as ``src``.
        n: node count; inferred as ``max(id) + 1`` when omitted.
        weights: optional per-edge non-negative weights.

    Returns:
        The canonical CSR graph.
    """
    src, dst, n = _as_endpoint_arrays(src, dst, n)
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64).ravel()
        if weights.shape != src.shape:
            raise EdgeError("weights must align with the edge arrays")
        if weights.size and weights.min() < 0:
            raise EdgeError("edge weights must be non-negative")
    both_src = np.concatenate([src, dst])
    both_dst = np.concatenate([dst, src])
    both_w = None if weights is None else np.concatenate([weights, weights])
    u, v, w = _dedupe_directed(both_src, both_dst, max(n, 1), both_w)
    indptr, indices = _csr_from_sorted(u, v, n)
    return CSRGraph(n, indptr, indices, w)


def graph_from_edges(edges: EdgeIterable, *, n: Optional[int] = None) -> CSRGraph:
    """Build an undirected, unweighted graph from an ``(u, v)`` iterable."""
    pairs = list(edges)
    if not pairs:
        return empty_graph(n or 0)
    arr = np.asarray(pairs, dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise EdgeError("edges must be (u, v) pairs")
    return graph_from_arrays(arr[:, 0], arr[:, 1], n=n)


def graph_from_weighted_edges(
    edges: WeightedEdgeIterable, *, n: Optional[int] = None
) -> CSRGraph:
    """Build an undirected, weighted graph from ``(u, v, weight)`` triples."""
    triples = list(edges)
    if not triples:
        graph = empty_graph(n or 0)
        return CSRGraph(graph.n, graph.indptr, graph.indices, np.zeros(0))
    arr = np.asarray(triples, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] != 3:
        raise EdgeError("weighted edges must be (u, v, weight) triples")
    return graph_from_arrays(
        arr[:, 0].astype(np.int64),
        arr[:, 1].astype(np.int64),
        n=n,
        weights=arr[:, 2],
    )


def digraph_from_arrays(
    src: np.ndarray,
    dst: np.ndarray,
    *,
    n: Optional[int] = None,
    weights: Optional[np.ndarray] = None,
) -> DiGraph:
    """Build a :class:`DiGraph` from arc endpoint arrays.

    Arcs keep their orientation; parallel arcs collapse to the minimum
    weight and self-loops are dropped, mirroring the undirected builder.
    """
    src, dst, n = _as_endpoint_arrays(src, dst, n)
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64).ravel()
        if weights.shape != src.shape:
            raise EdgeError("weights must align with the edge arrays")
        if weights.size and weights.min() < 0:
            raise EdgeError("edge weights must be non-negative")
    u, v, w = _dedupe_directed(src, dst, max(n, 1), weights)
    out_indptr, out_indices = _csr_from_sorted(u, v, n)
    # The in-adjacency is the CSR of the reversed arcs; re-sort by (dst, src).
    order = np.lexsort((u, v))
    in_indptr, in_indices = _csr_from_sorted(v[order], u[order], n)
    in_weights = None if w is None else w[order]
    return DiGraph(n, out_indptr, out_indices, in_indptr, in_indices, w, in_weights)


def digraph_from_edges(edges: EdgeIterable, *, n: Optional[int] = None) -> DiGraph:
    """Build an unweighted :class:`DiGraph` from an ``(u, v)`` arc iterable."""
    pairs = list(edges)
    if not pairs:
        return digraph_from_arrays(np.zeros(0, np.int64), np.zeros(0, np.int64), n=n or 0)
    arr = np.asarray(pairs, dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise EdgeError("edges must be (u, v) pairs")
    return digraph_from_arrays(arr[:, 0], arr[:, 1], n=n)


# ----------------------------------------------------------------------
# deterministic toy graphs (tests, docs, examples)
# ----------------------------------------------------------------------
def empty_graph(n: int) -> CSRGraph:
    """Return the edgeless graph on ``n`` nodes."""
    if n < 0:
        raise GraphError("node count must be non-negative")
    return CSRGraph(n, np.zeros(n + 1, dtype=np.int64), np.zeros(0, dtype=np.int32))


def path_graph(n: int) -> CSRGraph:
    """Return the path ``0 - 1 - ... - (n-1)``."""
    if n <= 1:
        return empty_graph(max(n, 0))
    nodes = np.arange(n - 1, dtype=np.int64)
    return graph_from_arrays(nodes, nodes + 1, n=n)


def cycle_graph(n: int) -> CSRGraph:
    """Return the cycle on ``n`` nodes (``n >= 3``)."""
    if n < 3:
        raise GraphError("a cycle requires at least 3 nodes")
    nodes = np.arange(n, dtype=np.int64)
    return graph_from_arrays(nodes, (nodes + 1) % n, n=n)


def star_graph(n: int) -> CSRGraph:
    """Return the star with centre ``0`` and ``n - 1`` leaves."""
    if n <= 1:
        return empty_graph(max(n, 0))
    leaves = np.arange(1, n, dtype=np.int64)
    return graph_from_arrays(np.zeros(n - 1, dtype=np.int64), leaves, n=n)


def complete_graph(n: int) -> CSRGraph:
    """Return the complete graph on ``n`` nodes."""
    if n < 0:
        raise GraphError("node count must be non-negative")
    src, dst = np.triu_indices(n, k=1)
    return graph_from_arrays(src.astype(np.int64), dst.astype(np.int64), n=n)


def grid_graph(rows: int, cols: int) -> CSRGraph:
    """Return the ``rows x cols`` 4-neighbour grid (node ``r * cols + c``)."""
    if rows <= 0 or cols <= 0:
        raise GraphError("grid dimensions must be positive")
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    horizontal = (ids[:, :-1].ravel(), ids[:, 1:].ravel())
    vertical = (ids[:-1, :].ravel(), ids[1:, :].ravel())
    src = np.concatenate([horizontal[0], vertical[0]])
    dst = np.concatenate([horizontal[1], vertical[1]])
    return graph_from_arrays(src, dst, n=rows * cols)
