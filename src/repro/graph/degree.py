"""Degree statistics for validating synthetic social networks.

The vicinity technique leans on heavy-tailed degree distributions: high
degree hubs are sampled into the landmark set with high probability and
stop balls from growing (§2.1).  These helpers quantify how heavy-tailed
a generated graph actually is, so the dataset registry can assert its
stand-ins behave like the crawls they replace.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import GraphError
from repro.graph.csr import CSRGraph


def degree_histogram(graph: CSRGraph) -> np.ndarray:
    """Return ``hist`` where ``hist[k]`` counts nodes of degree ``k``."""
    degrees = graph.degrees()
    if degrees.size == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(degrees)


def average_degree(graph: CSRGraph) -> float:
    """Return the mean degree ``2 m / n`` (0.0 for the empty graph)."""
    if graph.n == 0:
        return 0.0
    return 2.0 * graph.num_edges / graph.n


def max_degree(graph: CSRGraph) -> int:
    """Return the maximum degree (0 for the empty graph)."""
    degrees = graph.degrees()
    return int(degrees.max()) if degrees.size else 0


def estimate_powerlaw_exponent(
    graph: CSRGraph, *, k_min: int = 2
) -> Tuple[float, int]:
    """Estimate the power-law exponent of the degree distribution.

    Uses the discrete maximum-likelihood estimator (Clauset et al.):
    ``alpha = 1 + N / sum(ln(k / (k_min - 0.5)))`` over degrees
    ``k >= k_min``.

    Args:
        graph: the graph to analyse.
        k_min: smallest degree included in the tail fit.

    Returns:
        ``(alpha, tail_size)`` — the exponent estimate and how many
        nodes participated in the fit.

    Raises:
        GraphError: if no node has degree at least ``k_min``.
    """
    if k_min < 1:
        raise GraphError("k_min must be at least 1")
    degrees = graph.degrees()
    tail = degrees[degrees >= k_min].astype(np.float64)
    if tail.size == 0:
        raise GraphError(f"no node has degree >= {k_min}")
    alpha = 1.0 + tail.size / float(np.sum(np.log(tail / (k_min - 0.5))))
    return float(alpha), int(tail.size)


def degree_percentiles(
    graph: CSRGraph, percentiles: Tuple[float, ...] = (50.0, 90.0, 99.0, 100.0)
) -> dict[float, float]:
    """Return the requested percentiles of the degree distribution."""
    degrees = graph.degrees()
    if degrees.size == 0:
        return {p: 0.0 for p in percentiles}
    values = np.percentile(degrees, percentiles)
    return {p: float(v) for p, v in zip(percentiles, values)}
