"""Synthetic social-network datasets.

The paper evaluates on four crawls (DBLP, Flickr, Orkut, LiveJournal —
Table 2) that cannot be redistributed and cannot be downloaded in an
offline environment.  This package substitutes generators whose outputs
exercise the same code paths and exhibit the structural properties the
technique depends on (heavy-tailed degrees, small diameter, dense
cores):

* :mod:`~repro.datasets.chung_lu` — expected-degree-sequence graphs
  with power-law weights (the primary stand-in; degree distribution is
  directly calibratable);
* :mod:`~repro.datasets.barabasi_albert` — preferential attachment;
* :mod:`~repro.datasets.watts_strogatz` — small-world control;
* :mod:`~repro.datasets.erdos_renyi` — homogeneous control (the case
  where vicinity intersection is *expected* to degrade);
* :mod:`~repro.datasets.rmat` — Kronecker-style communities;
* :mod:`~repro.datasets.forest_fire` — densifying crawl model;
* :mod:`~repro.datasets.social` — the calibrated registry mapping the
  paper's Table 2 rows to scaled generator configurations.
"""

from repro.datasets.chung_lu import chung_lu_graph, directed_chung_lu_graph, powerlaw_weights
from repro.datasets.barabasi_albert import barabasi_albert_graph
from repro.datasets.watts_strogatz import watts_strogatz_graph
from repro.datasets.erdos_renyi import erdos_renyi_graph
from repro.datasets.rmat import rmat_graph
from repro.datasets.forest_fire import forest_fire_graph
from repro.datasets.social import (
    DATASETS,
    DatasetSpec,
    available,
    generate,
    generate_directed,
    spec,
)

__all__ = [
    "powerlaw_weights",
    "chung_lu_graph",
    "directed_chung_lu_graph",
    "barabasi_albert_graph",
    "watts_strogatz_graph",
    "erdos_renyi_graph",
    "rmat_graph",
    "forest_fire_graph",
    "DATASETS",
    "DatasetSpec",
    "available",
    "generate",
    "generate_directed",
    "spec",
]
