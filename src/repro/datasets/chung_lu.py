"""Chung-Lu expected-degree graphs with power-law weights.

The primary stand-in for the paper's crawls: node ``i`` receives an
expected degree ``w_i`` drawn from a truncated Pareto law, and edges are
sampled with probability proportional to ``w_i * w_j`` using the fast
"edge-list" formulation (sample both endpoints of each of ``sum(w)/2``
edges from the weight distribution).  This reproduces the two
structural features the vicinity technique exploits — a heavy tail
(hubs that become landmarks and stop ball growth) and a small diameter
(vicinities of radius 3-4 reach ``alpha * sqrt(n)`` nodes).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import DatasetError
from repro.graph.builder import digraph_from_arrays, graph_from_arrays
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.utils.rng import RngLike, ensure_rng


def powerlaw_weights(
    n: int,
    *,
    exponent: float = 2.5,
    mean_degree: float = 10.0,
    max_degree: Optional[float] = None,
    rng: RngLike = None,
) -> np.ndarray:
    """Draw a power-law expected-degree sequence.

    Args:
        n: number of nodes.
        exponent: tail exponent ``gamma`` (social networks: 2-3).
        mean_degree: target average of the returned weights.
        max_degree: truncation point; defaults to ``sqrt(n * mean_degree)``,
            the natural cutoff keeping expected edge probabilities <= 1.
        rng: seed or generator.

    Returns:
        ``float64`` weights with mean ``mean_degree`` (post-truncation
        rescaled, so the mean is honoured even with a low cutoff).
    """
    if n <= 0:
        raise DatasetError("n must be positive")
    if exponent <= 1.0:
        raise DatasetError("power-law exponent must exceed 1")
    if mean_degree <= 0 or mean_degree >= n:
        raise DatasetError("mean_degree must be in (0, n)")
    generator = ensure_rng(rng)
    if max_degree is None:
        max_degree = float(np.sqrt(n * mean_degree))
    u = generator.random(n)
    weights = (1.0 - u) ** (-1.0 / (exponent - 1.0))
    # Two-pass rescale: match the mean, truncate, then rebalance the
    # mass lost to truncation so the target mean survives.
    for _ in range(2):
        weights = weights * (mean_degree / weights.mean())
        weights = np.minimum(weights, max_degree)
    return weights


def chung_lu_graph(
    weights: np.ndarray,
    *,
    rng: RngLike = None,
    edge_factor: float = 1.0,
) -> CSRGraph:
    """Sample an undirected Chung-Lu graph for an expected-degree vector.

    Uses the fast formulation: ``round(sum(w) / 2 * edge_factor)`` edges
    whose endpoints are drawn independently from the weight
    distribution.  Self-loops and duplicates are removed by the
    builder, so realised edge counts land a few percent below the
    target; ``edge_factor`` lets callers compensate.

    Args:
        weights: expected degrees (positive).
        rng: seed or generator.
        edge_factor: multiplier on the nominal edge count.

    Returns:
        The sampled graph (possibly disconnected; callers who need the
        paper's connected setting should extract the largest component).
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1 or weights.size == 0:
        raise DatasetError("weights must be a non-empty 1-d array")
    if weights.min() <= 0:
        raise DatasetError("weights must be positive")
    generator = ensure_rng(rng)
    n = weights.size
    num_edges = int(round(weights.sum() / 2.0 * edge_factor))
    if num_edges == 0:
        return graph_from_arrays(np.zeros(0, np.int64), np.zeros(0, np.int64), n=n)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    src = np.searchsorted(cdf, generator.random(num_edges)).astype(np.int64)
    dst = np.searchsorted(cdf, generator.random(num_edges)).astype(np.int64)
    return graph_from_arrays(src, dst, n=n)


def directed_chung_lu_graph(
    weights: np.ndarray,
    *,
    reciprocity: float = 0.5,
    rng: RngLike = None,
) -> DiGraph:
    """Sample a directed Chung-Lu graph with controlled reciprocity.

    Social follow-graphs mix mutual and one-way ties; Table 2 reports
    both arc and mutualised-pair counts, so the generator exposes the
    ratio directly.

    Args:
        weights: expected total degrees.
        reciprocity: fraction of sampled ties that are made mutual
            (both arcs); the rest keep one random orientation.
        rng: seed or generator.

    Returns:
        The sampled digraph.
    """
    if not 0.0 <= reciprocity <= 1.0:
        raise DatasetError("reciprocity must lie in [0, 1]")
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1 or weights.size == 0:
        raise DatasetError("weights must be a non-empty 1-d array")
    if weights.min() <= 0:
        raise DatasetError("weights must be positive")
    generator = ensure_rng(rng)
    n = weights.size
    num_ties = int(round(weights.sum() / 2.0))
    if num_ties == 0:
        empty = np.zeros(0, np.int64)
        return digraph_from_arrays(empty, empty, n=n)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    a = np.searchsorted(cdf, generator.random(num_ties)).astype(np.int64)
    b = np.searchsorted(cdf, generator.random(num_ties)).astype(np.int64)
    mutual = generator.random(num_ties) < reciprocity
    flip = generator.random(num_ties) < 0.5
    # One-way ties keep a random orientation; mutual ties emit both arcs.
    one_a = np.where(flip, a, b)[~mutual]
    one_b = np.where(flip, b, a)[~mutual]
    src = np.concatenate([a[mutual], b[mutual], one_a])
    dst = np.concatenate([b[mutual], a[mutual], one_b])
    return digraph_from_arrays(src, dst, n=n)
