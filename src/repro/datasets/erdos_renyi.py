"""Erdos-Renyi uniform random graphs.

The fully homogeneous control: no hubs at all.  Degree-proportional
sampling degenerates to uniform sampling here, and the ablation
benchmarks use this generator to demonstrate the intersection-rate gap
between social and unstructured topologies.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DatasetError
from repro.graph.builder import graph_from_arrays
from repro.graph.csr import CSRGraph
from repro.utils.rng import RngLike, ensure_rng


def erdos_renyi_graph(n: int, num_edges: int, *, rng: RngLike = None) -> CSRGraph:
    """Sample ``G(n, m)``: ``num_edges`` uniform random undirected edges.

    Duplicates and self-loops are removed, so the realised count can be
    marginally below ``num_edges`` on dense inputs.
    """
    if n <= 1:
        raise DatasetError("n must be at least 2")
    if num_edges < 0:
        raise DatasetError("num_edges must be non-negative")
    max_edges = n * (n - 1) // 2
    if num_edges > max_edges:
        raise DatasetError(f"num_edges exceeds the simple-graph maximum {max_edges}")
    generator = ensure_rng(rng)
    src = generator.integers(0, n, size=num_edges, dtype=np.int64)
    dst = generator.integers(0, n, size=num_edges, dtype=np.int64)
    return graph_from_arrays(src, dst, n=n)
