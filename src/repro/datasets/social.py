"""Calibrated stand-ins for the paper's Table 2 datasets.

Each spec records the *full-scale* statistics from Table 2 (node count,
directed arcs, mutualised undirected links) plus the degree-law
parameters used by the Chung-Lu generator.  ``generate(name, scale)``
produces a graph with ``scale * n`` nodes at the *same density* —
average degree is preserved, which is what the technique's behaviour
depends on (the Orkut stand-in stays ~10x denser than the DBLP one,
exactly the contrast Table 3 probes).

Reciprocity for the directed variants is derived from Table 2 itself:
with ``A`` directed arcs and ``U`` undirected (distinct-pair) links,
``A - U`` pairs are mutual, so the per-tie reciprocity is
``(A - U) / U``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.chung_lu import (
    chung_lu_graph,
    directed_chung_lu_graph,
    powerlaw_weights,
)
from repro.exceptions import DatasetError
from repro.graph.components import largest_component
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class DatasetSpec:
    """Full-scale Table 2 statistics plus generator calibration.

    Attributes:
        name: registry key.
        paper_nodes: node count in the paper (millions -> absolute).
        paper_directed_links: crawl arc count.
        paper_undirected_links: mutualised distinct-pair count (the
            networks the paper's experiments actually run on).
        exponent: power-law exponent for the degree weights.
        description: one-line provenance note.
    """

    name: str
    paper_nodes: int
    paper_directed_links: int
    paper_undirected_links: int
    exponent: float
    description: str

    @property
    def mean_degree(self) -> float:
        """Average degree of the undirected full-scale network."""
        return 2.0 * self.paper_undirected_links / self.paper_nodes

    @property
    def reciprocity(self) -> float:
        """Per-tie mutuality implied by Table 2 (see module docstring)."""
        mutual_pairs = self.paper_directed_links - self.paper_undirected_links
        return min(1.0, max(0.0, mutual_pairs / self.paper_undirected_links))

    def nodes_at_scale(self, scale: float) -> int:
        """Node count at a linear down-scale factor."""
        if scale <= 0 or scale > 1:
            raise DatasetError("scale must lie in (0, 1]")
        return max(64, int(round(self.paper_nodes * scale)))


#: Table 2 of the paper, verbatim (counts in absolute numbers).
DATASETS: dict[str, DatasetSpec] = {
    "dblp": DatasetSpec(
        name="dblp",
        paper_nodes=710_000,
        paper_directed_links=2_510_000,
        paper_undirected_links=2_510_000,
        exponent=2.8,
        description="DBLP co-authorship (already symmetric)",
    ),
    "flickr": DatasetSpec(
        name="flickr",
        paper_nodes=1_720_000,
        paper_directed_links=22_610_000,
        paper_undirected_links=15_560_000,
        exponent=2.4,
        description="Flickr contact crawl (Mislove et al.)",
    ),
    "orkut": DatasetSpec(
        name="orkut",
        paper_nodes=3_070_000,
        paper_directed_links=223_530_000,
        paper_undirected_links=117_190_000,
        exponent=2.3,
        description="Orkut friendship crawl (Mislove et al.); densest",
    ),
    "livejournal": DatasetSpec(
        name="livejournal",
        paper_nodes=4_850_000,
        paper_directed_links=68_990_000,
        paper_undirected_links=42_850_000,
        exponent=2.5,
        description="LiveJournal (SNAP); the paper's headline network",
    ),
}


def available() -> list[str]:
    """Names accepted by :func:`generate`, in Table 2 order."""
    return list(DATASETS)


def spec(name: str) -> DatasetSpec:
    """Look up a dataset spec.

    Raises:
        DatasetError: for unknown names.
    """
    try:
        return DATASETS[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(DATASETS)}"
        ) from None


def generate(
    name: str,
    *,
    scale: float = 0.01,
    seed: RngLike = None,
    connected: bool = True,
) -> CSRGraph:
    """Generate the undirected stand-in for a Table 2 dataset.

    Args:
        name: ``"dblp"``, ``"flickr"``, ``"orkut"`` or ``"livejournal"``.
        scale: linear node-count scale (density is preserved).  The
            defaults used by each benchmark are listed in DESIGN.md.
        seed: generator seed for reproducibility.
        connected: extract the largest component (the paper assumes a
            connected network).

    Returns:
        The generated graph.
    """
    dataset = spec(name)
    generator = ensure_rng(seed)
    n = dataset.nodes_at_scale(scale)
    weights = powerlaw_weights(
        n,
        exponent=dataset.exponent,
        mean_degree=dataset.mean_degree,
        rng=generator,
    )
    graph = chung_lu_graph(weights, rng=generator)
    if connected:
        graph, _mapping = largest_component(graph)
    return graph


def generate_directed(
    name: str,
    *,
    scale: float = 0.01,
    seed: RngLike = None,
) -> DiGraph:
    """Generate the directed stand-in (arcs with Table 2's reciprocity)."""
    dataset = spec(name)
    generator = ensure_rng(seed)
    n = dataset.nodes_at_scale(scale)
    weights = powerlaw_weights(
        n,
        exponent=dataset.exponent,
        mean_degree=dataset.mean_degree,
        rng=generator,
    )
    return directed_chung_lu_graph(
        weights, reciprocity=dataset.reciprocity, rng=generator
    )
