"""Forest-fire graph growth (Leskovec et al.).

Models crawl-like densification: each arriving node picks an ambassador
and "burns" outward, linking to every burned node.  Produces heavy
tails, shrinking diameter and strong local clustering.  The burn is
inherently sequential, so this generator targets the small/medium sizes
used by tests and ablations.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DatasetError
from repro.graph.builder import graph_from_arrays
from repro.graph.csr import CSRGraph
from repro.utils.rng import RngLike, ensure_rng


def forest_fire_graph(
    n: int, forward_prob: float = 0.35, *, rng: RngLike = None
) -> CSRGraph:
    """Grow a forest-fire graph on ``n`` nodes.

    Args:
        n: node count.
        forward_prob: burn probability ``p``; each burning node ignites
            ``Geometric(1 - p) - 1`` of its untouched neighbours.
        rng: seed or generator.
    """
    if n < 2:
        raise DatasetError("n must be at least 2")
    if not 0.0 <= forward_prob < 1.0:
        raise DatasetError("forward_prob must lie in [0, 1)")
    generator = ensure_rng(rng)
    adjacency: list[list[int]] = [[] for _ in range(n)]
    src_list: list[int] = [0]
    dst_list: list[int] = [1]
    adjacency[0].append(1)
    adjacency[1].append(0)

    for v in range(2, n):
        ambassador = int(generator.integers(0, v))
        burned = {ambassador}
        frontier = [ambassador]
        while frontier:
            next_frontier = []
            for x in frontier:
                fresh = [y for y in adjacency[x] if y not in burned]
                if not fresh:
                    continue
                # Geometric(1 - p) - 1 has mean p / (1 - p).
                count = int(generator.geometric(1.0 - forward_prob)) - 1
                if count <= 0:
                    continue
                picks = fresh if count >= len(fresh) else [
                    fresh[i] for i in generator.choice(len(fresh), size=count, replace=False)
                ]
                for y in picks:
                    burned.add(y)
                    next_frontier.append(y)
            frontier = next_frontier
        for x in burned:
            src_list.append(v)
            dst_list.append(x)
            adjacency[v].append(x)
            adjacency[x].append(v)

    return graph_from_arrays(
        np.asarray(src_list, dtype=np.int64),
        np.asarray(dst_list, dtype=np.int64),
        n=n,
    )
