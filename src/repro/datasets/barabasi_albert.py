"""Barabasi-Albert preferential attachment.

A second, mechanistically different heavy-tailed generator: new nodes
attach to ``k`` existing nodes with probability proportional to current
degree.  Used to check that the paper's properties are not an artefact
of the Chung-Lu sampling scheme.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DatasetError
from repro.graph.builder import graph_from_arrays
from repro.graph.csr import CSRGraph
from repro.utils.rng import RngLike, ensure_rng


def barabasi_albert_graph(n: int, k: int, *, rng: RngLike = None) -> CSRGraph:
    """Grow a BA graph with ``n`` nodes and ``k`` edges per arrival.

    Uses the repeated-endpoints trick: sampling uniformly from the list
    of all edge endpoints *is* degree-proportional sampling, so no
    per-step probability vector is needed.

    Args:
        n: total node count (must exceed ``k``).
        k: edges added per new node.
        rng: seed or generator.
    """
    if k < 1:
        raise DatasetError("k must be at least 1")
    if n <= k:
        raise DatasetError("n must exceed k")
    generator = ensure_rng(rng)
    # Seed with a star on k + 1 nodes so the endpoint pool is non-empty
    # and every early node can be attached to.
    src_list: list[int] = []
    dst_list: list[int] = []
    endpoint_pool: list[int] = []
    for v in range(1, k + 1):
        src_list.append(0)
        dst_list.append(v)
        endpoint_pool.extend((0, v))

    for v in range(k + 1, n):
        # Sample k distinct targets by degree (rejection over the pool).
        targets: set[int] = set()
        while len(targets) < k:
            draw = generator.integers(0, len(endpoint_pool), size=k - len(targets))
            for idx in draw.tolist():
                targets.add(endpoint_pool[idx])
        for t in targets:
            src_list.append(v)
            dst_list.append(t)
            endpoint_pool.extend((v, t))

    return graph_from_arrays(
        np.asarray(src_list, dtype=np.int64),
        np.asarray(dst_list, dtype=np.int64),
        n=n,
    )
