"""Watts-Strogatz small-world rewiring.

A control generator: small diameter like a social network but a nearly
homogeneous degree distribution — the regime where degree-proportional
landmark sampling loses its advantage.  The ablation benchmarks use it
to show *why* the heavy tail matters.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DatasetError
from repro.graph.builder import graph_from_arrays
from repro.graph.csr import CSRGraph
from repro.utils.rng import RngLike, ensure_rng


def watts_strogatz_graph(
    n: int, k: int, beta: float, *, rng: RngLike = None
) -> CSRGraph:
    """Build a WS ring lattice with random rewiring.

    Args:
        n: number of nodes.
        k: each node connects to its ``k`` nearest ring neighbours on
            each side (total base degree ``2k``).
        beta: rewiring probability per lattice edge.
        rng: seed or generator.
    """
    if n <= 2 * k:
        raise DatasetError("n must exceed 2k")
    if k < 1:
        raise DatasetError("k must be at least 1")
    if not 0.0 <= beta <= 1.0:
        raise DatasetError("beta must lie in [0, 1]")
    generator = ensure_rng(rng)
    nodes = np.arange(n, dtype=np.int64)
    src_parts = []
    dst_parts = []
    for offset in range(1, k + 1):
        src_parts.append(nodes)
        dst_parts.append((nodes + offset) % n)
    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)
    rewire = generator.random(src.size) < beta
    # Rewired edges keep their source and draw a fresh target; the
    # builder drops any accidental self-loops or duplicates.
    dst = dst.copy()
    dst[rewire] = generator.integers(0, n, size=int(rewire.sum()))
    return graph_from_arrays(src, dst, n=n)
