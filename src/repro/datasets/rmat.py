"""R-MAT / Kronecker-style recursive edge sampling.

Generates the skewed, community-structured topology used by graph
benchmarks (Graph500).  Each edge picks its endpoints by descending a
2x2 probability matrix ``[[a, b], [c, d]]`` over the adjacency matrix,
one bit per level — fully vectorised across edges.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DatasetError
from repro.graph.builder import graph_from_arrays
from repro.graph.csr import CSRGraph
from repro.utils.rng import RngLike, ensure_rng


def rmat_graph(
    scale: int,
    edge_factor: int = 16,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    rng: RngLike = None,
) -> CSRGraph:
    """Sample an R-MAT graph with ``2**scale`` nodes.

    Args:
        scale: log2 of the node count.
        edge_factor: edges per node (Graph500 default 16).
        a, b, c: quadrant probabilities (``d = 1 - a - b - c``);
            defaults are the Graph500 parameters.
        rng: seed or generator.
    """
    if scale < 1 or scale > 30:
        raise DatasetError("scale must be in [1, 30]")
    if edge_factor < 1:
        raise DatasetError("edge_factor must be positive")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise DatasetError("quadrant probabilities must be non-negative")
    generator = ensure_rng(rng)
    n = 1 << scale
    num_edges = n * edge_factor
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    # Per level: choose a quadrant for every edge simultaneously.
    p_right = b + d  # probability the column bit is 1
    for level in range(scale):
        bit = 1 << (scale - 1 - level)
        u = generator.random(num_edges)
        col = u < p_right  # noisy split between left/right quadrants
        v = generator.random(num_edges)
        # Row bit conditioned on the column choice.
        row_given_right = d / (b + d) if (b + d) > 0 else 0.0
        row_given_left = c / (a + c) if (a + c) > 0 else 0.0
        row = np.where(col, v < row_given_right, v < row_given_left)
        src += row * bit
        dst += col * bit
    return graph_from_arrays(src, dst, n=n)
