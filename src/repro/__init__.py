"""repro — vicinity-intersection shortest-path oracle.

A production-quality reproduction of Agarwal, Caesar, Godfrey and Zhao,
*"Shortest Paths in Less Than a Millisecond"* (WOSN'12): exact
point-to-point shortest-path queries on social networks via precomputed
vicinities and online vicinity intersection.

Quickstart::

    from repro import VicinityOracle, datasets

    graph = datasets.generate("dblp", scale=0.02, seed=7)
    oracle = VicinityOracle.build(graph, alpha=4.0, seed=7)
    result = oracle.query(0, 42)
    print(result.distance, result.path)

Public surface (re-exported here):

* graphs — :class:`CSRGraph`, :class:`DiGraph`, builders;
* the oracle — :class:`VicinityOracle`, :class:`OracleConfig`,
  :class:`QueryResult`, :class:`VicinityIndex`;
* extensions — :class:`DirectedVicinityOracle`,
  :class:`PartitionedOracle`, :class:`DynamicVicinityOracle`;
* the serving layer — :class:`BatchExecutor`, :class:`ResultCache`,
  :class:`ShardedService`, :class:`Telemetry` (see
  :mod:`repro.service`; ``VicinityOracle.query_batch`` is the batch
  substrate, :data:`repro.core.oracle.METHODS` the authoritative list
  of resolution-method names);
* baselines and dataset generators via the :mod:`repro.baselines` and
  :mod:`repro.datasets` submodules.
"""

from repro._version import __version__
from repro.exceptions import (
    DatasetError,
    EdgeError,
    GraphError,
    IndexBuildError,
    NodeNotFoundError,
    QueryError,
    ReproError,
    SerializationError,
    UnreachableError,
)
from repro.graph import (
    CSRGraph,
    DiGraph,
    graph_from_arrays,
    graph_from_edges,
    graph_from_weighted_edges,
    labeled_graph_from_edges,
)
from repro.core import (
    DirectedVicinityOracle,
    DynamicVicinityOracle,
    OracleConfig,
    PartitionedOracle,
    QueryResult,
    VicinityIndex,
    VicinityOracle,
)
from repro.core.oracle import CHEAP_METHODS, EXPENSIVE_METHODS, METHODS
from repro.service import (
    BatchExecutor,
    ProcessShardedService,
    ResultCache,
    ServiceApp,
    ShardedService,
    Telemetry,
)

__all__ = [
    "__version__",
    # exceptions
    "ReproError",
    "GraphError",
    "EdgeError",
    "NodeNotFoundError",
    "IndexBuildError",
    "QueryError",
    "UnreachableError",
    "SerializationError",
    "DatasetError",
    # graphs
    "CSRGraph",
    "DiGraph",
    "graph_from_edges",
    "graph_from_weighted_edges",
    "graph_from_arrays",
    "labeled_graph_from_edges",
    # oracle
    "VicinityOracle",
    "VicinityIndex",
    "OracleConfig",
    "QueryResult",
    "DirectedVicinityOracle",
    "PartitionedOracle",
    "DynamicVicinityOracle",
    # resolution-method vocabulary (single source of truth)
    "METHODS",
    "CHEAP_METHODS",
    "EXPENSIVE_METHODS",
    # serving layer
    "BatchExecutor",
    "ResultCache",
    "ShardedService",
    "ProcessShardedService",
    "ServiceApp",
    "Telemetry",
]
