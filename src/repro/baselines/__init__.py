"""Query-time baselines and related-work comparators.

Exact engines (Table 3 columns):

* :class:`BFSBaseline` — the "standard shortest path algorithm";
* :class:`BidirectionalBaseline` — the "state-of-the-art" [4];
* :class:`DijkstraBaseline` / :class:`BidirectionalDijkstraBaseline` —
  weighted counterparts;
* :class:`AltBaseline` — A* with landmark lower bounds [3, 4].

Approximate comparators (§4 related work):

* :class:`LandmarkEstimateOracle` — Potamias-et-al.-style triangulation
  upper bounds [11];
* :class:`SketchOracle` — Das-Sarma-et-al.-style multi-scale seed
  sketches [12];
* :class:`ApspOracle` — exact all-pairs tables, the memory strawman of
  §3.2 (tiny graphs only).

Every engine implements ``distance(s, t)`` and exposes ``ops`` counters
so benchmarks can report machine-independent work alongside wall-clock.
"""

from repro.baselines.exact import (
    AltBaseline,
    BFSBaseline,
    BidirectionalBaseline,
    BidirectionalDijkstraBaseline,
    DijkstraBaseline,
)
from repro.baselines.apsp import ApspOracle
from repro.baselines.landmark_estimate import LandmarkEstimateOracle
from repro.baselines.sketch import SketchOracle

__all__ = [
    "BFSBaseline",
    "BidirectionalBaseline",
    "DijkstraBaseline",
    "BidirectionalDijkstraBaseline",
    "AltBaseline",
    "ApspOracle",
    "LandmarkEstimateOracle",
    "SketchOracle",
]
