"""Bourgain-style distance sketches (Das Sarma et al. [12]).

The second related-work comparator: sample seed *sets* of sizes
``1, 2, 4, ..., 2^k``, repeat ``r`` times, and store for every node the
closest seed of each set with its distance.  The estimate for
``(s, t)`` is the minimum of ``d(s, w) + d(w, t)`` over sketch entries
that share a seed ``w`` — an upper bound whose quality comes from the
multi-scale set sizes.  The offline cost is one multi-source BFS per
seed set, so sketches are much cheaper to build than landmark vectors
of comparable accuracy.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import IndexBuildError
from repro.graph.csr import CSRGraph
from repro.utils.rng import RngLike, ensure_rng


def _multi_source_bfs_with_owner(
    graph: CSRGraph, sources: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(dist, owner)`` where owner is the nearest source id."""
    adj = graph.adjacency()
    dist = [-1] * graph.n
    owner = [-1] * graph.n
    frontier = []
    for s in sources.tolist():
        if dist[s] != 0:
            dist[s] = 0
            owner[s] = s
            frontier.append(s)
    level = 0
    while frontier:
        level += 1
        next_frontier = []
        for u in frontier:
            ou = owner[u]
            for v in adj[u]:
                if dist[v] < 0:
                    dist[v] = level
                    owner[v] = ou
                    next_frontier.append(v)
        frontier = next_frontier
    return np.asarray(dist, dtype=np.int32), np.asarray(owner, dtype=np.int64)


class SketchOracle:
    """Multi-scale seed sketches answering in O(sketch size)."""

    name = "sketch"

    def __init__(
        self,
        graph: CSRGraph,
        *,
        repetitions: int = 2,
        rng: RngLike = None,
    ) -> None:
        """Build sketches with ``log2(n)`` set sizes per repetition.

        Memory is ``~ r * log2(n)`` entries per node — asymptotically
        far below the vicinity index, at the price of approximation.
        """
        if graph.is_weighted:
            raise IndexBuildError("SketchOracle supports unweighted graphs")
        if repetitions < 1:
            raise IndexBuildError("repetitions must be positive")
        self.graph = graph
        generator = ensure_rng(rng)
        n = graph.n
        levels = max(1, int(np.log2(max(n, 2))))
        #: per node: list of (seed, distance) sketch entries.
        self.sketches: list[dict[int, int]] = [dict() for _ in range(n)]
        for _rep in range(repetitions):
            for level in range(levels + 1):
                size = min(n, 1 << level)
                seeds = generator.choice(n, size=size, replace=False)
                dist, owner = _multi_source_bfs_with_owner(graph, seeds)
                for v in range(n):
                    if dist[v] >= 0:
                        seed = int(owner[v])
                        best = self.sketches[v].get(seed)
                        if best is None or dist[v] < best:
                            self.sketches[v][seed] = int(dist[v])

    def distance(self, source: int, target: int) -> Optional[int]:
        """Return the common-seed upper bound (``None`` if no common seed)."""
        self.graph.check_node(source)
        self.graph.check_node(target)
        if source == target:
            return 0
        sk_s = self.sketches[source]
        sk_t = self.sketches[target]
        if len(sk_t) < len(sk_s):
            sk_s, sk_t = sk_t, sk_s
        best: Optional[int] = None
        for seed, ds in sk_s.items():
            dt = sk_t.get(seed)
            if dt is not None:
                candidate = ds + dt
                if best is None or candidate < best:
                    best = candidate
        return best

    @property
    def entries(self) -> int:
        """Total stored sketch entries."""
        return sum(len(s) for s in self.sketches)
