"""Exact online baselines with operation counting.

These wrap the traversal engines with a uniform interface and
lightweight instrumentation (edges scanned / nodes settled), so Table 3
can report both wall-clock time and machine-independent work for every
comparator.  The hot loops are duplicated from
:mod:`repro.graph.traversal` rather than instrumented in place — the
uninstrumented engines stay as fast as possible for production use,
while these variants pay a counter increment per step.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Optional

from repro.graph.csr import CSRGraph
from repro.graph.traversal.astar import astar_distance
from repro.graph.traversal.vectorized import bfs_distances_vectorized

INF = float("inf")


@dataclass
class BaselineCounters:
    """Aggregate work counters across a baseline's lifetime."""

    queries: int = 0
    edges_scanned: int = 0
    nodes_expanded: int = 0

    def record(self, edges: int, nodes: int) -> None:
        """Fold one query's work into the aggregates."""
        self.queries += 1
        self.edges_scanned += edges
        self.nodes_expanded += nodes

    @property
    def mean_edges(self) -> float:
        """Average edges scanned per query."""
        return self.edges_scanned / self.queries if self.queries else 0.0


class BFSBaseline:
    """Point-to-point BFS with early exit (Table 3's "BFS" column)."""

    name = "bfs"

    def __init__(self, graph: CSRGraph) -> None:
        self.graph = graph
        self.counters = BaselineCounters()

    def distance(self, source: int, target: int) -> Optional[int]:
        """Return the hop distance, or ``None`` when disconnected."""
        graph = self.graph
        graph.check_node(source)
        graph.check_node(target)
        if source == target:
            self.counters.record(0, 0)
            return 0
        adj = graph.adjacency()
        seen = bytearray(graph.n)
        seen[source] = 1
        frontier = [source]
        level = 0
        edges = 0
        nodes = 0
        while frontier:
            level += 1
            next_frontier = []
            for u in frontier:
                nodes += 1
                for v in adj[u]:
                    edges += 1
                    if not seen[v]:
                        if v == target:
                            self.counters.record(edges, nodes)
                            return level
                        seen[v] = 1
                        next_frontier.append(v)
            frontier = next_frontier
        self.counters.record(edges, nodes)
        return None


class BidirectionalBaseline:
    """Bidirectional BFS (Table 3's "Bidirectional BFS" column [4])."""

    name = "bidirectional-bfs"

    def __init__(self, graph: CSRGraph) -> None:
        self.graph = graph
        self.counters = BaselineCounters()

    def distance(self, source: int, target: int) -> Optional[int]:
        """Return the hop distance, or ``None`` when disconnected."""
        graph = self.graph
        graph.check_node(source)
        graph.check_node(target)
        if source == target:
            self.counters.record(0, 0)
            return 0
        adj = graph.adjacency()
        dist_s: dict[int, int] = {source: 0}
        dist_t: dict[int, int] = {target: 0}
        frontier_s = [source]
        frontier_t = [target]
        level_s = level_t = 0
        mu = INF
        edges = 0
        nodes = 0
        while frontier_s and frontier_t:
            if mu <= level_s + level_t:
                break
            if len(frontier_s) <= len(frontier_t):
                frontier, dist_mine, dist_other = frontier_s, dist_s, dist_t
                level_s += 1
                level = level_s
            else:
                frontier, dist_mine, dist_other = frontier_t, dist_t, dist_s
                level_t += 1
                level = level_t
            next_frontier = []
            for u in frontier:
                nodes += 1
                for v in adj[u]:
                    edges += 1
                    if v not in dist_mine:
                        dist_mine[v] = level
                        next_frontier.append(v)
                        other = dist_other.get(v)
                        if other is not None and level + other < mu:
                            mu = level + other
            if dist_mine is dist_s:
                frontier_s = next_frontier
            else:
                frontier_t = next_frontier
        self.counters.record(edges, nodes)
        return None if mu == INF else int(mu)


class DijkstraBaseline:
    """Early-exit Dijkstra for weighted graphs."""

    name = "dijkstra"

    def __init__(self, graph: CSRGraph) -> None:
        self.graph = graph
        self.counters = BaselineCounters()

    def distance(self, source: int, target: int) -> Optional[float]:
        """Return the weighted distance, or ``None`` when disconnected."""
        graph = self.graph
        graph.check_node(source)
        graph.check_node(target)
        if source == target:
            self.counters.record(0, 0)
            return 0.0
        adj = graph.weighted_adjacency()
        dist: dict[int, float] = {source: 0.0}
        settled: set[int] = set()
        heap = [(0.0, source)]
        edges = 0
        nodes = 0
        while heap:
            d, u = heapq.heappop(heap)
            if u in settled:
                continue
            if u == target:
                self.counters.record(edges, nodes)
                return d
            settled.add(u)
            nodes += 1
            for v, w in adj[u]:
                edges += 1
                nd = d + w
                if nd < dist.get(v, INF):
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
        self.counters.record(edges, nodes)
        return None


class BidirectionalDijkstraBaseline:
    """Bidirectional Dijkstra with the standard stopping rule."""

    name = "bidirectional-dijkstra"

    def __init__(self, graph: CSRGraph) -> None:
        self.graph = graph
        self.counters = BaselineCounters()

    def distance(self, source: int, target: int) -> Optional[float]:
        """Return the weighted distance, or ``None`` when disconnected."""
        graph = self.graph
        graph.check_node(source)
        graph.check_node(target)
        if source == target:
            self.counters.record(0, 0)
            return 0.0
        adj = graph.weighted_adjacency()
        dist_f: dict[int, float] = {source: 0.0}
        dist_b: dict[int, float] = {target: 0.0}
        settled_f: set[int] = set()
        settled_b: set[int] = set()
        heap_f = [(0.0, source)]
        heap_b = [(0.0, target)]
        mu = INF
        edges = 0
        nodes = 0
        while heap_f and heap_b:
            if heap_f[0][0] + heap_b[0][0] >= mu:
                break
            if heap_f[0][0] <= heap_b[0][0]:
                heap, dist_mine, dist_other, settled = heap_f, dist_f, dist_b, settled_f
            else:
                heap, dist_mine, dist_other, settled = heap_b, dist_b, dist_f, settled_b
            d, u = heapq.heappop(heap)
            if u in settled:
                continue
            settled.add(u)
            nodes += 1
            for v, w in adj[u]:
                edges += 1
                nd = d + w
                if nd < dist_mine.get(v, INF):
                    dist_mine[v] = nd
                    heapq.heappush(heap, (nd, v))
                other = dist_other.get(v)
                if other is not None and d + w + other < mu:
                    mu = d + w + other
        self.counters.record(edges, nodes)
        return None if mu == INF else float(mu)


@dataclass
class AltBaseline:
    """A* with landmark (triangle-inequality) lower bounds [3, 4].

    Preprocessing picks ``num_landmarks`` nodes by farthest-first
    selection and stores each one's full distance vector; the heuristic
    ``h(v) = max_l |d(l, t) - d(l, v)|`` is admissible and typically
    prunes most of the search space.
    """

    graph: CSRGraph
    num_landmarks: int = 8
    seed: int = 0
    landmark_dists: list = field(default_factory=list, repr=False)
    name = "alt"

    def __post_init__(self) -> None:
        self.counters = BaselineCounters()
        self._select_landmarks()

    def _distance_vector(self, source: int):
        """Exact distance vector in the graph's own metric.

        Weighted graphs must use Dijkstra: hop counts are not admissible
        lower bounds once edge weights differ from 1.
        """
        if self.graph.is_weighted:
            from repro.graph.traversal.dijkstra import dijkstra_distances

            vec = dijkstra_distances(self.graph, source)
            vec = vec.copy()
            vec[vec == float("inf")] = -1.0
            return vec
        return bfs_distances_vectorized(self.graph, source).astype(float)

    def _select_landmarks(self) -> None:
        """Farthest-first landmark selection (standard ALT heuristic)."""
        n = self.graph.n
        if n == 0:
            self._vectors = []
            return
        first = self.seed % n
        current = self._distance_vector(first)
        chosen = [first]
        while len(chosen) < min(self.num_landmarks, n):
            # Next landmark: farthest reachable node from the chosen set.
            masked = current.copy()
            masked[masked < 0] = -1
            candidate = int(masked.argmax())
            if candidate in chosen:
                break
            chosen.append(candidate)
            current = _elementwise_min_nonneg(current, self._distance_vector(candidate))
        self._vectors = [self._distance_vector(l) for l in chosen]

    def distance(self, source: int, target: int) -> Optional[float]:
        """Return the exact distance using the ALT heuristic."""
        vectors = self._vectors
        if not vectors:
            return None

        def heuristic(v: int) -> float:
            best = 0.0
            for vec in vectors:
                dv, dt = vec[v], vec[target]
                if dv < 0 or dt < 0:
                    continue
                gap = dv - dt
                if gap < 0:
                    gap = -gap
                if gap > best:
                    best = gap
            return best

        result = astar_distance(self.graph, source, target, heuristic)
        self.counters.record(0, 0)
        return result


def _elementwise_min_nonneg(a, b):
    """Min of two distance arrays where -1 means unreachable."""
    import numpy as np

    out = a.copy()
    mask = (b >= 0) & ((a < 0) | (b < a))
    out[mask] = b[mask]
    return out
