"""Landmark-based approximate distances (Potamias et al. [11]).

The related-work accuracy comparator: store the distance vector of
``k`` landmarks and estimate ``d(s, t) ~ min_l d(s, l) + d(l, t)`` — an
upper bound by the triangle inequality, answered in O(k).  The paper's
criticism (§4) is that such estimates carry multi-hop absolute error on
social networks; the accuracy benchmark quantifies exactly that against
the vicinity oracle's exact answers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import IndexBuildError
from repro.graph.csr import CSRGraph
from repro.graph.traversal.vectorized import bfs_distances_vectorized
from repro.utils.rng import RngLike, ensure_rng


class LandmarkEstimateOracle:
    """Triangulation upper bounds from ``k`` landmark distance vectors."""

    name = "landmark-estimate"

    def __init__(
        self,
        graph: CSRGraph,
        *,
        num_landmarks: int = 16,
        strategy: str = "degree",
        rng: RngLike = None,
    ) -> None:
        """Precompute landmark vectors.

        Args:
            graph: unweighted graph.
            num_landmarks: ``k`` — memory is ``k * n`` entries.
            strategy: ``"degree"`` picks the highest-degree nodes (the
                best-performing selection in [11]); ``"random"`` samples
                uniformly.
            rng: seed or generator for the random strategy.
        """
        if graph.is_weighted:
            raise IndexBuildError("LandmarkEstimateOracle supports unweighted graphs")
        if num_landmarks < 1:
            raise IndexBuildError("num_landmarks must be positive")
        if strategy not in ("degree", "random"):
            raise IndexBuildError("strategy must be 'degree' or 'random'")
        self.graph = graph
        k = min(num_landmarks, graph.n)
        if strategy == "degree":
            ids = np.argsort(graph.degrees())[::-1][:k]
        else:
            ids = ensure_rng(rng).choice(graph.n, size=k, replace=False)
        self.landmarks = np.sort(ids.astype(np.int64))
        self.vectors = np.stack(
            [bfs_distances_vectorized(graph, int(l)) for l in self.landmarks]
        )

    def distance(self, source: int, target: int) -> Optional[int]:
        """Return the triangulation upper bound (``None`` if no landmark
        reaches both endpoints)."""
        self.graph.check_node(source)
        self.graph.check_node(target)
        if source == target:
            return 0
        ds = self.vectors[:, source]
        dt = self.vectors[:, target]
        mask = (ds >= 0) & (dt >= 0)
        if not mask.any():
            return None
        return int((ds[mask] + dt[mask]).min())

    @property
    def entries(self) -> int:
        """Stored entries (``k * n``)."""
        return int(self.vectors.size)
