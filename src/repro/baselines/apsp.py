"""All-pairs shortest-path tables — §3.2's memory strawman.

Storing every pairwise distance gives O(1) queries at O(n^2) memory,
which the paper uses as the upper anchor of its latency/memory
trade-off ("at least 550x less memory").  This implementation is
intentionally dense (one ``n x n`` matrix) and guarded to small graphs;
the memory benchmark compares its footprint against the vicinity
index's model bytes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import IndexBuildError
from repro.graph.csr import CSRGraph
from repro.graph.traversal.vectorized import bfs_distances_vectorized

#: Safety limit: a dense int16 matrix above this would not be a strawman
#: but a mistake (50k nodes ~ 5 GiB).
MAX_NODES = 20_000


class ApspOracle:
    """Exact O(1) distance lookups from a precomputed dense matrix."""

    name = "apsp"

    def __init__(self, graph: CSRGraph) -> None:
        if graph.n > MAX_NODES:
            raise IndexBuildError(
                f"APSP tables on {graph.n} nodes would need "
                f"~{graph.n * graph.n * 2 / 2**30:.1f} GiB; refusing "
                f"(limit {MAX_NODES})"
            )
        if graph.is_weighted:
            raise IndexBuildError("ApspOracle supports unweighted graphs only")
        self.graph = graph
        self.matrix = np.empty((graph.n, graph.n), dtype=np.int16)
        for u in range(graph.n):
            self.matrix[u] = bfs_distances_vectorized(graph, u).astype(np.int16)

    def distance(self, source: int, target: int) -> Optional[int]:
        """Return the stored distance (``None`` when disconnected)."""
        self.graph.check_node(source)
        self.graph.check_node(target)
        d = int(self.matrix[source, target])
        return None if d < 0 else d

    @property
    def entries(self) -> int:
        """Stored entries — ``n^2`` (both triangles, as served)."""
        return self.graph.n * self.graph.n

    @property
    def nbytes(self) -> int:
        """Actual matrix bytes."""
        return int(self.matrix.nbytes)
