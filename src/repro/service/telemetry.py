"""Serving-side observability: latency histograms and method counters.

The oracle's own :class:`~repro.core.oracle.OracleCounters` track the
paper's machine-independent cost metric (hash probes).  A serving layer
additionally needs wall-clock latency percentiles and a cheap snapshot
it can export on demand — this module provides both, thread-safe so the
sharded executor's dispatcher threads can share one instance.

Percentiles are computed from a bounded reservoir of the most recent
samples (exact for small streams, recency-weighted for long-running
services), alongside log-spaced bucket counts whose memory never grows
with traffic.
"""

from __future__ import annotations

import math
import threading
import time
from collections import Counter, deque
from contextlib import contextmanager
from typing import Optional

from repro.core.oracle import METHODS, QueryResult

#: Histogram bucket boundaries in seconds: 1 µs .. ~16 s, doubling.
_BUCKET_FLOOR = 1e-6
_BUCKET_COUNT = 25


class LatencyHistogram:
    """Latency tracker with bounded memory.

    Keeps exact aggregates (count, sum, min, max), a power-of-two
    bucket histogram, and a sliding reservoir of the most recent
    ``reservoir`` samples from which percentiles are computed by
    nearest rank.
    """

    def __init__(self, reservoir: int = 8192) -> None:
        if reservoir < 1:
            raise ValueError("reservoir must be at least 1")
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets = [0] * (_BUCKET_COUNT + 1)
        self._samples: deque[float] = deque(maxlen=reservoir)

    def observe(self, seconds: float) -> None:
        """Record one latency sample (in seconds)."""
        seconds = max(0.0, float(seconds))
        self.count += 1
        self.total += seconds
        if self.min is None or seconds < self.min:
            self.min = seconds
        if self.max is None or seconds > self.max:
            self.max = seconds
        self.buckets[self._bucket(seconds)] += 1
        self._samples.append(seconds)

    @staticmethod
    def _bucket(seconds: float) -> int:
        if seconds < _BUCKET_FLOOR:
            return 0
        return min(_BUCKET_COUNT, 1 + int(math.log2(seconds / _BUCKET_FLOOR)))

    @property
    def mean(self) -> float:
        """Mean latency in seconds (0.0 before any sample)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile (``q`` in [0, 100]) over the reservoir."""
        return self.percentiles([q])[0]

    def percentiles(self, qs) -> list[float]:
        """Nearest-rank percentiles, sorting the reservoir once."""
        if any(not 0 <= q <= 100 for q in qs):
            raise ValueError("percentile must be within [0, 100]")
        if not self._samples:
            return [0.0] * len(qs)
        ordered = sorted(self._samples)
        return [
            ordered[max(1, math.ceil(q / 100.0 * len(ordered))) - 1] for q in qs
        ]

    def snapshot(self) -> dict:
        """Summary dict with millisecond-denominated percentiles."""
        p50, p95, p99 = self.percentiles((50, 95, 99))
        return {
            "count": self.count,
            "mean_ms": self.mean * 1e3,
            "p50_ms": p50 * 1e3,
            "p95_ms": p95 * 1e3,
            "p99_ms": p99 * 1e3,
            "min_ms": (self.min or 0.0) * 1e3,
            "max_ms": (self.max or 0.0) * 1e3,
        }


class Telemetry:
    """Aggregated serving metrics: latencies, method mix, batch shape.

    All mutators take an internal lock, so one instance can be shared
    by the stdin loop, a batch executor and the sharded dispatcher
    threads simultaneously.
    """

    def __init__(
        self,
        reservoir: int = 8192,
        *,
        engine: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> None:
        self._lock = threading.Lock()
        self.query_latency = LatencyHistogram(reservoir)
        self.batch_latency = LatencyHistogram(reservoir)
        self.by_method: Counter = Counter()
        self.queries = 0
        self.batches = 0
        self.unanswered = 0
        self.engine = engine
        self.backend = backend
        self.started = time.perf_counter()

    def set_context(
        self, *, engine: Optional[str] = None, backend: Optional[str] = None
    ) -> None:
        """Label this telemetry stream with its serving configuration.

        ``engine`` names the resolver representation (``"flat"`` for
        the canonical array engine, ``"dict"`` for the reference path
        in benchmarks) and ``backend`` the execution substrate
        (``"single"``, ``"threads"``, ``"procpool"``).  Snapshots embed
        both, so exported benchmark results are self-describing.
        """
        if engine is not None:
            self.engine = engine
        if backend is not None:
            self.backend = backend

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def observe_query(self, method: str, seconds: float, *, answered: bool = True) -> None:
        """Record one resolved query: its method and wall-clock latency."""
        with self._lock:
            self.queries += 1
            self.by_method[method] += 1
            if not answered:
                self.unanswered += 1
            self.query_latency.observe(seconds)

    def observe_result(self, result: QueryResult, seconds: float) -> None:
        """Record one :class:`QueryResult` with its latency."""
        self.observe_query(result.method, seconds, answered=result.answered)

    def observe_batch(self, results, seconds: float) -> None:
        """Record a whole batch: per-pair methods, amortised latency.

        Individual per-pair timings inside a batch are dominated by
        timer overhead, so each pair is attributed an equal share of
        the batch's wall time — the figure that matters for capacity
        planning — while the batch itself lands in ``batch_latency``.
        """
        results = list(results)
        with self._lock:
            self.batches += 1
            self.batch_latency.observe(seconds)
            share = seconds / len(results) if results else 0.0
            for result in results:
                self.queries += 1
                self.by_method[result.method] += 1
                if not result.answered:
                    self.unanswered += 1
                self.query_latency.observe(share)

    @contextmanager
    def timed_batch(self):
        """Context manager timing a batch; yields a list to fill with results."""
        sink: list = []
        started = time.perf_counter()
        try:
            yield sink
        finally:
            self.observe_batch(sink, time.perf_counter() - started)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def snapshot(
        self,
        *,
        cache=None,
        message_log=None,
        worker_cache=None,
        net=None,
        shard_transport=None,
        kernels=None,
    ) -> dict:
        """One JSON-serialisable dict describing the service so far.

        Args:
            cache: optional :class:`~repro.service.cache.ResultCache`
                whose hit/miss statistics should be embedded.
            message_log: optional
                :class:`~repro.core.parallel.MessageLog` from a sharded
                deployment.
            worker_cache: optional aggregated worker-cache statistics
                (:meth:`ProcessShardedService.worker_cache_stats`).
            net: optional network front-end block
                (:meth:`repro.service.net.NetStats.snapshot`) — queue
                depth, flush mix, per-client counters.  Purely
                additive: every pre-existing key keeps its shape
                whether or not a front end is attached.
            shard_transport: optional transport-plane block
                (:meth:`FlatShardedBase.transport_stats
                <repro.service.shardbase.FlatShardedBase.transport_stats>`)
                merged *additively* into ``snap["shards"]`` — transport
                name, replica routing state, per-shard depth and frame
                bytes, and the dispatch/execute/collect time split.
            kernels: the active kernel tier (``"numpy"``/``"native"``),
                embedded as ``snap["kernels"]`` when given.
        """
        with self._lock:
            elapsed = time.perf_counter() - self.started
            snap = {
                "engine": self.engine,
                "backend": self.backend,
                "uptime_s": elapsed,
                "queries": self.queries,
                "batches": self.batches,
                "unanswered": self.unanswered,
                "throughput_qps": self.queries / elapsed if elapsed > 0 else 0.0,
                "latency": self.query_latency.snapshot(),
                "batch_latency": self.batch_latency.snapshot(),
                "by_method": {m: self.by_method[m] for m in METHODS if self.by_method[m]},
            }
            if kernels is not None:
                snap["kernels"] = kernels
        if cache is not None:
            snap["cache"] = cache.snapshot()
        if worker_cache is not None:
            snap["worker_cache"] = worker_cache
        if net is not None:
            snap["net"] = net
        if message_log is not None:
            total = message_log.local_queries + message_log.remote_queries
            snap["shards"] = {
                "local_queries": message_log.local_queries,
                "remote_queries": message_log.remote_queries,
                "messages": message_log.messages,
                "bytes": message_log.bytes,
                "mean_messages": message_log.mean_messages,
                "mean_bytes": message_log.bytes / total if total else 0.0,
            }
            if shard_transport is not None:
                # Additive: the modelled-§5 keys above keep their shape;
                # the transport plane contributes the measured side.
                for key, value in shard_transport.items():
                    snap["shards"].setdefault(key, value)
        return snap

    def reset(self) -> None:
        """Zero every aggregate (the reservoir included)."""
        with self._lock:
            reservoir = self.query_latency._samples.maxlen or 8192
            self.query_latency = LatencyHistogram(reservoir)
            self.batch_latency = LatencyHistogram(reservoir)
            self.by_method.clear()
            self.queries = 0
            self.batches = 0
            self.unanswered = 0
            self.started = time.perf_counter()


def render_snapshot(snapshot: dict) -> str:
    """Human-readable multi-line view of :meth:`Telemetry.snapshot`."""
    lines = []
    if snapshot.get("engine") or snapshot.get("backend"):
        serving = (
            f"serving          : engine={snapshot.get('engine') or '?'} "
            f"backend={snapshot.get('backend') or '?'}"
        )
        if snapshot.get("kernels"):
            serving += f" kernels={snapshot['kernels']}"
        lines.append(serving)
    lines += [
        f"queries          : {snapshot['queries']:,}"
        + (f"  ({snapshot['batches']:,} batches)" if snapshot.get("batches") else ""),
        f"throughput       : {snapshot['throughput_qps']:,.0f} q/s",
    ]
    latency = snapshot["latency"]
    lines.append(
        "latency          : "
        f"p50 {latency['p50_ms']:.3f} ms | p95 {latency['p95_ms']:.3f} ms | "
        f"p99 {latency['p99_ms']:.3f} ms | max {latency['max_ms']:.3f} ms"
    )
    if "cache" in snapshot:
        cache = snapshot["cache"]
        lines.append(
            f"cache            : {cache['hits']:,} hits / {cache['lookups']:,} lookups "
            f"({cache['hit_rate']:.1%}), {cache['size']:,}/{cache['capacity']:,} entries"
        )
    if "worker_cache" in snapshot:
        wc = snapshot["worker_cache"]
        lines.append(
            f"worker caches    : {wc['hits']:,} hits / {wc['lookups']:,} lookups "
            f"({wc['hit_rate']:.1%}) across {wc['workers']} workers"
        )
    if "shards" in snapshot:
        shards = snapshot["shards"]
        lines.append(
            f"shard traffic    : {shards['mean_messages']:.2f} msgs/query, "
            f"{shards['mean_bytes']:.0f} bytes/query"
        )
        if shards.get("transport"):
            lines.append(
                f"shard transport  : {shards['transport']} "
                f"(replicas={shards.get('replicas', 1)}, "
                f"sub_batch={shards.get('sub_batch', 0) or 'batch'}) | "
                f"dispatch {shards.get('dispatch_s', 0.0):.3f} s / "
                f"execute {shards.get('execute_s', 0.0):.3f} s / "
                f"collect {shards.get('collect_s', 0.0):.3f} s"
            )
        if shards.get("supervisor"):
            sup = shards["supervisor"]
            open_breakers = sum(
                1 for b in sup.get("breakers", ()) if b["state"] != "closed"
            )
            lines.append(
                f"shard supervisor : {sup['restarts']:,} restarts | "
                f"{sup['retries']:,} retries | {sup['failovers']:,} failovers | "
                f"{sup['degraded_pairs']:,} degraded | "
                f"{open_breakers} breaker(s) open"
            )
    if "net" in snapshot:
        net = snapshot["net"]
        queue, requests, flushes = net["queue"], net["requests"], net["flushes"]
        conns = net["connections"]
        lines.append(
            f"net queue        : depth {queue.get('depth', 0):,} "
            f"(peak {queue.get('peak_depth', 0):,}, "
            f"soft {queue.get('soft_limit', 0):,} / hard {queue.get('hard_limit', 0):,})"
        )
        lines.append(
            f"net requests     : {requests['accepted']:,} accepted | "
            f"{requests['overloaded']:,} overloaded | "
            f"{requests['degraded']:,} degraded | {requests['errors']:,} errors"
        )
        lines.append(
            f"net flushes      : {flushes['count']:,} "
            f"(mean batch {flushes['mean_batch']:.1f}, max {flushes['max_batch']:,}, "
            f"{flushes['cross_client']:,} cross-client)"
        )
        wait, service = net["queue_wait"], net["service_time"]
        lines.append(
            f"net wait/service : p50 {wait['p50_ms']:.3f}/{service['p50_ms']:.3f} ms | "
            f"p99 {wait['p99_ms']:.3f}/{service['p99_ms']:.3f} ms"
        )
        slo = net.get("slo")
        if slo is not None and slo.get("deadline", {}).get("requests"):
            deadline, ladder = slo["deadline"], slo["ladder"]
            taken = ladder.get("taken", {})
            lines.append(
                f"net deadlines    : {deadline['requests']:,} deadlined | "
                f"{deadline['hits']:,} met / {deadline['misses']:,} missed | "
                f"ladder exact {taken.get('exact', 0):,} / "
                f"estimate {taken.get('estimate', 0):,} / "
                f"shed {taken.get('shed', 0):,}"
            )
            limiter = slo.get("limiter")
            if limiter is not None:
                lines.append(
                    f"net limiter      : {limiter['limit']:,} admission window "
                    f"(floor {limiter['floor']:,}, ceiling {limiter['ceiling']:,.0f}, "
                    f"{limiter['decreases']:,} cuts)"
                )
        lines.append(
            f"net clients      : {conns['active']:,} active / {conns['total']:,} total"
            + (f", {net['reloads']} reloads" if net.get("reloads") else "")
        )
        for client in conns.get("clients", [])[:4]:
            lines.append(
                f"    {client['peer']:<26s} {client['requests']:>8,} req  "
                f"{client['pairs']:>8,} pairs  {client['overloads']:>6,} overload"
            )
    by_method = snapshot.get("by_method", {})
    if by_method:
        total = sum(by_method.values()) or 1
        lines.append("resolution mix   :")
        for method, count in by_method.items():
            lines.append(f"    {method:<26s} {count:>10,}  ({count / total:.1%})")
    return "\n".join(lines)
