"""Process-pool execution of the §5 partitioned serving scheme.

:class:`~repro.service.sharded.ShardedService` runs shard workers as
*threads*, which buys routing fidelity and isolation but — under the
GIL — no speed (every worker interleaves on one core).  This module
promotes the same scheme to worker *processes*:

* the index is flattened once into the offset-indexed arrays the
  persistence layer already defines, copied into one
  ``multiprocessing.shared_memory`` segment, and mapped zero-copy by
  every worker (no per-worker index load, no pickling);
* each worker process serves the queries *homed* on its shard — the
  §5 coordinator role for ``shard(s)`` — running Algorithm 1 against
  the shared arrays via :class:`repro.core.flat.FlatIndex`;
* a batch is partitioned by home shard, shipped to the workers in one
  message each, and reassembled in input order — so IPC cost is per
  *batch*, not per shard touch, while the wire *accounting* still
  models the per-query exchanges §5 prescribes: workers return each
  round trip's payload byte count and the coordinator records them in
  the same :class:`~repro.core.parallel.MessageLog` the thread backend
  and the simulation use.

Results are identical to the thread backend — distance, method,
witness, probes, path, and MessageLog totals — which a parity test
pins across both backends from the same saved index.
"""

from __future__ import annotations

import multiprocessing
import threading
from typing import Optional

import numpy as np

from repro.core.flat import FlatIndex
from repro.core.oracle import QueryResult
from repro.core.parallel import (
    BYTES_PER_WIRE_ENTRY,
    MessageLog,
    ShardReport,
    balance_summary_from_reports,
    shard_assignment,
)
from repro.exceptions import NodeNotFoundError, QueryError
from repro.io.shm import SharedArrayBundle


class _FlatShardEngine:
    """Algorithm 1 under §5 routing, over a shared :class:`FlatIndex`.

    Runs inside each worker process.  The step order, probe counts and
    wire-byte modelling replicate :meth:`ShardedService.query` exactly;
    ``answer`` returns the query result plus the payload byte count of
    every cross-shard round trip the query would have cost.
    """

    __slots__ = ("flat", "assign", "replicate_tables")

    def __init__(
        self, flat: FlatIndex, assign: np.ndarray, replicate_tables: bool
    ) -> None:
        self.flat = flat
        self.assign = assign
        self.replicate_tables = replicate_tables

    def answer(self, source: int, target: int, with_path: bool):
        """Answer one pair; returns ``(result, round_trip_payload_bytes)``."""
        flat = self.flat
        same_shard = self.assign[source] == self.assign[target]
        trips: list[int] = []
        probes = 0

        if source == target:
            path = [source] if with_path else None
            return QueryResult(source, target, 0, path, "identical", None, 0), trips

        # Condition (1): the source's table lives on the home shard.
        probes += 1
        if flat.has_table(source):
            probes += 1
            d = flat.table_distance(source, target)
            method = "landmark-source" if d is not None else "disconnected"
            path = (
                flat.parent_chain(source, target)
                if with_path and d is not None
                else None
            )
            return QueryResult(source, target, d, path, method, None, probes), trips
        # Condition (2): the target's table costs one round trip unless
        # replicated.
        probes += 1
        if flat.has_table(target):
            probes += 1
            d = flat.table_distance(target, source)
            path = None
            chain_len = 0
            if with_path and d is not None:
                chain = flat.parent_chain(target, source)
                chain_len = len(chain)
                path = list(reversed(chain))
            if not same_shard and not self.replicate_tables:
                trips.append(max(chain_len, 1) * BYTES_PER_WIRE_ENTRY)
            method = "landmark-target" if d is not None else "disconnected"
            return QueryResult(source, target, d, path, method, None, probes), trips

        # Condition (3): Gamma(s) is home-shard-local.
        probes += 1
        member, d = flat.vicinity_probe(source, target)
        if member:
            path = flat.pred_chain(source, target, source) if with_path else None
            return (
                QueryResult(
                    source, target, d, path, "target-in-source-vicinity", None, probes
                ),
                trips,
            )
        # Conditions (4) + intersection: one round trip to shard(t).
        probes += 1
        member, d = flat.vicinity_probe(target, source)
        if member:
            path = None
            chain_len = 0
            if with_path:
                chain = flat.pred_chain(target, source, target)
                chain_len = len(chain)
                path = list(reversed(chain))
            if not same_shard:
                trips.append(max(chain_len, 1) * BYTES_PER_WIRE_ENTRY)
            return (
                QueryResult(
                    source, target, d, path, "source-in-target-vicinity", None, probes
                ),
                trips,
            )
        scan_nodes, scan_dists = flat.boundary_payload(source)
        best, witness, kernel_probes = flat.intersect_payload(
            scan_nodes, scan_dists, target
        )
        probes += kernel_probes
        if best is not None:
            path = None
            chain_len = 0
            if with_path:
                second = flat.pred_chain(target, witness, target)
                chain_len = len(second)
                first = flat.pred_chain(source, witness, source)
                path = first + list(reversed(second))[1:]
            if not same_shard:
                trips.append((len(scan_nodes) + chain_len) * BYTES_PER_WIRE_ENTRY)
            return (
                QueryResult(
                    source, target, best, path, "intersection", witness, probes
                ),
                trips,
            )
        if not same_shard:
            trips.append(len(scan_nodes) * BYTES_PER_WIRE_ENTRY)
        return QueryResult(source, target, None, None, "miss", None, probes), trips


def _worker_main(conn, spec: dict, meta: dict) -> None:
    """Worker process entry: attach the shared index, serve sub-batches."""
    bundle = SharedArrayBundle.attach(spec)
    flat = FlatIndex(
        bundle.arrays,
        n=meta["n"],
        weighted=meta["weighted"],
        store_paths=meta["store_paths"],
    )
    engine = _FlatShardEngine(
        flat, bundle.arrays["shard_assign"], meta["replicate_tables"]
    )
    assign = engine.assign
    try:
        while True:
            message = conn.recv()
            if message is None:
                break
            seq, pairs, with_path = message
            try:
                results: list[QueryResult] = []
                trips: list[int] = []
                local = remote = 0
                for s, t in pairs:
                    result, query_trips = engine.answer(s, t, with_path)
                    results.append(result)
                    trips.extend(query_trips)
                    if assign[s] == assign[t]:
                        local += 1
                    else:
                        remote += 1
                conn.send((seq, "ok", results, local, remote, trips))
            except Exception as exc:  # surface worker faults, keep serving
                conn.send((seq, "error", f"{type(exc).__name__}: {exc}"))
    except (EOFError, KeyboardInterrupt):
        pass
    finally:
        del engine, flat
        bundle.close()
        conn.close()


class ProcessShardedService:
    """Serve the §5 scheme from ``num_shards`` worker *processes*.

    Same API, same answers and same :class:`MessageLog` accounting as
    the thread-backed :class:`~repro.service.sharded.ShardedService`,
    but the shard workers run outside the GIL, so batches actually
    execute in parallel.  Build from an in-memory index::

        with ProcessShardedService(oracle.index, num_shards=4) as svc:
            results = svc.query_batch(pairs)

    or straight from a saved index without materialising the per-node
    dicts (:meth:`from_saved`).

    Args:
        index: a built :class:`~repro.core.index.VicinityIndex`, or
            ``None`` when ``flat`` is given.
        num_shards: worker/shard count.
        placement: ``"hash"`` or ``"range"`` node placement.
        replicate_tables: model landmark tables as replicated on every
            shard (no round trip for landmark-target hits).
        start_method: multiprocessing start method; ``"spawn"``
            (default) is safe everywhere, ``"fork"`` starts faster where
            available.
        flat: a prepared :class:`FlatIndex` (used by :meth:`from_saved`).
    """

    def __init__(
        self,
        index,
        num_shards: int,
        *,
        placement: str = "hash",
        replicate_tables: bool = False,
        start_method: str = "spawn",
        flat: Optional[FlatIndex] = None,
    ) -> None:
        if index is not None:
            flat = FlatIndex.from_index(index)
        elif flat is None:
            raise QueryError("pass a built index or a prepared FlatIndex")
        if num_shards < 1:
            raise QueryError("num_shards must be at least 1")
        self.num_shards = num_shards
        self.placement = placement
        self.replicate_tables = replicate_tables
        self.n = flat.n
        self.log = MessageLog()
        self._log_lock = threading.Lock()
        self._io_lock = threading.Lock()
        self._store_paths = flat.store_paths
        self._assign = shard_assignment(flat.n, num_shards, placement)
        self._flat_meta = {
            "n": flat.n,
            "weighted": flat.weighted,
            "store_paths": flat.store_paths,
            "replicate_tables": replicate_tables,
        }
        # Kept for shard accounting; tiny next to the shared arrays.
        self._member_counts = np.diff(flat.member_offsets)
        self._boundary_counts = np.diff(flat.boundary_offsets)
        self._table_landmarks = (
            flat.landmark_ids.tolist() if flat.has_tables else []
        )
        self._closed = False
        self._batch_seq = 0
        self._bundle = SharedArrayBundle.create(
            {**flat.arrays, "shard_assign": self._assign}
        )
        context = multiprocessing.get_context(start_method)
        self._conns = []
        self._procs = []
        try:
            for shard_id in range(num_shards):
                parent_conn, child_conn = context.Pipe()
                proc = context.Process(
                    target=_worker_main,
                    args=(child_conn, self._bundle.spec, self._flat_meta),
                    name=f"repro-procshard-{shard_id}",
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(proc)
        except Exception:
            self.close()
            raise

    @classmethod
    def from_saved(cls, path, num_shards: int, **kwargs) -> "ProcessShardedService":
        """Build straight from a saved index (``save_index`` output).

        Loads only the flattened arrays — no per-node dict
        materialisation — so startup is dominated by file I/O.
        """
        from repro.io.oracle_store import load_flat_arrays

        arrays, meta = load_flat_arrays(path)
        flat = FlatIndex.from_store_arrays(
            arrays,
            n=meta["n"],
            weighted=meta["weighted"],
            store_paths=meta["store_paths"],
        )
        return cls(None, num_shards, flat=flat, **kwargs)

    # ------------------------------------------------------------------
    # placement / accounting
    # ------------------------------------------------------------------
    def shard_of(self, u: int) -> int:
        """Return the shard owning node ``u``."""
        self._check_node(u)
        return int(self._assign[u])

    def shard_reports(self) -> list[ShardReport]:
        """Per-shard memory accounting (matches the simulation's)."""
        nodes = np.bincount(self._assign, minlength=self.num_shards)
        vic_entries = np.bincount(
            self._assign, weights=self._member_counts, minlength=self.num_shards
        )
        boundary_entries = np.bincount(
            self._assign, weights=self._boundary_counts, minlength=self.num_shards
        )
        reports = [
            ShardReport(
                shard_id=k,
                nodes=int(nodes[k]),
                vicinity_entries=int(vic_entries[k]),
                boundary_entries=int(boundary_entries[k]),
            )
            for k in range(self.num_shards)
        ]
        for landmark in self._table_landmarks:
            if self.replicate_tables:
                for report in reports:
                    report.table_entries += self.n
            else:
                reports[int(self._assign[landmark])].table_entries += self.n
        return reports

    def balance_summary(self) -> dict[str, float]:
        """Load-balance metrics over shard memory sizes."""
        return balance_summary_from_reports(self.shard_reports())

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def query(self, source: int, target: int, *, with_path: bool = False) -> QueryResult:
        """Answer one pair on its home shard's worker process."""
        return self.query_batch([(source, target)], with_path=with_path)[0]

    def query_batch(self, pairs, *, with_path: bool = False) -> list[QueryResult]:
        """Answer a batch, fanned out to the home-shard workers.

        The batch is split by ``shard_of(source)``, shipped to each
        involved worker in a single message, and reassembled in input
        order.  Wire accounting lands in :attr:`log` exactly as the
        thread backend records it.
        """
        if self._closed:
            raise QueryError("service is closed")
        pair_list = [(int(s), int(t)) for s, t in pairs]
        if not pair_list:
            return []
        if with_path and not self._store_paths:
            raise QueryError("index was built with store_paths=False")
        flat_pairs = np.asarray(pair_list, dtype=np.int64)
        out_of_range = (flat_pairs < 0) | (flat_pairs >= self.n)
        if out_of_range.any():
            raise NodeNotFoundError(int(flat_pairs[out_of_range][0]), self.n)

        homes = self._assign[flat_pairs[:, 0]]
        by_shard: dict[int, list[int]] = {}
        for position, home in enumerate(homes.tolist()):
            by_shard.setdefault(home, []).append(position)

        results: list[Optional[QueryResult]] = [None] * len(pair_list)
        local = remote = 0
        trips: list[int] = []
        errors: list[str] = []
        with self._io_lock:
            self._batch_seq += 1
            seq = self._batch_seq
            for shard_id, positions in by_shard.items():
                sub = [pair_list[i] for i in positions]
                self._conns[shard_id].send((seq, sub, with_path))
            # Every involved worker owes exactly one reply for this seq;
            # drain all of them even when one reports an error, so a
            # failed batch never leaves replies queued for the next one.
            for shard_id, positions in by_shard.items():
                reply = self._receive(shard_id, seq)
                if reply[1] == "error":
                    errors.append(f"shard worker {shard_id} failed: {reply[2]}")
                    continue
                _, _, shard_results, shard_local, shard_remote, shard_trips = reply
                for position, result in zip(positions, shard_results):
                    results[position] = result
                local += shard_local
                remote += shard_remote
                trips.extend(shard_trips)
        if errors:
            raise QueryError("; ".join(errors))
        with self._log_lock:
            self.log.local_queries += local
            self.log.remote_queries += remote
            for payload_bytes in trips:
                self.log.record_round_trip(payload_bytes)
        return results

    def _receive(self, shard_id: int, seq: int):
        """Read this batch's reply from one worker, skipping stale ones."""
        while True:
            try:
                reply = self._conns[shard_id].recv()
            except EOFError:
                raise QueryError(f"shard worker {shard_id} died") from None
            if reply[0] == seq:
                return reply
            # A reply from an aborted/foreign exchange: discard it.

    def _check_node(self, u: int) -> None:
        if not 0 <= u < self.n:
            raise NodeNotFoundError(u, self.n)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the workers and release the shared-memory segment."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1)
        for conn in self._conns:
            conn.close()
        self._bundle.close()

    def __enter__(self) -> "ProcessShardedService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass
