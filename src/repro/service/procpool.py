"""Process-pool execution of the §5 partitioned serving scheme.

:class:`~repro.service.sharded.ShardedService` runs shard workers as
*threads*, which buys routing fidelity and isolation but — under the
GIL — no speed (every worker interleaves on one core).  This module
promotes the same scheme to worker *processes*:

* the flattened offset-indexed arrays are copied into one
  ``multiprocessing.shared_memory`` segment and mapped zero-copy by
  every worker (no per-worker index load, no pickling) — or, on the
  mmap path, every worker maps the store file itself;
* each shard is served by one worker process per replica — the §5
  coordinator role for ``shard(s)`` — running the same
  :class:`~repro.core.engine.ShardQueryEngine` the thread backend's
  workers run, over the shared arrays;
* request/response traffic is **frames, not pickles**: the coordinator
  ships each sub-batch as one fixed-dtype
  :class:`~repro.service.wire.RequestFrame` and gets the result columns
  back as one :class:`~repro.service.wire.ResponseFrame`, over either
  transport plane:

  - ``pipe`` — one ``send_bytes``/``recv_bytes`` of the encoded frame
    per sub-batch over a ``multiprocessing.Pipe``;
  - ``ring`` (default) — a shared-memory result ring pair per worker
    (:class:`~repro.io.shm.RingBuffer`), so frame payloads move through
    one mapped segment with a sequence-number handshake and **no
    serialisation machinery at all** — no pickle, no payload copy
    through the kernel; availability is signalled by a one-byte
    doorbell pipe per direction, giving the waiter an event-driven
    wakeup instead of a polling loop (which matters whenever the
    coordinator and the workers share cores);

* the wire *accounting* still models the per-query exchanges §5
  prescribes: workers return each round trip's payload byte count
  inside the response frame and the coordinator records them in the
  same :class:`~repro.core.parallel.MessageLog` the thread backend and
  the simulation use;
* optionally (``worker_cache_size > 0``) each worker keeps its own
  :class:`~repro.service.cache.ResultCache` over its homed pairs, so a
  repeated expensive pair is served from worker memory — skipping the
  kernel, the numpy crossings *and* the modelled round trip.  Hit
  counters ride back in every response frame's fixed header slots and
  fold into the coordinator's telemetry snapshot.

With the worker cache off (the default), results are identical to the
thread backend — distance, method, witness, probes, path, and
MessageLog totals — which the transport parity suite pins across both
backends and all transport planes from the same saved index.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from multiprocessing import shared_memory
from typing import Optional

from repro.core.flat import FlatIndex
from repro.exceptions import (
    QueryError,
    SerializationError,
    WorkerDied,
    WorkerFault,
    WorkerTimeout,
)
from repro.io.shm import RingBuffer, RingDead, SharedArrayBundle, _attach_untracked
from repro.service.faults import FaultPlan
from repro.service.shardbase import FlatShardedBase, FrameStreamTransport
from repro.service.wire import RequestFrame, ResponseFrame

#: Default byte capacity of each request/response ring.
DEFAULT_RING_CAPACITY = 1 << 20


def _pin_to_core(core: Optional[int]) -> None:
    """Pin the calling process to one core; silently no-op elsewhere."""
    if core is None or not hasattr(os, "sched_setaffinity"):
        return
    try:
        os.sched_setaffinity(0, {core})
    except (OSError, ValueError):
        pass


class _PipeEndpoint:
    """Worker side of the pipe transport: length-delimited frame bytes."""

    def __init__(self, conn) -> None:
        self._conn = conn

    def recv(self) -> bytes:
        return self._conn.recv_bytes()

    def send(self, buf: bytes) -> None:
        self._conn.send_bytes(buf)

    def close(self) -> None:
        self._conn.close()


class _RingEndpoint:
    """Worker side of the ring transport: attach the segment, pop/push.

    Frame payloads move through the shared-memory rings; the doorbell
    connections carry exactly one signal byte per frame, so the waiting
    side blocks in the kernel (an event-driven wakeup, like a pipe
    read) instead of burning its single-core timeslice polling the
    ring head — and a dead peer surfaces as EOF instead of a timeout.
    """

    def __init__(self, spec: dict) -> None:
        self._shm = _attach_untracked(spec["segment"])
        parent = multiprocessing.parent_process()
        alive = parent.is_alive if parent is not None else None
        capacity = spec["capacity"]
        offset = spec["offset"]
        self._req_signal = spec["req_signal"]
        self._resp_signal = spec["resp_signal"]
        self._requests = RingBuffer(
            self._shm.buf, offset, capacity, peer_alive=alive
        )
        self._responses = RingBuffer(
            self._shm.buf,
            offset + RingBuffer.region_bytes(capacity),
            capacity,
            peer_alive=alive,
        )

    def recv(self) -> bytes:
        try:
            self._req_signal.recv_bytes()
        except (EOFError, OSError):
            raise RingDead("coordinator is gone") from None
        return self._requests.pop()

    def send(self, buf: bytes) -> None:
        self._responses.push(buf)
        try:
            self._resp_signal.send_bytes(b"x")
        except (BrokenPipeError, OSError):
            raise RingDead("coordinator is gone") from None

    def close(self) -> None:
        self._requests = self._responses = None
        for conn in (self._req_signal, self._resp_signal):
            try:
                conn.close()
            except OSError:
                pass
        try:
            self._shm.close()
        except BufferError:
            pass


def _worker_main(
    endpoint_spec, spec: dict, meta: dict, pin_core=None,
    worker_id: int = 0, generation: int = 0,
) -> None:
    """Worker process entry: attach the shared index, serve frames.

    ``spec`` addresses either index-sharing substrate: a shared-memory
    segment (the copy path) or the store file itself (the mmap path,
    where this worker maps the file read-only and computes its own
    shard assignment — both are cheaper than shipping them).
    ``endpoint_spec`` is a pipe connection or a ring descriptor dict.
    An empty frame is the shutdown sentinel.  ``generation`` counts
    restarts of this worker slot: a respawned worker re-attaches the
    same substrate and, under fault injection, lets once-only rules
    expire (:mod:`repro.service.faults`).
    """
    from repro.core.engine import ShardQueryEngine
    from repro.core.parallel import shard_assignment
    from repro.io.shm import MappedArrayBundle, attach_bundle
    from repro.service.cache import ResultCache
    from repro.service.faults import FaultInjector

    _pin_to_core(pin_core)
    injector = FaultInjector.from_spec(
        meta.get("faults"), worker_id, generation
    )
    bundle = attach_bundle(spec)
    if isinstance(bundle, MappedArrayBundle):
        flat = FlatIndex.from_probe_arrays(
            bundle.arrays,
            n=meta["n"],
            weighted=meta["weighted"],
            store_paths=meta["store_paths"],
        )
        assign = shard_assignment(
            meta["n"], meta["num_shards"], meta["placement"]
        )
    else:
        flat = FlatIndex(
            bundle.arrays,
            n=meta["n"],
            weighted=meta["weighted"],
            store_paths=meta["store_paths"],
        )
        assign = bundle.arrays["shard_assign"]
    # Each worker process owns its engine exclusively and serialises
    # every response frame before touching the next request, so the
    # scratch-buffer reuse is safe here (and off in the thread backend).
    engine = ShardQueryEngine(
        flat,
        assign,
        meta["replicate_tables"],
        kernels=meta.get("kernels"),
        reuse_scratch=True,
    )
    cache = (
        ResultCache(meta["worker_cache_size"])
        if meta["worker_cache_size"] > 0
        else None
    )
    endpoint = (
        _RingEndpoint(endpoint_spec)
        if isinstance(endpoint_spec, dict)
        else _PipeEndpoint(endpoint_spec)
    )
    try:
        frames = 0
        while True:
            buf = endpoint.recv()
            if not buf:
                break
            frames += 1
            if injector is not None:
                injector.before_frame(frames)
            # run_frame turns worker faults into error frames itself,
            # so one bad batch never kills the worker.
            resp = engine.run_frame(RequestFrame.from_bytes(buf), cache=cache)
            payload = resp.to_bytes()
            if injector is not None:
                for wire_payload in injector.outgoing(payload, frames):
                    endpoint.send(wire_payload)
            else:
                endpoint.send(payload)
    except (EOFError, KeyboardInterrupt, RingDead):
        pass
    finally:
        del engine, flat
        bundle.close()
        endpoint.close()


#: Deadline waits re-check worker liveness this often.  With the
#: ``fork`` start method, sibling workers inherit each other's pipe
#: write ends, so a SIGKILLed worker's channel may never reach EOF —
#: the process handle, not the fd, is the truth about liveness.
LIVENESS_SLICE_S = 0.05


def _wait_readable(conn, alive, worker: int, timeout: Optional[float]) -> bool:
    """Wait for ``conn`` to become readable, watching worker liveness.

    Returns ``True`` when a payload is ready and ``False`` when the
    deadline expired; raises :class:`WorkerDied` as soon as the worker
    is observed dead with nothing left buffered — a recv on a dead
    worker fails in ~:data:`LIVENESS_SLICE_S` instead of burning the
    whole deadline (or, with no deadline, hanging forever).
    """
    deadline = None if timeout is None else time.monotonic() + timeout
    while True:
        slice_s = LIVENESS_SLICE_S
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return False
            slice_s = min(slice_s, remaining)
        try:
            if conn.poll(slice_s):
                return True
        except (EOFError, OSError):
            raise WorkerDied(worker) from None
        if not alive():
            # The worker may have answered and then died: drain wins.
            try:
                if conn.poll(0):
                    return True
            except (EOFError, OSError):
                pass
            raise WorkerDied(worker) from None


class _ProcessFrameTransport(FrameStreamTransport):
    """Frame stream to worker *processes*: adds liveness bookkeeping."""

    def __init__(self, num_workers: int) -> None:
        super().__init__(num_workers)
        self._procs: list = []

    def bind_procs(self, procs: list) -> None:
        """Point liveness checks at the spawned worker processes."""
        self._procs = procs

    def _alive_check(self, worker: int):
        def alive() -> bool:
            procs = self._procs
            if worker >= len(procs):
                return True  # still starting up
            return procs[worker].is_alive()

        return alive


class PipeFrameTransport(_ProcessFrameTransport):
    """One encoded frame per ``send_bytes`` over per-worker pipes."""

    name = "pipe"

    def __init__(self, conns) -> None:
        super().__init__(len(conns))
        self._conns = conns

    def send(
        self, worker: int, frame: RequestFrame, *, timeout: Optional[float] = None
    ) -> None:
        # Pipe writes of frame-sized payloads don't meaningfully block;
        # the deadline is enforced on the recv side.
        try:
            self._conns[worker].send_bytes(frame.to_bytes())
        except (BrokenPipeError, OSError):
            raise WorkerDied(worker) from None
        self.note_sent(worker, frame.seq)

    def _recv_raw(
        self, worker: int, timeout: Optional[float] = None
    ) -> ResponseFrame:
        conn = self._conns[worker]
        if not _wait_readable(conn, self._alive_check(worker), worker, timeout):
            raise WorkerTimeout(worker, timeout)
        try:
            buf = conn.recv_bytes()
        except (EOFError, OSError):
            raise WorkerDied(worker) from None
        try:
            return ResponseFrame.from_bytes(buf)
        except SerializationError as exc:
            raise WorkerFault(worker, f"sent an undecodable frame: {exc}") from None

    def reset_worker(self, worker: int):
        """Replace a dead worker's pipe; returns the fresh child end.

        The caller hands the child end to the respawned worker process
        (and closes its own copy after the spawn, as at startup).
        """
        try:
            self._conns[worker].close()
        except OSError:
            pass
        parent_conn, child_conn = multiprocessing.Pipe()
        self._conns[worker] = parent_conn
        self.clear_pending(worker)
        return child_conn

    def shutdown_worker(self, worker: int) -> None:
        try:
            self._conns[worker].send_bytes(b"")
        except (BrokenPipeError, OSError):
            pass

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass


class RingFrameTransport(_ProcessFrameTransport):
    """Per-worker SPSC ring pairs over one shared-memory segment.

    Each worker owns ``2 * (header + capacity)`` bytes of the segment:
    a request ring the coordinator pushes into and a response ring the
    worker pushes into.  Frames stream through in place — the only
    per-frame work on either side is the encode/decode the other
    transports also pay.  Availability travels out of band: every push
    is followed by one byte down a per-direction doorbell pipe, so the
    waiting side blocks in the kernel and is woken by the scheduler
    the instant the frame lands, instead of spin-polling the ring head
    (which loses badly when coordinator and workers share cores).  The
    coordinator's ``send`` drains ready responses into the pending
    buffer whenever a request ring stalls, so a worker blocked
    publishing results can never deadlock the coordinator.
    """

    name = "ring"

    def __init__(
        self, num_workers: int, *, capacity: int = DEFAULT_RING_CAPACITY
    ) -> None:
        super().__init__(num_workers)
        self.capacity = int(capacity)
        unit = 2 * RingBuffer.region_bytes(self.capacity)
        self._unit = unit
        self._shm = shared_memory.SharedMemory(
            create=True, size=num_workers * unit
        )
        self._requests = []
        self._responses = []
        # Doorbells: request-signal write ends + response-signal read
        # ends stay here; the opposite ends travel in the worker spec.
        self._signal_send = []
        self._signal_recv = []
        self._child_req = []
        self._child_resp = []
        for worker in range(num_workers):
            req_r, req_w = multiprocessing.Pipe(duplex=False)
            resp_r, resp_w = multiprocessing.Pipe(duplex=False)
            self._signal_send.append(req_w)
            self._signal_recv.append(resp_r)
            self._child_req.append(req_r)
            self._child_resp.append(resp_w)
            offset = worker * unit
            alive = self._alive_check(worker)
            requests = RingBuffer(
                self._shm.buf, offset, self.capacity, peer_alive=alive
            )
            responses = RingBuffer(
                self._shm.buf,
                offset + RingBuffer.region_bytes(self.capacity),
                self.capacity,
                peer_alive=alive,
            )
            requests.reset()
            responses.reset()
            self._requests.append(requests)
            self._responses.append(responses)

    def worker_spec(self, worker: int) -> dict:
        """The ring descriptor a worker attaches from.

        Picklable through ``multiprocessing`` spawn args: the doorbell
        ends are ``Connection`` objects, which the spawn machinery
        duplicates into the child.
        """
        return {
            "segment": self._shm.name,
            "offset": worker * self._unit,
            "capacity": self.capacity,
            "req_signal": self._child_req[worker],
            "resp_signal": self._child_resp[worker],
        }

    def release_worker_ends(self, worker: int) -> None:
        """Drop the parent's copies of a spawned worker's doorbell ends.

        Without this the parent keeps the child's write end open and a
        dead worker never surfaces as EOF on the response doorbell.
        """
        self._child_req[worker].close()
        self._child_resp[worker].close()

    def send(
        self, worker: int, frame: RequestFrame, *, timeout: Optional[float] = None
    ) -> None:
        try:
            self._requests[worker].push(
                frame.to_bytes(),
                timeout=timeout,
                on_stall=lambda: self._absorb(worker),
            )
            self._signal_send[worker].send_bytes(b"x")
        except TimeoutError:
            raise WorkerTimeout(worker, timeout) from None
        except (RingDead, BrokenPipeError, OSError):
            raise WorkerDied(worker) from None
        self.note_sent(worker, frame.seq)

    def _absorb(self, worker: int) -> None:
        """Park ready responses while a request ring is full."""
        ring = self._responses[worker]
        pending = self._pending[worker]
        while ring.poll():
            try:
                frame = ResponseFrame.from_bytes(ring.pop(timeout=1.0))
            except SerializationError as exc:
                raise WorkerFault(
                    worker, f"sent an undecodable frame: {exc}"
                ) from None
            pending[frame.seq] = frame

    def _recv_raw(
        self, worker: int, timeout: Optional[float] = None
    ) -> ResponseFrame:
        # One doorbell byte per response frame.  ``_absorb`` pops frames
        # without consuming their bytes, so a byte may refer to a frame
        # already parked in pending — the subsequent ``pop`` then waits
        # for the next real push, which is exactly the frame this call
        # is after.
        conn = self._signal_recv[worker]
        if not _wait_readable(conn, self._alive_check(worker), worker, timeout):
            raise WorkerTimeout(worker, timeout)
        try:
            conn.recv_bytes()
        except (EOFError, OSError):
            raise WorkerDied(worker) from None
        try:
            buf = self._responses[worker].pop(timeout=timeout)
        except TimeoutError:
            raise WorkerTimeout(worker, timeout) from None
        except RingDead:
            raise WorkerDied(worker) from None
        try:
            return ResponseFrame.from_bytes(buf)
        except SerializationError as exc:
            raise WorkerFault(worker, f"sent an undecodable frame: {exc}") from None

    def reset_worker(self, worker: int) -> dict:
        """Re-arm a dead worker's rings and doorbells for a respawn.

        The rings live in the coordinator-owned segment, so a restart
        just zeroes their counters in place (any half-written frame the
        dead worker left behind is abandoned with them) and replaces
        the four doorbell connection ends.  Returns the fresh worker
        spec for the respawned process.
        """
        for conn in (
            self._signal_send[worker],
            self._signal_recv[worker],
            self._child_req[worker],
            self._child_resp[worker],
        ):
            try:
                conn.close()
            except OSError:
                pass
        req_r, req_w = multiprocessing.Pipe(duplex=False)
        resp_r, resp_w = multiprocessing.Pipe(duplex=False)
        self._signal_send[worker] = req_w
        self._signal_recv[worker] = resp_r
        self._child_req[worker] = req_r
        self._child_resp[worker] = resp_w
        self._requests[worker].reset()
        self._responses[worker].reset()
        self.clear_pending(worker)
        return self.worker_spec(worker)

    def shutdown_worker(self, worker: int) -> None:
        ring = self._responses[worker]
        try:
            self._requests[worker].push(
                b"",
                timeout=0.5,
                on_stall=lambda: ring.drain(timeout=0.01),
            )
            self._signal_send[worker].send_bytes(b"x")
        except (TimeoutError, RingDead, BrokenPipeError, OSError):
            pass

    def stats(self) -> dict:
        return {
            "ring_capacity": self.capacity,
            "ring_occupancy": [
                {
                    "requests": int(req._head[0]) - int(req._tail[0]),
                    "responses": int(resp._head[0]) - int(resp._tail[0]),
                }
                for req, resp in zip(self._requests, self._responses)
            ],
        }

    def close(self) -> None:
        # Abandon whatever the rings still hold (a dead worker may have
        # left a frame mid-handshake); then drop the views and unlink.
        for ring in self._responses:
            ring.drain(timeout=0.02)
        self._requests = []
        self._responses = []
        for conn in (
            *self._signal_send,
            *self._signal_recv,
            *self._child_req,
            *self._child_resp,
        ):
            try:
                conn.close()
            except OSError:
                pass
        try:
            self._shm.close()
        except BufferError:
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass


class ProcessShardedService(FlatShardedBase):
    """Serve the §5 scheme from shard worker *processes*.

    Same API, same answers and same :class:`MessageLog` accounting as
    the thread-backed :class:`~repro.service.sharded.ShardedService`,
    but the shard workers run outside the GIL, so batches actually
    execute in parallel.  Build from an in-memory index::

        with ProcessShardedService(oracle.index, num_shards=4) as svc:
            results = svc.query_batch(pairs)

    or straight from a saved index without materialising the per-node
    dicts (:meth:`from_saved`).

    Args:
        index: a built :class:`~repro.core.index.VicinityIndex`, or
            ``None`` when ``flat`` is given.
        num_shards: shard count (workers = ``num_shards * replicas``).
        placement: ``"hash"`` or ``"range"`` node placement.
        replicate_tables: model landmark tables as replicated on every
            shard (no round trip for landmark-target hits).
        start_method: multiprocessing start method; ``"spawn"``
            (default) is safe everywhere, ``"fork"`` starts faster where
            available.
        worker_cache_size: per-worker :class:`ResultCache` capacity;
            ``0`` (default) disables worker-side caching, preserving
            exact wire-log parity with the thread backend.
        flat: a prepared :class:`FlatIndex` (used by :meth:`from_saved`).
        mmap_path: a flat-container store file to share with workers by
            memory mapping (``from_saved(..., mmap=True)`` sets this).
            No shared-memory segment is created for the index and
            nothing is copied at startup.
        transport: ``"ring"`` (default — shared-memory result rings) or
            ``"pipe"`` (frame pipes).
        sub_batch: request-frame chunk size (0 = one frame per shard
            per batch).
        replicas: worker processes per shard; sub-batches go to the
            replica with the least outstanding pairs.
        pin_workers: pin each worker to one core (round-robin over the
            coordinator's affinity mask; no-op where unsupported).
        ring_capacity: per-direction ring bytes (ring transport only).
        kernels: kernel tier (``"numpy"``/``"native"``/``None`` = auto);
            the resolved tier is shipped to every worker process.
        supervise: enable worker supervision — per-sub-batch deadlines,
            retry with backoff, failover to surviving replicas, restart
            of dead workers, and per-shard circuit breakers.  ``True``
            for defaults or a
            :class:`~repro.service.supervisor.SupervisorConfig`.
        recv_deadline_s: unsupervised per-sub-batch deadline — bounds
            every transport wait and raises a typed
            :class:`~repro.exceptions.WorkerTimeout` instead of
            hanging, without enabling retries.
        faults: a deterministic fault-injection plan shipped to the
            workers — a :class:`~repro.service.faults.FaultPlan`, a
            mapping of worker ids to rule fields, or a CLI preset
            string (see :meth:`FaultPlan.parse`).  Test/bench only.
    """

    def __init__(
        self,
        index,
        num_shards: int,
        *,
        placement: str = "hash",
        replicate_tables: bool = False,
        start_method: str = "spawn",
        worker_cache_size: int = 0,
        flat: Optional[FlatIndex] = None,
        mmap_path: Optional[str] = None,
        transport: str = "ring",
        sub_batch: int = 0,
        replicas: int = 1,
        pin_workers: bool = False,
        ring_capacity: int = DEFAULT_RING_CAPACITY,
        kernels: Optional[str] = None,
        supervise=None,
        recv_deadline_s: Optional[float] = None,
        faults=None,
    ) -> None:
        if transport not in ("pipe", "ring"):
            raise QueryError(
                f"unknown transport plane {transport!r}: "
                f"the process backend offers 'pipe' and 'ring'"
            )
        super().__init__(
            index,
            num_shards,
            placement=placement,
            replicate_tables=replicate_tables,
            flat=flat,
            sub_batch=sub_batch,
            replicas=replicas,
            kernels=kernels,
            supervise=supervise,
            recv_deadline_s=recv_deadline_s,
        )
        self.worker_cache_size = int(worker_cache_size)
        self.pin_workers = bool(pin_workers)
        self._faults = FaultPlan.coerce(faults)
        self._flat_meta = {
            "n": self.flat.n,
            "weighted": self.flat.weighted,
            "store_paths": self.flat.store_paths,
            "replicate_tables": replicate_tables,
            "worker_cache_size": self.worker_cache_size,
            "num_shards": num_shards,
            "placement": placement,
            # Ship the *resolved* tier so worker processes land on the
            # same kernels the coordinator resolved (same machine, same
            # extension artifact) instead of re-running auto-detection.
            "kernels": self.kernels,
        }
        if self._faults is not None:
            self._flat_meta["faults"] = self._faults.spec()
        self._worker_cache_stats: dict[int, dict] = {}
        num_workers = num_shards * self.replicas
        if mmap_path is not None:
            # Zero-copy startup: workers map the store file themselves.
            self._bundle = None
            spec = {"mmap_path": str(mmap_path)}
        else:
            self._bundle = SharedArrayBundle.create(
                {**self.flat.arrays, "shard_assign": self._assign}
            )
            spec = self._bundle.spec
        context = multiprocessing.get_context(start_method)
        self._context = context
        self._spec = spec
        self._procs: list = []
        self._conns: list = []
        self._generation = [0] * num_workers
        pin_cores = (
            self._pin_plan(num_workers)
            if self.pin_workers
            else [None] * num_workers
        )
        self._pin_cores = pin_cores
        try:
            if transport == "ring":
                self._transport = RingFrameTransport(
                    num_workers, capacity=ring_capacity
                )
                self._transport.bind_procs(self._procs)
                endpoints = [
                    self._transport.worker_spec(w) for w in range(num_workers)
                ]
            else:
                endpoints = []
                for _ in range(num_workers):
                    parent_conn, child_conn = context.Pipe()
                    self._conns.append(parent_conn)
                    endpoints.append(child_conn)
                self._transport = PipeFrameTransport(self._conns)
                self._transport.bind_procs(self._procs)
            for worker in range(num_workers):
                proc = context.Process(
                    target=_worker_main,
                    args=(
                        endpoints[worker], spec, self._flat_meta,
                        pin_cores[worker], worker, 0,
                    ),
                    name=f"repro-procshard-{worker}",
                    daemon=True,
                )
                proc.start()
                if transport == "pipe":
                    endpoints[worker].close()
                else:
                    self._transport.release_worker_ends(worker)
                self._procs.append(proc)
        except Exception:
            self.close()
            raise
        self._start_supervisor()

    @staticmethod
    def _pin_plan(num_workers: int) -> list:
        """Round-robin worker→core assignments over our affinity mask."""
        if not hasattr(os, "sched_getaffinity"):
            return [None] * num_workers
        cores = sorted(os.sched_getaffinity(0))
        if not cores:
            return [None] * num_workers
        return [cores[i % len(cores)] for i in range(num_workers)]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_saved(cls, path, num_shards: int, *, mmap: bool = False, **kwargs):
        """Build from a saved index; ``mmap=True`` is the zero-copy path.

        The copy path loads the flat arrays and duplicates them into a
        shared-memory segment before the first query; the mmap path
        (flat-container stores) skips both — the coordinator and every
        worker map the store file read-only and share its pages through
        the OS page cache, so cold start is independent of index size.
        """
        from repro.io.oracle_store import load_flat_index

        if mmap:
            kwargs.setdefault("mmap_path", str(path))
        return cls(
            None, num_shards, flat=load_flat_index(path, mmap=mmap), **kwargs
        )

    # ------------------------------------------------------------------
    # supervision hooks
    # ------------------------------------------------------------------
    def worker_alive(self, worker: int) -> bool:
        return self._procs[worker].is_alive()

    def kill_worker(self, worker: int) -> None:
        """Force a worker down (a poisoned worker cannot be trusted).

        After a timeout the worker's frame stream may be desynced
        mid-frame, so the only safe recovery is kill + restart — a
        restarted worker re-attaches the shared substrate and its
        transport lane is reset from a clean slate.
        """
        proc = self._procs[worker]
        if proc.is_alive():
            proc.kill()
        proc.join(timeout=2)

    def restart_worker(self, worker: int) -> bool:
        self.kill_worker(worker)
        self._generation[worker] += 1
        endpoint = self._transport.reset_worker(worker)
        proc = self._context.Process(
            target=_worker_main,
            args=(
                endpoint, self._spec, self._flat_meta,
                self._pin_cores[worker], worker, self._generation[worker],
            ),
            name=f"repro-procshard-{worker}",
            daemon=True,
        )
        proc.start()
        # Replace in place: the ring transport's liveness closures hold
        # a reference to this list, so they start tracking the new
        # process the moment the slot is overwritten.
        self._procs[worker] = proc
        if self._transport.name == "ring":
            self._transport.release_worker_ends(worker)
        else:
            endpoint.close()
        return True

    # ------------------------------------------------------------------
    # worker-cache telemetry
    # ------------------------------------------------------------------
    def _note_worker_cache(self, worker: int, stats: dict) -> None:
        self._worker_cache_stats[worker] = stats

    def worker_cache_stats(self) -> Optional[dict]:
        """Aggregate worker-cache statistics, or ``None`` when disabled.

        Each worker reports its cumulative cache counters in every
        response frame; this sums the latest per-worker figures so the
        serving layer can fold them into its telemetry snapshot.
        """
        if self.worker_cache_size <= 0:
            return None
        totals = {
            "workers": self.num_shards * self.replicas,
            "capacity_per_worker": self.worker_cache_size,
            "size": 0,
            "lookups": 0,
            "hits": 0,
            "misses": 0,
            "insertions": 0,
            "evictions": 0,
        }
        for stats in self._worker_cache_stats.values():
            for key in ("size", "lookups", "hits", "misses", "insertions", "evictions"):
                totals[key] += stats[key]
        totals["hit_rate"] = (
            totals["hits"] / totals["lookups"] if totals["lookups"] else 0.0
        )
        return totals

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the workers and release every shared-memory resource."""
        if self._closed:
            return
        self._closed = True
        self._stop_supervisor()
        transport = getattr(self, "_transport", None)
        if transport is not None:
            for worker in range(len(self._procs)):
                transport.shutdown_worker(worker)
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1)
        if transport is not None:
            transport.close()
        if self._bundle is not None:
            self._bundle.close()

    def __enter__(self) -> "ProcessShardedService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass
