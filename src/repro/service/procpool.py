"""Process-pool execution of the §5 partitioned serving scheme.

:class:`~repro.service.sharded.ShardedService` runs shard workers as
*threads*, which buys routing fidelity and isolation but — under the
GIL — no speed (every worker interleaves on one core).  This module
promotes the same scheme to worker *processes*:

* the flattened offset-indexed arrays are copied into one
  ``multiprocessing.shared_memory`` segment and mapped zero-copy by
  every worker (no per-worker index load, no pickling);
* each worker process serves the queries *homed* on its shard — the
  §5 coordinator role for ``shard(s)`` — running the same
  :class:`~repro.core.engine.ShardQueryEngine` the thread backend's
  workers run, over the shared arrays;
* a batch is partitioned by home shard, shipped to the workers in one
  message each, and reassembled in input order — so IPC cost is per
  *batch*, not per shard touch, while the wire *accounting* still
  models the per-query exchanges §5 prescribes: workers return each
  round trip's payload byte count and the coordinator records them in
  the same :class:`~repro.core.parallel.MessageLog` the thread backend
  and the simulation use;
* optionally (``worker_cache_size > 0``) each worker keeps its own
  :class:`~repro.service.cache.ResultCache` over its homed pairs, so a
  repeated expensive pair is served from worker memory — skipping the
  kernel, the numpy crossings *and* the modelled round trip.  Hit
  counts ride back on every reply and fold into the coordinator's
  telemetry snapshot.

With the worker cache off (the default), results are identical to the
thread backend — distance, method, witness, probes, path, and
MessageLog totals — which a parity test pins across both backends from
the same saved index.  With it on, repeated pairs reuse their first
resolution (same answer object, original probe count) and the wire log
records only the work actually re-done.
"""

from __future__ import annotations

import multiprocessing
import threading
from typing import Optional

from repro.core.engine import ShardQueryEngine
from repro.core.flat import FlatIndex
from repro.core.oracle import QueryResult
from repro.exceptions import QueryError
from repro.io.shm import SharedArrayBundle
from repro.service.shardbase import FlatShardedBase


def _worker_main(conn, spec: dict, meta: dict) -> None:
    """Worker process entry: attach the shared index, serve sub-batches.

    ``spec`` addresses either sharing substrate: a shared-memory
    segment (the copy path) or the store file itself (the mmap path,
    where this worker maps the file read-only and computes its own
    shard assignment — both are cheaper than shipping them).
    """
    from repro.core.parallel import shard_assignment
    from repro.io.shm import MappedArrayBundle, attach_bundle
    from repro.service.cache import ResultCache

    bundle = attach_bundle(spec)
    if isinstance(bundle, MappedArrayBundle):
        flat = FlatIndex.from_probe_arrays(
            bundle.arrays,
            n=meta["n"],
            weighted=meta["weighted"],
            store_paths=meta["store_paths"],
        )
        assign = shard_assignment(
            meta["n"], meta["num_shards"], meta["placement"]
        )
    else:
        flat = FlatIndex(
            bundle.arrays,
            n=meta["n"],
            weighted=meta["weighted"],
            store_paths=meta["store_paths"],
        )
        assign = bundle.arrays["shard_assign"]
    engine = ShardQueryEngine(flat, assign, meta["replicate_tables"])
    cache = (
        ResultCache(meta["worker_cache_size"])
        if meta["worker_cache_size"] > 0
        else None
    )
    try:
        while True:
            message = conn.recv()
            if message is None:
                break
            seq, pairs, with_path = message
            try:
                results, local, remote, trips = engine.answer_batch(
                    pairs, with_path, cache=cache
                )
                cache_stats = None if cache is None else cache.snapshot()
                conn.send((seq, "ok", results, local, remote, trips, cache_stats))
            except Exception as exc:  # surface worker faults, keep serving
                conn.send((seq, "error", f"{type(exc).__name__}: {exc}"))
    except (EOFError, KeyboardInterrupt):
        pass
    finally:
        del engine, flat
        bundle.close()
        conn.close()


class ProcessShardedService(FlatShardedBase):
    """Serve the §5 scheme from ``num_shards`` worker *processes*.

    Same API, same answers and same :class:`MessageLog` accounting as
    the thread-backed :class:`~repro.service.sharded.ShardedService`,
    but the shard workers run outside the GIL, so batches actually
    execute in parallel.  Build from an in-memory index::

        with ProcessShardedService(oracle.index, num_shards=4) as svc:
            results = svc.query_batch(pairs)

    or straight from a saved index without materialising the per-node
    dicts (:meth:`from_saved`).

    Args:
        index: a built :class:`~repro.core.index.VicinityIndex`, or
            ``None`` when ``flat`` is given.
        num_shards: worker/shard count.
        placement: ``"hash"`` or ``"range"`` node placement.
        replicate_tables: model landmark tables as replicated on every
            shard (no round trip for landmark-target hits).
        start_method: multiprocessing start method; ``"spawn"``
            (default) is safe everywhere, ``"fork"`` starts faster where
            available.
        worker_cache_size: per-worker :class:`ResultCache` capacity;
            ``0`` (default) disables worker-side caching, preserving
            exact wire-log parity with the thread backend.
        flat: a prepared :class:`FlatIndex` (used by :meth:`from_saved`).
        mmap_path: a flat-container store file to share with workers by
            memory mapping (``from_saved(..., mmap=True)`` sets this).
            No shared-memory segment is created and nothing is copied
            at startup: each worker maps the file read-only, pages are
            shared through the OS page cache, and the per-worker shard
            assignment is recomputed (O(n), deterministic) instead of
            shipped.
    """

    def __init__(
        self,
        index,
        num_shards: int,
        *,
        placement: str = "hash",
        replicate_tables: bool = False,
        start_method: str = "spawn",
        worker_cache_size: int = 0,
        flat: Optional[FlatIndex] = None,
        mmap_path: Optional[str] = None,
    ) -> None:
        super().__init__(
            index,
            num_shards,
            placement=placement,
            replicate_tables=replicate_tables,
            flat=flat,
        )
        self.worker_cache_size = int(worker_cache_size)
        self._log_lock = threading.Lock()
        self._io_lock = threading.Lock()
        self._flat_meta = {
            "n": self.flat.n,
            "weighted": self.flat.weighted,
            "store_paths": self.flat.store_paths,
            "replicate_tables": replicate_tables,
            "worker_cache_size": self.worker_cache_size,
            "num_shards": num_shards,
            "placement": placement,
        }
        self._worker_cache_stats: dict[int, dict] = {}
        self._batch_seq = 0
        if mmap_path is not None:
            # Zero-copy startup: workers map the store file themselves.
            self._bundle = None
            spec = {"mmap_path": str(mmap_path)}
        else:
            self._bundle = SharedArrayBundle.create(
                {**self.flat.arrays, "shard_assign": self._assign}
            )
            spec = self._bundle.spec
        context = multiprocessing.get_context(start_method)
        self._conns = []
        self._procs = []
        try:
            for shard_id in range(num_shards):
                parent_conn, child_conn = context.Pipe()
                proc = context.Process(
                    target=_worker_main,
                    args=(child_conn, spec, self._flat_meta),
                    name=f"repro-procshard-{shard_id}",
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(proc)
        except Exception:
            self.close()
            raise

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_saved(cls, path, num_shards: int, *, mmap: bool = False, **kwargs):
        """Build from a saved index; ``mmap=True`` is the zero-copy path.

        The copy path loads the flat arrays and duplicates them into a
        shared-memory segment before the first query; the mmap path
        (flat-container stores) skips both — the coordinator and every
        worker map the store file read-only and share its pages through
        the OS page cache, so cold start is independent of index size.
        """
        from repro.io.oracle_store import load_flat_index

        if mmap:
            kwargs.setdefault("mmap_path", str(path))
        return cls(
            None, num_shards, flat=load_flat_index(path, mmap=mmap), **kwargs
        )

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def query_batch(self, pairs, *, with_path: bool = False) -> list[QueryResult]:
        """Answer a batch, fanned out to the home-shard workers.

        The batch is split by ``shard_of(source)``, shipped to each
        involved worker in a single message, and reassembled in input
        order.  Wire accounting lands in :attr:`log` exactly as the
        thread backend records it.
        """
        pair_list, homes = self._validate_batch(pairs, with_path)
        if not pair_list:
            return []
        by_shard = self._partition(homes)

        results: list[Optional[QueryResult]] = [None] * len(pair_list)
        local = remote = 0
        trips: list[int] = []
        errors: list[str] = []
        with self._io_lock:
            self._batch_seq += 1
            seq = self._batch_seq
            for shard_id, positions in by_shard.items():
                sub = [pair_list[i] for i in positions]
                self._conns[shard_id].send((seq, sub, with_path))
            # Every involved worker owes exactly one reply for this seq;
            # drain all of them even when one reports an error, so a
            # failed batch never leaves replies queued for the next one.
            for shard_id, positions in by_shard.items():
                reply = self._receive(shard_id, seq)
                if reply[1] == "error":
                    errors.append(f"shard worker {shard_id} failed: {reply[2]}")
                    continue
                _, _, shard_results, shard_local, shard_remote, shard_trips, stats = (
                    reply
                )
                for position, result in zip(positions, shard_results):
                    results[position] = result
                local += shard_local
                remote += shard_remote
                trips.extend(shard_trips)
                if stats is not None:
                    self._worker_cache_stats[shard_id] = stats
        if errors:
            raise QueryError("; ".join(errors))
        with self._log_lock:
            self._fold_log(local, remote, trips)
        return results

    def _receive(self, shard_id: int, seq: int):
        """Read this batch's reply from one worker, skipping stale ones."""
        while True:
            try:
                reply = self._conns[shard_id].recv()
            except EOFError:
                raise QueryError(f"shard worker {shard_id} died") from None
            if reply[0] == seq:
                return reply
            # A reply from an aborted/foreign exchange: discard it.

    # ------------------------------------------------------------------
    # worker-cache telemetry
    # ------------------------------------------------------------------
    def worker_cache_stats(self) -> Optional[dict]:
        """Aggregate worker-cache statistics, or ``None`` when disabled.

        Each worker reports its cumulative cache snapshot on every
        reply; this sums the latest per-worker figures so the serving
        layer can fold them into its telemetry snapshot.
        """
        if self.worker_cache_size <= 0:
            return None
        totals = {
            "workers": self.num_shards,
            "capacity_per_worker": self.worker_cache_size,
            "size": 0,
            "lookups": 0,
            "hits": 0,
            "misses": 0,
            "insertions": 0,
            "evictions": 0,
        }
        for stats in self._worker_cache_stats.values():
            for key in ("size", "lookups", "hits", "misses", "insertions", "evictions"):
                totals[key] += stats[key]
        totals["hit_rate"] = (
            totals["hits"] / totals["lookups"] if totals["lookups"] else 0.0
        )
        return totals

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the workers and release the shared-memory segment."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1)
        for conn in self._conns:
            conn.close()
        if self._bundle is not None:
            self._bundle.close()

    def __enter__(self) -> "ProcessShardedService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass
