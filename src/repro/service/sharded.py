"""In-process execution of the §5 partitioned serving scheme.

:class:`~repro.core.parallel.PartitionedOracle` *simulates* the paper's
sharding challenge: it counts the messages a deployment would send but
answers every query from the whole index.  This module promotes that
routing scheme to an actual executor:

* the index is physically partitioned — each shard holds only the
  vicinities of its resident nodes and the tables of its resident
  landmarks (optionally replicated);
* each shard is served by exactly one worker thread, so shard state is
  thread-confined the way per-machine state is process-confined;
* a query runs its coordinator logic on the calling thread and touches
  shard state only through that shard's worker (the in-process stand-in
  for an RPC), with every cross-shard exchange recorded in the same
  :class:`~repro.core.parallel.MessageLog` the simulation uses.

Shard workers never call other shards — remote handlers are pure local
reads — which is both the paper's single-round-trip property and what
makes the executor deadlock-free.

Placement, per-shard memory accounting and wire-size modelling are
reused from :mod:`repro.core.parallel` rather than duplicated.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Optional

from repro.core.index import VicinityIndex
from repro.core.intersect import scan_and_probe
from repro.core.oracle import QueryResult
from repro.core.parallel import (
    BYTES_PER_WIRE_ENTRY,
    MessageLog,
    PartitionedOracle,
    ShardReport,
)
from repro.core.paths import walk_parent_array, walk_predecessors
from repro.exceptions import QueryError


@dataclass
class _ShardState:
    """What one shard physically holds (plus its serving thread)."""

    shard_id: int
    vicinities: dict = field(default_factory=dict)
    tables: dict = field(default_factory=dict)
    executor: Optional[ThreadPoolExecutor] = None

    def call(self, fn, *args):
        """Run ``fn(*args)`` on this shard's worker thread (the "RPC")."""
        return self.executor.submit(fn, *args).result()

    # ---- remote handlers: local reads only, never cross-shard ----
    def table_distance(self, landmark: int, node: int, want_chain: bool = False):
        """``(distance, chain)`` from the landmark's table.

        ``chain`` is the parent walk ``[landmark .. node]`` when
        requested and reachable (the wire payload a path query ships),
        else ``None``.
        """
        table = self.tables.get(landmark)
        if table is None:
            raise QueryError(
                f"shard {self.shard_id} does not hold the table for landmark {landmark}"
            )
        d = table.distance_to(node)
        chain = None
        if want_chain and d is not None:
            if table.parent is None:
                raise QueryError("index was built with store_paths=False")
            chain = walk_parent_array(table.parent, node, landmark)
        return d, chain

    def vicinity_probe(self, node: int, other: int):
        """Return ``(is_member, distance)`` of ``other`` in Gamma(node)."""
        vic = self.vicinities[node]
        if other in vic.members:
            return True, vic.dist[other]
        return False, None

    def vicinity_chain(self, node: int, member: int):
        """The stored predecessor walk ``[node .. member]``."""
        return walk_predecessors(self.vicinities[node].pred, member, node)

    def boundary_payload(self, node: int):
        """The wire payload for an intersection: boundary ids + distances."""
        vic = self.vicinities[node]
        return [(w, vic.dist[w]) for w in vic.boundary]

    def resolve_remote(self, source: int, payload, target: int, want_chain: bool = False):
        """Conditions (4) + intersection in one exchange, as §5 prescribes.

        The coordinator ships ``source``'s boundary once; this shard
        first probes ``source in Gamma(target)`` and only on a miss
        scans the shipped payload against the local vicinity — so a
        query never needs a second round trip.  With ``want_chain`` the
        response additionally carries this side's predecessor walk (to
        ``source`` on a member hit, to the witness on an intersection),
        which is what lets the coordinator splice a full path without a
        second exchange.

        Returns:
            ``("member", distance, chain)`` when condition (4) resolves,
            else ``("intersection", best, witness, probes, chain)``.
        """
        vic = self.vicinities[target]
        if source in vic.members:
            chain = (
                walk_predecessors(vic.pred, source, target) if want_chain else None
            )
            return ("member", vic.dist[source], chain)
        scan_dist = dict(payload)
        best, witness, probes = scan_and_probe(
            [w for w, _ in payload], scan_dist, vic.members, vic.dist
        )
        chain = None
        if want_chain and witness is not None:
            chain = walk_predecessors(vic.pred, witness, target)
        return ("intersection", best, witness, probes, chain)


class ShardedService:
    """Serve Algorithm 1 from ``num_shards`` single-threaded shard workers.

    Results (distance, method, probes) are identical to
    :class:`~repro.core.parallel.PartitionedOracle`.  Distances and
    methods also match the single-machine oracle, except that fallback
    is disabled for the same reason the simulation disables it (a
    fallback search needs the input graph, which no shard holds).
    Probe counts and witnesses can differ from the single-machine
    oracle under kernels other than ``boundary-source``: the §5 scheme
    always ships the *source's* boundary to ``shard(t)``, whereas e.g.
    the default ``boundary-smaller`` kernel scans whichever boundary
    is smaller.

    Args:
        index: a built :class:`~repro.core.index.VicinityIndex`.
        num_shards: worker/shard count.
        placement: ``"hash"`` or ``"range"`` (see
            :meth:`~repro.core.parallel.PartitionedOracle.shard_of`).
        replicate_tables: copy every landmark table onto every shard,
            trading memory for one round trip on landmark-target hits.
        dispatchers: thread count of the batch dispatcher pool
            (defaults to ``num_shards``).
    """

    def __init__(
        self,
        index: VicinityIndex,
        num_shards: int,
        *,
        placement: str = "hash",
        replicate_tables: bool = False,
        dispatchers: Optional[int] = None,
    ) -> None:
        # Reuse the simulation for placement and memory accounting.
        self._router = PartitionedOracle(
            index, num_shards,
            placement=placement, replicate_tables=replicate_tables,
        )
        self.index = index
        self.n = index.n
        self.num_shards = num_shards
        self.replicate_tables = replicate_tables
        self.log = MessageLog()
        self._log_lock = threading.Lock()
        self._closed = False

        self._shards = [
            _ShardState(
                shard_id=k,
                executor=ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix=f"repro-shard-{k}"
                ),
            )
            for k in range(num_shards)
        ]
        for u in range(index.n):
            self._shards[self.shard_of(u)].vicinities[u] = index.vicinities[u]
        for landmark, table in index.tables.items():
            if replicate_tables:
                for shard in self._shards:
                    shard.tables[landmark] = table
            else:
                self._shards[self.shard_of(landmark)].tables[landmark] = table
        # Coordinator-side routing metadata (which landmarks have tables).
        self._table_landmarks = frozenset(index.tables)
        self._dispatch = ThreadPoolExecutor(
            max_workers=dispatchers or num_shards,
            thread_name_prefix="repro-dispatch",
        )

    # ------------------------------------------------------------------
    # placement / accounting (delegated to the simulation)
    # ------------------------------------------------------------------
    def shard_of(self, u: int) -> int:
        """Return the shard owning node ``u``."""
        return self._router.shard_of(u)

    def shard_reports(self) -> list[ShardReport]:
        """Per-shard memory accounting."""
        return self._router.shard_reports()

    def balance_summary(self) -> dict[str, float]:
        """Load-balance metrics over shard memory sizes."""
        return self._router.balance_summary()

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def query(self, source: int, target: int, *, with_path: bool = False) -> QueryResult:
        """Answer one pair, executing each step on its owning shard.

        With ``with_path`` every cross-shard response additionally
        carries the answering side's predecessor chain (the witness-side
        walk on an intersection), so the coordinator can splice a full
        path without extra round trips — only the response payload
        grows, and the wire accounting reflects that.
        """
        if self._closed:
            raise QueryError("service is closed")
        index = self.index
        index.graph.check_node(source)
        index.graph.check_node(target)
        if with_path and not index.config.store_paths:
            raise QueryError("index was built with store_paths=False")
        shard_s = self._shards[self.shard_of(source)]
        shard_t = self._shards[self.shard_of(target)]
        same_shard = shard_s.shard_id == shard_t.shard_id
        with self._log_lock:
            if same_shard:
                self.log.local_queries += 1
            else:
                self.log.remote_queries += 1
        probes = 0

        if source == target:
            path = [source] if with_path else None
            return QueryResult(source, target, 0, path, "identical", None, 0)

        flags = index.landmarks.is_landmark
        # Condition (1): the source's table lives on the coordinator.
        probes += 1
        if flags[source] and source in self._table_landmarks:
            probes += 1
            d, chain = shard_s.call(shard_s.table_distance, source, target, with_path)
            method = "landmark-source" if d is not None else "disconnected"
            return QueryResult(source, target, d, chain, method, None, probes)
        # Condition (2): the target's table needs one round trip unless
        # replicated (then the coordinator's local copy answers).
        probes += 1
        if flags[target] and target in self._table_landmarks:
            probes += 1
            owner = shard_s if self.replicate_tables else shard_t
            d, chain = owner.call(owner.table_distance, target, source, with_path)
            path = list(reversed(chain)) if chain else None
            if not same_shard and not self.replicate_tables:
                entries = len(chain) if chain else 1
                self._record_round_trip(entries * BYTES_PER_WIRE_ENTRY)
            method = "landmark-target" if d is not None else "disconnected"
            return QueryResult(source, target, d, path, method, None, probes)

        # Condition (3): Gamma(s) is coordinator-local.
        probes += 1
        member, d = shard_s.call(shard_s.vicinity_probe, source, target)
        if member:
            path = (
                shard_s.call(shard_s.vicinity_chain, source, target)
                if with_path
                else None
            )
            return QueryResult(
                source, target, d, path, "target-in-source-vicinity", None, probes
            )
        # Conditions (4) + intersection: one round trip to shard(t),
        # shipping s's boundary; shard(t) probes s in Gamma(t) first and
        # intersects on a miss.  The member-hit response is modelled at
        # one wire entry (or the shipped chain for a path query),
        # exactly as in the simulation's accounting.
        probes += 1
        payload = shard_s.call(shard_s.boundary_payload, source)
        outcome = shard_t.call(
            shard_t.resolve_remote, source, payload, target, with_path
        )
        if outcome[0] == "member":
            _, d, chain = outcome
            if not same_shard:
                entries = len(chain) if chain else 1
                self._record_round_trip(entries * BYTES_PER_WIRE_ENTRY)
            path = list(reversed(chain)) if chain else None
            return QueryResult(
                source, target, d, path, "source-in-target-vicinity", None, probes
            )
        _, best, witness, kernel_probes, chain = outcome
        if not same_shard:
            entries = len(payload) + (len(chain) if chain else 0)
            self._record_round_trip(entries * BYTES_PER_WIRE_ENTRY)
        probes += kernel_probes
        if best is not None:
            path = None
            if with_path:
                # Splice: the coordinator-local half [source .. witness]
                # plus the shipped witness-side chain [target .. witness]
                # reversed.
                first = shard_s.call(shard_s.vicinity_chain, source, witness)
                path = first + list(reversed(chain))[1:]
            return QueryResult(
                source, target, best, path, "intersection", witness, probes
            )
        return QueryResult(source, target, None, None, "miss", None, probes)

    def query_batch(self, pairs, *, with_path: bool = False) -> list[QueryResult]:
        """Answer a batch, dispatching coordinator work across threads.

        Pairs are fanned out to the dispatcher pool (coordinators), each
        of which touches shard state only through the owning shard's
        worker; results come back in input order.
        """
        pair_list = [(int(s), int(t)) for s, t in pairs]
        if not pair_list:
            return []
        return list(
            self._dispatch.map(
                lambda p: self.query(*p, with_path=with_path), pair_list
            )
        )

    def _record_round_trip(self, payload_bytes: int) -> None:
        with self._log_lock:
            self.log.record_round_trip(payload_bytes)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the shard workers and the dispatcher pool."""
        if self._closed:
            return
        self._closed = True
        self._dispatch.shutdown(wait=True)
        for shard in self._shards:
            shard.executor.shutdown(wait=True)

    def __enter__(self) -> "ShardedService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
