"""Thread-backed execution of the §5 partitioned serving scheme.

:class:`~repro.core.parallel.PartitionedOracle` *simulates* the paper's
sharding challenge: it counts the messages a deployment would send but
answers every query from the whole index.  This module executes that
routing scheme on real per-shard worker threads:

* the index is flattened once into the offset-indexed arrays of
  :class:`~repro.core.flat.FlatIndex` (or loaded dict-free from a saved
  index via :meth:`ShardedService.from_saved`) and shared read-only by
  every shard worker — threads share an address space, so this is the
  in-process analogue of the process backend's shared-memory segment;
* each shard is served by exactly one worker thread running the same
  :class:`~repro.core.engine.ShardQueryEngine` the process backend's
  workers run — one engine implementation, two execution substrates;
* a batch is partitioned by home shard, executed on each involved
  worker, and reassembled in input order, with every modelled
  cross-shard exchange recorded in the same
  :class:`~repro.core.parallel.MessageLog` the simulation uses.

Under the GIL the worker threads interleave on one core, so this
backend buys routing fidelity and zero startup cost rather than speed;
:class:`~repro.service.procpool.ProcessShardedService` runs the
identical engine on worker processes when throughput matters.  Results
and MessageLog totals are identical across the two backends (pinned by
parity tests and the CI smoke run).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from repro.core.engine import ShardQueryEngine
from repro.core.oracle import QueryResult
from repro.service.shardbase import FlatShardedBase


class ShardedService(FlatShardedBase):
    """Serve the §5 scheme from ``num_shards`` single-threaded shard workers.

    Results (distance, method, probes) are identical to
    :class:`~repro.core.parallel.PartitionedOracle`.  Distances and
    methods also match the single-machine oracle, except that fallback
    is disabled for the same reason the simulation disables it (a
    fallback search needs the input graph, which no shard holds).
    Probe counts and witnesses can differ from the single-machine
    oracle under kernels other than ``boundary-source``: the §5 scheme
    always ships the *source's* boundary to ``shard(t)``, whereas e.g.
    the default ``boundary-smaller`` kernel scans whichever boundary
    is smaller.

    Args:
        index: a built :class:`~repro.core.index.VicinityIndex`, or
            ``None`` with ``flat=`` (see :meth:`from_saved`).
        num_shards: worker/shard count.
        placement: ``"hash"`` or ``"range"`` node placement.
        replicate_tables: copy every landmark table onto every shard,
            trading memory for one round trip on landmark-target hits.
        flat: a prepared :class:`~repro.core.flat.FlatIndex`.
    """

    def __init__(
        self,
        index,
        num_shards: int,
        *,
        placement: str = "hash",
        replicate_tables: bool = False,
        flat=None,
    ) -> None:
        super().__init__(
            index,
            num_shards,
            placement=placement,
            replicate_tables=replicate_tables,
            flat=flat,
        )
        self._log_lock = threading.Lock()
        self._engine = ShardQueryEngine(self.flat, self._assign, replicate_tables)
        self._workers = [
            ThreadPoolExecutor(max_workers=1, thread_name_prefix=f"repro-shard-{k}")
            for k in range(num_shards)
        ]

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def query_batch(self, pairs, *, with_path: bool = False) -> list[QueryResult]:
        """Answer a batch, fanned out to the home-shard worker threads.

        The batch is split by ``shard_of(source)``, each sub-batch runs
        the fused worker loop on its shard's own thread, and results
        come back in input order.  Wire accounting lands in :attr:`log`
        exactly as the simulation and the process backend record it.
        """
        pair_list, homes = self._validate_batch(pairs, with_path)
        if not pair_list:
            return []
        by_shard = self._partition(homes)
        futures = {
            shard_id: self._workers[shard_id].submit(
                self._engine.answer_batch,
                [pair_list[i] for i in positions],
                with_path,
            )
            for shard_id, positions in by_shard.items()
        }
        results: list[Optional[QueryResult]] = [None] * len(pair_list)
        local = remote = 0
        trips: list[int] = []
        for shard_id, positions in by_shard.items():
            shard_results, shard_local, shard_remote, shard_trips = futures[
                shard_id
            ].result()
            for position, result in zip(positions, shard_results):
                results[position] = result
            local += shard_local
            remote += shard_remote
            trips.extend(shard_trips)
        with self._log_lock:
            self._fold_log(local, remote, trips)
        return results

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the shard worker threads."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            worker.shutdown(wait=True)

    def __enter__(self) -> "ShardedService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
