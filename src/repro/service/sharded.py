"""Thread-backed execution of the §5 partitioned serving scheme.

:class:`~repro.core.parallel.PartitionedOracle` *simulates* the paper's
sharding challenge: it counts the messages a deployment would send but
answers every query from the whole index.  This module executes that
routing scheme on real per-shard worker threads:

* the index is flattened once into the offset-indexed arrays of
  :class:`~repro.core.flat.FlatIndex` (or loaded dict-free from a saved
  index via :meth:`ShardedService.from_saved`) and shared read-only by
  every shard worker — threads share an address space, so this is the
  in-process analogue of the process backend's shared-memory segment;
* each shard is served by one worker thread per replica running the
  same :class:`~repro.core.engine.ShardQueryEngine` the process
  backend's workers run — one engine implementation, two execution
  substrates;
* frames move over the :class:`InlineTransport`: ``send`` submits the
  worker's ``run_frame`` to that worker's single thread and ``recv``
  awaits the future — the request/response frames are passed as
  *objects*, so the pair array the coordinator sliced and the result
  columns the engine filled are zero-copy views all the way through.

Under the GIL the worker threads interleave on one core, so this
backend buys routing fidelity and zero startup cost rather than speed;
:class:`~repro.service.procpool.ProcessShardedService` runs the
identical engine on worker processes when throughput matters.  Results
and MessageLog totals are identical across the two backends and all
transports (pinned by parity tests and the CI smoke run).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from typing import Optional

from repro.core.engine import ShardQueryEngine
from repro.exceptions import QueryError, WorkerTimeout
from repro.service.shardbase import FlatShardedBase
from repro.service.wire import RequestFrame, ResponseFrame


class InlineTransport:
    """Zero-copy frame transport over per-worker executor threads.

    ``serial`` is False: completion is tracked per frame (futures keyed
    by worker and sequence number), so concurrent batches interleave at
    worker granularity exactly as the pre-frame thread backend did.
    """

    name = "inline"
    serial = False

    def __init__(self, engine: ShardQueryEngine, num_workers: int) -> None:
        self._engine = engine
        self._workers = [
            self._make_worker(k) for k in range(num_workers)
        ]
        self._futures: dict[tuple[int, int], object] = {}

    @staticmethod
    def _make_worker(worker: int) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"repro-shard-{worker}"
        )

    def send(
        self, worker: int, frame: RequestFrame, *, timeout: Optional[float] = None
    ) -> None:
        # Submission never blocks, so the deadline applies only to recv.
        self._futures[(worker, frame.seq)] = self._workers[worker].submit(
            self._engine.run_frame, frame
        )

    def recv(
        self, worker: int, seq: int, *, timeout: Optional[float] = None
    ) -> ResponseFrame:
        future = self._futures.pop((worker, seq), None)
        if future is None:
            raise QueryError(f"no in-flight frame {seq} for worker {worker}")
        try:
            return future.result(timeout)
        except _FutureTimeout:
            # The frame stays abandoned: its result (if the worker ever
            # finishes) is simply dropped with the future.
            raise WorkerTimeout(worker, timeout) from None

    def reset_worker(self, worker: int) -> None:
        """Replace a wedged worker's executor with a fresh one.

        The old executor's thread keeps running whatever it was stuck
        on, but nothing routes to it anymore; the shard's slot is
        immediately serviceable again.
        """
        old = self._workers[worker]
        self._workers[worker] = self._make_worker(worker)
        old.shutdown(wait=False)

    def clear_pending(self, worker: int) -> None:
        """No per-worker stream state to reset (futures are per-frame)."""

    def stats(self) -> dict:
        return {}

    def close(self) -> None:
        for executor in self._workers:
            executor.shutdown(wait=True)
        self._futures.clear()


class ShardedService(FlatShardedBase):
    """Serve the §5 scheme from per-shard single-threaded workers.

    Results (distance, method, probes) are identical to
    :class:`~repro.core.parallel.PartitionedOracle`.  Distances and
    methods also match the single-machine oracle, except that fallback
    is disabled for the same reason the simulation disables it (a
    fallback search needs the input graph, which no shard holds).
    Probe counts and witnesses can differ from the single-machine
    oracle under kernels other than ``boundary-source``: the §5 scheme
    always ships the *source's* boundary to ``shard(t)``, whereas e.g.
    the default ``boundary-smaller`` kernel scans whichever boundary
    is smaller.

    Args:
        index: a built :class:`~repro.core.index.VicinityIndex`, or
            ``None`` with ``flat=`` (see :meth:`from_saved`).
        num_shards: shard count (one worker thread per shard replica).
        placement: ``"hash"`` or ``"range"`` node placement.
        replicate_tables: copy every landmark table onto every shard,
            trading memory for one round trip on landmark-target hits.
        flat: a prepared :class:`~repro.core.flat.FlatIndex`.
        sub_batch: request-frame chunk size (0 = one frame per shard
            per batch).
        replicas: worker threads per shard with load-aware routing —
            under the GIL this buys routing realism, not speed.
        transport: must be ``"inline"`` (the only thread-backend plane).
        kernels: kernel tier (``"numpy"``/``"native"``/``None`` = auto).
        supervise: enable deadline/retry/failover supervision (``True``
            or a :class:`~repro.service.supervisor.SupervisorConfig`).
            Worker threads cannot crash, but they *can* wedge — a
            "restart" here swaps the worker's executor for a fresh one.
        recv_deadline_s: unsupervised per-sub-batch deadline.
    """

    def __init__(
        self,
        index,
        num_shards: int,
        *,
        placement: str = "hash",
        replicate_tables: bool = False,
        flat=None,
        sub_batch: int = 0,
        replicas: int = 1,
        transport: str = "inline",
        kernels=None,
        supervise=None,
        recv_deadline_s=None,
    ) -> None:
        if transport != "inline":
            raise QueryError(
                f"the threads backend only supports the inline transport "
                f"plane, not {transport!r}"
            )
        super().__init__(
            index,
            num_shards,
            placement=placement,
            replicate_tables=replicate_tables,
            flat=flat,
            sub_batch=sub_batch,
            replicas=replicas,
            kernels=kernels,
            supervise=supervise,
            recv_deadline_s=recv_deadline_s,
        )
        # One engine shared by every worker thread, so the per-worker
        # scratch-buffer reuse stays off here (frames must keep their
        # own result columns when several threads fill them at once).
        self._engine = ShardQueryEngine(self.flat, self._assign, replicate_tables)
        self._transport = InlineTransport(
            self._engine, num_shards * self.replicas
        )
        self._start_supervisor()

    # ------------------------------------------------------------------
    # supervision hooks (threads cannot die; wedges get fresh executors)
    # ------------------------------------------------------------------
    def kill_worker(self, worker: int) -> None:
        self._transport.reset_worker(worker)

    def restart_worker(self, worker: int) -> bool:
        # kill_worker already swapped in a fresh executor; the slot is
        # serviceable again the moment it is re-picked.
        return True

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the shard worker threads."""
        if self._closed:
            return
        self._closed = True
        self._stop_supervisor()
        self._transport.close()

    def __enter__(self) -> "ShardedService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
