"""Fixed-dtype wire frames for the shard data plane.

The pre-refactor coordinator↔worker exchange pickled a tuple of
``QueryResult`` objects per call — the dominant cost of the procpool
backend on small-graph workloads (the committed smoke showed both shard
backends at a third of the single-engine throughput).  This module
replaces that with *frames*: flat numpy columns with a tiny int64
header, encoded **once per sub-batch** and decoded once on the
coordinator, so no transport ever serialises per pair again.

* :class:`RequestFrame` — ``(seq, with_path)`` plus an ``(m, 2)`` int64
  pair array.
* :class:`ResponseFrame` — per-pair distance / method-code / witness /
  probes columns, a variable-length path segment (``path_len`` +
  concatenated ``path_nodes``), the §5 wire-accounting trip sizes, the
  local/remote split, worker execute time, and (optionally) the
  fixed-slot worker-cache counters.  Built from results with
  :meth:`ResponseFrame.from_results`; turned back into
  :class:`~repro.core.oracle.QueryResult` objects with
  :meth:`ResponseFrame.to_results`.

Frames travel three ways, all byte-identical in what they decode to:
passed by reference (the thread backend's inline transport — the
arrays are zero-copy views), as one ``to_bytes()`` blob down a pipe
(the procpool ``pipe`` plane), or through a shared-memory result ring
(the ``ring`` plane, no serialisation machinery at all).  Every column
is a fixed dtype, so ``to_bytes``/``from_bytes`` are a handful of
buffer copies regardless of batch size.

Sequence numbers make the frames *retry-safe*: the coordinator draws
``seq`` from one monotonic counter, so a re-dispatched sub-batch always
carries a strictly larger sequence number than the exchange it
replaces.  A late response from an abandoned exchange therefore decodes
with ``seq`` *below* everything still awaited and is discarded by the
stream transports' stale-frame rule, while truncated or garbled frames
fail the size validation in ``from_bytes`` and surface as
:class:`~repro.exceptions.SerializationError` — both of which the
supervision layer converts into a retry instead of a wrong answer.

Distances ride as float64 (NaN = unanswered); the decoder restores the
engine's exact Python types — ``int`` for integral-distance indexes,
``float`` otherwise, and the literal ``int 0`` of the ``identical``
lane — so decoded results compare equal, field for field, with what
the engine object itself returned.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.oracle import (  # noqa: F401 - re-exported wire vocabulary
    METHOD_CODE,
    METHOD_NAME,
    METHODS,
    QueryResult,
)
from repro.exceptions import SerializationError

_I8 = np.dtype(np.int64)
_REQ_WORDS = 4
_RESP_WORDS = 16
_REQ_HDR_BYTES = _REQ_WORDS * 8
_RESP_HDR_BYTES = _RESP_WORDS * 8

#: Worker-cache counters carried in the response header's fixed slots
#: (exactly the fields the coordinator's aggregation reads).
CACHE_STAT_FIELDS = (
    "size", "lookups", "hits", "misses", "insertions", "evictions",
)

_EMPTY_I8 = np.zeros(0, dtype=np.int64)
_STATUS_OK = 0
_STATUS_ERROR = 1
_IDENTICAL_CODE = METHOD_CODE["identical"]


class RequestFrame:
    """One coordinator -> worker sub-batch: a pair array plus flags."""

    __slots__ = ("seq", "pairs", "with_path")

    def __init__(self, seq: int, pairs, with_path: bool) -> None:
        self.seq = int(seq)
        self.pairs = np.ascontiguousarray(pairs, dtype=np.int64).reshape(-1, 2)
        self.with_path = bool(with_path)

    @property
    def nbytes(self) -> int:
        """Encoded size (what the transport puts on the wire)."""
        return _REQ_HDR_BYTES + self.pairs.nbytes

    def pair_list(self) -> list:
        """The pairs as a list of ``(s, t)`` int tuples (engine input)."""
        return [tuple(p) for p in self.pairs.tolist()]

    def to_bytes(self) -> bytes:
        header = np.array(
            [self.seq, self.pairs.shape[0], 1 if self.with_path else 0, 0],
            dtype=np.int64,
        )
        return header.tobytes() + self.pairs.tobytes()

    @classmethod
    def from_bytes(cls, buf) -> "RequestFrame":
        if len(buf) < _REQ_HDR_BYTES:
            raise SerializationError(
                f"request frame truncated: {len(buf)} bytes is shorter "
                f"than the {_REQ_HDR_BYTES}-byte header"
            )
        header = np.frombuffer(buf, dtype=np.int64, count=_REQ_WORDS)
        m = int(header[1])
        expected = _REQ_HDR_BYTES + m * 16
        if m < 0 or len(buf) != expected:
            raise SerializationError(
                f"request frame corrupt: header promises {m} pairs "
                f"({expected} bytes) but the frame is {len(buf)} bytes"
            )
        pairs = np.frombuffer(
            buf, dtype=np.int64, count=m * 2, offset=_REQ_HDR_BYTES
        ).reshape(m, 2)
        return cls(int(header[0]), pairs, bool(header[2] & 1))


class ResponseFrame:
    """One worker -> coordinator sub-batch result: flat result columns.

    ``status`` is :data:`_STATUS_OK` for answered frames (columns
    populated) or :data:`_STATUS_ERROR` (``error`` carries the worker's
    exception string; columns are empty).
    """

    __slots__ = (
        "seq", "status", "error", "local", "remote", "exec_ns",
        "dist", "method", "witness", "probes", "path_len", "path_nodes",
        "trips", "cache_stats", "_wire_bytes",
    )

    def __init__(
        self,
        seq: int,
        *,
        status: int = _STATUS_OK,
        error: str = "",
        local: int = 0,
        remote: int = 0,
        exec_ns: int = 0,
        dist=None,
        method=None,
        witness=None,
        probes=None,
        path_len=None,
        path_nodes=None,
        trips=None,
        cache_stats: Optional[dict] = None,
        wire_bytes: Optional[int] = None,
    ) -> None:
        self.seq = int(seq)
        self.status = int(status)
        self.error = error
        self.local = int(local)
        self.remote = int(remote)
        self.exec_ns = int(exec_ns)
        self.dist = dist if dist is not None else np.zeros(0, dtype=np.float64)
        self.method = method if method is not None else np.zeros(0, dtype=np.uint8)
        self.witness = witness if witness is not None else _EMPTY_I8
        self.probes = probes if probes is not None else _EMPTY_I8
        self.path_len = path_len if path_len is not None else _EMPTY_I8
        self.path_nodes = path_nodes if path_nodes is not None else _EMPTY_I8
        self.trips = trips if trips is not None else _EMPTY_I8
        self.cache_stats = cache_stats
        self._wire_bytes = wire_bytes

    @property
    def ok(self) -> bool:
        return self.status == _STATUS_OK

    @property
    def count(self) -> int:
        return int(self.dist.shape[0])

    @property
    def nbytes(self) -> int:
        """Encoded size; the inline transport computes it without encoding."""
        if self._wire_bytes is not None:
            return self._wire_bytes
        if not self.ok:
            return _RESP_HDR_BYTES + len(self.error.encode("utf-8"))
        return (
            _RESP_HDR_BYTES
            + self.dist.nbytes + self.witness.nbytes + self.probes.nbytes
            + self.path_len.nbytes + self.path_nodes.nbytes
            + self.trips.nbytes + self.method.nbytes
        )

    # ------------------------------------------------------------------
    # encode
    # ------------------------------------------------------------------
    @classmethod
    def error_frame(cls, seq: int, message: str) -> "ResponseFrame":
        return cls(seq, status=_STATUS_ERROR, error=message)

    @classmethod
    def from_results(
        cls,
        seq: int,
        results,
        local: int,
        remote: int,
        trips,
        *,
        cache_stats: Optional[dict] = None,
        exec_ns: int = 0,
    ) -> "ResponseFrame":
        """Encode a worker batch outcome into flat columns, once."""
        m = len(results)
        dist = np.empty(m, dtype=np.float64)
        method = np.empty(m, dtype=np.uint8)
        witness = np.empty(m, dtype=np.int64)
        probes = np.empty(m, dtype=np.int64)
        path_len = np.full(m, -1, dtype=np.int64)
        nodes: list[int] = []
        for i, r in enumerate(results):
            dist[i] = np.nan if r.distance is None else r.distance
            method[i] = METHOD_CODE[r.method]
            witness[i] = -1 if r.witness is None else r.witness
            probes[i] = r.probes
            if r.path is not None:
                path_len[i] = len(r.path)
                nodes.extend(r.path)
        return cls(
            seq,
            local=local,
            remote=remote,
            exec_ns=exec_ns,
            dist=dist,
            method=method,
            witness=witness,
            probes=probes,
            path_len=path_len,
            path_nodes=np.asarray(nodes, dtype=np.int64),
            trips=np.asarray(list(trips), dtype=np.int64),
            cache_stats=cache_stats,
        )

    @classmethod
    def from_columns(
        cls,
        seq: int,
        *,
        dist,
        method,
        witness,
        probes,
        local: int,
        remote: int,
        trips,
        exec_ns: int = 0,
    ) -> "ResponseFrame":
        """Wrap ready-made result columns (the shard worker's
        column-native no-path lane) — no result objects ever exist."""
        return cls(
            seq,
            local=local,
            remote=remote,
            exec_ns=exec_ns,
            dist=dist,
            method=method,
            witness=witness,
            probes=probes,
            path_len=np.full(dist.shape[0], -1, dtype=np.int64),
            path_nodes=_EMPTY_I8,
            trips=np.ascontiguousarray(trips, dtype=np.int64),
        )

    def to_bytes(self) -> bytes:
        header = np.zeros(_RESP_WORDS, dtype=np.int64)
        header[0] = self.seq
        header[1] = self.status
        if not self.ok:
            payload = self.error.encode("utf-8")
            header[6] = len(payload)
            return header.tobytes() + payload
        header[2] = self.count
        header[3] = self.local
        header[4] = self.remote
        header[5] = self.trips.shape[0]
        header[6] = self.path_nodes.shape[0]
        header[7] = 0
        header[8] = self.exec_ns
        if self.cache_stats is not None:
            header[9] = 1
            for slot, field in enumerate(CACHE_STAT_FIELDS):
                header[10 + slot] = int(self.cache_stats.get(field, 0))
        # 8-byte-wide columns first, the uint8 method column last, so
        # every frombuffer view on the other side is naturally aligned.
        return b"".join(
            (
                header.tobytes(),
                np.ascontiguousarray(self.dist).tobytes(),
                np.ascontiguousarray(self.witness, dtype=np.int64).tobytes(),
                np.ascontiguousarray(self.probes, dtype=np.int64).tobytes(),
                np.ascontiguousarray(self.path_len, dtype=np.int64).tobytes(),
                np.ascontiguousarray(self.path_nodes, dtype=np.int64).tobytes(),
                np.ascontiguousarray(self.trips, dtype=np.int64).tobytes(),
                np.ascontiguousarray(self.method, dtype=np.uint8).tobytes(),
            )
        )

    @classmethod
    def from_bytes(cls, buf) -> "ResponseFrame":
        # Validate the advertised layout against the actual byte count
        # before building any column view: a worker that died mid-push,
        # or a fault-injected garbled frame, must surface as a typed
        # error the supervisor can act on — never as silently wrong
        # columns.  The retry path depends on this: only frames that
        # decode cleanly are trusted, everything else is re-dispatched.
        if len(buf) < _RESP_HDR_BYTES:
            raise SerializationError(
                f"response frame truncated: {len(buf)} bytes is shorter "
                f"than the {_RESP_HDR_BYTES}-byte header"
            )
        header = np.frombuffer(buf, dtype=np.int64, count=_RESP_WORDS)
        seq, status = int(header[0]), int(header[1])
        if status != _STATUS_OK:
            size = int(header[6])
            if status != _STATUS_ERROR or size < 0 or (
                len(buf) != _RESP_HDR_BYTES + size
            ):
                raise SerializationError(
                    f"response frame corrupt: bad status/size "
                    f"({status}/{size}) for a {len(buf)}-byte frame"
                )
            message = bytes(
                memoryview(buf)[_RESP_HDR_BYTES:_RESP_HDR_BYTES + size]
            ).decode("utf-8", "replace")
            return cls(seq, status=status, error=message, wire_bytes=len(buf))
        m = int(header[2])
        n_trips = int(header[5])
        n_nodes = int(header[6])
        expected = _RESP_HDR_BYTES + 32 * m + 8 * (n_nodes + n_trips) + m
        if min(m, n_trips, n_nodes) < 0 or len(buf) != expected:
            raise SerializationError(
                f"response frame corrupt: header promises {m} results, "
                f"{n_nodes} path nodes and {n_trips} trips "
                f"({expected} bytes) but the frame is {len(buf)} bytes"
            )
        offset = _RESP_HDR_BYTES

        def column(dtype, count):
            nonlocal offset
            arr = np.frombuffer(buf, dtype=dtype, count=count, offset=offset)
            offset += arr.nbytes
            return arr

        dist = column(np.float64, m)
        witness = column(np.int64, m)
        probes = column(np.int64, m)
        path_len = column(np.int64, m)
        path_nodes = column(np.int64, n_nodes)
        trips = column(np.int64, n_trips)
        method = column(np.uint8, m)
        cache_stats = None
        if header[9]:
            cache_stats = {
                field: int(header[10 + slot])
                for slot, field in enumerate(CACHE_STAT_FIELDS)
            }
        return cls(
            seq,
            local=int(header[3]),
            remote=int(header[4]),
            exec_ns=int(header[8]),
            dist=dist,
            method=method,
            witness=witness,
            probes=probes,
            path_len=path_len,
            path_nodes=path_nodes,
            trips=trips,
            cache_stats=cache_stats,
            wire_bytes=len(buf),
        )

    # ------------------------------------------------------------------
    # decode
    # ------------------------------------------------------------------
    def to_results(
        self,
        pairs,
        *,
        integral: bool,
        result_cls=QueryResult,
    ) -> list[QueryResult]:
        """Rebuild the :class:`QueryResult` list this frame encodes.

        ``pairs`` is the same ``(m, 2)`` array / pair list the matching
        request carried (sources and targets are not echoed on the
        wire).  Decoded fields reproduce the engine's exact Python
        types, so results compare equal across transports.
        """
        if not self.ok:
            raise SerializationError(
                f"cannot decode an error frame: {self.error}"
            )
        m = self.count
        if len(pairs) != m:
            raise SerializationError(
                f"frame carries {m} results for {len(pairs)} pairs"
            )
        nodes = self.path_nodes
        names = METHODS
        results: list[QueryResult] = []
        append = results.append
        cursor = 0
        isnan = math.isnan
        identical_code = _IDENTICAL_CODE
        for (s, t), d, code, w, p, n_path in zip(
            pairs, self.dist.tolist(), self.method.tolist(),
            self.witness.tolist(), self.probes.tolist(),
            self.path_len.tolist(),
        ):
            if isnan(d):
                value = None
            elif code == identical_code:
                value = 0  # the identical lane returns int 0 even when weighted
            else:
                value = int(d) if integral else float(d)
            path = None
            if n_path >= 0:
                path = nodes[cursor:cursor + n_path].tolist()
                cursor += n_path
            append(result_cls(
                int(s), int(t), value, path, names[code],
                None if w < 0 else w, p,
            ))
        return results
