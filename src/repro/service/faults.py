"""Deterministic, seedable fault injection for the shard serving plane.

Chaos testing only earns its keep when a failure reproduces: this
module describes worker faults as *data* — a picklable, JSON-able
:class:`FaultPlan` keyed by worker id — and executes them at exact
frame indices inside the worker loop, so a run with the same plan and
the same workload fails in exactly the same place every time.

Supported fault kinds (per worker, ``"*"`` applies to all):

* ``kill_after_frames`` — the worker SIGKILLs itself upon *receiving*
  frame N, i.e. mid-frame: the request is consumed, no response is
  ever produced.  This is the hard crash the supervisor must convert
  into a failover or a restart.
* ``stall_at_frame`` / ``stall_s`` — the worker sleeps before
  answering frame N: wedged-but-alive, observable only through the
  sub-batch deadline.
* ``slow_s`` — added latency on every frame (a slow replica, for
  exercising load-aware routing under asymmetric replicas).
* ``jitter_s`` — *deterministic* per-frame latency jitter: each frame
  sleeps ``jitter_s * frac(worker, index)`` where ``frac`` is a hash of
  the (worker, frame-index) pair — the latency profile of a run is a
  pure function of the plan and the workload, so an SLO regression
  reproduces exactly.
* ``corrupt_at_frame`` — the response frame is truncated on the wire;
  the coordinator's size-validated decode turns it into a typed
  worker fault.
* ``stale_at_frame`` — a duplicate response with a stale sequence
  number precedes the real one; the stream transports must discard it.

By default a rule applies only to worker *generation* 0 — a restarted
worker comes back clean, so "kill once" scenarios converge.  Set
``every_generation=True`` for sustained churn (the worker re-kills
itself after every restart), which is what ``bench_chaos.py`` drives.

Plans thread through both procpool transport planes identically: the
spec rides in the worker ``meta`` dict, and the injector wraps the
frame loop in ``_worker_main`` — transport-agnostic by construction.
``repro-paths serve --inject-faults <plan>`` accepts the same specs
for manual drills (a JSON object, or the named presets of
:meth:`FaultPlan.parse`).
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import time
from dataclasses import dataclass
from typing import Mapping, Optional, Union

import numpy as np

from repro.exceptions import QueryError

_FIELD_NAMES = None  # populated after WorkerFaults is defined


@dataclass
class WorkerFaults:
    """The fault rule for one worker (or the ``"*"`` wildcard).

    Frame indices are 1-based and count *received* frames, per worker
    generation.  All fields are optional; an all-default rule is a
    no-op.
    """

    kill_after_frames: Optional[int] = None
    stall_at_frame: Optional[int] = None
    stall_s: float = 0.0
    slow_s: float = 0.0
    jitter_s: float = 0.0
    corrupt_at_frame: Optional[int] = None
    stale_at_frame: Optional[int] = None
    every_generation: bool = False

    def active(self, generation: int) -> bool:
        return generation == 0 or self.every_generation


_FIELD_NAMES = tuple(f.name for f in dataclasses.fields(WorkerFaults))


class FaultInjector:
    """Executes one :class:`WorkerFaults` rule inside a worker loop."""

    def __init__(self, rule: WorkerFaults, worker: int, generation: int) -> None:
        self.rule = rule
        self.worker = worker
        self.generation = generation

    @classmethod
    def from_spec(
        cls, spec: Optional[Mapping], worker: int, generation: int
    ) -> Optional["FaultInjector"]:
        """Build a worker's injector from a plan spec, or ``None``."""
        if not spec:
            return None
        plan = FaultPlan.from_spec(spec)
        rule = plan.rule_for(worker)
        if rule is None or not rule.active(generation):
            return None
        return cls(rule, worker, generation)

    def before_frame(self, index: int) -> None:
        """Run receive-side faults for 1-based frame ``index``."""
        rule = self.rule
        if rule.slow_s > 0:
            time.sleep(rule.slow_s)
        if rule.jitter_s > 0:
            time.sleep(rule.jitter_s * jitter_fraction(self.worker, index))
        if rule.stall_at_frame is not None and index == rule.stall_at_frame:
            if rule.stall_s > 0:
                time.sleep(rule.stall_s)
        if rule.kill_after_frames is not None and index >= rule.kill_after_frames:
            # A real SIGKILL, not an exception: the request frame is
            # consumed and no response will ever be pushed — the
            # harshest mid-frame death the coordinator can observe.
            os.kill(os.getpid(), signal.SIGKILL)

    def outgoing(self, payload: bytes, index: int) -> list[bytes]:
        """The wire payload(s) to send for frame ``index``'s response."""
        rule = self.rule
        out: list[bytes] = []
        if rule.stale_at_frame is not None and index == rule.stale_at_frame:
            # A duplicate of the response wearing sequence number 0 —
            # below every sequence the coordinator will ever await, so
            # the stale-frame rule must discard it.
            out.append(_with_seq(payload, 0))
        if rule.corrupt_at_frame is not None and index == rule.corrupt_at_frame:
            out.append(payload[: max(1, len(payload) // 2)])
        else:
            out.append(payload)
        return out


class FaultPlan:
    """A deterministic map of worker id -> fault rule.

    ``rules`` keys are worker ids (int or str) or ``"*"``; values are
    :class:`WorkerFaults` or plain mappings of their fields.  ``seed``
    is carried for workload-side determinism (the chaos bench feeds it
    to its pair generator) — frame-indexed rules need no randomness of
    their own.
    """

    def __init__(
        self,
        rules: Mapping[Union[int, str], Union[WorkerFaults, Mapping]],
        *,
        seed: int = 0,
    ) -> None:
        self.seed = int(seed)
        self.rules: dict[str, WorkerFaults] = {}
        for key, value in rules.items():
            if not isinstance(value, WorkerFaults):
                unknown = set(value) - set(_FIELD_NAMES)
                if unknown:
                    raise QueryError(
                        f"unknown fault fields {sorted(unknown)}; "
                        f"valid fields: {list(_FIELD_NAMES)}"
                    )
                value = WorkerFaults(**value)
            self.rules[str(key)] = value

    # ------------------------------------------------------------------
    # worker-side lookup
    # ------------------------------------------------------------------
    def rule_for(self, worker: int) -> Optional[WorkerFaults]:
        rule = self.rules.get(str(worker))
        if rule is None:
            rule = self.rules.get("*")
        return rule

    def injector(self, worker: int, generation: int) -> Optional[FaultInjector]:
        rule = self.rule_for(worker)
        if rule is None or not rule.active(generation):
            return None
        return FaultInjector(rule, worker, generation)

    # ------------------------------------------------------------------
    # (de)serialisation — the spec travels in the worker meta dict
    # ------------------------------------------------------------------
    def spec(self) -> dict:
        return {
            "seed": self.seed,
            "rules": {
                key: dataclasses.asdict(rule) for key, rule in self.rules.items()
            },
        }

    @classmethod
    def from_spec(cls, spec: Mapping) -> "FaultPlan":
        return cls(spec.get("rules", {}), seed=spec.get("seed", 0))

    @classmethod
    def coerce(cls, value) -> Optional["FaultPlan"]:
        """Normalise a constructor argument into a plan (or ``None``)."""
        if value is None or isinstance(value, FaultPlan):
            return value
        if isinstance(value, str):
            return cls.parse(value)
        if isinstance(value, Mapping):
            if "rules" in value:
                return cls.from_spec(value)
            return cls(value)
        raise QueryError(
            f"cannot build a FaultPlan from {type(value).__name__!r}"
        )

    # ------------------------------------------------------------------
    # CLI / preset parsing
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a CLI fault spec: a JSON object or a named preset.

        Presets:

        * ``churn[:N]`` — every worker kills itself after N frames
          (default 20), in every generation: sustained worker churn.
        * ``kill:W[:N]`` — worker W dies upon receiving frame N
          (default 1), once.
        * ``dark:W[:N]`` — like ``kill`` but in every generation, so
          the worker stays dark through restarts (breaker drills).
        * ``stall:W[:N[:S]]`` — worker W stalls S seconds (default 30)
          before answering frame N (default 1), once.
        * ``delay:W[:MS]`` — worker W (or ``*`` for all) adds MS
          milliseconds (default 1) to *every* frame, in every
          generation: a persistently slow replica for SLO drills.
        * ``jitter:W[:MS]`` — like ``delay`` but each frame sleeps a
          deterministic hash-derived fraction of MS (see
          :func:`jitter_fraction`): a noisy tail, reproducibly.

        JSON objects map worker ids (or ``"*"``) to rule fields, e.g.
        ``{"0": {"kill_after_frames": 5}, "*": {"slow_s": 0.001}}``.
        """
        text = text.strip()
        if text.startswith("{"):
            try:
                return cls.coerce(json.loads(text))
            except json.JSONDecodeError as exc:
                raise QueryError(f"bad fault-plan JSON: {exc}") from None
        parts = text.split(":")
        name, args = parts[0], parts[1:]
        try:
            if name == "churn":
                frames = int(args[0]) if args else 20
                return cls({"*": WorkerFaults(
                    kill_after_frames=frames, every_generation=True,
                )})
            if name in ("kill", "dark"):
                worker = int(args[0])
                frames = int(args[1]) if len(args) > 1 else 1
                return cls({worker: WorkerFaults(
                    kill_after_frames=frames,
                    every_generation=(name == "dark"),
                )})
            if name == "stall":
                worker = int(args[0])
                frames = int(args[1]) if len(args) > 1 else 1
                seconds = float(args[2]) if len(args) > 2 else 30.0
                return cls({worker: WorkerFaults(
                    stall_at_frame=frames, stall_s=seconds,
                )})
            if name in ("delay", "jitter"):
                worker = args[0] if args[0] == "*" else int(args[0])
                ms = float(args[1]) if len(args) > 1 else 1.0
                seconds = ms / 1e3
                rule = (
                    WorkerFaults(slow_s=seconds, every_generation=True)
                    if name == "delay"
                    else WorkerFaults(jitter_s=seconds, every_generation=True)
                )
                return cls({worker: rule})
        except (IndexError, ValueError):
            raise QueryError(f"bad fault-plan spec {text!r}") from None
        raise QueryError(
            f"unknown fault preset {name!r}; "
            f"use churn/kill/dark/stall/delay/jitter or a JSON object"
        )


def jitter_fraction(worker: int, index: int) -> float:
    """Deterministic uniform-ish fraction in ``[0, 1)`` per (worker, frame).

    A tiny integer hash (SplitMix-style avalanche) over the pair, so
    two runs of the same plan and workload sleep the same amount on the
    same frame — randomness without a seed to lose.
    """
    h = (index * 0x9E3779B1 + worker * 0x85EBCA77 + 1) & 0xFFFFFFFF
    h ^= h >> 16
    h = (h * 0x45D9F3B) & 0xFFFFFFFF
    h ^= h >> 16
    return h / 2**32


def _with_seq(payload: bytes, seq: int) -> bytes:
    """A copy of an encoded response frame wearing a different seq."""
    return np.int64(seq).tobytes() + payload[8:]
