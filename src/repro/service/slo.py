"""End-to-end request deadlines and the SLO-driven degrade ladder.

The paper's headline is a latency promise; this module is the layer
that *enforces* one.  Three pieces compose:

* :class:`Deadline` — a per-request budget carried from the network
  edge down through the coalescer, the batch executor and the shard
  coordinator.  Every blocking wait along the way clamps to the
  remaining budget instead of its own static timeout.
* :class:`CompletionPredictor` — an EWMA + reservoir-quantile model of
  how long a request admitted *now* will take to complete (queue drain
  at the observed per-item service rate plus an execute-time tail).
  Per-stage budget accounting (:data:`STAGES`) feeds it from the
  coalescer's dispatch loop.
* :class:`SloController` — the policy object gluing both to the
  configurable **degrade ladder**: when predicted (or observed)
  completion exceeds the residual budget the request walks
  ``exact -> estimate -> shed`` — answered exactly, answered from the
  landmark triangulation bound (``method="estimate"``,
  ``"degraded": true``), or rejected with an honest
  ``retry_after_ms`` hint.  An optional :class:`AIMDLimiter` replaces
  the front end's static soft admission limit with an adaptive window
  (additive increase on met deadlines, multiplicative decrease on
  misses), the static hard limit staying as the backstop.

Everything takes an injectable ``clock`` so deadline propagation is
testable with a fake clock, and every counter lands in the
``"slo"`` block of the net snapshot (and, for the shard coordinator's
budget accounting, in ``transport_stats()["slo"]``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.exceptions import QueryError
from repro.service.telemetry import LatencyHistogram

#: Pipeline stages a request's budget is spent in, in order.  Stage
#: EWMAs and per-stage deadline-miss counters are keyed by these names.
STAGES = ("queue", "coalesce", "dispatch", "execute", "collect")

#: Every rung the degrade ladder may contain, in severity order.
LADDER_RUNGS = ("exact", "estimate", "shed")

#: The default ladder: exact answer, landmark estimate, shed.
DEFAULT_LADDER = ("exact", "estimate", "shed")


def parse_ladder(text) -> tuple:
    """Parse a ``--degrade-ladder`` spec like ``"exact,estimate,shed"``.

    The ladder must start at ``exact``, contain no duplicates, and use
    only the known rungs; ``shed`` is always the implicit terminal rung
    even when omitted (a request that falls off the ladder is shed).
    """
    if isinstance(text, (tuple, list)):
        rungs = tuple(text)
    else:
        rungs = tuple(part.strip() for part in str(text).split(",") if part.strip())
    if not rungs:
        raise QueryError("degrade ladder must name at least one rung")
    unknown = [rung for rung in rungs if rung not in LADDER_RUNGS]
    if unknown:
        raise QueryError(
            f"unknown degrade-ladder rung(s) {unknown}; valid: {list(LADDER_RUNGS)}"
        )
    if len(set(rungs)) != len(rungs):
        raise QueryError(f"degrade ladder repeats a rung: {list(rungs)}")
    if rungs[0] != "exact":
        raise QueryError("degrade ladder must start with 'exact'")
    return rungs


class Deadline:
    """One request's absolute completion deadline.

    Created at admission from a millisecond budget; every layer below
    asks :meth:`remaining` (or :meth:`clamp`) instead of carrying the
    budget by value, so time spent in *any* stage is automatically
    charged against the stages after it.
    """

    __slots__ = ("budget_s", "expires_at", "clock")

    def __init__(self, budget_s: float, *, clock=time.monotonic) -> None:
        self.budget_s = float(budget_s)
        self.clock = clock
        self.expires_at = clock() + self.budget_s

    def remaining(self) -> float:
        """Seconds of budget left (negative once expired)."""
        return self.expires_at - self.clock()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def elapsed(self) -> float:
        """Seconds spent since admission."""
        return self.budget_s - self.remaining()

    def clamp(self, timeout: Optional[float]) -> float:
        """Clamp a stage timeout to the remaining budget (floor 1 ms)."""
        residual = max(self.remaining(), 1e-3)
        if timeout is None:
            return residual
        return min(timeout, residual)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(budget_s={self.budget_s}, remaining={self.remaining():.4f})"


class CompletionPredictor:
    """EWMA + quantile model of time-to-completion for a new request.

    Two signals feed it from the dispatch loop: per-batch execute times
    (tail quantile plus a per-item EWMA) and whole-request completion
    times.  :meth:`predict_s` combines them — queue drain at the
    per-item rate plus one execute tail — which is what an admission
    decision needs: "if I enqueue this now, when does it answer?".
    """

    def __init__(
        self, *, quantile: float = 99.0, alpha: float = 0.2, reservoir: int = 2048
    ) -> None:
        self.quantile = float(quantile)
        self.alpha = float(alpha)
        self.ewma_item_s = 0.0
        self.ewma_execute_s = 0.0
        self.execute = LatencyHistogram(reservoir)
        self.completion = LatencyHistogram(reservoir)

    def observe_execute(self, elapsed_s: float, items: int) -> None:
        """Record one dispatched batch's execute time."""
        elapsed_s = max(0.0, float(elapsed_s))
        self.execute.observe(elapsed_s)
        share = elapsed_s / items if items else 0.0
        self.ewma_item_s = self._fold(self.ewma_item_s, share)
        self.ewma_execute_s = self._fold(self.ewma_execute_s, elapsed_s)

    def observe_completion(self, elapsed_s: float) -> None:
        """Record one request's admission-to-response time."""
        self.completion.observe(max(0.0, float(elapsed_s)))

    def _fold(self, ewma: float, sample: float) -> float:
        if ewma == 0.0:
            return sample
        return (1.0 - self.alpha) * ewma + self.alpha * sample

    def execute_tail_s(self) -> float:
        """Pessimistic single-batch execute time (quantile vs EWMA max)."""
        return max(self.ewma_execute_s, self.execute.percentile(self.quantile))

    def predict_s(self, depth: int = 0) -> float:
        """Predicted completion time for a request admitted at ``depth``.

        Cold (no samples yet) this is 0.0 — admit everything until the
        model has data.
        """
        return depth * self.ewma_item_s + self.execute_tail_s()

    def snapshot(self) -> dict:
        return {
            "ewma_item_us": self.ewma_item_s * 1e6,
            "execute_tail_ms": self.execute_tail_s() * 1e3,
            "completion_p99_ms": self.completion.percentile(99.0) * 1e3,
            "samples": self.execute.count,
        }


class AIMDLimiter:
    """Adaptive concurrency window: additive increase, multiplicative decrease.

    Replaces the static soft admission limit: met deadlines grow the
    window by ``increase / window`` (one unit per window of successes,
    TCP-style), a miss or shed multiplies it by ``decrease`` — at most
    once per ``cooldown_s``, so one slow batch's worth of misses counts
    as a single congestion signal rather than collapsing the window to
    the floor.
    """

    def __init__(
        self,
        *,
        initial: float,
        floor: int = 16,
        ceiling: Optional[float] = None,
        increase: float = 1.0,
        decrease: float = 0.5,
        cooldown_s: float = 0.05,
        clock=time.monotonic,
    ) -> None:
        if floor < 1:
            raise QueryError("limiter floor must be at least 1")
        if not 0.0 < decrease < 1.0:
            raise QueryError("limiter decrease must be in (0, 1)")
        if increase <= 0:
            raise QueryError("limiter increase must be positive")
        self.floor = int(floor)
        self.ceiling = float(ceiling) if ceiling is not None else 4.0 * float(initial)
        if self.ceiling < self.floor:
            raise QueryError("limiter ceiling must be >= floor")
        self.increase = float(increase)
        self.decrease = float(decrease)
        self.cooldown_s = float(cooldown_s)
        self.clock = clock
        self._limit = min(max(float(initial), self.floor), self.ceiling)
        self._last_decrease: Optional[float] = None
        self.increases = 0
        self.decreases = 0

    @property
    def limit(self) -> int:
        """The current admission window, in requests."""
        return max(self.floor, int(self._limit))

    def on_ok(self) -> None:
        """One request met its deadline: grow additively."""
        self._limit = min(
            self.ceiling, self._limit + self.increase / max(self._limit, 1.0)
        )
        self.increases += 1

    def on_miss(self) -> None:
        """A deadline miss or shed: shrink multiplicatively (cooled down)."""
        now = self.clock()
        if (
            self._last_decrease is not None
            and now - self._last_decrease < self.cooldown_s
        ):
            return
        self._last_decrease = now
        self._limit = max(float(self.floor), self._limit * self.decrease)
        self.decreases += 1

    def snapshot(self) -> dict:
        return {
            "limit": self.limit,
            "floor": self.floor,
            "ceiling": self.ceiling,
            "increases": self.increases,
            "decreases": self.decreases,
        }


@dataclass
class SloConfig:
    """Knobs of the deadline/SLO layer (durations in milliseconds).

    Attributes:
        default_deadline_ms: budget applied to requests that carry no
            ``deadline_ms`` of their own; ``None`` means requests
            without an explicit deadline run without one (today's
            semantics, byte for byte).
        slo_p99_ms: target p99 completion time.  With the adaptive
            limiter on, completions above this target count as
            congestion signals even when the request's own deadline was
            met.
        ladder: the degrade ladder (see :func:`parse_ladder`).
        adaptive_limit: replace the static soft limit with an
            :class:`AIMDLimiter` (the hard limit stays the backstop).
        limit_floor: the adaptive window's floor.
        limit_increase / limit_decrease / limit_cooldown_s: AIMD knobs.
        quantile: the predictor's execute-time tail quantile.
        probe_every: after this many *consecutive* predicted misses,
            admit one request anyway.  A pessimistic prediction is
            otherwise self-confirming: everything degrades at
            admission, nothing dispatches, and the predictor never
            sees the fresh execute sample that would let it recover.
            ``0`` disables probing.
    """

    default_deadline_ms: Optional[float] = None
    slo_p99_ms: Optional[float] = None
    ladder: tuple = DEFAULT_LADDER
    adaptive_limit: bool = False
    limit_floor: int = 16
    limit_increase: float = 1.0
    limit_decrease: float = 0.5
    limit_cooldown_s: float = 0.05
    quantile: float = 99.0
    probe_every: int = 32

    def __post_init__(self) -> None:
        if self.default_deadline_ms is not None and self.default_deadline_ms <= 0:
            raise QueryError("default_deadline_ms must be positive (or None)")
        if self.slo_p99_ms is not None and self.slo_p99_ms <= 0:
            raise QueryError("slo_p99_ms must be positive (or None)")
        if self.probe_every < 0:
            raise QueryError("probe_every must be >= 0 (0 disables probing)")
        self.ladder = parse_ladder(self.ladder)


class SloController:
    """Per-server deadline accounting, prediction and ladder policy.

    Owned by the network front end; the coalescer holds a reference for
    early-flush decisions and the adaptive soft limit.  Single-threaded
    by design (all mutation happens on the event loop; the timed
    dispatch wrapper only *reads* the clock from the executor thread).
    """

    def __init__(
        self,
        config: Optional[SloConfig] = None,
        *,
        soft_limit: Optional[int] = None,
        hard_limit: Optional[int] = None,
        clock=time.monotonic,
    ) -> None:
        self.config = config or SloConfig()
        self.clock = clock
        self.predictor = CompletionPredictor(quantile=self.config.quantile)
        self.limiter: Optional[AIMDLimiter] = None
        if self.config.adaptive_limit:
            initial = float(soft_limit) if soft_limit else 4096.0
            self.limiter = AIMDLimiter(
                initial=initial,
                floor=min(self.config.limit_floor, int(initial)),
                ceiling=float(hard_limit) if hard_limit else 4.0 * initial,
                increase=self.config.limit_increase,
                decrease=self.config.limit_decrease,
                cooldown_s=self.config.limit_cooldown_s,
                clock=clock,
            )
        self.stage_ewma_s = dict.fromkeys(STAGES, 0.0)
        self.stage_misses = dict.fromkeys(STAGES, 0)
        self.rungs = dict.fromkeys(LADDER_RUNGS, 0)
        self.deadline_requests = 0
        self.deadline_hits = 0
        self.deadline_misses = 0
        self.early_flushes = 0
        self.probes = 0
        self._miss_streak = 0

    # ------------------------------------------------------------------
    # deadlines and the ladder
    # ------------------------------------------------------------------
    def deadline_for(self, request_ms: Optional[float] = None) -> Optional[Deadline]:
        """The effective deadline for one request (``None`` = unbounded)."""
        ms = request_ms if request_ms is not None else self.config.default_deadline_ms
        if ms is None:
            return None
        return Deadline(ms / 1e3, clock=self.clock)

    def admit(self, deadline: Optional[Deadline], depth: int) -> str:
        """Admission-time ladder decision for a deadline-carrying request.

        Returns the rung the request should take *now*: ``"exact"`` to
        enqueue, or the first degrade rung when the predictor says the
        queue ahead of it already blows the budget.  Every
        ``probe_every``-th consecutive miss is admitted anyway — the
        sacrificial probe whose execute sample lets a pessimistic
        predictor climb back down (see :class:`SloConfig`).
        """
        if deadline is None:
            return "exact"
        self.deadline_requests += 1
        if self.predictor.predict_s(depth) <= deadline.remaining():
            self._miss_streak = 0
            return "exact"
        self._miss_streak += 1
        if self.config.probe_every and self._miss_streak >= self.config.probe_every:
            self._miss_streak = 0
            self.probes += 1
            return "exact"
        self.note_stage_miss("queue")
        if self.limiter is not None:
            self.limiter.on_miss()
        return self.rung_after("exact")

    def rung_after(self, rung: str) -> str:
        """The next rung down the configured ladder (``"shed"`` terminal)."""
        ladder = self.config.ladder
        try:
            index = ladder.index(rung)
        except ValueError:
            return "shed"
        if index + 1 < len(ladder):
            return ladder[index + 1]
        return "shed"

    def note_rung(self, rung: str) -> None:
        """Count the rung a deadline-carrying request finally took."""
        self.rungs[rung] = self.rungs.get(rung, 0) + 1

    # ------------------------------------------------------------------
    # stage accounting
    # ------------------------------------------------------------------
    def observe_stage(self, stage: str, seconds: float) -> None:
        ewma = self.stage_ewma_s[stage]
        seconds = max(0.0, float(seconds))
        self.stage_ewma_s[stage] = (
            seconds if ewma == 0.0 else 0.8 * ewma + 0.2 * seconds
        )

    def note_stage_miss(self, stage: str) -> None:
        self.stage_misses[stage] += 1

    def note_early_flush(self) -> None:
        self.early_flushes += 1

    def observe_execute(self, elapsed_s: float, items: int) -> None:
        self.predictor.observe_execute(elapsed_s, items)

    def note_completion(self, deadline: Deadline) -> bool:
        """Record a finished deadline-carrying request; True when met."""
        elapsed = deadline.elapsed()
        self.predictor.observe_completion(elapsed)
        met = not deadline.expired
        if met:
            self.deadline_hits += 1
            if self.limiter is not None:
                target = self.config.slo_p99_ms
                if target is not None and elapsed * 1e3 > target:
                    self.limiter.on_miss()
                else:
                    self.limiter.on_ok()
        else:
            self.deadline_misses += 1
            if self.limiter is not None:
                self.limiter.on_miss()
        return met

    # ------------------------------------------------------------------
    # the adaptive soft limit
    # ------------------------------------------------------------------
    def effective_soft_limit(self) -> Optional[int]:
        """The adaptive admission window, or ``None`` for the static one."""
        if self.limiter is None:
            return None
        return self.limiter.limit

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """The ``"slo"`` block of the net snapshot."""
        snap = {
            "deadline": {
                "default_ms": self.config.default_deadline_ms,
                "requests": self.deadline_requests,
                "hits": self.deadline_hits,
                "misses": self.deadline_misses,
                "misses_by_stage": dict(self.stage_misses),
            },
            "ladder": {
                "rungs": list(self.config.ladder),
                "taken": dict(self.rungs),
                "early_flushes": self.early_flushes,
            },
            "stages_ms": {
                stage: self.stage_ewma_s[stage] * 1e3 for stage in STAGES
            },
            "predictor": {**self.predictor.snapshot(), "probes": self.probes},
        }
        if self.limiter is not None:
            snap["limiter"] = self.limiter.snapshot()
        return snap
