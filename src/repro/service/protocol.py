"""Wire framing for the network front end: JSON lines and HTTP/1.1.

The service speaks one *logical* protocol — the request/response
objects documented in :mod:`repro.service.server` — over two framings:

* **newline-delimited JSON** (the native framing, shared with
  ``serve_stdio``): one compact JSON object per ``\\n``-terminated
  line, responses in request order per connection;
* **minimal HTTP/1.1**: ``POST /query`` carrying the same JSON object
  (single pair, batch, or command) as its body, and ``GET /stats``
  returning the telemetry snapshot.  Keep-alive is honoured, chunked
  bodies and multipart are deliberately out of scope.

Only *framing* lives here — byte parsing and byte building, pure
functions with no I/O — so both the asyncio server
(:mod:`repro.service.net`) and its tests can exercise the exact
production codec without sockets.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

from repro.exceptions import ReproError

#: Upper bound on an HTTP request head (request line + headers).
MAX_HEAD_BYTES = 65536
#: Upper bound on a request body / JSONL request line.
MAX_BODY_BYTES = 16 * 1024 * 1024
#: Upper bound on a request's ``deadline_ms`` budget (one hour): any
#: larger value is a client bug, not a latency objective.
MAX_DEADLINE_MS = 3_600_000

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    503: "Service Unavailable",
}


class ProtocolError(ReproError):
    """Raised for malformed frames (bad request line, missing length)."""

    def __init__(self, message: str, *, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


def json_line(obj) -> bytes:
    """One response object as a compact ``\\n``-terminated JSON line."""
    return (json.dumps(obj, separators=(",", ":")) + "\n").encode("utf-8")


def _reject_nonfinite(token: str):
    """``parse_constant`` hook: NaN/Infinity are not valid request values."""
    raise ProtocolError(f"non-finite number {token!r} is not allowed")


def decode_json_line(line: bytes) -> dict:
    """Parse one request line; raises :class:`ProtocolError` on bad JSON.

    Every decode failure is typed: invalid JSON and undecodable bytes
    (``UnicodeDecodeError``), the ``NaN``/``Infinity`` extensions
    (rejected via ``parse_constant``), and oversized integer literals
    (``int()`` raises a plain ``ValueError`` past the interpreter's
    digit limit — which must not escape as a traceback).
    """
    try:
        request = json.loads(line, parse_constant=_reject_nonfinite)
    except ProtocolError:
        raise
    except (ValueError, TypeError, RecursionError) as exc:
        # ValueError covers JSONDecodeError, UnicodeDecodeError and the
        # int-conversion digit limit alike.
        raise ProtocolError(f"bad JSON: {exc}") from None
    return request


def validate_deadline_ms(value):
    """Validate a request's ``deadline_ms``: ``None`` or a sane budget.

    Returns the budget as a float (milliseconds).  Everything else —
    wrong type, booleans, non-finite floats, zero/negative budgets,
    absurdly large budgets — is a typed :class:`ProtocolError`.
    """
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(
            f"deadline_ms must be a number, not {type(value).__name__}"
        )
    try:
        ms = float(value)
    except OverflowError:
        raise ProtocolError(f"deadline_ms {value!r} is out of range") from None
    if not math.isfinite(ms):
        raise ProtocolError("deadline_ms must be finite")
    if ms <= 0:
        raise ProtocolError("deadline_ms must be positive")
    if ms > MAX_DEADLINE_MS:
        raise ProtocolError(
            f"deadline_ms {value!r} exceeds the {MAX_DEADLINE_MS} ms limit"
        )
    return ms


@dataclass
class HttpRequest:
    """A parsed HTTP/1.1 request head."""

    method: str
    target: str
    version: str
    headers: dict = field(default_factory=dict)

    @property
    def content_length(self) -> int:
        """Declared body length (0 when absent); raises on a bad value."""
        raw = self.headers.get("content-length")
        if raw is None:
            return 0
        try:
            length = int(raw)
        except ValueError:
            raise ProtocolError(f"bad Content-Length {raw!r}") from None
        if length < 0:
            raise ProtocolError(f"bad Content-Length {raw!r}")
        if length > MAX_BODY_BYTES:
            raise ProtocolError(
                f"body of {length} bytes exceeds the {MAX_BODY_BYTES} limit",
                status=413,
            )
        return length

    @property
    def deadline_ms(self):
        """The ``X-Deadline-Ms`` header's budget, validated; ``None`` absent."""
        raw = self.headers.get("x-deadline-ms")
        if raw is None:
            return None
        try:
            value = float(raw)
        except ValueError:
            raise ProtocolError(f"bad X-Deadline-Ms {raw!r}") from None
        return validate_deadline_ms(value)

    @property
    def keep_alive(self) -> bool:
        """Whether the connection survives this exchange (RFC 7230 §6.3)."""
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"


def parse_http_head(head: bytes) -> HttpRequest:
    """Parse a request head (everything through the blank line).

    Accepts the ``CRLF``-separated head as read by
    ``reader.readuntil(b"\\r\\n\\r\\n")`` — the trailing blank line may
    be present or already stripped.  Header names are lower-cased;
    duplicate headers keep the last value (none of the headers the
    server reads are list-valued).
    """
    if len(head) > MAX_HEAD_BYTES:
        raise ProtocolError("request head too large", status=413)
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:  # latin-1 never fails; belt and braces
        raise ProtocolError("undecodable request head") from None
    lines = [line for line in text.split("\r\n") if line]
    if not lines:
        raise ProtocolError("empty request")
    parts = lines[0].split()
    if len(parts) != 3:
        raise ProtocolError(f"malformed request line {lines[0]!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise ProtocolError(f"unsupported protocol version {version!r}")
    headers = {}
    for line in lines[1:]:
        name, sep, value = line.partition(":")
        if not sep or not name.strip():
            raise ProtocolError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return HttpRequest(
        method=method.upper(), target=target, version=version, headers=headers
    )


def http_response(
    body: dict,
    *,
    status: int = 200,
    keep_alive: bool = True,
    extra_headers: tuple = (),
) -> bytes:
    """Build a complete JSON HTTP/1.1 response frame.

    Args:
        body: the response object (serialised compactly, like the
            JSONL framing).
        status: HTTP status code; the reason phrase is derived.
        keep_alive: emit ``Connection: keep-alive`` vs ``close``.
        extra_headers: additional ``(name, value)`` pairs (e.g.
            ``("Retry-After", "1")`` on an overload response).
    """
    payload = json.dumps(body, separators=(",", ":")).encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    head = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(payload)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    head.extend(f"{name}: {value}" for name, value in extra_headers)
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + payload
