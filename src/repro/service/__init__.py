"""The query-serving subsystem: batching, caching, sharding, telemetry.

The algorithmic core (:mod:`repro.core`) answers one pair at a time;
this package turns it into an embeddable production service, following
the serving design of the follow-up paper *"Shortest Paths in
Microseconds"* (arXiv:1309.0874):

* :class:`~repro.service.batch.BatchExecutor` — deduplicates and
  symmetry-folds batches, then answers through the cache and
  :meth:`repro.core.oracle.VicinityOracle.query_batch`;
* :class:`~repro.service.cache.ResultCache` — landmark-aware LRU that
  caches only the expensive resolution tail
  (:data:`repro.core.oracle.EXPENSIVE_METHODS`);
* :class:`~repro.service.sharded.ShardedService` — the §5 partitioned
  scheme executed by real per-shard worker threads instead of the
  message-counting simulation;
* :class:`~repro.service.procpool.ProcessShardedService` — the same
  scheme on worker *processes* over a shared-memory flat index (true
  parallelism; see :mod:`repro.service.backends` for the common
  :class:`~repro.service.backends.ShardBackend` surface);
* :class:`~repro.service.telemetry.Telemetry` — latency percentiles,
  per-method counters, snapshot reporting;
* :mod:`~repro.service.workload` — Zipf/uniform workload generators;
* :mod:`~repro.service.server` — the JSON-lines request loop and
  self-driving benchmark behind ``repro-paths serve``;
* :mod:`~repro.service.net` — the asyncio network front end
  (``--transport tcp`` / ``http``): cross-client request coalescing
  into single executor batches, bounded-queue admission control with
  TCP backpressure, per-client telemetry, and hot store reload;
* :mod:`~repro.service.protocol` — the pure wire framings (JSON lines
  and minimal HTTP/1.1) the network server speaks;
* :mod:`~repro.service.supervisor` — worker supervision for the shard
  backends: sub-batch deadlines, retry/failover across replicas,
  automatic restart of dead workers, and per-shard circuit breakers
  that degrade to landmark estimates;
* :mod:`~repro.service.faults` — deterministic, frame-indexed fault
  injection (kill/stall/slow/corrupt/stale/delay/jitter) for chaos
  tests and the ``bench_chaos`` drill;
* :mod:`~repro.service.slo` — end-to-end request deadlines, the
  SLO-driven degrade ladder (exact → estimate → shed) and the adaptive
  AIMD admission limiter behind ``--deadline-ms`` / ``--slo-p99-ms``.
"""

from repro.service.backends import (
    SHARD_BACKENDS,
    ShardBackend,
    backend_from_saved,
    create_shard_backend,
)
from repro.service.faults import FaultInjector, FaultPlan, WorkerFaults
from repro.service.routing import ReplicaRouter
from repro.service.shardbase import SHARD_TRANSPORTS, ShardTransport
from repro.service.supervisor import (
    SupervisorConfig,
    WorkerSupervisor,
    shard_estimates,
)
from repro.service.wire import RequestFrame, ResponseFrame
from repro.service.batch import BatchExecutor, BatchStats
from repro.service.cache import DEFAULT_CAPACITY, ResultCache
from repro.service.net import Coalescer, NetServer, NetStats, serve_app
from repro.service.procpool import ProcessShardedService
from repro.service.protocol import ProtocolError
from repro.service.server import (
    ServiceApp,
    encode_result,
    handle_request,
    render_bench_report,
    run_bench,
    serve_stdio,
)
from repro.service.sharded import ShardedService
from repro.service.slo import (
    AIMDLimiter,
    CompletionPredictor,
    Deadline,
    SloConfig,
    SloController,
    parse_ladder,
)
from repro.service.telemetry import LatencyHistogram, Telemetry, render_snapshot
from repro.service.workload import in_batches, uniform_pairs, zipf_pairs

__all__ = [
    "BatchExecutor",
    "BatchStats",
    "ResultCache",
    "DEFAULT_CAPACITY",
    "ShardedService",
    "ProcessShardedService",
    "ShardBackend",
    "SHARD_BACKENDS",
    "SHARD_TRANSPORTS",
    "ShardTransport",
    "ReplicaRouter",
    "RequestFrame",
    "ResponseFrame",
    "SupervisorConfig",
    "WorkerSupervisor",
    "shard_estimates",
    "FaultPlan",
    "WorkerFaults",
    "FaultInjector",
    "create_shard_backend",
    "backend_from_saved",
    "Telemetry",
    "LatencyHistogram",
    "render_snapshot",
    "ServiceApp",
    "serve_stdio",
    "handle_request",
    "encode_result",
    "NetServer",
    "NetStats",
    "Coalescer",
    "ProtocolError",
    "Deadline",
    "SloConfig",
    "SloController",
    "AIMDLimiter",
    "CompletionPredictor",
    "parse_ladder",
    "serve_app",
    "run_bench",
    "render_bench_report",
    "zipf_pairs",
    "uniform_pairs",
    "in_batches",
]
