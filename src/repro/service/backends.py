"""The shard-backend abstraction shared by the serving front ends.

Two interchangeable executors implement the §5 partitioned scheme:

* ``"threads"`` — :class:`~repro.service.sharded.ShardedService`, one
  worker thread per shard.  Zero startup cost and the lowest
  single-query latency, but the GIL serialises the workers, so it buys
  routing fidelity rather than throughput.
* ``"procpool"`` — :class:`~repro.service.procpool.ProcessShardedService`,
  one worker *process* per shard over a shared-memory flat index.  Pays
  a process-spawn startup and one IPC exchange per worker per batch,
  and in return actually executes batches in parallel.

Both run the same :class:`~repro.core.engine.ShardQueryEngine` over the
same :class:`~repro.core.flat.FlatIndex` arrays (only the execution
substrate differs), present the :class:`ShardBackend` surface, answer
with identical :class:`~repro.core.oracle.QueryResult`\\ s, and keep
the same :class:`~repro.core.parallel.MessageLog` accounting, so
:class:`~repro.service.batch.BatchExecutor`, the server front end and
the CLI treat them as one thing.  Both also build dict-free from a
saved index via their ``from_saved`` constructors.

Coordinator↔worker traffic is fixed-dtype wire frames over a
:class:`~repro.service.shardbase.ShardTransport` — inline thread
dispatch for ``threads``, frame pipes or shared-memory result rings
(``transport="pipe"|"ring"``) for ``procpool`` — and both backends
accept ``sub_batch=`` chunking and per-shard ``replicas=`` with
load-aware routing (:mod:`repro.service.routing`).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.core.index import VicinityIndex
from repro.core.oracle import QueryResult
from repro.core.parallel import MessageLog, ShardReport
from repro.exceptions import QueryError
from repro.service.procpool import ProcessShardedService
from repro.service.sharded import ShardedService

#: Valid ``backend=`` names, in preference order for docs/CLI.
SHARD_BACKENDS = ("threads", "procpool")

#: The one name -> class registry both construction paths dispatch on.
_BACKEND_CLASSES = {
    "threads": ShardedService,
    "procpool": ProcessShardedService,
}


def _backend_class(backend: str):
    try:
        return _BACKEND_CLASSES[backend]
    except KeyError:
        raise QueryError(
            f"unknown shard backend {backend!r}; choose from {SHARD_BACKENDS}"
        ) from None


@runtime_checkable
class ShardBackend(Protocol):
    """What every sharded executor exposes to the serving layer."""

    n: int
    num_shards: int
    log: MessageLog

    def shard_of(self, u: int) -> int:
        ...

    def query(self, source: int, target: int, *, with_path: bool = False) -> QueryResult:
        ...

    def query_batch(self, pairs, *, with_path: bool = False) -> list[QueryResult]:
        ...

    def shard_reports(self) -> list[ShardReport]:
        ...

    def balance_summary(self) -> dict[str, float]:
        ...

    def transport_stats(self) -> dict:
        ...

    def close(self) -> None:
        ...


def create_shard_backend(
    index: VicinityIndex,
    num_shards: int,
    *,
    backend: str = "threads",
    placement: str = "hash",
    replicate_tables: bool = False,
    **kwargs,
) -> ShardBackend:
    """Build the named shard backend over a built index.

    Extra keyword arguments are forwarded to the backend constructor
    (e.g. ``start_method=`` or ``worker_cache_size=`` for ``procpool``;
    ``supervise=``/``recv_deadline_s=`` for fault tolerance on either
    backend, ``faults=`` for deterministic fault injection on
    ``procpool``).
    """
    return _backend_class(backend)(
        index,
        num_shards,
        placement=placement,
        replicate_tables=replicate_tables,
        **kwargs,
    )


def backend_from_saved(
    path,
    num_shards: int,
    *,
    backend: str = "threads",
    mmap: bool = False,
    **kwargs,
) -> ShardBackend:
    """Build the named shard backend dict-free from a saved index.

    Both backends load only the flattened arrays.  With ``mmap=True``
    (flat-container stores) startup is zero-copy: the thread backend's
    single shared :class:`~repro.core.flat.FlatIndex` is memory-mapped,
    and the procpool backend skips its shared-memory segment entirely —
    each worker maps the store file and the OS page cache shares the
    bytes across every process serving it.
    """
    return _backend_class(backend).from_saved(
        path, num_shards, mmap=mmap, **kwargs
    )
