"""Landmark-aware LRU result cache for the serving layer.

Algorithm 1 has a sharply bimodal cost profile: conditions (1)-(4)
resolve with a handful of hash probes, while the intersection stage
scans a boundary (tens to hundreds of probes) and a fallback runs a
graph search.  Caching the cheap stages would only duplicate work the
index already does in O(1); caching the expensive tail converts the
worst case of a repeated-pair workload into a dictionary hit.  The
method classes are defined once in :mod:`repro.core.oracle`
(:data:`~repro.core.oracle.CHEAP_METHODS` /
:data:`~repro.core.oracle.EXPENSIVE_METHODS`) and referenced here.

By default keys are canonicalised ``(min(s, t), max(s, t))`` pairs:
the oracle serves undirected graphs, so one entry answers both
orientations (mirrors are reoriented on the way out via
:meth:`~repro.core.oracle.QueryResult.mirrored`).  For directed
backends pass ``symmetric=False`` and keys stay orientation-exact.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Iterable, Optional

import numpy as np

from repro.core.oracle import EXPENSIVE_METHODS, QueryResult
from repro.exceptions import QueryError

#: Default maximum number of cached pairs.
DEFAULT_CAPACITY = 65536


class _FrequencySketch:
    """Count-min sketch of access frequencies (the TinyLFU filter).

    Four rows of 4-bit-style saturating counters (uint8 capped at 15)
    sized to the cache capacity; when the observed sample reaches
    ``16 * capacity`` every counter is halved, so frequencies age and
    yesterday's hot pairs cannot squat the admission gate forever.
    Tuple hashing over ints is deterministic (independent of
    ``PYTHONHASHSEED``), so sketch behaviour is reproducible.
    """

    _ROWS = 4
    _CAP = 15

    def __init__(self, capacity: int) -> None:
        width = 64
        while width < 4 * capacity:
            width *= 2
        self._mask = width - 1
        self._table = np.zeros((self._ROWS, width), dtype=np.uint8)
        self._samples = 0
        self._sample_limit = max(256, 16 * capacity)

    def _slots(self, key) -> list[int]:
        return [hash((row, key)) & self._mask for row in range(self._ROWS)]

    def touch(self, key) -> None:
        """Record one access to ``key``."""
        for row, slot in enumerate(self._slots(key)):
            if self._table[row, slot] < self._CAP:
                self._table[row, slot] += 1
        self._samples += 1
        if self._samples >= self._sample_limit:
            self._table >>= 1
            self._samples //= 2

    def estimate(self, key) -> int:
        """Approximate access count of ``key`` (min over rows)."""
        return min(
            int(self._table[row, slot]) for row, slot in enumerate(self._slots(key))
        )


class ResultCache:
    """LRU cache over canonical node pairs, storing full query results.

    Attributes:
        capacity: maximum entries held; least-recently-used eviction.
        cacheable: resolution methods worth caching (defaults to
            :data:`~repro.core.oracle.EXPENSIVE_METHODS`).
        symmetric: fold ``(t, s)`` onto ``(s, t)`` (correct for the
            undirected oracle).  Pass ``False`` when caching for a
            directed backend, where ``d(s, t) != d(t, s)``; keys are
            then stored and looked up orientation-exact.
        admission: ``"lru"`` (default) admits every cacheable result
            straight into the LRU.  ``"2q"`` adds a 2Q-style probation
            stage: a first-seen pair lands in a small FIFO (a quarter
            of the budget) and is promoted into the protected LRU only
            when it is touched *again* while still on probation — so a
            stream of one-hit-wonder pairs churns the FIFO instead of
            evicting the proven repeated tail.  Both stages answer
            ``get``; a probation hit promotes.  ``"tinylfu"`` gates
            admission on a count-min frequency sketch fed by every
            lookup: once the cache is full, a new pair displaces the
            LRU victim only when the sketch says it is accessed *more
            often* — one-hit wonders are denied outright instead of
            churning anything (counted as ``denied``).
        ttl: default time-to-live in seconds for stored entries
            (``None`` = never expire).  Expiry is lazy: an entry past
            its deadline is dropped at the next lookup or offer that
            touches it (counted as ``expired``, answered as a miss).
        ttls: per-method TTL overrides, e.g. ``{"fallback:bfs": 30.0}``
            — methods absent from the map fall back to ``ttl``.  Lets
            a deployment expire fallback answers (sensitive to graph
            drift) quickly while intersection results live long.
        clock: monotonic time source for TTLs (injectable for tests).
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        *,
        cacheable: Iterable[str] = EXPENSIVE_METHODS,
        symmetric: bool = True,
        admission: str = "lru",
        ttl: Optional[float] = None,
        ttls: Optional[dict] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise QueryError("cache capacity must be at least 1")
        if admission not in ("lru", "2q", "tinylfu"):
            raise QueryError(
                f"unknown admission policy {admission!r}; "
                "choose 'lru', '2q' or 'tinylfu'"
            )
        for life in [ttl, *(ttls or {}).values()]:
            if life is not None and life <= 0:
                raise QueryError("ttl values must be positive")
        self.capacity = capacity
        self.cacheable = frozenset(cacheable)
        self.symmetric = symmetric
        self.admission = admission
        self.ttl = ttl
        self.ttls = dict(ttls or {})
        self.clock = clock
        self._expiry: dict[tuple[int, int], float] = {}
        self._sketch = _FrequencySketch(capacity) if admission == "tinylfu" else None
        self._entries: "OrderedDict[tuple[int, int], QueryResult]" = OrderedDict()
        self._probation: "Optional[OrderedDict[tuple[int, int], QueryResult]]" = None
        self.probation_capacity = 0
        self.protected_capacity = capacity
        if admission == "2q" and capacity >= 2:
            # Probation and the protected LRU split one budget; at
            # capacity 1 there is nothing to split, so 2Q degrades to
            # plain LRU rather than quietly holding a second entry.
            self.probation_capacity = max(1, capacity // 4)
            self.protected_capacity = capacity - self.probation_capacity
            self._probation = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.rejected = 0
        self.invalidated = 0
        self.path_preserved = 0
        self.promotions = 0
        self.expired = 0
        self.denied = 0

    @staticmethod
    def canonical(source: int, target: int) -> tuple[int, int]:
        """The symmetry-folded cache key for a pair."""
        return (source, target) if source <= target else (target, source)

    def _key(self, source: int, target: int) -> tuple[int, int]:
        if self.symmetric:
            return self.canonical(source, target)
        return (source, target)

    # ------------------------------------------------------------------
    # ttl plumbing (all lock-held)
    # ------------------------------------------------------------------
    def _ttl_for(self, method: str) -> Optional[float]:
        return self.ttls.get(method, self.ttl)

    def _stamp(self, key: tuple[int, int], method: str) -> None:
        """Set (or clear) the expiry deadline for a just-stored entry."""
        life = self._ttl_for(method)
        if life is not None:
            self._expiry[key] = self.clock() + life
        else:
            self._expiry.pop(key, None)

    def _drop_if_expired(self, key: tuple[int, int]) -> None:
        """Lazily expire one key: drop it if its deadline has passed."""
        deadline = self._expiry.get(key)
        if deadline is None or self.clock() < deadline:
            return
        self._entries.pop(key, None)
        if self._probation is not None:
            self._probation.pop(key, None)
        del self._expiry[key]
        self.expired += 1

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def get(
        self, source: int, target: int, *, need_path: bool = False
    ) -> Optional[QueryResult]:
        """Return a cached result oriented for ``(source, target)``.

        Args:
            source / target: the queried pair (either orientation).
            need_path: treat entries stored without a path as misses.

        Returns:
            A :class:`QueryResult` whose ``source``/``target`` match the
            arguments, or ``None`` on a miss.
        """
        key = self._key(source, target)
        with self._lock:
            if self._sketch is not None:
                # Every lookup feeds the frequency sketch — misses too:
                # admission must see demand, not just what is stored.
                self._sketch.touch(key)
            self._drop_if_expired(key)
            entry = self._entries.get(key)
            if entry is not None:
                if need_path and entry.path is None:
                    self.misses += 1
                    return None
                self._entries.move_to_end(key)
                self.hits += 1
            else:
                if self._probation is not None:
                    probed = self._probation.get(key)
                    if probed is not None and not (
                        need_path and probed.path is None
                    ):
                        # Second touch while on probation: promote into
                        # the protected LRU.
                        del self._probation[key]
                        self._promote(key, probed)
                        entry = probed
                if entry is None:
                    self.misses += 1
                    return None
                self.hits += 1
        if entry.source == source and entry.target == target:
            return entry
        return entry.mirrored()

    def _promote(self, key: tuple[int, int], entry: QueryResult) -> None:
        """Move a probation entry into the protected LRU (lock held)."""
        self._entries[key] = entry
        self._entries.move_to_end(key)
        self.promotions += 1
        if len(self._entries) > self.protected_capacity:
            evicted_key, _ = self._entries.popitem(last=False)
            self._expiry.pop(evicted_key, None)
            self.evictions += 1

    # ------------------------------------------------------------------
    # inserts
    # ------------------------------------------------------------------
    def put(self, result: QueryResult) -> bool:
        """Offer a result; store it only if its method is cacheable.

        A path-less result never *downgrades* a stored entry that
        already carries a path for the same distance: the richer entry
        is kept (and refreshed in LRU order), otherwise one distance-only
        re-answer would turn every later ``need_path=True`` lookup for
        the pair into a permanent miss.  A result with a *different*
        distance always replaces the entry — fresher data wins after a
        graph change.

        Returns:
            ``True`` when the entry was stored (or refreshed).
        """
        if result.method not in self.cacheable:
            self.rejected += 1
            return False
        key = self._key(result.source, result.target)
        entry = result if (result.source, result.target) == key else result.mirrored()
        with self._lock:
            if self._sketch is not None:
                self._sketch.touch(key)
            self._drop_if_expired(key)
            known = self._entries.get(key)
            if known is not None:
                if (
                    known.path is not None
                    and entry.path is None
                    and known.distance == entry.distance
                ):
                    self._entries.move_to_end(key)
                    self._stamp(key, known.method)
                    self.path_preserved += 1
                    return True
                self._entries[key] = entry
                self._entries.move_to_end(key)
                self._stamp(key, entry.method)
                return True
            if self._probation is not None:
                probed = self._probation.get(key)
                if probed is not None:
                    # Second offer while on probation: promote, keeping
                    # the richer stored entry on equal distances.
                    if (
                        probed.path is not None
                        and entry.path is None
                        and probed.distance == entry.distance
                    ):
                        entry = probed
                        self.path_preserved += 1
                    del self._probation[key]
                    self._promote(key, entry)
                    self._stamp(key, entry.method)
                    return True
                self._probation[key] = entry
                self._stamp(key, entry.method)
                self.insertions += 1
                if len(self._probation) > self.probation_capacity:
                    evicted_key, _ = self._probation.popitem(last=False)
                    self._expiry.pop(evicted_key, None)
                    self.evictions += 1
                return True
            if self._sketch is not None and len(self._entries) >= self.capacity:
                # TinyLFU admission: a newcomer enters a full cache only
                # by out-counting the LRU victim in the sketch — ties
                # keep the incumbent, so one-hit wonders bounce off.
                victim = next(iter(self._entries))
                if self._sketch.estimate(key) <= self._sketch.estimate(victim):
                    self.denied += 1
                    return False
                del self._entries[victim]
                self._expiry.pop(victim, None)
                self.evictions += 1
            self._entries[key] = entry
            self._entries.move_to_end(key)
            self._stamp(key, entry.method)
            self.insertions += 1
            if len(self._entries) > self.capacity:
                evicted_key, _ = self._entries.popitem(last=False)
                self._expiry.pop(evicted_key, None)
                self.evictions += 1
        return True

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def invalidate(self, source: int, target: int) -> bool:
        """Drop the entry for one pair (either orientation); True if held."""
        key = self._key(source, target)
        with self._lock:
            if key in self._entries:
                del self._entries[key]
            elif self._probation is not None and key in self._probation:
                del self._probation[key]
            else:
                return False
            self._expiry.pop(key, None)
            self.invalidated += 1
        return True

    def invalidate_where(self, stale: Callable[[QueryResult], bool]) -> int:
        """Evict every entry for which ``stale(entry)`` is true.

        The invalidation hook for mutable backends:
        :meth:`repro.core.dynamic.DynamicVicinityOracle.add_edge` calls
        this on attached caches with an exact may-the-new-edge-shorten-
        this-pair predicate.  Returns the number of entries evicted.

        The predicate runs *outside* the cache lock (it may touch whole
        distance arrays per entry), so concurrent serving threads are
        only blocked for the two snapshot/delete instants.  An entry
        replaced mid-scan may be evicted along with its stale
        predecessor — eviction is always safe, staleness is not.
        """
        with self._lock:
            snapshot = list(self._entries.items())
            if self._probation is not None:
                snapshot.extend(self._probation.items())
        stale_keys = [key for key, entry in snapshot if stale(entry)]
        if not stale_keys:
            return 0
        evicted = 0
        with self._lock:
            for key in stale_keys:
                if key in self._entries:
                    del self._entries[key]
                    self._expiry.pop(key, None)
                    evicted += 1
                elif self._probation is not None and key in self._probation:
                    del self._probation[key]
                    self._expiry.pop(key, None)
                    evicted += 1
            self.invalidated += evicted
        return evicted

    # ------------------------------------------------------------------
    # maintenance / reporting
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        probation = len(self._probation) if self._probation is not None else 0
        return len(self._entries) + probation

    def __contains__(self, pair: tuple[int, int]) -> bool:
        key = self._key(*pair)
        if key in self._entries:
            return True
        return self._probation is not None and key in self._probation

    def clear(self) -> None:
        """Drop every entry and zero the counters."""
        with self._lock:
            self._entries.clear()
            if self._probation is not None:
                self._probation.clear()
            self._expiry.clear()
            if self._sketch is not None:
                self._sketch = _FrequencySketch(self.capacity)
            self.hits = self.misses = 0
            self.insertions = self.evictions = self.rejected = 0
            self.invalidated = self.path_preserved = self.promotions = 0
            self.expired = self.denied = 0

    @property
    def lookups(self) -> int:
        """Total ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict:
        """JSON-serialisable statistics for telemetry embedding."""
        snap = {
            "size": len(self),
            "capacity": self.capacity,
            "admission": self.admission,
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "rejected": self.rejected,
            "invalidated": self.invalidated,
            "path_preserved": self.path_preserved,
            "expired": self.expired,
        }
        if self._probation is not None:
            snap["probation_size"] = len(self._probation)
            snap["promotions"] = self.promotions
        if self._sketch is not None:
            snap["denied"] = self.denied
        return snap
