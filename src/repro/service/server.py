"""The embeddable service front end and the ``serve`` CLI's engine.

Two entry points:

* :func:`serve_stdio` — a newline-delimited-JSON request loop (one
  request object in, one response object out), the transport-agnostic
  core a socket or HTTP frame would wrap;
* :func:`run_bench` — the self-driving mode: generate a repeated-pair
  (Zipf) workload, serve it through the batched/cached stack, and race
  it against the naive single-query loop.

Both operate on a :class:`ServiceApp`, the bundle of oracle, batch
executor, cache, telemetry and (optionally) a sharded backend that
``repro-paths serve`` assembles from a persisted index.

Protocol (one JSON object per line)::

    {"s": 3, "t": 17}                  -> single query
    {"s": 3, "t": 17, "path": true}    -> single query with path
    {"pairs": [[3, 17], [4, 9]]}       -> batch
    {"cmd": "stats"}                   -> telemetry snapshot
    {"cmd": "reset"}                   -> zero telemetry + cache
    {"cmd": "quit"}                    -> acknowledge and stop

Responses mirror requests: ``{"s", "t", "distance", "method",
"probes"}`` (plus ``"path"`` when asked), ``{"results": [...]}`` for
batches, the snapshot dict for ``stats``, ``{"error": ...}`` for
malformed or failing requests.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass
from typing import Optional, TextIO

from repro.core.index import VicinityIndex
from repro.core.oracle import QueryResult, VicinityOracle
from repro.core.parallel import MessageLog
from repro.exceptions import QueryError, ReproError
from repro.service.backends import ShardBackend, create_shard_backend
from repro.service.batch import BatchExecutor, BatchStats
from repro.service.cache import DEFAULT_CAPACITY, ResultCache
from repro.service.telemetry import Telemetry, render_snapshot
from repro.service.workload import in_batches, zipf_pairs


def _check_worker_cache(worker_cache_size: int, shards: int, backend: str) -> None:
    """Reject configurations where a requested worker cache cannot exist."""
    if worker_cache_size and (shards < 1 or backend != "procpool"):
        raise QueryError(
            "worker_cache_size requires the procpool backend with shards >= 1"
        )


@dataclass
class ServiceApp:
    """Everything a running query service consists of.

    ``oracle`` is ``None`` for a shard-only app assembled by
    :meth:`from_saved` with ``shards > 0`` — both shard backends build
    dict-free from the saved index's flattened arrays, so no
    single-machine oracle (and none of its per-node dicts) ever
    materialises.  An unsharded ``mmap=True`` app is oracle-free too:
    ``engine`` holds the memory-mapped
    :class:`~repro.core.engine.FlatQueryEngine` the executor runs on
    (graph-free, so fallback searches are unavailable, as in §5).
    """

    oracle: Optional[VicinityOracle]
    executor: BatchExecutor
    telemetry: Telemetry
    cache: Optional[ResultCache] = None
    sharded: Optional[ShardBackend] = None
    engine: Optional[object] = None

    @property
    def n(self) -> int:
        """Node count of the served index."""
        if self.oracle is not None:
            return self.oracle.graph.n
        if self.sharded is not None:
            return self.sharded.n
        return self.engine.n

    @property
    def kernels(self) -> str:
        """The active kernel tier of the serving resolver."""
        if self.sharded is not None:
            return self.sharded.kernels
        if self.engine is not None:
            return self.engine.kernels
        return self.oracle.engine.kernels

    @classmethod
    def from_index(
        cls,
        index: VicinityIndex,
        *,
        cache_size: Optional[int] = DEFAULT_CAPACITY,
        shards: int = 0,
        backend: str = "threads",
        replicate_tables: bool = False,
        worker_cache_size: int = 0,
        kernels: Optional[str] = None,
        **backend_kwargs,
    ) -> "ServiceApp":
        """Assemble the serving stack over a built index.

        Args:
            index: the loaded/built :class:`VicinityIndex`.
            cache_size: LRU capacity; ``None`` or ``0`` disables caching.
            shards: when positive, route queries through a sharded
                executor with that many shard workers (fallback is then
                unavailable, as in §5).
            backend: which sharded executor — ``"threads"`` (worker
                threads, instant startup) or ``"procpool"`` (worker
                processes over a shared-memory index, true parallelism).
            replicate_tables: sharded-mode landmark-table replication.
            worker_cache_size: ``procpool`` only — per-worker result
                cache capacity (0 disables).
            kernels: kernel tier for the query engines — ``"numpy"``,
                ``"native"`` or ``None``/``"auto"``.
            backend_kwargs: forwarded to the shard backend constructor
                (``transport=``, ``sub_batch=``, ``replicas=``,
                ``pin_workers=``, ...); requires ``shards >= 1``.
        """
        _check_worker_cache(worker_cache_size, shards, backend)
        if backend_kwargs and shards < 1:
            raise QueryError(
                f"backend options {sorted(backend_kwargs)} require shards >= 1"
            )
        sharded = None
        if shards > 0:
            kwargs = dict(backend_kwargs)
            if worker_cache_size:
                kwargs["worker_cache_size"] = worker_cache_size
            sharded = create_shard_backend(
                index, shards, backend=backend,
                replicate_tables=replicate_tables, kernels=kernels, **kwargs,
            )
        oracle = VicinityOracle(index)
        if kernels is not None:
            # Settle the tier on the cached flat arrays before the
            # engine property builds (and binds its scalar resolver)
            # against them; the choice survives dynamic repairs.
            from repro.core.flat import FlatIndex

            FlatIndex.from_index(index).set_kernels(kernels)
        return cls._assemble(
            oracle=oracle,
            sharded=sharded,
            cache_size=cache_size,
            backend_name=backend if shards > 0 else "single",
        )

    @classmethod
    def from_saved(
        cls,
        path,
        *,
        cache_size: Optional[int] = DEFAULT_CAPACITY,
        shards: int = 0,
        backend: str = "threads",
        replicate_tables: bool = False,
        worker_cache_size: int = 0,
        mmap: bool = False,
        kernels: Optional[str] = None,
        **backend_kwargs,
    ) -> "ServiceApp":
        """Assemble the serving stack from a saved index file.

        A sharded app (``shards > 0``) skips
        :func:`~repro.io.oracle_store.load_index`'s per-node dict
        materialisation entirely on *both* backends — the workers probe
        the flattened arrays, so only
        :func:`~repro.io.oracle_store.load_flat_arrays` runs and the
        app carries no single-machine oracle.  ``mmap=True`` goes
        further on flat-container stores: every array is a read-only
        memory-mapped view, startup does no O(entries) work and copies
        nothing (the procpool workers map the file instead of a
        shared-memory segment), and pages are shared machine-wide
        through the OS page cache.  Unsharded ``mmap`` serving runs a
        graph-free :class:`~repro.core.engine.FlatQueryEngine` (no
        fallback searches, as in §5); the unsharded copy path loads the
        full index (fallback needs the graph) and delegates to
        :meth:`from_index`.
        """
        _check_worker_cache(worker_cache_size, shards, backend)
        if shards > 0:
            from repro.service.backends import backend_from_saved

            if worker_cache_size:
                backend_kwargs["worker_cache_size"] = worker_cache_size
            sharded = backend_from_saved(
                path, shards, backend=backend, mmap=mmap,
                replicate_tables=replicate_tables, kernels=kernels,
                **backend_kwargs,
            )
            return cls._assemble(
                oracle=None, sharded=sharded, cache_size=cache_size,
                backend_name=backend,
            )
        if backend_kwargs:
            # Unsharded apps have no backend to forward these to; a
            # silent drop would read as the option having taken effect.
            raise QueryError(
                f"backend options {sorted(backend_kwargs)} require shards >= 1"
            )
        if mmap:
            from repro.io.oracle_store import load_query_engine

            return cls._assemble(
                oracle=None,
                sharded=None,
                engine=load_query_engine(path, mmap=True, kernels=kernels),
                cache_size=cache_size,
            )
        from repro.io.oracle_store import load_index

        return cls.from_index(
            load_index(path),
            cache_size=cache_size,
            shards=shards,
            backend=backend,
            replicate_tables=replicate_tables,
            kernels=kernels,
        )

    @classmethod
    def _assemble(
        cls,
        *,
        oracle: Optional[VicinityOracle],
        sharded: Optional[ShardBackend],
        cache_size: Optional[int],
        backend_name: str = "single",
        engine=None,
    ) -> "ServiceApp":
        """The one place the serving stack is wired together."""
        telemetry = Telemetry(engine="flat", backend=backend_name)
        cache = ResultCache(cache_size) if cache_size else None
        resolver = sharded if sharded is not None else (oracle or engine)
        executor = BatchExecutor(
            resolver,
            cache=cache,
            telemetry=telemetry,
            symmetry=True,
        )
        return cls(
            oracle=oracle,
            executor=executor,
            telemetry=telemetry,
            cache=cache,
            sharded=sharded,
            engine=engine,
        )

    def snapshot(self, *, net: Optional[dict] = None) -> dict:
        """Full service snapshot: telemetry + cache + batch + shard stats.

        Args:
            net: optional network front-end block
                (:meth:`repro.service.net.NetStats.snapshot`) to embed;
                the network server passes its own — every pre-existing
                key keeps its meaning and position.
        """
        worker_cache = None
        shard_transport = None
        if self.sharded is not None:
            if hasattr(self.sharded, "worker_cache_stats"):
                worker_cache = self.sharded.worker_cache_stats()
            if hasattr(self.sharded, "transport_stats"):
                shard_transport = self.sharded.transport_stats()
        snap = self.telemetry.snapshot(
            cache=self.cache,
            message_log=self.sharded.log if self.sharded is not None else None,
            worker_cache=worker_cache,
            net=net,
            shard_transport=shard_transport,
            kernels=self.kernels,
        )
        snap["batching"] = self.executor.stats.snapshot()
        return snap

    def reset(self) -> None:
        """Zero every counter epoch: telemetry, cache, batching, shard log.

        The index itself stays warm; only observability state restarts,
        so a post-reset snapshot describes exactly the traffic since.
        """
        self.telemetry.reset()
        if self.cache is not None:
            self.cache.clear()
        self.executor.stats = BatchStats()
        if self.sharded is not None:
            self.sharded.log = MessageLog()

    def close(self) -> None:
        """Release the sharded backend's workers, if any."""
        if self.sharded is not None:
            self.sharded.close()


def encode_result(result: QueryResult, with_path: bool) -> dict:
    """One :class:`QueryResult` as its wire-protocol response object."""
    body = {
        "s": result.source,
        "t": result.target,
        "distance": result.distance,
        "method": result.method,
        "probes": result.probes,
    }
    if result.method == "estimate":
        # A breaker-window answer from the coordinator's landmark
        # tables: an upper bound, not the exact distance — flagged the
        # same way the net front end flags its overload estimates.
        body["degraded"] = True
    if with_path:
        body["path"] = result.path
    return body


def handle_request(app: ServiceApp, request: dict) -> tuple[dict, bool]:
    """Answer one decoded request; returns ``(response, keep_serving)``."""
    if not isinstance(request, dict):
        return {"error": "request must be a JSON object"}, True
    command = request.get("cmd")
    if command is not None:
        if command == "stats":
            return app.snapshot(), True
        if command == "reset":
            app.reset()
            return {"ok": True}, True
        if command == "quit":
            return {"ok": True}, False
        return {"error": f"unknown command {command!r}"}, True
    try:
        if "pairs" in request:
            pairs = [(int(s), int(t)) for s, t in request["pairs"]]
            with_path = bool(request.get("path", False))
            results = app.executor.run(pairs, with_path=with_path)
            return {"results": [encode_result(r, with_path) for r in results]}, True
        if "s" in request and "t" in request:
            with_path = bool(request.get("path", False))
            result = app.executor.query(
                int(request["s"]), int(request["t"]), with_path=with_path
            )
            return encode_result(result, with_path), True
    except (ReproError, ValueError, TypeError) as exc:
        return {"error": str(exc)}, True
    return {"error": "expected {'s','t'}, {'pairs'} or {'cmd'}"}, True


def serve_stdio(
    app: ServiceApp,
    *,
    input_stream: Optional[TextIO] = None,
    output_stream: Optional[TextIO] = None,
) -> int:
    """Run the JSON-lines request loop until EOF or ``quit``.

    Returns the number of requests served.
    """
    source = input_stream if input_stream is not None else sys.stdin
    sink = output_stream if output_stream is not None else sys.stdout
    served = 0
    for line in source:
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            response, keep = {"error": f"bad JSON: {exc}"}, True
        else:
            response, keep = handle_request(app, request)
        print(json.dumps(response), file=sink, flush=True)
        served += 1
        if not keep:
            break
    return served


def run_bench(
    app: ServiceApp,
    *,
    queries: int = 20000,
    batch_size: int = 256,
    exponent: float = 1.0,
    pool: Optional[int] = None,
    seed: Optional[int] = 7,
    baseline: bool = True,
) -> dict:
    """Self-drive the service with a Zipf workload; return a report.

    The workload is served twice: once through the batched + cached
    executor (what production traffic would see) and — when
    ``baseline`` is true — once as the naive per-pair ``query()`` loop,
    giving the speedup headline.  The baseline uses the same backend
    semantics as the batched pass: on a sharded app it is the per-pair
    sharded loop (both sides fallback-free), so the speedup isolates
    what batching + caching buy rather than conflating them with
    skipped fallback searches.  The telemetry snapshot reflects only
    the batched pass.

    Returns:
        A dict with ``workload``, ``batched`` / ``single`` timing
        blocks, ``speedup`` and the post-run ``snapshot``.
    """
    if queries < 1:
        raise QueryError("queries must be at least 1")
    pairs = zipf_pairs(app.n, queries, exponent=exponent, pool=pool, seed=seed)
    if app.oracle is not None:
        app.oracle.engine  # flatten at startup, not inside the first timed batch

    started = time.perf_counter()
    answered = 0
    for batch in in_batches(pairs, batch_size):
        for result in app.executor.run(batch):
            if result.answered:
                answered += 1
    batched_s = time.perf_counter() - started

    report = {
        "workload": {
            "queries": queries,
            "distinct_pairs": len({ResultCache.canonical(s, t) for s, t in pairs}),
            "batch_size": batch_size,
            "zipf_exponent": exponent,
            "seed": seed,
        },
        "batched": {
            "seconds": batched_s,
            "qps": queries / batched_s if batched_s > 0 else float("inf"),
            "answered": answered,
        },
    }
    report["snapshot"] = app.snapshot()
    if baseline:
        if app.sharded is not None:
            query, mode = app.sharded.query, "sharded-loop"
        elif app.oracle is not None:
            query, mode = app.oracle.query, "oracle-loop"
        else:
            query, mode = app.engine.query, "engine-loop"
        started = time.perf_counter()
        for s, t in pairs:
            query(s, t)
        single_s = time.perf_counter() - started
        report["single"] = {
            "seconds": single_s,
            "qps": queries / single_s if single_s > 0 else float("inf"),
            "mode": mode,
        }
        report["speedup"] = single_s / batched_s if batched_s > 0 else float("inf")
    return report


def render_bench_report(report: dict) -> str:
    """Human-readable view of :func:`run_bench`'s dict."""
    workload = report["workload"]
    batched = report["batched"]
    lines = [
        f"workload         : {workload['queries']:,} queries over "
        f"{workload['distinct_pairs']:,} distinct pairs "
        f"(zipf s={workload['zipf_exponent']}, batches of {workload['batch_size']})",
        f"batched+cached   : {batched['seconds']:.3f} s  "
        f"({batched['qps']:,.0f} q/s, {batched['answered']:,} answered)",
    ]
    if "single" in report:
        single = report["single"]
        label = "sharded" if single.get("mode") == "sharded-loop" else "single"
        lines.append(
            f"{label + '-query loop':<17s}: {single['seconds']:.3f} s  "
            f"({single['qps']:,.0f} q/s)"
        )
        lines.append(f"speedup          : {report['speedup']:.2f}x")
    lines.append("")
    lines.append(render_snapshot(report["snapshot"]))
    return "\n".join(lines)
