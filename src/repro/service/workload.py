"""Query-workload generators for benchmarking and self-driving.

Social serving traffic is not uniform: a small set of pairs (popular
profiles, trending content) is queried over and over.  The follow-up
serving literature models this as a Zipf law over distinct pairs, which
is exactly the regime the serving layer's dedup + cache is built for.
``zipf_pairs`` draws such a workload; ``uniform_pairs`` is the
adversarial no-repetition baseline.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import QueryError
from repro.utils.rng import ensure_rng


def uniform_pairs(
    n_nodes: int, count: int, *, seed: Optional[int] = None, rng=None
) -> list[tuple[int, int]]:
    """``count`` independent uniform ``(s, t)`` pairs over ``n_nodes``."""
    if n_nodes < 1:
        raise QueryError("need at least one node")
    generator = ensure_rng(rng if rng is not None else seed)
    flat = generator.integers(0, n_nodes, size=(count, 2))
    return [(int(s), int(t)) for s, t in flat]


def zipf_pairs(
    n_nodes: int,
    count: int,
    *,
    exponent: float = 1.0,
    pool: Optional[int] = None,
    seed: Optional[int] = None,
    rng=None,
) -> list[tuple[int, int]]:
    """A repeated-pair workload: Zipf-ranked draws from a pair pool.

    A pool of ``pool`` distinct uniform pairs is ranked 1..pool and each
    of the ``count`` queries picks rank ``r`` with probability
    proportional to ``r ** -exponent`` — rank 1 dominates, the tail is
    long.  With the default pool of ``count // 8`` the stream revisits
    pairs heavily, like production traffic does.

    Args:
        n_nodes: node-id range.
        count: number of queries to draw.
        exponent: Zipf skew; 0 degenerates to uniform over the pool.
        pool: distinct-pair pool size (default ``max(1, count // 8)``).
        seed / rng: reproducibility (``rng`` wins when both given).

    Returns:
        ``count`` pairs, heavy ranks first-drawn no more likely than
        late — the sequence is i.i.d., only the marginal is skewed.
    """
    if exponent < 0:
        raise QueryError("exponent must be non-negative")
    generator = ensure_rng(rng if rng is not None else seed)
    pool_size = pool if pool is not None else max(1, count // 8)
    if pool_size < 1:
        raise QueryError("pool must be at least 1")
    pool_pairs = uniform_pairs(n_nodes, pool_size, rng=generator)
    ranks = np.arange(1, pool_size + 1, dtype=np.float64)
    weights = ranks ** -float(exponent)
    weights /= weights.sum()
    picks = generator.choice(pool_size, size=count, p=weights)
    return [pool_pairs[i] for i in picks]


def in_batches(pairs, batch_size: int):
    """Yield ``pairs`` in consecutive chunks of ``batch_size``."""
    if batch_size < 1:
        raise QueryError("batch_size must be at least 1")
    batch = []
    for pair in pairs:
        batch.append(pair)
        if len(batch) == batch_size:
            yield batch
            batch = []
    if batch:
        yield batch
