"""Batched query execution: dedup, symmetry folding, caching.

Production query streams are highly redundant — social workloads follow
a Zipf law over pairs, and an undirected ``d(s, t)`` equals ``d(t, s)``.
The :class:`BatchExecutor` exploits both before the oracle sees a
single pair:

1. canonicalise every pair to ``(min, max)`` (symmetry folding);
2. deduplicate the batch, answering each distinct pair once;
3. consult the landmark-aware LRU cache
   (:class:`~repro.service.cache.ResultCache`);
4. send only the residual pairs to the backend's ``query_batch``.

The backend is anything satisfying the
:class:`~repro.core.engine.QueryEngine` protocol — a
:class:`~repro.core.oracle.VicinityOracle` (whose read path runs on
the flat engine's fused batch lanes), a bare
:class:`~repro.core.engine.FlatQueryEngine`, either shard backend, or
another executor — and results fan back out to the original order and
orientation.  The executor itself exposes ``query_batch``, so
executors compose (for example a cache in front of a sharded service).
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass, field
from typing import Optional, Protocol

from repro.core.oracle import QueryResult
from repro.exceptions import QueryError
from repro.service.cache import ResultCache
from repro.service.telemetry import Telemetry


class QueryBackend(Protocol):
    """Anything able to answer a list of pairs in order.

    A structural subset of :class:`repro.core.engine.QueryEngine`
    (``query`` is optional for a batch backend).
    """

    def query_batch(self, pairs, *, with_path: bool = False) -> list[QueryResult]:
        ...


@dataclass
class BatchStats:
    """Work-avoidance accounting across an executor's lifetime."""

    batches: int = 0
    pairs_in: int = 0
    unique_pairs: int = 0
    cache_hits: int = 0
    backend_pairs: int = 0
    mirrored: int = 0

    @property
    def duplicates(self) -> int:
        """Pairs answered by batch-local dedup (symmetry included)."""
        return self.pairs_in - self.unique_pairs

    def snapshot(self) -> dict:
        """JSON-serialisable view."""
        return {
            "batches": self.batches,
            "pairs_in": self.pairs_in,
            "unique_pairs": self.unique_pairs,
            "duplicates": self.duplicates,
            "cache_hits": self.cache_hits,
            "backend_pairs": self.backend_pairs,
            "mirrored": self.mirrored,
        }


class BatchExecutor:
    """Answer batches of pairs through dedup + cache + a query backend.

    Args:
        backend: the resolver — typically a
            :class:`~repro.core.oracle.VicinityOracle` (whose
            ``query_batch`` does the stage grouping) or a
            :class:`~repro.service.sharded.ShardedService`.
        cache: optional shared :class:`ResultCache`; ``None`` disables
            caching (dedup and symmetry still apply).
        telemetry: optional :class:`Telemetry` receiving per-batch
            latency and method counts.
        symmetry: fold ``(t, s)`` onto ``(s, t)``.  Correct for the
            undirected oracle; disable when fronting a directed
            backend, pairing it with ``ResultCache(symmetric=False)``
            (a symmetric cache under ``symmetry=False`` would still
            fold orientations, so the mismatch is rejected).

    Raises:
        QueryError: when ``cache.symmetric`` disagrees with
            ``symmetry``.
    """

    def __init__(
        self,
        backend: QueryBackend,
        *,
        cache: Optional[ResultCache] = None,
        telemetry: Optional[Telemetry] = None,
        symmetry: bool = True,
    ) -> None:
        if cache is not None and cache.symmetric != symmetry:
            raise QueryError(
                "cache.symmetric must match the executor's symmetry setting "
                f"(cache: {cache.symmetric}, executor: {symmetry})"
            )
        self.backend = backend
        self.cache = cache
        self.telemetry = telemetry
        self.symmetry = symmetry
        self.stats = BatchStats()
        self._backend_takes_budget = _accepts_budget(
            getattr(backend, "query_batch", None)
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self, pairs, *, with_path: bool = False, budget_s=None
    ) -> list[QueryResult]:
        """Answer ``pairs``, returning one result per pair in order.

        Results are exact and identical (in distance) to per-pair
        :meth:`~repro.core.oracle.VicinityOracle.query`; mirrored
        answers reuse the canonical orientation's method and witness
        with ``probes == 0``.

        ``budget_s``, when given, is the batch's remaining deadline
        budget; it is forwarded to backends whose ``query_batch``
        accepts it (the shard coordinator clamps its waits to it and
        degrades expired pairs to estimates).  Backends without budget
        support — a single-machine oracle cannot be preempted mid-scan
        anyway — are called exactly as before.
        """
        started = time.perf_counter()
        pair_list = [(int(s), int(t)) for s, t in pairs]
        keys: list[tuple[int, int]] = []
        seen: dict[tuple[int, int], None] = {}
        for s, t in pair_list:
            key = self._key(s, t)
            if key not in seen:
                seen[key] = None
                keys.append(key)

        resolved: dict[tuple[int, int], QueryResult] = {}
        if self.cache is not None:
            for key in keys:
                hit = self.cache.get(key[0], key[1], need_path=with_path)
                if hit is not None:
                    resolved[key] = hit
        cache_hits = len(resolved)

        residual = [key for key in keys if key not in resolved]
        if residual:
            if budget_s is not None and self._backend_takes_budget:
                answers = self.backend.query_batch(
                    residual, with_path=with_path, budget_s=budget_s
                )
            else:
                answers = self.backend.query_batch(residual, with_path=with_path)
            for key, answer in zip(residual, answers):
                resolved[key] = answer
                if self.cache is not None:
                    self.cache.put(answer)

        results: list[QueryResult] = []
        mirrored = 0
        for s, t in pair_list:
            answer = resolved[self._key(s, t)]
            if answer.source != s or answer.target != t:
                answer = answer.mirrored()
                mirrored += 1
            results.append(answer)

        stats = self.stats
        stats.batches += 1
        stats.pairs_in += len(pair_list)
        stats.unique_pairs += len(keys)
        stats.cache_hits += cache_hits
        stats.backend_pairs += len(residual)
        stats.mirrored += mirrored
        if self.telemetry is not None:
            self.telemetry.observe_batch(results, time.perf_counter() - started)
        return results

    def query_batch(
        self, pairs, *, with_path: bool = False, budget_s=None
    ) -> list[QueryResult]:
        """Alias for :meth:`run`, making executors composable backends."""
        return self.run(pairs, with_path=with_path, budget_s=budget_s)

    def query(self, source: int, target: int, *, with_path: bool = False) -> QueryResult:
        """Answer a single pair through the same dedup/cache machinery."""
        return self.run([(source, target)], with_path=with_path)[0]

    def _key(self, s: int, t: int) -> tuple[int, int]:
        if self.symmetry:
            return ResultCache.canonical(s, t)
        return (s, t)

    def snapshot(self) -> dict:
        """Executor statistics plus embedded cache statistics."""
        snap = self.stats.snapshot()
        if self.cache is not None:
            snap["cache"] = self.cache.snapshot()
        return snap


def _accepts_budget(func) -> bool:
    """Does a ``query_batch`` callable take the ``budget_s`` keyword?"""
    try:
        parameters = inspect.signature(func).parameters
    except (TypeError, ValueError):
        return False
    if "budget_s" in parameters:
        return True
    return any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    )
